//! Shared scaffolding for the benchmark harness binaries that
//! regenerate every table and figure of Biryukov et al. (ICDCS 2014).
//!
//! Each binary under `src/bin/` reproduces one artifact; see
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! record. The Criterion benches under `benches/` cover the hot paths
//! (SHA-1, descriptor derivation, ring lookup, classifiers, consensus
//! voting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hs_landscape::pipeline::{PipelineRun, StageId};
use hs_landscape::{report, Study, StudyConfig};

/// The scale used by the experiment binaries. Override with the
/// `HS_SCALE` environment variable (e.g. `HS_SCALE=1.0` for the full
/// paper-scale run; default 0.25 finishes in tens of seconds).
pub fn bench_scale() -> f64 {
    std::env::var("HS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

/// Builds the standard study configuration at [`bench_scale`].
pub fn bench_config() -> StudyConfig {
    let scale = bench_scale();
    StudyConfig {
        scale,
        relays: ((1_400.0 * scale) as usize).clamp(150, 1_400),
        harvest: hs_landscape::hs_harvest::HarvestConfig {
            fleet: hs_landscape::hs_harvest::FleetConfig {
                ips: ((58.0 * scale) as u32).max(8),
                relays_per_ip: 24,
                bandwidth: 400,
            },
            warmup_hours: 26,
            rotation_hours: 2,
        },
        scan_days: 7,
        traffic_clients: ((500.0 * scale) as usize).max(60),
        run_tracking: false,
        ..StudyConfig::default()
    }
}

/// Runs the standard study (used by binaries that need the full
/// report).
pub fn run_bench_study() -> hs_landscape::StudyReport {
    let config = bench_config();
    eprintln!(
        "[hs-bench] running study at scale {} ({} relays)…",
        config.scale, config.relays
    );
    Study::new(config).run()
}

/// Runs only the dependency closure of `targets` at [`bench_scale`],
/// printing the per-stage timing table (skipped stages included) to
/// stderr. Figure-specific binaries use this so each pays only for
/// the stages its artifact needs.
pub fn run_bench_stages(targets: &[StageId]) -> PipelineRun {
    let config = bench_config();
    let names: Vec<&str> = targets.iter().map(|s| s.name()).collect();
    eprintln!(
        "[hs-bench] running stages [{}] at scale {} ({} relays)…",
        names.join(", "),
        config.scale,
        config.relays
    );
    let run = Study::new(config).run_stages(targets);
    eprintln!("{}", report::render_stage_timings(&run.timings));
    run
}

//! E10 — Regenerates Fig. 3: the geographic map of deanonymised
//! clients of a popular (Goldnet) hidden service.

use hs_landscape::report;

fn main() {
    let results = hs_bench::run_bench_study();
    println!("{}", report::render_fig3(&results.deanon));
    println!("Paper reference: a world map of client locations for one Goldnet front end (no absolute counts published)");
}

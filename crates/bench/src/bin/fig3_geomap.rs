//! E10 — Regenerates Fig. 3: the geographic map of deanonymised
//! clients of a popular (Goldnet) hidden service.

use hs_landscape::report;
use hs_landscape::StageId;

fn main() {
    let run = hs_bench::run_bench_stages(&[StageId::Geomap]);
    println!("{}", report::render_fig3(run.artifacts.deanon()));
    println!("Paper reference: a world map of client locations for one Goldnet front end (no absolute counts published)");
}

//! E13 — Regenerates the Sec. II harvesting cost/coverage analysis:
//! 58 IPs with shadowing vs > 300 IPs naïvely, plus a measured sweep.

use hs_landscape::hs_harvest::coverage;
use hs_landscape::hs_world::calib;
use hs_landscape::StageId;

fn main() {
    println!("Sec. II — Harvest cost arithmetic");
    for hsdirs in [757u32, 1_400, 1_862] {
        println!(
            "  ring of {hsdirs} HSDirs: naive needs {} relays = {} IPs; shadowing (24/IP) needs {} IPs; attack time {} h",
            coverage::naive_relays_needed(hsdirs),
            coverage::naive_ips_needed(hsdirs),
            coverage::shadowing_ips_needed(hsdirs, 24),
            coverage::attack_hours(24, 2),
        );
    }
    println!(
        "  paper: {} IPs used; >{} needed naïvely",
        calib::HARVEST_IPS,
        calib::NAIVE_ATTACK_IPS
    );

    println!("\nRandom vs deliberate placement (expected coverage of the 6-slot responsible set):");
    for attacker in [50u32, 200, 600, 1_392] {
        println!(
            "  {attacker:>5} random relays among 1400 honest → {:.1}%",
            coverage::random_placement_coverage(1_400, attacker) * 100.0
        );
    }

    let run = hs_bench::run_bench_stages(&[StageId::Harvest]);
    let harvest = run.artifacts.harvest();
    let publishing = run
        .artifacts
        .world()
        .services()
        .iter()
        .filter(|s| s.publishes_descriptors())
        .count();
    println!(
        "\nMeasured sweep at scale {}: {} of {} publishing services collected ({:.1}%) in {} hours with {} relay instances",
        hs_bench::bench_scale(),
        harvest.onion_count(),
        publishing,
        harvest.coverage_of(publishing) * 100.0,
        harvest.hours,
        harvest.fleet_relays.len(),
    );
}

//! E9 — Regenerates Table II (ranking of most popular hidden
//! services) plus the Goldnet server-status forensics.

use hs_landscape::report;
use hs_landscape::StageId;

fn main() {
    let run = hs_bench::run_bench_stages(&[StageId::Popularity]);
    let pop = run.artifacts.popularity();
    println!("{}", report::render_table2(&pop.ranking, 30));
    println!(
        "Goldnet forensics: {} front ends → {} physical servers",
        pop.forensics.frontends(),
        pop.forensics.physical_servers()
    );
    println!("Paper reference: top-5 all Goldnet (13714…7183); BcMine #9; Skynet cluster #10–28; SilkRoad #18 @1175; FreedomHosting #27 @694; BMR #62 @172; DuckDuckGo #157 @55; TorHost #547 @10");
}

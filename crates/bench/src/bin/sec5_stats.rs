//! E8 — Regenerates the Sec. V popularity-measurement statistics.

use hs_landscape::report;
use hs_landscape::StageId;

fn main() {
    let run = hs_bench::run_bench_stages(&[StageId::Popularity]);
    let pop = run.artifacts.popularity();
    println!(
        "{}",
        report::render_sec5(&pop.resolution, pop.requested_published_share)
    );
    println!("Paper reference (scale 1.0): 1,031,176 requests; 29,123 unique descriptor IDs; 6,113 resolved → 3,140 onions; 80% phantom requests; 10% of published descriptors ever requested");
}

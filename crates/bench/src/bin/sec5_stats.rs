//! E8 — Regenerates the Sec. V popularity-measurement statistics.

use hs_landscape::report;

fn main() {
    let results = hs_bench::run_bench_study();
    println!(
        "{}",
        report::render_sec5(&results.resolution, results.requested_published_share)
    );
    println!("Paper reference (scale 1.0): 1,031,176 requests; 29,123 unique descriptor IDs; 6,113 resolved → 3,140 onions; 80% phantom requests; 10% of published descriptors ever requested");
}

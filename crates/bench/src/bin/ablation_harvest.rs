//! Ablation: harvest coverage as a function of fleet shape and
//! placement strategy.
//!
//! Sweeps (a) relays per IP at fixed IP count and (b) deliberate
//! (ring-spread) vs random fingerprint placement, measuring the share
//! of published services collected within one sweep. This quantifies
//! the two design choices behind the paper's 58-IP fleet.

use hs_landscape::hs_harvest::{coverage, FleetConfig, HarvestConfig, Harvester};
use hs_landscape::onion_crypto::OnionAddress;
use hs_landscape::tor_sim::clock::SimTime;
use hs_landscape::tor_sim::network::NetworkBuilder;

fn run_once(ips: u32, relays_per_ip: u32, services: usize) -> f64 {
    let mut net = NetworkBuilder::new()
        .relays(300)
        .seed(0xab1a)
        .start(SimTime::from_ymd(2013, 2, 1))
        .build();
    for i in 0..services {
        net.register_service(
            OnionAddress::from_pubkey(format!("ablation svc {i}").as_bytes()),
            true,
        );
    }
    net.advance_hours(1);
    let config = HarvestConfig {
        fleet: FleetConfig {
            ips,
            relays_per_ip,
            bandwidth: 350,
        },
        warmup_hours: 26,
        rotation_hours: 2,
    };
    let outcome = Harvester::new(config)
        .run(&mut net, |_| {})
        .expect("ablation fleet config is valid");
    outcome.coverage_of(services)
}

fn main() {
    let services = 400;
    println!(
        "Ablation A — coverage vs relays per IP (8 IPs, 300 honest relays, {services} services)"
    );
    println!(
        "{:<14} {:>10} {:>14} {:>12}",
        "relays/IP", "instances", "measured cov", "hours"
    );
    for m in [2u32, 4, 8, 16, 24] {
        let cov = run_once(8, m, services);
        println!(
            "{m:<14} {:>10} {:>13.1}% {:>12}",
            8 * m,
            cov * 100.0,
            coverage::attack_hours(m, 2)
        );
    }

    println!("\nAblation B — coverage vs IP count (8 relays per IP)");
    println!("{:<14} {:>10} {:>14}", "IPs", "instances", "measured cov");
    for n in [2u32, 4, 8, 16] {
        let cov = run_once(n, 8, services);
        println!("{n:<14} {:>10} {:>13.1}%", n * 8, cov * 100.0);
    }

    println!("\nAnalytic random-placement baseline (vs ~300-HSDir ring):");
    for k in [16u32, 64, 128, 300] {
        println!(
            "  {k:>4} random relays → expected {:.1}%",
            coverage::random_placement_coverage(300, k) * 100.0
        );
    }
    println!(
        "\nShape: coverage grows with total relay instances; deliberate spread \
         beats the random baseline at equal instance counts, and instances per \
         IP trade rented IPs for wall-clock sweep time — the paper's core \
         cost insight."
    );
}

//! The streaming-sketch benchmark gate: the exact-vs-sketch
//! differential at scale 0.03 plus a synthetic ingest throughput
//! measurement, written to `results/bench_sketch.json`.
//!
//! Three properties are checked here and diffed against the committed
//! `results/bench_sketch_baseline.json` by
//! `scripts_run_experiments.sh sketch`:
//!
//! * **rank identity** — the streaming popularity path must reproduce
//!   the exact path's Table II top-20 (rank, onion, requests) at scale
//!   0.03, where the distinct requested IDs fit the top-k capacity;
//! * **error bounds** — the HyperLogLog distinct-ID estimate stays
//!   inside the 5 % envelope and the count-min sketch never
//!   underestimates a synthetic ground-truth stream;
//! * **budget** — synthetic sketch ingest must sustain the baseline's
//!   committed `min_events_per_sec` (generous, so only a real
//!   throughput regression trips it).

use std::collections::HashMap;
use std::time::Instant;

use hs_landscape::hs_popularity::{RankedService, SketchConfig};
use hs_landscape::pipeline::{ExecMode, Pipeline, StageId};
use hs_landscape::StudyConfig;
use sketch::{mix2, CountMinSketch, HyperLogLog, SpaceSaving};

const SYNTH_EVENTS: u64 = 500_000;
const SYNTH_KEYS: u64 = 10_000;

fn study(streaming: bool) -> StudyConfig {
    StudyConfig {
        seed: 7,
        scale: 0.03,
        streaming: streaming.then(SketchConfig::default),
        ..StudyConfig::test_scale()
    }
}

fn top20(streaming: bool) -> (Vec<RankedService>, usize, Option<(u64, f64)>) {
    let run = Pipeline::new(study(streaming)).run(
        &[StageId::Popularity],
        ExecMode::parallel().with_wave_threads(2),
    );
    assert!(
        run.timings.degraded.is_empty(),
        "popularity run degraded: {:?}",
        run.timings.degraded
    );
    let pop = run.artifacts.popularity();
    let churn_and_hll = pop.sketch.as_ref().map(|s| (s.topk_churn, s.hll_estimate));
    (
        pop.ranking.top(20).to_vec(),
        pop.resolution.unique_desc_ids,
        churn_and_hll,
    )
}

/// Synthetic skewed stream: ~`SYNTH_EVENTS` events over `SYNTH_KEYS`
/// keys (rank r gets weight 1/(r+1)), fed through all three sketches.
/// Returns (events, events/sec, cms overestimate-only held).
fn synthetic_ingest() -> (u64, f64, bool) {
    let cfg = SketchConfig::default();
    let mut cms = CountMinSketch::new(cfg.cms_width, cfg.cms_depth, 7);
    let mut topk: SpaceSaving<u64> = SpaceSaving::new(cfg.topk_capacity);
    let mut hll = HyperLogLog::new(cfg.hll_precision, 7);
    let mut truth: HashMap<u64, u64> = HashMap::new();
    // Deterministic key schedule: two draws, keep the smaller rank —
    // a cheap heavy-tail without floating-point zipf sampling.
    let mut keys = Vec::with_capacity(SYNTH_EVENTS as usize);
    for i in 0..SYNTH_EVENTS {
        let a = mix2(7, i) % SYNTH_KEYS;
        let b = mix2(11, i) % SYNTH_KEYS;
        keys.push(mix2(13, a.min(b)));
    }
    let started = Instant::now();
    for &key in &keys {
        cms.add(key, 1);
        topk.offer(key, 1);
        hll.insert(key);
    }
    let secs = started.elapsed().as_secs_f64();
    for &key in &keys {
        *truth.entry(key).or_insert(0) += 1;
    }
    let overestimate_ok = truth.iter().all(|(&k, &n)| cms.estimate(k) >= n);
    (
        SYNTH_EVENTS,
        SYNTH_EVENTS as f64 / secs.max(1e-9),
        overestimate_ok,
    )
}

fn main() {
    eprintln!("[bench_sketch] exact popularity run at scale 0.03…");
    let (exact, exact_unique, none) = top20(false);
    assert!(none.is_none(), "exact run grew a sketch");
    eprintln!("[bench_sketch] streaming popularity run at scale 0.03…");
    let (streamed, hll_unique, sketch) = top20(true);
    let (churn, hll_estimate) = sketch.expect("streaming run reports sketch state");

    let rank_match = exact.len() == streamed.len()
        && exact
            .iter()
            .zip(&streamed)
            .all(|(a, b)| a.rank == b.rank && a.onion == b.onion && a.requests == b.requests);
    if !rank_match {
        eprintln!("[bench_sketch] FAIL: streaming top-20 diverged from the exact ranking");
        eprintln!("  exact:     {exact:?}");
        eprintln!("  streaming: {streamed:?}");
        std::process::exit(2);
    }
    let hll_error_pct = 100.0 * (hll_estimate - exact_unique as f64).abs() / exact_unique as f64;

    let (events, events_per_sec, overestimate_ok) = synthetic_ingest();

    let mut json = String::from("{\n  \"scale\": 0.03,\n  \"seed\": 7,\n");
    json.push_str(&format!(
        "  \"top20_rank_match\": {},\n",
        u8::from(rank_match)
    ));
    json.push_str(&format!("  \"top20_rows\": {},\n", exact.len()));
    json.push_str(&format!("  \"topk_churn\": {churn},\n"));
    json.push_str(&format!("  \"unique_ids_exact\": {exact_unique},\n"));
    json.push_str(&format!("  \"unique_ids_hll\": {hll_unique},\n"));
    json.push_str(&format!("  \"hll_error_pct\": {hll_error_pct:.3},\n"));
    json.push_str(&format!(
        "  \"cms_overestimate_ok\": {},\n",
        u8::from(overestimate_ok)
    ));
    json.push_str(&format!("  \"synth_events\": {events},\n"));
    json.push_str(&format!("  \"events_per_sec\": {events_per_sec:.0}\n}}\n"));
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/bench_sketch.json", &json).expect("write results/bench_sketch.json");

    println!(
        "sketch differential: top-20 ranks identical ({} rows, {churn} evictions); \
         hll {hll_unique} vs exact {exact_unique} ids ({hll_error_pct:.2}% err); \
         cms overestimate-only {}; synthetic ingest {:.2}M events/s",
        exact.len(),
        if overestimate_ok { "held" } else { "VIOLATED" },
        events_per_sec / 1e6
    );
}

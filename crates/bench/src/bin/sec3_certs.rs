//! E3 — Regenerates the Sec. III HTTPS certificate survey.

use hs_landscape::report;
use hs_landscape::StageId;

fn main() {
    let run = hs_bench::run_bench_stages(&[StageId::Certs]);
    println!("{}", report::render_certs(run.artifacts.certs()));
    println!("Paper reference (scale 1.0): 1225 self-signed CN-mismatch; 1168 with TorHost CN esjqyk2khizsy43i.onion; 34 clearnet-DNS CNs (deanonymising)");
}

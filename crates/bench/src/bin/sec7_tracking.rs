//! E12 — Regenerates the Sec. VII tracking-detection findings on the
//! three-year Silk Road consensus history.

use hs_landscape::hs_tracking::{
    scenario, ConsensusArchive, DetectorConfig, HistoryConfig, TrackingDetector,
};
use hs_landscape::report;
use hs_landscape::tor_sim::clock::SimTime;
use hs_landscape::{StudyReport, TrackingReport};

fn main() {
    eprintln!("[hs-bench] generating 3-year consensus archive…");
    let mut archive = ConsensusArchive::generate(&HistoryConfig::default());
    scenario::inject_all(&mut archive, scenario::silkroad());
    let detector = TrackingDetector::new(DetectorConfig::default());
    let years = [
        ("year 1 (Feb–Dec 2011)", (2011, 2, 1), (2011, 12, 31)),
        ("year 2 (2012)", (2012, 1, 1), (2012, 12, 31)),
        ("year 3 (Jan–Oct 2013)", (2013, 1, 1), (2013, 10, 31)),
    ]
    .into_iter()
    .map(|(label, s, e)| {
        (
            label.to_owned(),
            detector.analyse(
                &archive,
                scenario::silkroad(),
                SimTime::from_ymd(s.0, s.1, s.2),
                SimTime::from_ymd(e.0, e.1, e.2),
            ),
        )
    })
    .collect();
    let tracking = TrackingReport { years };
    println!("{}", report::render_tracking(&tracking));
    println!("Paper reference: year 1 no clear tracking (one flag-timing oddity); year 2 the authors' own relays (ratio >100, repeated fingerprint changes); year 3 two campaigns — May 21–Jun 3 set at ratio >10k holding 1/6 slots, and the Aug 31 six-relay/3-IP full takeover");
    let _ = std::marker::PhantomData::<StudyReport>;
}

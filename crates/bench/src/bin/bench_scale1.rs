//! The scale-1.0 benchmark gate: runs the sim prefix (setup + harvest)
//! of the paper-scale study twice — once at 1 mutate/measurement
//! thread, once at the machine's worker budget — and writes
//! `results/bench_scale1.json`.
//!
//! Two properties are checked here and diffed against the committed
//! `results/bench_scale1_baseline.json` by
//! `scripts_run_experiments.sh scale1`:
//!
//! * **determinism** — every counter (descriptors harvested, requests
//!   logged, hot-path quartet) is byte-identical across thread counts
//!   and across machines; any drift is a regression;
//! * **budget** — the threaded wall-clock must stay under the
//!   baseline's committed `budget_ms` (generous, so only a real
//!   performance regression trips it).

use std::time::Instant;

use hs_landscape::pipeline::{ExecMode, Pipeline, PipelineRun, StageId};
use hs_landscape::StudyConfig;

/// Every deterministic observable the gate pins, as stable JSON lines.
fn counters(run: &PipelineRun) -> Vec<(&'static str, u64)> {
    let harvest = run.artifacts.harvest();
    vec![
        ("onions", harvest.onion_count() as u64),
        ("requests", harvest.requests.len() as u64),
        ("slot_hour_rows", harvest.slot_hours.len() as u64),
        ("waves", u64::from(harvest.waves)),
        ("hours", harvest.hours),
        ("sha1_digests", run.timings.counter_total("sha1_digests")),
        (
            "desc_cache_hits",
            run.timings.counter_total("desc_cache_hits"),
        ),
        (
            "desc_cache_misses",
            run.timings.counter_total("desc_cache_misses"),
        ),
        ("fetches", run.timings.counter_total("fetches")),
    ]
}

fn run_at(threads: usize) -> (PipelineRun, f64) {
    eprintln!("[bench_scale1] setup+harvest at scale 1.0, {threads} thread(s)…");
    let started = Instant::now();
    let run = Pipeline::new(StudyConfig::scale_one()).run(
        &[StageId::Harvest],
        ExecMode::parallel().with_wave_threads(threads),
    );
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    assert!(
        run.timings.degraded.is_empty(),
        "scale-1.0 run degraded: {:?}",
        run.timings.degraded
    );
    (run, wall_ms)
}

fn main() {
    let threads_n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let (r1, wall_t1) = run_at(1);
    let (rn, wall_tn) = run_at(threads_n);

    let c1 = counters(&r1);
    let cn = counters(&rn);
    if c1 != cn {
        eprintln!("[bench_scale1] FAIL: counters diverged across thread counts");
        eprintln!("  1 thread:  {c1:?}");
        eprintln!("  {threads_n} threads: {cn:?}");
        std::process::exit(2);
    }

    let mut json = String::from("{\n  \"scale\": 1.0,\n  \"relays\": 1400,\n");
    json.push_str("  \"stages\": \"setup+harvest\",\n");
    for (name, value) in &c1 {
        json.push_str(&format!("  \"{name}\": {value},\n"));
    }
    json.push_str(&format!("  \"wall_ms_t1\": {wall_t1:.1},\n"));
    json.push_str(&format!("  \"wall_ms_tn\": {wall_tn:.1},\n"));
    json.push_str(&format!("  \"threads_n\": {threads_n},\n"));
    json.push_str(&format!("  \"speedup\": {:.2}\n}}\n", wall_t1 / wall_tn));
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/bench_scale1.json", &json).expect("write results/bench_scale1.json");

    println!(
        "scale-1.0 setup+harvest: {} onions, {} requests; {:.0}ms @1 thread, \
         {:.0}ms @{} threads ({:.2}x); counters identical across thread counts",
        c1[0].1,
        c1[1].1,
        wall_t1,
        wall_tn,
        threads_n,
        wall_t1 / wall_tn
    );
}

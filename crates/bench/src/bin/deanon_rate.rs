//! E11 — Client-deanonymisation catch rate: measured vs analytic, as
//! a function of the attacker's guard bandwidth.

use hs_landscape::hs_deanon::{DeanonAttack, DeanonConfig};
use hs_landscape::onion_crypto::OnionAddress;
use hs_landscape::tor_sim::clock::SimTime;
use hs_landscape::tor_sim::network::{FetchOutcome, NetworkBuilder};
use hs_landscape::tor_sim::relay::Ipv4;

fn main() {
    println!("Sec. VI — catch rate vs attacker guard bandwidth");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "guard bw", "expected", "measured", "victims"
    );
    for bw in [500u64, 2_000, 5_000, 15_000] {
        let mut net = NetworkBuilder::new()
            .relays(400)
            .seed(0xe11)
            .start(SimTime::from_ymd(2013, 2, 1))
            .build();
        let target = OnionAddress::from_pubkey(b"deanon rate target");
        net.register_service(target, true);
        net.advance_hours(1);
        let config = DeanonConfig {
            guards: 4,
            guard_bandwidth: bw,
            ..DeanonConfig::default()
        };
        let mut attack = DeanonAttack::deploy(&mut net, target, &config);

        let mut fetches = 0u64;
        let n_clients = 4_000u32;
        for i in 0..n_clients {
            let ip = Ipv4::new(
                1 + (i % 220) as u8,
                (i / 220) as u8,
                (i % 250) as u8,
                1 + (i % 200) as u8,
            );
            let client = net.add_client(ip);
            if net.client_fetch(client, target) == FetchOutcome::Found {
                fetches += 1;
            }
            if i % 1_000 == 0 {
                attack.reposition(&mut net);
            }
        }
        let expected = attack.expected_catch_rate(&net);
        let mut caught: Vec<_> = net
            .take_guard_observations()
            .iter()
            .map(|o| o.client_ip)
            .collect();
        caught.sort();
        caught.dedup();
        let measured = caught.len() as f64 / fetches.max(1) as f64;
        println!(
            "{bw:<12} {:>9.2}% {:>9.2}% {:>10}",
            expected * 100.0,
            measured * 100.0,
            caught.len()
        );
    }
    println!("\nShape check: measured tracks the analytic guard-bandwidth share and grows with attacker bandwidth.");
}

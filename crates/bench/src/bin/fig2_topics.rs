//! E5/E6/E7 — Regenerates the Sec. IV funnel, the language histogram
//! and Fig. 2 (topic distribution).

use hs_landscape::report;
use hs_landscape::StageId;

fn main() {
    let run = hs_bench::run_bench_stages(&[StageId::Crawl]);
    let crawl = run.artifacts.crawl();
    println!("{}", report::render_table1(crawl));
    println!("{}", report::render_funnel_and_languages(crawl));
    println!("{}", report::render_fig2(crawl));
    let (lang_acc, topic_acc) = hs_landscape::hs_content::Crawler::new()
        .evaluate_against_truth(run.artifacts.world(), crawl);
    println!(
        "classifier accuracy vs ground truth: language {:.1}%, topic {:.1}%",
        lang_acc * 100.0,
        topic_acc * 100.0
    );
    println!("Paper reference (scale 1.0): 3050 classified; 84% English; 805 TorHost defaults; Fig. 2: Adult 17, Drugs 15, Politics 9, Counterfeit 8, Weapons 4, FAQs 4, Security 5, Anonymity 8, Hacking 3, Software 7, Art 2, Services 4, Games 1, Science 1, DigLibs 4, Sports 1, Technology 4, Other 3 (%)");
}

//! Ablation: tracking-detector thresholds vs false positives and
//! false negatives.
//!
//! Sweeps the distance-ratio threshold over a clean archive (any
//! tracker found is a false positive) and over an archive with the
//! paper's three campaigns injected (a missed campaign is a false
//! negative). Justifies the default `ratio > 100` + corroboration
//! rule.

use hs_landscape::hs_tracking::{
    scenario, ConsensusArchive, DetectorConfig, HistoryConfig, TrackingDetector,
};
use hs_landscape::tor_sim::clock::SimTime;

fn analyse(archive: &ConsensusArchive, ratio_threshold: f64) -> (usize, bool, bool, bool) {
    let det = TrackingDetector::new(DetectorConfig {
        ratio_threshold,
        ..DetectorConfig::default()
    });
    let full = det.analyse(
        archive,
        scenario::silkroad(),
        SimTime::from_ymd(2011, 2, 1),
        SimTime::from_ymd(2013, 10, 31),
    );
    let trackers = full.trackers();
    let has =
        |pred: &dyn Fn(&str) -> bool| trackers.iter().any(|t| t.nicknames.iter().any(|n| pred(n)));
    let ours = has(&|n: &str| n.starts_with("unnamed"));
    let may = has(&|n: &str| n == "PrivacyRelayX");
    let august = has(&|n: &str| n.starts_with("GlobalObserver"));
    let honest_flagged = trackers
        .iter()
        .filter(|t| {
            t.nicknames
                .iter()
                .all(|n| n.starts_with("relay") || n == "flickerflag")
        })
        .count();
    (honest_flagged, ours, may, august)
}

fn main() {
    eprintln!("[ablation] generating archives…");
    let config = HistoryConfig::default();
    let clean = ConsensusArchive::generate(&config);
    let mut injected = clean.clone();
    scenario::inject_all(&mut injected, scenario::silkroad());

    println!("Detector ablation — ratio threshold sweep (3-year archive)");
    println!(
        "{:<12} {:>18} {:>8} {:>8} {:>8}",
        "threshold", "false-pos (clean)", "ours", "May", "Aug31"
    );
    for threshold in [5.0, 20.0, 100.0, 1_000.0, 50_000.0] {
        let (fp_clean, _, _, _) = analyse(&clean, threshold);
        let (_, ours, may, august) = analyse(&injected, threshold);
        println!(
            "{threshold:<12} {fp_clean:>18} {:>8} {:>8} {:>8}",
            if ours { "found" } else { "MISSED" },
            if may { "found" } else { "MISSED" },
            if august { "found" } else { "MISSED" },
        );
    }
    println!(
        "\nShape: low thresholds admit honest relays that land close by \
         chance; very high thresholds miss the ratio-~150 campaign (ours). \
         The paper's ratio>100-with-corroboration rule finds all three \
         campaigns with no false positives."
    );
}

//! E4 — Regenerates Table I (HTTP/HTTPS access per port).

use hs_landscape::report;
use hs_landscape::StageId;

fn main() {
    let run = hs_bench::run_bench_stages(&[StageId::Crawl]);
    println!("{}", report::render_table1(run.artifacts.crawl()));
    println!("Paper reference (scale 1.0): 80→3741 | 443→1289 | 22→1094 | 8080→4 | other→451 (6579 connected of 7114 open of 8153 attempted)");
}

//! E1/E2 — Regenerates Fig. 1 (open-ports distribution) and the
//! Sec. III scan statistics. `HS_SCALE=1.0` for the paper-scale run.

use hs_landscape::report;
use hs_landscape::StageId;

fn main() {
    let run = hs_bench::run_bench_stages(&[StageId::PortScan]);
    println!("{}", report::render_fig1(run.artifacts.scan()));
    println!("Paper reference (scale 1.0): 55080-Skynet 13854 | 80-http 4027 | 443-https 1366 | 22-ssh 1238 | 11009-TorChat 385 | 4050 138 | 6667-irc 113 | other 886; total 22007 on 24511 addresses; 495 unique ports; coverage 87%");
}

//! Streaming-sketch micro-benchmarks: per-event ingest cost of each
//! sketch alone and of the combined trio the popularity path pays,
//! plus the canonical merge.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sketch::{mix2, CountMinSketch, HyperLogLog, SketchConfig, SpaceSaving};

/// A deterministic heavy-tailed key schedule (rank = min of two
/// uniform draws), matching the shape `bench_sketch` gates on.
fn keys(n: u64) -> Vec<u64> {
    (0..n)
        .map(|i| {
            let a = mix2(7, i) % 10_000;
            let b = mix2(11, i) % 10_000;
            mix2(13, a.min(b))
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let cfg = SketchConfig::default();
    let stream = keys(20_000);
    c.bench_function("cms_add_20k", |b| {
        b.iter(|| {
            let mut cms = CountMinSketch::new(cfg.cms_width, cfg.cms_depth, 7);
            for &k in &stream {
                cms.add(black_box(k), 1);
            }
            cms
        });
    });
    c.bench_function("topk_offer_20k", |b| {
        b.iter(|| {
            let mut topk: SpaceSaving<u64> = SpaceSaving::new(cfg.topk_capacity);
            for &k in &stream {
                topk.offer(black_box(k), 1);
            }
            topk
        });
    });
    c.bench_function("hll_insert_20k", |b| {
        b.iter(|| {
            let mut hll = HyperLogLog::new(cfg.hll_precision, 7);
            for &k in &stream {
                hll.insert(black_box(k));
            }
            hll
        });
    });
    c.bench_function("sketch_trio_20k", |b| {
        b.iter(|| {
            let mut cms = CountMinSketch::new(cfg.cms_width, cfg.cms_depth, 7);
            let mut topk: SpaceSaving<u64> = SpaceSaving::new(cfg.topk_capacity);
            let mut hll = HyperLogLog::new(cfg.hll_precision, 7);
            for &k in &stream {
                cms.add(black_box(k), 1);
                topk.offer(k, 1);
                hll.insert(k);
            }
            (cms, topk, hll)
        });
    });
}

fn bench_merge(c: &mut Criterion) {
    let cfg = SketchConfig::default();
    let stream = keys(20_000);
    let mut a = CountMinSketch::new(cfg.cms_width, cfg.cms_depth, 7);
    let mut b_ = CountMinSketch::new(cfg.cms_width, cfg.cms_depth, 7);
    for (i, &k) in stream.iter().enumerate() {
        if i % 2 == 0 {
            a.add(k, 1);
        } else {
            b_.add(k, 1);
        }
    }
    c.bench_function("cms_merge_16384x4", |b| {
        b.iter(|| {
            let mut m = a.clone();
            m.merge(black_box(&b_));
            m
        });
    });
}

criterion_group!(benches, bench_ingest, bench_merge);
criterion_main!(benches);

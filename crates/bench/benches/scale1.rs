//! Scale-1.0 hot-path benchmarks: the paper-scale network (1,400
//! relays, ~40k hidden services) driving the three mutate-phase
//! pillars — descriptor publication rounds, consensus voting, and
//! churn ticks under the adversarial fault plan.
//!
//! The deterministic counterpart (exact counters + wall budget) lives
//! in the `bench_scale1` binary and its committed baseline
//! `results/bench_scale1_baseline.json`; these benches are for
//! interactive profiling of the same paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hs_landscape::onion_crypto::OnionAddress;
use hs_landscape::tor_sim::clock::SimTime;
use hs_landscape::tor_sim::network::{Network, NetworkBuilder};
use hs_landscape::tor_sim::{Authority, FaultPlan};

const RELAYS: usize = 1_400;
const SERVICES: u32 = 39_824;

fn scale1_net(faults: Option<FaultPlan>) -> Network {
    let mut builder = NetworkBuilder::new()
        .relays(RELAYS)
        .seed(7)
        .start(SimTime::from_ymd(2013, 2, 1));
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    let mut net = builder.build();
    for i in 0..SERVICES {
        net.register_service(OnionAddress::from_pubkey(&i.to_be_bytes()), true);
    }
    // Warm round: every service's descriptor-ID pair lands in the
    // per-period cache, the steady state the long stages run in.
    net.advance_hours(1);
    net
}

fn bench_publish_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale1");
    group.sample_size(10);
    for threads in [1usize, 8] {
        let mut net = scale1_net(None);
        net.set_mutate_threads(threads);
        group.bench_function(format!("publish_round_t{threads}"), |b| {
            b.iter(|| net.advance_hours(1));
        });
    }
    group.finish();
}

fn bench_consensus_vote(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale1");
    group.sample_size(20);
    let net = scale1_net(None);
    let authority = Authority::new();
    let t = net.time();
    group.bench_function("consensus_vote", |b| {
        b.iter(|| authority.vote(black_box(net.relays()), t));
    });
    let pool = hs_landscape::wave::WavePool::new(8);
    group.bench_function("consensus_vote_t8", |b| {
        b.iter(|| authority.vote_pooled(black_box(net.relays()), t, &pool));
    });
    group.finish();
}

fn bench_churn_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale1");
    group.sample_size(10);
    for threads in [1usize, 8] {
        let mut net = scale1_net(Some(FaultPlan::adversarial(7)));
        net.set_mutate_threads(threads);
        group.bench_function(format!("churn_tick_t{threads}"), |b| {
            b.iter(|| net.advance_hours(1));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_publish_round,
    bench_consensus_vote,
    bench_churn_tick
);
criterion_main!(benches);

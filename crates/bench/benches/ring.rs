//! Ring arithmetic and responsible-HSDir lookup benchmarks, plus the
//! Sec. V resolver table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hs_landscape::hs_popularity::Resolver;
use hs_landscape::onion_crypto::{DescriptorId, OnionAddress, Sha1, U160};
use hs_landscape::tor_sim::clock::SimTime;
use hs_landscape::tor_sim::network::NetworkBuilder;

fn bench_u160(c: &mut Criterion) {
    let a = U160::from(Sha1::digest(b"a"));
    let b_ = U160::from(Sha1::digest(b"b"));
    c.bench_function("u160_distance", |b| {
        b.iter(|| black_box(a).distance_to(black_box(b_)));
    });
    c.bench_function("u160_div_u64", |b| {
        b.iter(|| black_box(U160::MAX).div_u64(black_box(1_862)));
    });
}

fn bench_responsible_lookup(c: &mut Criterion) {
    let net = NetworkBuilder::new()
        .relays(1_500)
        .seed(1)
        .start(SimTime::from_ymd(2013, 2, 4))
        .build();
    let consensus = net.consensus();
    let desc = DescriptorId::pair_at(
        OnionAddress::from_pubkey(b"lookup bench"),
        net.time().unix(),
    )[0];
    c.bench_function("responsible_hsdirs_1500", |b| {
        b.iter(|| consensus.responsible_hsdirs(black_box(desc)));
    });
}

fn bench_resolver(c: &mut Criterion) {
    let onions: Vec<OnionAddress> = (0..2_000u32)
        .map(|i| OnionAddress::from_pubkey(&i.to_be_bytes()))
        .collect();
    let start = SimTime::from_ymd(2013, 1, 28);
    let end = SimTime::from_ymd(2013, 2, 8);
    c.bench_function("resolver_build_2000x12d", |b| {
        b.iter(|| Resolver::build(black_box(&onions), start, end));
    });
    let resolver = Resolver::build(&onions, start, end);
    let id = DescriptorId::pair_at(onions[500], SimTime::from_ymd(2013, 2, 4).unix())[0];
    c.bench_function("resolver_lookup", |b| {
        b.iter(|| resolver.resolve(black_box(id)));
    });
}

criterion_group!(
    benches,
    bench_u160,
    bench_responsible_lookup,
    bench_resolver
);
criterion_main!(benches);

//! Hot-path benchmarks: SHA-1, base32 and the v2 identifier
//! derivations every pipeline leans on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use hs_landscape::onion_crypto::{
    base32,
    descriptor::{DescriptorId, Replica, TimePeriod},
    sha1::Sha1,
    OnionAddress,
};

fn bench_sha1(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha1");
    for size in [64usize, 1_024, 65_536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Sha1::digest(black_box(data)));
        });
    }
    group.finish();
}

fn bench_base32(c: &mut Criterion) {
    let data = [0x5au8; 10];
    c.bench_function("base32_encode_onion", |b| {
        b.iter(|| base32::encode(black_box(&data)));
    });
    let label = base32::encode(data);
    c.bench_function("base32_decode_onion", |b| {
        b.iter(|| base32::decode(black_box(&label)).unwrap());
    });
}

fn bench_descriptor_ids(c: &mut Criterion) {
    let onion = OnionAddress::from_pubkey(b"benchmark service");
    let now = 1_359_936_000u64;
    c.bench_function("descriptor_id_pair", |b| {
        b.iter(|| DescriptorId::pair_at(black_box(onion), black_box(now)));
    });
    let perm = onion.permanent_id();
    let period = TimePeriod::at(now, perm);
    c.bench_function("descriptor_id_single", |b| {
        b.iter(|| DescriptorId::compute(black_box(perm), period, Replica::new(0)));
    });
    c.bench_function("onion_from_pubkey", |b| {
        b.iter(|| OnionAddress::from_pubkey(black_box(b"some public key bytes here")));
    });
}

criterion_group!(benches, bench_sha1, bench_base32, bench_descriptor_ids);
criterion_main!(benches);

//! Experiment-stage benchmarks: each paper pipeline stage at reduced
//! scale, so regressions in any stage show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};

use hs_landscape::hs_content::Crawler;
use hs_landscape::hs_harvest::{FleetConfig, HarvestConfig, Harvester};
use hs_landscape::hs_portscan::{ScanConfig, Scanner};
use hs_landscape::hs_tracking::{
    scenario, ConsensusArchive, DetectorConfig, HistoryConfig, TrackingDetector,
};
use hs_landscape::hs_world::{service::SKYNET_PORT, World, WorldConfig};
use hs_landscape::onion_crypto::OnionAddress;
use hs_landscape::tor_sim::clock::SimTime;
use hs_landscape::tor_sim::network::NetworkBuilder;

fn bench_world_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("stages");
    group.sample_size(10);
    group.bench_function("world_generate_2pct", |b| {
        b.iter(|| {
            World::generate(WorldConfig {
                seed: 1,
                scale: 0.02,
            })
        });
    });
    group.finish();
}

fn bench_harvest_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("stages");
    group.sample_size(10);
    group.bench_function("harvest_sweep_small", |b| {
        b.iter_with_setup(
            || {
                let mut net = NetworkBuilder::new()
                    .relays(80)
                    .seed(2)
                    .start(SimTime::from_ymd(2013, 2, 1))
                    .build();
                for i in 0..100u32 {
                    net.register_service(OnionAddress::from_pubkey(&i.to_be_bytes()), true);
                }
                net.advance_hours(1);
                net
            },
            |mut net| {
                let config = HarvestConfig {
                    fleet: FleetConfig {
                        ips: 4,
                        relays_per_ip: 6,
                        bandwidth: 300,
                    },
                    warmup_hours: 26,
                    rotation_hours: 1,
                };
                Harvester::new(config)
                    .run(&mut net, |_| {})
                    .expect("bench fleet config is valid")
            },
        );
    });
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("stages");
    group.sample_size(10);
    let world = World::generate(WorldConfig {
        seed: 3,
        scale: 0.005,
    });
    let targets: Vec<OnionAddress> = world.services().iter().map(|s| s.onion).collect();
    group.bench_function("portscan_half_pct", |b| {
        b.iter_with_setup(
            || {
                let mut net = NetworkBuilder::new()
                    .relays(80)
                    .seed(3)
                    .start(SimTime::from_ymd(2013, 2, 13))
                    .build();
                world.register_all(&mut net);
                net.advance_hours(1);
                net
            },
            |mut net| {
                Scanner::new(ScanConfig {
                    days: 2,
                    ..ScanConfig::default()
                })
                .run(&mut net, &world, &targets)
            },
        );
    });
    group.finish();
}

fn bench_crawl(c: &mut Criterion) {
    let mut group = c.benchmark_group("stages");
    group.sample_size(10);
    let world = World::generate(WorldConfig {
        seed: 4,
        scale: 0.02,
    });
    let destinations: Vec<(OnionAddress, u16)> = world
        .services()
        .iter()
        .flat_map(|s| s.open_ports().into_iter().map(move |p| (s.onion, p)))
        .filter(|&(_, p)| p != SKYNET_PORT)
        .collect();
    let crawler = Crawler::new();
    group.bench_function("crawl_2pct", |b| {
        b.iter(|| crawler.run(&world, &destinations));
    });
    group.finish();
}

fn bench_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("stages");
    group.sample_size(10);
    let mut archive = ConsensusArchive::generate(&HistoryConfig {
        start: SimTime::from_ymd(2013, 5, 1),
        end: SimTime::from_ymd(2013, 6, 30),
        hsdirs_at_start: 300,
        hsdirs_at_end: 320,
        seed: 5,
    });
    scenario::inject_may_campaign(&mut archive, scenario::silkroad());
    let detector = TrackingDetector::new(DetectorConfig::default());
    group.bench_function("tracking_detect_60d", |b| {
        b.iter(|| {
            detector.analyse(
                &archive,
                scenario::silkroad(),
                SimTime::from_ymd(2013, 5, 1),
                SimTime::from_ymd(2013, 6, 30),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_world_generation,
    bench_harvest_sweep,
    bench_scan,
    bench_crawl,
    bench_tracking
);
criterion_main!(benches);

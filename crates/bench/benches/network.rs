//! Network-simulation benchmarks: consensus voting, descriptor
//! publication rounds and client fetches.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hs_landscape::onion_crypto::OnionAddress;
use hs_landscape::tor_sim::clock::SimTime;
use hs_landscape::tor_sim::network::NetworkBuilder;
use hs_landscape::tor_sim::relay::Ipv4;
use hs_landscape::tor_sim::Authority;

fn bench_vote(c: &mut Criterion) {
    let net = NetworkBuilder::new()
        .relays(1_400)
        .seed(7)
        .start(SimTime::from_ymd(2013, 2, 1))
        .build();
    let authority = Authority::new();
    let t = net.time();
    c.bench_function("authority_vote_1400", |b| {
        b.iter(|| authority.vote(black_box(net.relays()), t));
    });
}

fn bench_publish_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("rounds");
    group.sample_size(20);
    group.bench_function("hourly_round_500svc", |b| {
        b.iter_with_setup(
            || {
                let mut net = NetworkBuilder::new()
                    .relays(300)
                    .seed(8)
                    .start(SimTime::from_ymd(2013, 2, 1))
                    .build();
                for i in 0..500u32 {
                    net.register_service(OnionAddress::from_pubkey(&i.to_be_bytes()), true);
                }
                net
            },
            |mut net| net.advance_hours(1),
        );
    });
    group.finish();
}

fn bench_publish_round_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("rounds");
    group.sample_size(20);
    // A persistent network, so after the first round every service's
    // descriptor-ID pair is answered from the per-period cache — the
    // steady state the harvest/scan stages actually run in.
    let mut net = NetworkBuilder::new()
        .relays(300)
        .seed(8)
        .start(SimTime::from_ymd(2013, 2, 1))
        .build();
    for i in 0..500u32 {
        net.register_service(OnionAddress::from_pubkey(&i.to_be_bytes()), true);
    }
    net.advance_hours(1);
    group.bench_function("hourly_round_500svc_warm", |b| {
        b.iter(|| net.advance_hours(1));
    });
    group.finish();
}

fn bench_client_fetch(c: &mut Criterion) {
    let mut net = NetworkBuilder::new()
        .relays(300)
        .seed(9)
        .start(SimTime::from_ymd(2013, 2, 1))
        .build();
    let onion = OnionAddress::from_pubkey(b"bench fetch");
    net.register_service(onion, true);
    net.advance_hours(1);
    let client = net.add_client(Ipv4::new(1, 2, 3, 4));
    c.bench_function("client_fetch", |b| {
        b.iter(|| net.client_fetch(black_box(client), black_box(onion)));
    });
}

criterion_group!(
    benches,
    bench_vote,
    bench_publish_round,
    bench_publish_round_warm,
    bench_client_fetch
);
criterion_main!(benches);

//! Classifier benchmarks: language detection, topic classification,
//! HTML stripping.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hs_landscape::hs_content::{html, LanguageDetector, TopicClassifier};
use hs_landscape::hs_world::service::sample_words;
use hs_landscape::hs_world::{Language, Topic};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_langdetect(c: &mut Criterion) {
    let det = LanguageDetector::train_default();
    let mut rng = StdRng::seed_from_u64(1);
    let page = sample_words(Language::German, Topic::Politics, 200, &mut rng).join(" ");
    c.bench_function("langdetect_200w", |b| {
        b.iter(|| det.detect(black_box(&page)));
    });
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("langdetect_train", |b| {
        b.iter(LanguageDetector::train_default);
    });
    group.finish();
}

fn bench_topics(c: &mut Criterion) {
    let clf = TopicClassifier::train_default();
    let mut rng = StdRng::seed_from_u64(2);
    let page = sample_words(Language::English, Topic::Drugs, 200, &mut rng).join(" ");
    c.bench_function("topic_classify_200w", |b| {
        b.iter(|| clf.classify(black_box(&page)));
    });
}

fn bench_html(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let words = sample_words(Language::English, Topic::Adult, 300, &mut rng).join(" ");
    let page =
        format!("<html><head><title>x</title></head><body><p>{words}</p><!-- c --></body></html>");
    c.bench_function("html_strip_300w", |b| {
        b.iter(|| html::strip_tags(black_box(&page)));
    });
    let text = html::strip_tags(&page);
    c.bench_function("word_count_300w", |b| {
        b.iter(|| html::word_count(black_box(&text)));
    });
}

criterion_group!(benches, bench_langdetect, bench_topics, bench_html);
criterion_main!(benches);

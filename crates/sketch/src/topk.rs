//! Space-saving top-k heavy hitters (Metwally et al.).
//!
//! Tracks at most `capacity` keys with a `(count, error)` pair each.
//! While distinct keys fit in the capacity, counts are exact and
//! errors zero. Once full, offering a new key evicts the minimum
//! tracked entry — ties broken by key order so eviction is
//! deterministic — and the newcomer inherits the evicted count as its
//! `error` (the classic overestimate). The structure guarantees:
//!
//! - **Guaranteed top-k:** any key whose true count exceeds the
//!   eviction floor ([`SpaceSaving::min_count`]) is present.
//! - **Bounds:** for a tracked key, `count − error ≤ true ≤ count`.
//!
//! Exports and merges are canonical — sorted by `(count desc, key
//! asc)` — so downstream consumers see the same order regardless of
//! hash-map iteration order or how shards were cut.

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

/// One exported heavy-hitter entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopEntry<K> {
    /// The tracked key.
    pub key: K,
    /// Estimated count (upper bound on the true count).
    pub count: u64,
    /// Maximum overestimate: `count − error` lower-bounds the true
    /// count. Zero while the structure has never evicted this slot.
    pub error: u64,
}

/// The summary. `K` must be `Copy + Ord` so eviction ties and exports
/// are deterministic without consulting hash order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpaceSaving<K: Eq + Hash> {
    capacity: usize,
    counts: HashMap<K, (u64, u64)>,
    order: BTreeSet<(u64, K)>,
    evictions: u64,
}

impl<K: Copy + Ord + Hash> SpaceSaving<K> {
    /// A summary tracking at most `capacity` keys. Zero behaves as
    /// one.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpaceSaving {
            capacity,
            counts: HashMap::with_capacity(capacity),
            order: BTreeSet::new(),
            evictions: 0,
        }
    }

    /// Offers `by` occurrences of `key`.
    pub fn offer(&mut self, key: K, by: u64) {
        if by == 0 {
            return;
        }
        if let Some(entry) = self.counts.get_mut(&key) {
            self.order.remove(&(entry.0, key));
            entry.0 = entry.0.saturating_add(by);
            self.order.insert((entry.0, key));
        } else if self.counts.len() < self.capacity {
            self.counts.insert(key, (by, 0));
            self.order.insert((by, key));
        } else if let Some(&(min_count, min_key)) = self.order.iter().next() {
            self.order.remove(&(min_count, min_key));
            self.counts.remove(&min_key);
            let count = min_count.saturating_add(by);
            self.counts.insert(key, (count, min_count));
            self.order.insert((count, key));
            self.evictions += 1;
        }
    }

    /// The tracked entry for `key`, if present.
    pub fn query(&self, key: K) -> Option<TopEntry<K>> {
        self.counts
            .get(&key)
            .map(|&(count, error)| TopEntry { key, count, error })
    }

    /// The eviction floor: every key with a true count above this is
    /// guaranteed tracked. Zero while the summary is not yet full.
    pub fn min_count(&self) -> u64 {
        if self.counts.len() < self.capacity {
            return 0;
        }
        self.order.iter().next().map_or(0, |&(c, _)| c)
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether nothing is tracked yet.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many evictions have happened (top-k churn). Zero means
    /// every tracked count is exact.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Bytes held by the counter slots (excludes map/set node
    /// overhead).
    pub fn memory_bytes(&self) -> usize {
        self.capacity * (std::mem::size_of::<K>() + 16)
    }

    /// Canonical export: entries sorted by `(count desc, key asc)`.
    pub fn entries(&self) -> Vec<TopEntry<K>> {
        let mut out: Vec<TopEntry<K>> = self
            .counts
            .iter()
            .map(|(&key, &(count, error))| TopEntry { key, count, error })
            .collect();
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        out
    }

    /// Canonical merge (Agarwal et al., *Mergeable Summaries*): keys
    /// missing from one side are charged that side's eviction floor as
    /// both count and error, per-key counts and errors add, and the
    /// top `capacity` entries by `(count desc, key asc)` survive.
    /// Panics on a capacity mismatch.
    pub fn merge(&mut self, other: &SpaceSaving<K>) {
        assert_eq!(
            self.capacity, other.capacity,
            "space-saving merge requires identical capacity"
        );
        let floor_a = self.min_count();
        let floor_b = other.min_count();
        let mut merged: HashMap<K, (u64, u64)> = HashMap::new();
        for (&key, &(count, error)) in &self.counts {
            let (bc, be) = other
                .counts
                .get(&key)
                .copied()
                .unwrap_or((floor_b, floor_b));
            merged.insert(key, (count.saturating_add(bc), error.saturating_add(be)));
        }
        for (&key, &(count, error)) in &other.counts {
            merged
                .entry(key)
                .or_insert((count.saturating_add(floor_a), error.saturating_add(floor_a)));
        }
        let mut all: Vec<(K, (u64, u64))> = merged.into_iter().collect();
        all.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(&b.0)));
        let dropped = all.len().saturating_sub(self.capacity) as u64;
        all.truncate(self.capacity);
        self.counts.clear();
        self.order.clear();
        for (key, (count, error)) in all {
            self.counts.insert(key, (count, error));
            self.order.insert((count, key));
        }
        self.evictions = self
            .evictions
            .saturating_add(other.evictions)
            .saturating_add(dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut ss = SpaceSaving::new(8);
        for (k, n) in [(1u64, 5u64), (2, 3), (3, 9)] {
            ss.offer(k, n);
        }
        assert_eq!(ss.len(), 3);
        assert_eq!(ss.evictions(), 0);
        assert_eq!(ss.min_count(), 0);
        let top = ss.entries();
        assert_eq!(
            top[0],
            TopEntry {
                key: 3,
                count: 9,
                error: 0
            }
        );
        assert_eq!(
            top[1],
            TopEntry {
                key: 1,
                count: 5,
                error: 0
            }
        );
        assert_eq!(
            top[2],
            TopEntry {
                key: 2,
                count: 3,
                error: 0
            }
        );
    }

    #[test]
    fn eviction_charges_floor_as_error() {
        let mut ss = SpaceSaving::new(2);
        ss.offer(1, 10);
        ss.offer(2, 4);
        ss.offer(3, 1); // evicts key 2 (count 4): 3 enters at 5, error 4
        assert_eq!(ss.evictions(), 1);
        assert_eq!(ss.query(2), None);
        assert_eq!(
            ss.query(3),
            Some(TopEntry {
                key: 3,
                count: 5,
                error: 4
            })
        );
        // Bounds: count − error = 1 = true count; count = 5 ≥ true.
    }

    #[test]
    fn eviction_ties_break_by_key_order() {
        let mut ss = SpaceSaving::new(2);
        ss.offer(7, 3);
        ss.offer(4, 3);
        ss.offer(9, 1); // tie at count 3 → key 4 (smaller) is evicted
        assert_eq!(ss.query(4), None);
        assert!(ss.query(7).is_some());
    }

    #[test]
    fn merge_of_disjoint_exact_halves_is_exact() {
        let mut a = SpaceSaving::new(8);
        let mut b = SpaceSaving::new(8);
        a.offer(1u64, 7);
        a.offer(2, 2);
        b.offer(3, 5);
        b.offer(4, 1);
        a.merge(&b);
        // Neither side was full, so floors are 0 and counts stay exact.
        assert_eq!(
            a.query(1),
            Some(TopEntry {
                key: 1,
                count: 7,
                error: 0
            })
        );
        assert_eq!(
            a.query(3),
            Some(TopEntry {
                key: 3,
                count: 5,
                error: 0
            })
        );
        assert_eq!(a.evictions(), 0);
    }

    #[test]
    fn merge_truncates_to_capacity_deterministically() {
        let mut a = SpaceSaving::new(2);
        let mut b = SpaceSaving::new(2);
        a.offer(1u64, 9);
        a.offer(2, 8);
        b.offer(3, 7);
        b.offer(4, 6);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        let keys: Vec<u64> = a.entries().iter().map(|e| e.key).collect();
        // Both sides full: floors are 8 and 6. Merged counts:
        // 1→9+6=15, 2→8+6=14, 3→7+8=15, 4→6+8=14; ties by key asc.
        assert_eq!(keys, vec![1, 3]);
        assert_eq!(a.evictions(), 2);
    }
}

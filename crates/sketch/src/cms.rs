//! Conservative-update count-min sketch.
//!
//! A `depth × width` grid of u64 counters. Each key hashes to one cell
//! per row; the estimate is the minimum over its cells. The
//! *conservative update* rule only raises the cells that need raising
//! (every cell of the key is lifted to `estimate + increment`, never
//! beyond), which keeps the classic overestimate-only invariant while
//! roughly halving the error of the plain update in practice.
//!
//! Invariants this module maintains (and the proptests pin):
//!
//! - **Overestimate-only:** after any sequence of `add`s, every row
//!   cell of a key is ≥ the key's true count, so `estimate(k) ≥
//!   true(k)`. Element-wise `merge` preserves this: each summed cell
//!   is ≥ the per-stream true counts, so the merged minimum is ≥ the
//!   combined true count.
//! - **ε·N bound:** `estimate(k) − true(k) ≤ ε·N` with probability
//!   `1 − e^−depth` per query, where ε = e / width and N is the total
//!   inserted weight.

use crate::hash::mix2;

/// The sketch. Width is rounded up to a power of two so the row index
/// is a mask, not a modulo.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    seed: u64,
    rows: Vec<u64>,
    weight: u64,
}

impl CountMinSketch {
    /// A sketch with `width` columns (rounded up to a power of two)
    /// and `depth` rows, hashing with `seed`. Zero dimensions behave
    /// as one.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        let width = width.max(1).next_power_of_two();
        let depth = depth.max(1);
        CountMinSketch {
            width,
            depth,
            seed,
            rows: vec![0; width * depth],
            weight: 0,
        }
    }

    /// Column index of `key` in `row`.
    fn col(&self, row: usize, key: u64) -> usize {
        (mix2(mix2(self.seed, row as u64 + 1), key) as usize) & (self.width - 1)
    }

    /// Adds `by` occurrences of `key` using the conservative-update
    /// rule.
    pub fn add(&mut self, key: u64, by: u64) {
        if by == 0 {
            return;
        }
        let target = self.estimate(key).saturating_add(by);
        for row in 0..self.depth {
            let col = self.col(row, key);
            let cell = &mut self.rows[row * self.width + col];
            if *cell < target {
                *cell = target;
            }
        }
        self.weight = self.weight.saturating_add(by);
    }

    /// The frequency estimate for `key`: minimum over its cells.
    /// Never underestimates the true count.
    pub fn estimate(&self, key: u64) -> u64 {
        let mut est = u64::MAX;
        for row in 0..self.depth {
            let col = self.col(row, key);
            est = est.min(self.rows[row * self.width + col]);
        }
        est
    }

    /// Total weight inserted so far (the N of the ε·N bound).
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// The per-query additive error bound factor ε = e / width.
    pub fn epsilon(&self) -> f64 {
        std::f64::consts::E / self.width as f64
    }

    /// Sketch width (columns per row, a power of two).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sketch depth (rows).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Bytes held by the counter grid.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * 8
    }

    /// Canonical merge: element-wise saturating addition of another
    /// sketch with identical dimensions and seed. Preserves the
    /// overestimate-only invariant (see module docs). Panics on a
    /// dimension or seed mismatch — merging differently-hashed
    /// sketches is meaningless.
    pub fn merge(&mut self, other: &CountMinSketch) {
        assert_eq!(
            (self.width, self.depth, self.seed),
            (other.width, other.depth, other.seed),
            "count-min merge requires identical dimensions and seed"
        );
        for (cell, &theirs) in self.rows.iter_mut().zip(&other.rows) {
            *cell = cell.saturating_add(theirs);
        }
        self.weight = self.weight.saturating_add(other.weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exact_when_no_collisions_possible() {
        let mut cms = CountMinSketch::new(1024, 4, 7);
        cms.add(1, 5);
        cms.add(2, 3);
        cms.add(1, 2);
        assert_eq!(cms.estimate(1), 7);
        assert_eq!(cms.estimate(2), 3);
        assert_eq!(cms.weight(), 10);
    }

    #[test]
    fn zero_weight_add_is_a_noop() {
        let mut cms = CountMinSketch::new(64, 2, 1);
        cms.add(9, 0);
        assert_eq!(cms, CountMinSketch::new(64, 2, 1));
    }

    #[test]
    fn width_rounds_up_to_power_of_two() {
        let cms = CountMinSketch::new(1000, 3, 0);
        assert_eq!(cms.width(), 1024);
        assert_eq!(cms.depth(), 3);
        assert_eq!(cms.memory_bytes(), 1024 * 3 * 8);
    }

    #[test]
    fn merge_matches_interleaved_totals_as_upper_bound() {
        let seed = 42;
        let mut a = CountMinSketch::new(256, 4, seed);
        let mut b = CountMinSketch::new(256, 4, seed);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..500u64 {
            let key = i % 37;
            if i % 2 == 0 {
                a.add(key, 1);
            } else {
                b.add(key, 1);
            }
            *truth.entry(key).or_insert(0) += 1;
        }
        a.merge(&b);
        assert_eq!(a.weight(), 500);
        for (&k, &t) in &truth {
            assert!(a.estimate(k) >= t, "key {k}: {} < {t}", a.estimate(k));
        }
    }

    #[test]
    #[should_panic(expected = "identical dimensions")]
    fn merge_rejects_mismatched_seed() {
        let mut a = CountMinSketch::new(64, 2, 1);
        let b = CountMinSketch::new(64, 2, 2);
        a.merge(&b);
    }
}

//! Seeded SplitMix64 hashing.
//!
//! Local copies of the `wave` crate's `mix`/`mix2` finalizer so this
//! crate stays dependency-free. The constants are the canonical
//! SplitMix64 ones; the pair must stay bit-identical to `wave::mix` /
//! `wave::mix2` — the wave-merge invariance tests pin that.

/// The SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
pub fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Folds two keys into one seed: `mix(mix(a) ^ b)`. Order-sensitive by
/// design — `mix2(a, b) != mix2(b, a)` in general.
pub fn mix2(a: u64, b: u64) -> u64 {
    mix(mix(a) ^ b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_a_bijection_probe() {
        // Distinct inputs keep distinct outputs over a sample.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix(i)));
        }
    }

    #[test]
    fn mix2_is_order_sensitive() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
    }
}

//! Bounded-memory streaming sketches for popularity counting.
//!
//! The paper's popularity measurement (Sec. V) counts descriptor
//! requests — over a million per two-hour window at 2013 scale. This
//! crate provides the three classic sketches that turn that stream
//! into O(sketch size) state instead of O(requests) event storage:
//!
//! - [`CountMinSketch`] — per-key frequency estimates with the
//!   *conservative update* rule: estimates never underestimate and the
//!   additive error is bounded by ε·N (ε = e / width) with probability
//!   1 − e^−depth per query;
//! - [`SpaceSaving`] — Metwally-style top-k heavy hitters with the
//!   guaranteed-top-k property: any key whose true count exceeds the
//!   summary's eviction floor is present, and `count − error` is a
//!   lower bound on its true count;
//! - [`HyperLogLog`] — distinct-count estimation (unique descriptor
//!   IDs) in `2^precision` bytes with ~1.04/√m relative error.
//!
//! # Determinism and merging
//!
//! All hashing is seeded SplitMix64 ([`mix`]/[`mix2`], the same
//! finalizer the `wave` crate uses for per-unit RNG keys) — no
//! `RandomState`, no per-process salt. Two sketches built with the
//! same dimensions and seed hash identically, so the canonical
//! [`CountMinSketch::merge`], [`SpaceSaving::merge`] and
//! [`HyperLogLog::merge`] operations are well-defined and
//! deterministic: per-shard sketches produced by a measurement wave
//! combine to byte-identical state at any thread count, provided the
//! merge order follows the wave's canonical input order (the same
//! discipline every `WaveEffect` merge in this workspace follows).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cms;
pub mod hash;
pub mod hll;
pub mod topk;

pub use cms::CountMinSketch;
pub use hash::{mix, mix2};
pub use hll::HyperLogLog;
pub use topk::{SpaceSaving, TopEntry};

/// Dimensioning for the full sketch set used by the streaming
/// popularity mode. The defaults are sized for scale-1.0 runs of the
/// reproduction (≈40k services, a few hundred thousand distinct
/// descriptor IDs per window) while staying under a megabyte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SketchConfig {
    /// Count-min width (columns per row; rounded up to a power of
    /// two). ε = e / width.
    pub cms_width: usize,
    /// Count-min depth (independent rows). δ = e^−depth.
    pub cms_depth: usize,
    /// Space-saving capacity (tracked heavy hitters). While the
    /// distinct-key count stays at or below this, counts are exact.
    pub topk_capacity: usize,
    /// HyperLogLog precision p: 2^p registers, ~1.04/√(2^p) relative
    /// error. Must be in `4..=18`.
    pub hll_precision: u8,
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig {
            cms_width: 16_384,
            cms_depth: 4,
            topk_capacity: 8_192,
            hll_precision: 12,
        }
    }
}

impl SketchConfig {
    /// Total bytes the three sketches occupy at these dimensions
    /// (counter arrays and registers; excludes per-entry map overhead
    /// in the space-saving index).
    pub fn memory_bytes(&self) -> usize {
        let cms = self.cms_width.next_power_of_two() * self.cms_depth * 8;
        let topk = self.topk_capacity * (8 + 8); // count + error per slot
        let hll = 1usize << self.hll_precision;
        cms + topk + hll
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sub_megabyte() {
        let cfg = SketchConfig::default();
        assert!(cfg.memory_bytes() < 1 << 20, "{}", cfg.memory_bytes());
    }
}

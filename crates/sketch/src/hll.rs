//! HyperLogLog distinct counting (Flajolet et al.).
//!
//! `2^precision` one-byte registers; each key hashes once, the top
//! `precision` bits pick a register and the remaining bits' leading
//! zero run (plus one) is max'd into it. The standard estimator with
//! the small-range linear-counting correction gives ~1.04/√m relative
//! error. Registers max-merge, so per-shard instances combine exactly.

use crate::hash::mix2;

/// The sketch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HyperLogLog {
    precision: u8,
    seed: u64,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// A sketch with `2^precision` registers hashing with `seed`.
    /// Precision is clamped to `4..=18`.
    pub fn new(precision: u8, seed: u64) -> Self {
        let precision = precision.clamp(4, 18);
        HyperLogLog {
            precision,
            seed,
            registers: vec![0; 1 << precision],
        }
    }

    /// Observes `key`.
    pub fn insert(&mut self, key: u64) {
        let h = mix2(self.seed, key);
        let idx = (h >> (64 - self.precision)) as usize;
        let rest = h << self.precision;
        let rho = if rest == 0 {
            65 - self.precision
        } else {
            rest.leading_zeros() as u8 + 1
        };
        if self.registers[idx] < rho {
            self.registers[idx] = rho;
        }
    }

    /// The cardinality estimate.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 1.0 / f64::from(1u32 << u32::from(r.min(31))))
            .sum();
        let raw = alpha * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Configured precision p (the sketch holds 2^p registers).
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Bytes held by the register array.
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }

    /// Canonical merge: element-wise register maximum. Exact — the
    /// merged sketch equals the sketch of the concatenated streams.
    /// Panics on a precision or seed mismatch.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(
            (self.precision, self.seed),
            (other.precision, other.seed),
            "hyperloglog merge requires identical precision and seed"
        );
        for (mine, &theirs) in self.registers.iter_mut().zip(&other.registers) {
            if *mine < theirs {
                *mine = theirs;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        let hll = HyperLogLog::new(12, 3);
        assert_eq!(hll.estimate(), 0.0);
    }

    #[test]
    fn small_cardinalities_are_near_exact() {
        let mut hll = HyperLogLog::new(12, 3);
        for k in 0..100u64 {
            hll.insert(k);
            hll.insert(k); // duplicates must not inflate
        }
        let est = hll.estimate();
        assert!((est - 100.0).abs() < 5.0, "estimate {est}");
    }

    #[test]
    fn merge_equals_union_stream() {
        let mut a = HyperLogLog::new(10, 9);
        let mut b = HyperLogLog::new(10, 9);
        let mut whole = HyperLogLog::new(10, 9);
        for k in 0..5_000u64 {
            if k % 2 == 0 {
                a.insert(k);
            } else {
                b.insert(k);
            }
            whole.insert(k);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn relative_error_under_five_percent_at_paper_cardinality() {
        // Paper Sec. V: 29,123 unique descriptor IDs. p=12 gives a
        // theoretical 1.04/64 ≈ 1.6 % standard error.
        let mut hll = HyperLogLog::new(12, 7);
        let n = 29_123u64;
        for k in 0..n {
            hll.insert(k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        let est = hll.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.05, "estimate {est}, relative error {rel}");
    }
}

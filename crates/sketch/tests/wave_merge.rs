//! Wave-merge invariance: sketches built shard-locally under a
//! `WavePool` at 1, 2 and 8 threads and merged in canonical input
//! order end up in identical state — the same determinism contract the
//! measurement waves rely on for every other artifact.

use sketch::{CountMinSketch, HyperLogLog, SketchConfig, SpaceSaving};
use wave::WavePool;

/// A deterministic skewed stream chunked into per-unit batches (the
/// analogue of per-relay request-log batches).
fn batches(seed: u64) -> Vec<Vec<(u64, u64)>> {
    (0..16u64)
        .map(|unit| {
            (0..200u64)
                .map(|i| {
                    let r = sketch::mix2(seed, unit * 1_000 + i);
                    (r % 97, r % 5 + 1)
                })
                .collect()
        })
        .collect()
}

/// Builds the three sketches by mapping each batch to shard-local
/// sketches on `threads` workers, then merging in input order.
fn build_at(
    threads: usize,
    stream: &[Vec<(u64, u64)>],
    cfg: SketchConfig,
    seed: u64,
) -> (CountMinSketch, SpaceSaving<u64>, HyperLogLog) {
    let pool = WavePool::new(threads);
    let (locals, _stats) = pool.map(stream, |_, batch| {
        let mut cms = CountMinSketch::new(cfg.cms_width, cfg.cms_depth, seed);
        let mut topk = SpaceSaving::new(cfg.topk_capacity);
        let mut hll = HyperLogLog::new(cfg.hll_precision, seed);
        for &(k, w) in batch {
            cms.add(k, w);
            topk.offer(k, w);
            hll.insert(k);
        }
        (cms, topk, hll)
    });
    let mut cms = CountMinSketch::new(cfg.cms_width, cfg.cms_depth, seed);
    let mut topk = SpaceSaving::new(cfg.topk_capacity);
    let mut hll = HyperLogLog::new(cfg.hll_precision, seed);
    for (c, t, h) in &locals {
        cms.merge(c);
        topk.merge(t);
        hll.merge(h);
    }
    (cms, topk, hll)
}

#[test]
fn sketches_merge_identically_at_1_2_8_threads() {
    let cfg = SketchConfig {
        cms_width: 512,
        cms_depth: 4,
        topk_capacity: 32,
        hll_precision: 10,
    };
    let stream = batches(0x7a11);
    let baseline = build_at(1, &stream, cfg, 99);
    for threads in [2usize, 8] {
        let run = build_at(threads, &stream, cfg, 99);
        assert_eq!(run.0, baseline.0, "count-min diverged at {threads} threads");
        assert_eq!(
            run.1, baseline.1,
            "space-saving diverged at {threads} threads"
        );
        assert_eq!(
            run.2, baseline.2,
            "hyperloglog diverged at {threads} threads"
        );
    }
}

#[test]
fn hash_constants_match_wave() {
    // The sketch crate carries local copies of wave's SplitMix64
    // mix/mix2 so it stays dependency-free; they must never drift.
    for x in [0u64, 1, 42, u64::MAX, 0x9e37_79b9_7f4a_7c15] {
        assert_eq!(sketch::mix(x), wave::mix(x));
        assert_eq!(sketch::mix2(x, x ^ 0xabcd), wave::mix2(x, x ^ 0xabcd));
    }
}

//! Exact-vs-sketch differential properties.
//!
//! Every property compares a sketch against an exact `HashMap` /
//! `HashSet` computation over the same stream: the count-min
//! overestimate-only invariant and ε·N bound, space-saving's
//! guaranteed-top-k property at the paper's skew, and the HyperLogLog
//! relative-error bound at Sec. V cardinalities. Cases are
//! deterministic (the vendored proptest seeds by test name), so these
//! are exact regression pins, not flaky statistical tests.

use std::collections::HashMap;

use proptest::prelude::*;
use sketch::{CountMinSketch, HyperLogLog, SpaceSaving};

/// Exact frequency table for a weighted stream.
fn exact_counts(stream: &[(u64, u64)]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &(k, w) in stream {
        *m.entry(k).or_insert(0) += w;
    }
    m
}

proptest! {
    #[test]
    fn cms_never_underestimates(
        stream in collection::vec((0u64..256, 1u64..8), 1..500),
        seed in any::<u64>(),
    ) {
        let mut cms = CountMinSketch::new(2048, 6, seed);
        for &(k, w) in &stream {
            cms.add(k, w);
        }
        for (&k, &t) in &exact_counts(&stream) {
            prop_assert!(cms.estimate(k) >= t, "key {k}: {} < {t}", cms.estimate(k));
        }
    }

    #[test]
    fn cms_error_within_epsilon_n(
        stream in collection::vec((0u64..256, 1u64..8), 1..500),
        seed in any::<u64>(),
    ) {
        let mut cms = CountMinSketch::new(2048, 6, seed);
        for &(k, w) in &stream {
            cms.add(k, w);
        }
        let bound = cms.epsilon() * cms.weight() as f64;
        for (&k, &t) in &exact_counts(&stream) {
            let err = cms.estimate(k) - t;
            prop_assert!(
                err as f64 <= bound.max(1.0),
                "key {k}: error {err} above ε·N = {bound:.2}"
            );
        }
    }

    #[test]
    fn cms_merge_preserves_overestimate(
        left in collection::vec((0u64..128, 1u64..8), 1..250),
        right in collection::vec((0u64..128, 1u64..8), 1..250),
        seed in any::<u64>(),
    ) {
        let mut a = CountMinSketch::new(1024, 4, seed);
        let mut b = CountMinSketch::new(1024, 4, seed);
        for &(k, w) in &left {
            a.add(k, w);
        }
        for &(k, w) in &right {
            b.add(k, w);
        }
        a.merge(&b);
        let mut whole = left.clone();
        whole.extend_from_slice(&right);
        for (&k, &t) in &exact_counts(&whole) {
            prop_assert!(a.estimate(k) >= t);
        }
        prop_assert_eq!(
            a.weight(),
            whole.iter().map(|&(_, w)| w).sum::<u64>()
        );
    }

    #[test]
    fn space_saving_guarantees_heavy_hitters(
        stream in collection::vec((0u64..48, 1u64..20), 1..400),
        capacity in 4usize..20,
    ) {
        let mut ss = SpaceSaving::new(capacity);
        for &(k, w) in &stream {
            ss.offer(k, w);
        }
        let truth = exact_counts(&stream);
        let floor = ss.min_count();
        for (&k, &t) in &truth {
            // Guaranteed top-k: true count above the eviction floor
            // means the key is tracked.
            if t > floor {
                prop_assert!(ss.query(k).is_some(), "missing key {k} with count {t} > floor {floor}");
            }
            // Bounds for whatever is tracked.
            if let Some(e) = ss.query(k) {
                prop_assert!(e.count >= t, "count {} < true {t}", e.count);
                prop_assert!(e.count - e.error <= t, "lower bound {} > true {t}", e.count - e.error);
            }
        }
        // Canonical export is sorted by (count desc, key asc).
        let entries = ss.entries();
        for pair in entries.windows(2) {
            prop_assert!(
                (pair[1].count, pair[0].key) < (pair[0].count, pair[1].key)
                    || pair[0].count > pair[1].count
            );
        }
    }

    #[test]
    fn space_saving_exact_at_paper_skew_within_capacity(
        seed in any::<u64>(),
        services in 8usize..64,
    ) {
        // The paper's popularity is heavily skewed (Table II: rank 1
        // has ~10x rank 20). Model it as a 1/rank zipf over the
        // service set; with capacity ≥ distinct keys the summary is
        // exact and ranks match the exact table.
        let mut ss = SpaceSaving::new(64);
        let mut truth: Vec<(u64, u64)> = (0..services as u64)
            .map(|r| (sketch::mix2(seed, r), 1000 / (r + 1) + 1))
            .collect();
        for &(k, w) in &truth {
            ss.offer(k, w);
        }
        prop_assert_eq!(ss.evictions(), 0);
        truth.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let got: Vec<(u64, u64)> = ss.entries().iter().map(|e| (e.key, e.count)).collect();
        prop_assert_eq!(got, truth);
    }

    #[test]
    fn space_saving_merge_keeps_guarantees(
        left in collection::vec((0u64..32, 1u64..16), 1..200),
        right in collection::vec((0u64..32, 1u64..16), 1..200),
        capacity in 4usize..16,
    ) {
        let mut a = SpaceSaving::new(capacity);
        let mut b = SpaceSaving::new(capacity);
        for &(k, w) in &left {
            a.offer(k, w);
        }
        for &(k, w) in &right {
            b.offer(k, w);
        }
        a.merge(&b);
        let mut whole = left.clone();
        whole.extend_from_slice(&right);
        let truth = exact_counts(&whole);
        let floor = a.min_count();
        for (&k, &t) in &truth {
            if t > floor {
                prop_assert!(a.query(k).is_some(), "missing {k} with {t} > floor {floor}");
            }
            if let Some(e) = a.query(k) {
                prop_assert!(e.count >= t);
            }
        }
    }

    #[test]
    fn hll_relative_error_under_five_percent(
        cardinality in 1_000u64..40_000,
        seed in any::<u64>(),
    ) {
        // Sec. V saw 29,123 unique descriptor IDs; sweep the bracket
        // around that at p = 12 (theoretical σ ≈ 1.6 %).
        let mut hll = HyperLogLog::new(12, seed);
        for i in 0..cardinality {
            hll.insert(sketch::mix2(seed ^ 0xdead_beef, i));
        }
        let est = hll.estimate();
        let rel = (est - cardinality as f64).abs() / cardinality as f64;
        prop_assert!(rel < 0.05, "n {cardinality}: estimate {est:.0}, error {rel:.4}");
    }
}

//! The onion-address harvesting attack of Biryukov et al. (Sec. II):
//! shadow relays, activation-wave rotation, descriptor collection and
//! client-request logging.
//!
//! The 2013 flaw: directory authorities listed at most two relays per
//! IP address in the consensus, but *monitored* every running relay —
//! including the unlisted "shadow" relays — and accrued their uptime.
//! A relay therefore earned the HSDir flag (≥ 25 h uptime) while
//! hidden from the consensus, and the attacker could burn through
//! shadow relays wave by wave, each wave entering the consensus as
//! instant HSDirs at brute-force-chosen ring positions. With 58 IPs ×
//! 24 relays, the fleet manned (nearly) every ring position within one
//! 24 h descriptor rotation and collected 39,824 onion addresses.
//!
//! - [`fleet`] — deployment and wave rotation;
//! - [`attack`] — the warm-up + sweep + collection driver;
//! - [`coverage`] — the Sec. II cost arithmetic (58 IPs with shadowing
//!   vs > 300 without).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod attack;
pub mod coverage;
pub mod fleet;

pub use attack::{HarvestConfig, HarvestOutcome, Harvester, LoggedRequest};
pub use fleet::{Fleet, FleetConfig, FleetError};

//! The attacker's relay fleet: `n` rented IP addresses running `m`
//! relays each, with brute-force-placed fingerprints.

use onion_crypto::identity::{Fingerprint, SimIdentity};
use onion_crypto::u160::U160;
use tor_sim::network::Network;
use tor_sim::relay::{Ipv4, Operator, RelayId};

/// Configuration of the harvesting fleet (defaults follow the paper:
/// 58 EC2 instances).
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of rented IP addresses (the paper: 58).
    pub ips: u32,
    /// Relays per IP; only 2 are in the consensus at a time, the rest
    /// run as shadow relays.
    pub relays_per_ip: u32,
    /// Bandwidth advertised by every fleet relay (kB/s).
    pub bandwidth: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            ips: 58,
            relays_per_ip: 24,
            bandwidth: 400,
        }
    }
}

/// Errors from fleet deployment and wave scheduling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetError {
    /// The configuration cannot be deployed as specified.
    InvalidConfig {
        /// Which constraint the configuration violates.
        reason: &'static str,
    },
    /// An activation wave index at or beyond [`Fleet::wave_count`].
    WaveOutOfRange {
        /// The requested wave.
        wave: u32,
        /// Number of waves the fleet actually has.
        waves: u32,
    },
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetError::InvalidConfig { reason } => {
                write!(f, "invalid fleet configuration: {reason}")
            }
            FleetError::WaveOutOfRange { wave, waves } => {
                write!(
                    f,
                    "activation wave {wave} out of range: fleet has {waves} waves"
                )
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// The IP scheme packs rented addresses into 198.18.b.c with
/// `b = idx/250 + 1`, so the third octet caps the fleet size.
const MAX_IPS: u32 = 250 * 250;

/// A deployed fleet.
#[derive(Clone, Debug)]
pub struct Fleet {
    config: FleetConfig,
    /// `relays[ip][slot]`, slots ordered by descending bandwidth (the
    /// activation order under the two-per-IP rule).
    relays: Vec<Vec<RelayId>>,
}

impl Fleet {
    /// Deploys the fleet into the network.
    ///
    /// Fingerprints are placed evenly around the ring, interleaved so
    /// that every activation wave (one slot pair across all IPs) is
    /// itself evenly spread — the placement a brute-forcing attacker
    /// would compute. Within one IP, earlier slots advertise slightly
    /// higher bandwidth, which fixes the activation order under the
    /// consensus two-per-IP rule.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] when the shape cannot be
    /// deployed: no IPs, fewer than two relays per IP (no complete
    /// activation wave), or more IPs than the rented address block
    /// holds.
    pub fn deploy(net: &mut Network, config: FleetConfig) -> Result<Fleet, FleetError> {
        if config.ips == 0 {
            return Err(FleetError::InvalidConfig {
                reason: "ips must be at least 1",
            });
        }
        if config.relays_per_ip < 2 {
            return Err(FleetError::InvalidConfig {
                reason: "relays_per_ip must be at least 2 (one consensus pair)",
            });
        }
        if config.ips > MAX_IPS {
            return Err(FleetError::InvalidConfig {
                reason: "ips exceeds the rented 198.18.0.0/16 block",
            });
        }
        let n = config.ips;
        let m = config.relays_per_ip;
        let total = u64::from(n) * u64::from(m);
        let gap = U160::MAX.div_u64(total.max(1));
        let mut relays = Vec::with_capacity(n as usize);
        for ip_idx in 0..n {
            let ip = Ipv4::new(198, 18, (ip_idx / 250) as u8 + 1, (ip_idx % 250) as u8 + 1);
            let mut per_ip = Vec::with_capacity(m as usize);
            for slot in 0..m {
                // Interleaved ring position: consecutive slots of one IP
                // sit `n` positions apart, so each activation wave is a
                // full-ring covering set.
                let index = u64::from(ip_idx) * u64::from(m) + u64::from(slot);
                let pos = position_for(index, gap);
                let identity = SimIdentity::forge(Fingerprint::from_digest(pos.into()));
                let id = net.add_relay(
                    format!("harvest{ip_idx}x{slot}"),
                    ip,
                    9001 + slot as u16,
                    identity,
                    // Descending bandwidth fixes activation order.
                    config.bandwidth + u64::from(m - slot),
                    Operator::Harvester,
                );
                per_ip.push(id);
            }
            relays.push(per_ip);
        }
        Ok(Fleet { config, relays })
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Total relay instances (`ips × relays_per_ip`).
    pub fn relay_count(&self) -> usize {
        self.relays.iter().map(Vec::len).sum()
    }

    /// Every relay in the fleet.
    pub fn all_relays(&self) -> impl Iterator<Item = RelayId> + '_ {
        self.relays.iter().flatten().copied()
    }

    /// The relays in activation wave `k`: slots `2k` and `2k+1` on
    /// every IP.
    pub fn wave(&self, k: u32) -> Vec<RelayId> {
        let a = (2 * k) as usize;
        let b = a + 1;
        self.relays
            .iter()
            .flat_map(|per_ip| {
                [per_ip.get(a), per_ip.get(b)]
                    .into_iter()
                    .flatten()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Number of activation waves (`relays_per_ip / 2`).
    pub fn wave_count(&self) -> u32 {
        self.config.relays_per_ip / 2
    }

    /// Makes exactly wave `k` reachable-active: earlier waves are
    /// rendered unreachable to the authorities (the shadowing move),
    /// later waves stay reachable shadows.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::WaveOutOfRange`] when `k` is at or beyond
    /// [`Fleet::wave_count`] (which would silently burn every wave and
    /// activate nothing).
    pub fn activate_wave(&self, net: &mut Network, k: u32) -> Result<(), FleetError> {
        let waves = self.wave_count();
        if k >= waves {
            return Err(FleetError::WaveOutOfRange { wave: k, waves });
        }
        for wave_idx in 0..waves {
            for relay in self.wave(wave_idx) {
                let r = net.relay_mut(relay);
                // Waves before `k` have been burned: unreachable.
                // Wave `k` and later: reachable (later ones are shadows
                // because their bandwidth ranks below the active pair).
                r.reachable = wave_idx >= k;
            }
        }
        Ok(())
    }
}

/// Evenly spaced ring position `index × gap` (double-and-add multiply,
/// since `U160` has no native multiplication).
fn position_for(index: u64, gap: U160) -> U160 {
    let mut acc = U160::ZERO;
    let mut addend = gap;
    let mut rest = index;
    while rest > 0 {
        if rest & 1 == 1 {
            acc = acc.wrapping_add(addend);
        }
        addend = addend.wrapping_add(addend);
        rest >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use tor_sim::clock::SimTime;
    use tor_sim::network::NetworkBuilder;

    fn net() -> Network {
        NetworkBuilder::new()
            .relays(50)
            .seed(1)
            .start(SimTime::from_ymd(2013, 2, 1))
            .build()
    }

    #[test]
    fn deploy_creates_n_times_m_relays() {
        let mut net = net();
        let fleet = Fleet::deploy(
            &mut net,
            FleetConfig {
                ips: 4,
                relays_per_ip: 6,
                bandwidth: 100,
            },
        )
        .expect("valid fleet config");
        assert_eq!(fleet.relay_count(), 24);
        assert_eq!(fleet.wave_count(), 3);
        assert_eq!(fleet.wave(0).len(), 8);
    }

    #[test]
    fn only_two_per_ip_enter_consensus() {
        let mut net = net();
        let fleet = Fleet::deploy(
            &mut net,
            FleetConfig {
                ips: 3,
                relays_per_ip: 8,
                bandwidth: 100,
            },
        )
        .expect("valid fleet config");
        net.advance_hours(1);
        let listed = fleet
            .all_relays()
            .filter(|&r| net.consensus().entry(net.relay(r).fingerprint()).is_some())
            .count();
        assert_eq!(listed, 6, "2 per IP × 3 IPs");
        // And the listed ones are wave 0 (highest bandwidth).
        for r in fleet.wave(0) {
            assert!(net.consensus().entry(net.relay(r).fingerprint()).is_some());
        }
    }

    #[test]
    fn wave_rotation_swaps_active_relays() {
        let mut net = net();
        let fleet = Fleet::deploy(
            &mut net,
            FleetConfig {
                ips: 2,
                relays_per_ip: 6,
                bandwidth: 100,
            },
        )
        .expect("valid fleet config");
        net.advance_hours(26); // accrue HSDir uptime
        fleet.activate_wave(&mut net, 1).expect("wave 1 exists");
        net.advance_hours(1);
        for r in fleet.wave(0) {
            assert!(net.consensus().entry(net.relay(r).fingerprint()).is_none());
        }
        for r in fleet.wave(1) {
            let entry = net.consensus().entry(net.relay(r).fingerprint());
            assert!(entry.is_some(), "wave 1 active");
            assert!(
                entry.unwrap().flags.contains(tor_sim::RelayFlags::HSDIR),
                "shadow relays carry HSDir immediately"
            );
        }
    }

    #[test]
    fn fingerprints_evenly_spread() {
        let mut net = net();
        let fleet = Fleet::deploy(
            &mut net,
            FleetConfig {
                ips: 10,
                relays_per_ip: 4,
                bandwidth: 100,
            },
        )
        .expect("valid fleet config");
        let mut positions: Vec<U160> = fleet
            .all_relays()
            .map(|r| net.relay(r).fingerprint().to_u160())
            .collect();
        positions.sort();
        positions.dedup();
        assert_eq!(positions.len(), 40, "all positions distinct");
        // Max gap between consecutive positions is at most twice the
        // average gap — even spread.
        let avg = U160::MAX.div_u64(40);
        let double_avg = avg.wrapping_add(avg);
        for pair in positions.windows(2) {
            assert!(pair[0].distance_to(pair[1]) <= double_avg);
        }
    }

    #[test]
    fn position_for_is_multiplication() {
        let gap = U160::from_u64(1000);
        assert_eq!(position_for(0, gap), U160::ZERO);
        assert_eq!(position_for(7, gap), U160::from_u64(7000));
    }

    #[test]
    fn activate_wave_rejects_out_of_range() {
        let mut net = net();
        let fleet = Fleet::deploy(
            &mut net,
            FleetConfig {
                ips: 2,
                relays_per_ip: 6,
                bandwidth: 100,
            },
        )
        .expect("valid fleet config");
        assert_eq!(fleet.wave_count(), 3);
        assert_eq!(
            fleet.activate_wave(&mut net, 3),
            Err(FleetError::WaveOutOfRange { wave: 3, waves: 3 })
        );
        // The failed call must not have burned any wave.
        assert!(fleet.all_relays().all(|r| net.relay(r).reachable));
        assert_eq!(fleet.activate_wave(&mut net, 2), Ok(()));
    }

    #[test]
    fn deploy_rejects_undeployable_configs() {
        for (ips, relays_per_ip) in [(0, 6), (3, 0), (3, 1), (MAX_IPS + 1, 4)] {
            let mut net = net();
            let err = Fleet::deploy(
                &mut net,
                FleetConfig {
                    ips,
                    relays_per_ip,
                    bandwidth: 100,
                },
            )
            .expect_err("config must be rejected");
            assert!(
                matches!(err, FleetError::InvalidConfig { .. }),
                "{ips}x{relays_per_ip}: {err}"
            );
            // Nothing was added to the network by the failed deploy.
            assert_eq!(net.relays().len(), 50);
        }
    }
}

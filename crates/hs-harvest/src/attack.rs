//! The harvesting attack: warm up the fleet for 25 hours, then rotate
//! activation waves through the consensus so the fleet's relays
//! gradually become responsible HSDirs for (nearly) every hidden
//! service within one descriptor rotation.

use std::collections::BTreeSet;

use onion_crypto::onion::OnionAddress;

use tor_sim::network::Network;
use tor_sim::relay::RelayId;
use tor_sim::store::RequestRecord;

use crate::fleet::{Fleet, FleetConfig, FleetError};

/// Harvest timing parameters.
#[derive(Clone, Debug)]
pub struct HarvestConfig {
    /// Fleet shape.
    pub fleet: FleetConfig,
    /// Hours to keep all relays up before the sweep (≥ 25 for the
    /// HSDir flag; the paper used 25).
    pub warmup_hours: u64,
    /// Hours between activation-wave rotations (each wave mans its
    /// ring positions for this long — the paper's 2-hour windows).
    pub rotation_hours: u64,
}

impl Default for HarvestConfig {
    fn default() -> Self {
        HarvestConfig {
            fleet: FleetConfig::default(),
            warmup_hours: 26,
            rotation_hours: 2,
        }
    }
}

/// One logged client request, attributed to the attacker relay that
/// served it.
#[derive(Clone, Copy, Debug)]
pub struct LoggedRequest {
    /// The attacker HSDir that logged the request.
    pub relay: RelayId,
    /// The request record.
    pub record: RequestRecord,
}

/// Everything the harvest collected.
#[derive(Clone, Debug)]
pub struct HarvestOutcome {
    /// Distinct onion addresses derived from collected descriptors.
    pub onions: Vec<OnionAddress>,
    /// Client descriptor requests logged at fleet HSDirs.
    pub requests: Vec<LoggedRequest>,
    /// Per-service logging-slot-hours over the run — how long (and how
    /// many of the six responsible slots) the fleet manned each
    /// service's descriptor positions. Derivable by the attacker from
    /// the public consensus archive; used to normalise request counts
    /// into per-2 h rates. Sorted by onion address (nonzero rows only).
    pub slot_hours: Vec<(OnionAddress, u64)>,
    /// The deployed fleet's relays.
    pub fleet_relays: Vec<RelayId>,
    /// Activation waves executed.
    pub waves: u32,
    /// Total wall-clock hours spent (warm-up + sweep).
    pub hours: u64,
    /// Crashed fleet relays the operator re-registered mid-run. Zero
    /// on a fault-free network; each restart resets the relay's uptime
    /// clock, costing it the HSDir flag for the next 25 h.
    pub fleet_restarts: u64,
    /// Distribution of descriptors held per fleet HSDir at collection
    /// time (one sample per fleet relay) — the paper's "how evenly does
    /// the ring load the fleet" question, now as a histogram.
    pub descriptors_per_relay: obs::Histogram,
}

impl HarvestOutcome {
    /// Number of distinct onion addresses collected.
    pub fn onion_count(&self) -> usize {
        self.onions.len()
    }

    /// Fraction of `published` services whose address was collected.
    pub fn coverage_of(&self, published: usize) -> f64 {
        if published == 0 {
            return 0.0;
        }
        self.onions.len() as f64 / published as f64
    }
}

/// The harvesting attacker.
#[derive(Debug)]
pub struct Harvester {
    config: HarvestConfig,
}

/// An hourly request-log sink for [`Harvester::run_streamed`]: receives
/// each hour's non-empty per-relay batches in canonical fleet order.
pub type RequestSink<'a> = dyn FnMut(&[(RelayId, Vec<RequestRecord>)]) + 'a;

impl Harvester {
    /// Creates a harvester with the paper's parameters (58 IPs).
    pub fn new(config: HarvestConfig) -> Self {
        Harvester { config }
    }

    /// Runs the full attack against the network. `drive` is invoked
    /// after every simulated hour so the caller can generate client
    /// traffic (the popularity measurement) while the harvest runs.
    ///
    /// The attacker watches their own fleet: any relay the network's
    /// fault layer crashes is re-registered (restarted) within the
    /// hour, though the restart resets its uptime and it must re-earn
    /// the HSDir flag.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError`] when the configured fleet shape cannot
    /// be deployed.
    pub fn run(
        &self,
        net: &mut Network,
        drive: impl FnMut(&mut Network),
    ) -> Result<HarvestOutcome, FleetError> {
        self.run_inner(net, drive, None)
    }

    /// Like [`Harvester::run`], but drains every fleet relay's request
    /// log into `sink` after each simulated hour instead of
    /// materializing the full log: the returned
    /// [`HarvestOutcome::requests`] stays empty and peak resident
    /// event storage is one hour of traffic, not the whole run. Batches
    /// are delivered in canonical fleet-relay order (empty logs
    /// skipped), so a deterministic consumer sees the same stream at
    /// any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError`] when the configured fleet shape cannot
    /// be deployed.
    pub fn run_streamed(
        &self,
        net: &mut Network,
        drive: impl FnMut(&mut Network),
        sink: &mut RequestSink<'_>,
    ) -> Result<HarvestOutcome, FleetError> {
        self.run_inner(net, drive, Some(sink))
    }

    fn run_inner(
        &self,
        net: &mut Network,
        mut drive: impl FnMut(&mut Network),
        mut sink: Option<&mut RequestSink<'_>>,
    ) -> Result<HarvestOutcome, FleetError> {
        let fleet = Fleet::deploy(net, self.config.fleet.clone())?;
        let mut hours = 0u64;
        let mut fleet_restarts = 0u64;

        // Warm-up: all n×m relays run reachable; wave 0's pairs enter
        // the consensus, everything else accrues uptime as shadows.
        for _ in 0..self.config.warmup_hours {
            net.advance_hours(1);
            hours += 1;
            fleet_restarts += reregister_crashed(net, &fleet, None)?;
            drive(net);
            drain_hour(net, &fleet, &mut sink);
        }

        // Sweep: burn through activation waves.
        let waves = fleet.wave_count();
        for k in 0..waves {
            fleet.activate_wave(net, k)?;
            net.revote();
            for _ in 0..self.config.rotation_hours {
                net.advance_hours(1);
                hours += 1;
                fleet_restarts += reregister_crashed(net, &fleet, Some(k))?;
                drive(net);
                drain_hour(net, &fleet, &mut sink);
            }
        }

        // Collection: descriptors accumulated in fleet stores, request
        // logs from every fleet relay.
        let mut onions: BTreeSet<OnionAddress> = BTreeSet::new();
        let mut requests = Vec::new();
        let mut descriptors_per_relay = obs::Histogram::new();
        for relay in fleet.all_relays() {
            let mut held = 0u64;
            for desc in net.store(relay).iter() {
                onions.insert(desc.onion);
                held += 1;
            }
            descriptors_per_relay.record(held);
            if sink.is_none() {
                for record in net.take_request_log(relay) {
                    requests.push(LoggedRequest { relay, record });
                }
            }
        }
        // Streaming: flush whatever the last hour left behind.
        drain_hour(net, &fleet, &mut sink);

        Ok(HarvestOutcome {
            onions: onions.into_iter().collect(),
            requests,
            slot_hours: net.slot_hours_sorted(),
            fleet_relays: fleet.all_relays().collect(),
            waves,
            hours,
            fleet_restarts,
            descriptors_per_relay,
        })
    }
}

/// Streaming-mode hourly drain: empties every fleet relay's request
/// log (in canonical fleet order) and hands the non-empty batches to
/// the sink. A no-op in materializing mode.
fn drain_hour(net: &mut Network, fleet: &Fleet, sink: &mut Option<&mut RequestSink<'_>>) {
    let Some(sink) = sink.as_mut() else {
        return;
    };
    let mut batches: Vec<(RelayId, Vec<RequestRecord>)> = Vec::new();
    for relay in fleet.all_relays() {
        let records = net.take_request_log(relay);
        if !records.is_empty() {
            batches.push((relay, records));
        }
    }
    if !batches.is_empty() {
        sink(&batches);
    }
}

/// Restarts any fleet relay the fault layer crashed — the operator's
/// re-registration loop. Returns how many were restarted. When a wave
/// pattern is active it is re-applied afterwards, because a restart
/// marks the relay reachable and a burned-wave relay must not
/// resurface.
fn reregister_crashed(
    net: &mut Network,
    fleet: &Fleet,
    active_wave: Option<u32>,
) -> Result<u64, FleetError> {
    let now = net.time();
    let mut restarted = 0u64;
    for relay in fleet.all_relays() {
        if !net.relay(relay).running {
            net.relay_mut(relay).start(now);
            restarted += 1;
        }
    }
    if restarted > 0 {
        if let Some(k) = active_wave {
            fleet.activate_wave(net, k)?;
        }
    }
    Ok(restarted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tor_sim::clock::SimTime;
    use tor_sim::network::NetworkBuilder;

    fn harvest_against(n_services: usize) -> (HarvestOutcome, usize) {
        let mut net = NetworkBuilder::new()
            .relays(80)
            .seed(21)
            .start(SimTime::from_ymd(2013, 2, 1))
            .build();
        for i in 0..n_services {
            let onion = OnionAddress::from_pubkey(format!("service {i}").as_bytes());
            net.register_service(onion, true);
        }
        net.advance_hours(1);
        let config = HarvestConfig {
            fleet: FleetConfig {
                ips: 6,
                relays_per_ip: 8,
                bandwidth: 300,
            },
            warmup_hours: 26,
            rotation_hours: 2,
        };
        let outcome = Harvester::new(config)
            .run(&mut net, |_| {})
            .expect("fleet config is valid");
        (outcome, n_services)
    }

    #[test]
    fn harvest_collects_most_services() {
        let (outcome, published) = harvest_against(150);
        let coverage = outcome.coverage_of(published);
        // 48 fleet relays vs ~80 honest HSDirs: expected coverage is
        // high after a full sweep.
        assert!(coverage > 0.8, "coverage {coverage}");
        assert!(outcome.onion_count() <= published);
        // The load histogram samples every fleet relay exactly once and
        // cannot exceed the total descriptors the ring could assign.
        let hist = &outcome.descriptors_per_relay;
        assert_eq!(hist.count(), outcome.fleet_relays.len() as u64);
        assert!(hist.max() >= 1, "at least one relay held a descriptor");
    }

    #[test]
    fn harvest_takes_about_one_rotation() {
        let (outcome, _) = harvest_against(20);
        assert_eq!(outcome.waves, 4);
        assert_eq!(outcome.hours, 26 + 4 * 2);
    }

    #[test]
    fn collected_addresses_are_real_services() {
        let (outcome, published) = harvest_against(60);
        assert!(outcome.onion_count() > 0);
        let expected: BTreeSet<OnionAddress> = (0..published)
            .map(|i| OnionAddress::from_pubkey(format!("service {i}").as_bytes()))
            .collect();
        for onion in &outcome.onions {
            assert!(expected.contains(onion));
        }
    }

    #[test]
    fn crashed_fleet_relays_are_reregistered() {
        use tor_sim::FaultPlan;
        // Long fault-layer downtime: every restart observed must come
        // from the harvester's own re-registration loop.
        let plan = FaultPlan {
            seed: 13,
            relay_crash_rate: 0.01,
            restart_after_hours: 999,
            ..FaultPlan::none()
        };
        let mut net = NetworkBuilder::new()
            .relays(60)
            .seed(21)
            .start(SimTime::from_ymd(2013, 2, 1))
            .faults(plan)
            .build();
        for i in 0..40 {
            let onion = OnionAddress::from_pubkey(format!("service {i}").as_bytes());
            net.register_service(onion, true);
        }
        net.advance_hours(1);
        let config = HarvestConfig {
            fleet: FleetConfig {
                ips: 6,
                relays_per_ip: 8,
                bandwidth: 300,
            },
            warmup_hours: 26,
            rotation_hours: 2,
        };
        let outcome = Harvester::new(config)
            .run(&mut net, |_| {})
            .expect("fleet config is valid");
        assert!(
            outcome.fleet_restarts > 0,
            "1%/h crash rate over 48 relays × 34 h must hit the fleet"
        );
        // Every fleet relay was brought back up within the hour.
        for &relay in &outcome.fleet_relays {
            assert!(net.relay(relay).running, "{relay:?} left down");
        }
        // The harvest still collected services despite the churn.
        assert!(outcome.onion_count() > 0);
    }

    #[test]
    fn drive_callback_runs_every_hour() {
        let mut net = NetworkBuilder::new()
            .relays(40)
            .seed(2)
            .start(SimTime::from_ymd(2013, 2, 1))
            .build();
        net.advance_hours(1);
        let config = HarvestConfig {
            fleet: FleetConfig {
                ips: 2,
                relays_per_ip: 4,
                bandwidth: 300,
            },
            warmup_hours: 3,
            rotation_hours: 1,
        };
        let mut ticks = 0u64;
        let outcome = Harvester::new(config)
            .run(&mut net, |_| ticks += 1)
            .expect("fleet config is valid");
        assert_eq!(ticks, outcome.hours);
    }

    #[test]
    fn streamed_run_delivers_the_same_records_without_materializing() {
        use onion_crypto::descriptor::DescriptorId;
        use std::collections::BTreeMap;
        use tor_sim::relay::Ipv4;

        let build = || {
            let mut net = NetworkBuilder::new()
                .relays(80)
                .seed(21)
                .start(SimTime::from_ymd(2013, 2, 1))
                .build();
            for i in 0..60 {
                let onion = OnionAddress::from_pubkey(format!("service {i}").as_bytes());
                net.register_service(onion, true);
            }
            net.advance_hours(1);
            net.add_client(Ipv4::new(198, 18, 0, 9));
            net
        };
        let config = HarvestConfig {
            fleet: FleetConfig {
                ips: 6,
                relays_per_ip: 8,
                bandwidth: 300,
            },
            warmup_hours: 26,
            rotation_hours: 2,
        };
        // Drive synthesizes client fetches so the logs are non-trivial.
        let drive = |net: &mut Network| {
            let client = tor_sim::network::ClientId(0);
            for i in 0..20u64 {
                let onion = OnionAddress::from_pubkey(format!("service {i}").as_bytes());
                let t = net.time();
                let [id, _] = DescriptorId::pair_at(onion, t.unix());
                net.client_fetch_desc_id(client, id);
            }
        };

        let mut exact_net = build();
        let exact = Harvester::new(config.clone())
            .run(&mut exact_net, drive)
            .expect("fleet config is valid");

        let mut streamed_net = build();
        let mut streamed_counts: BTreeMap<DescriptorId, u64> = BTreeMap::new();
        let mut streamed_total = 0u64;
        let streamed = Harvester::new(config)
            .run_streamed(&mut streamed_net, drive, &mut |batches| {
                for (_, records) in batches {
                    for r in records {
                        streamed_total += 1;
                        *streamed_counts.entry(r.descriptor_id).or_insert(0) += 1;
                    }
                }
            })
            .expect("fleet config is valid");

        assert!(
            streamed.requests.is_empty(),
            "streamed run must not materialize"
        );
        assert!(!exact.requests.is_empty(), "exact run must log requests");
        assert_eq!(streamed_total, exact.requests.len() as u64);
        let mut exact_counts: BTreeMap<DescriptorId, u64> = BTreeMap::new();
        for req in &exact.requests {
            *exact_counts.entry(req.record.descriptor_id).or_insert(0) += 1;
        }
        assert_eq!(streamed_counts, exact_counts);
        assert_eq!(streamed.onions, exact.onions);
        assert_eq!(streamed.slot_hours, exact.slot_hours);
    }
}

//! Cost analysis of the harvesting attack (Sec. II).
//!
//! The paper notes that without the shadowing flaw an attacker would
//! need "more than 300 IP addresses for at least 27 hours" to become a
//! responsible directory for every hidden service, while shadowing let
//! them do it from 58 IPs. These helpers derive both numbers from the
//! ring arithmetic so the claim can be regenerated.

/// Relays a deterministic full-ring attacker needs concurrently: one
/// brute-force-placed relay per 3-window of honest HSDirs (each
/// descriptor replica is stored on the 3 fingerprints following it, so
/// a relay placed at every third honest gap intercepts one replica of
/// everything).
pub fn naive_relays_needed(honest_hsdirs: u32) -> u32 {
    honest_hsdirs.div_ceil(3)
}

/// IP addresses a naïve attacker needs: two consensus slots per IP.
pub fn naive_ips_needed(honest_hsdirs: u32) -> u32 {
    naive_relays_needed(honest_hsdirs).div_ceil(2)
}

/// IP addresses a *shadowing* attacker needs to sweep the same
/// coverage within one descriptor rotation: `m` relays per IP rotate
/// through `m / 2` activation waves, so each IP contributes `m`
/// distinct ring positions per day instead of 2.
pub fn shadowing_ips_needed(honest_hsdirs: u32, relays_per_ip: u32) -> u32 {
    naive_relays_needed(honest_hsdirs).div_ceil(relays_per_ip.max(1))
}

/// Hours the attack takes: ≥ 25 h warm-up (HSDir flag) plus one full
/// sweep.
pub fn attack_hours(relays_per_ip: u32, rotation_hours: u64) -> u64 {
    25 + u64::from(relays_per_ip / 2) * rotation_hours
}

/// Expected fraction of services collected when `attacker` relays are
/// placed uniformly at random (NOT brute-force-placed) among `honest`
/// HSDirs — the baseline that motivates deliberate placement. Each of
/// the 6 responsible slots independently lands on an attacker relay
/// with probability `a / (a + h)`.
pub fn random_placement_coverage(honest: u32, attacker: u32) -> f64 {
    let a = f64::from(attacker);
    let h = f64::from(honest);
    if a + h == 0.0 {
        return 0.0;
    }
    let p_honest_slot = h / (a + h);
    1.0 - p_honest_slot.powi(6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_naive_requirement() {
        // At the 2013 HSDir population (~1,500–1,900 over the period),
        // the naïve attack needs more than 300 IPs — the paper's claim.
        assert!(naive_ips_needed(1_862) > 300);
        assert!(naive_ips_needed(1_862) < 350);
    }

    #[test]
    fn shadowing_reaches_58_ips() {
        // With 24 relays per IP, the paper-scale requirement drops to
        // under 58 rented IPs.
        let ips = shadowing_ips_needed(1_862, 24);
        assert!(ips <= 58, "needed {ips}");
        assert!(ips > 20);
    }

    #[test]
    fn attack_duration_one_day_plus_warmup() {
        assert_eq!(attack_hours(24, 2), 25 + 24);
    }

    #[test]
    fn random_placement_is_worse_than_deliberate() {
        // 1,392 random relays among 1,400 honest cover ~98.5 %;
        // deliberate placement covers everything with the same count.
        let cov = random_placement_coverage(1_400, 1_392);
        assert!((0.95..1.0).contains(&cov));
        // Few relays cover little.
        assert!(random_placement_coverage(1_400, 20) < 0.10);
        assert_eq!(random_placement_coverage(0, 0), 0.0);
    }

    #[test]
    fn monotone_in_attacker_count() {
        let mut last = 0.0;
        for a in [10, 50, 200, 800, 3_000] {
            let c = random_placement_coverage(1_500, a);
            assert!(c > last);
            last = c;
        }
    }
}

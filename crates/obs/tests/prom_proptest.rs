//! Property test: any wall snapshot renders as line-parseable
//! Prometheus text exposition.
//!
//! Metric and label names are drawn from a deliberately hostile
//! alphabet (dots, dashes, spaces, braces, quotes, backslashes,
//! newlines, leading digits) so the test exercises the renderer's
//! sanitisation, escaping and collision handling, not just the happy
//! path. The strict parser enforces the full grammar plus histogram
//! invariants (cumulative counts, `le`-sorted buckets ending in
//! `+Inf`), so a single `parse_exposition` call checks everything the
//! satellite asks for.

use obs::prom::{parse_exposition, render};
use obs::wall::{MetricId, WallSnapshot};
use obs::Histogram;
use proptest::prelude::*;

/// 46-symbol alphabet mixing legal name characters with everything
/// sanitisation and escaping must defuse.
fn glyph(b: u8) -> char {
    const EXTRAS: [char; 10] = ['.', '_', '-', ':', ' ', '"', '\\', '\n', '{', '9'];
    match b {
        0..=25 => (b'a' + b) as char,
        26..=35 => (b'0' + (b - 26)) as char,
        _ => EXTRAS[(b as usize - 36) % EXTRAS.len()],
    }
}

fn word(bytes: &[u8]) -> String {
    bytes.iter().map(|&b| glyph(b)).collect()
}

type RawMetric = (Vec<u8>, Vec<(Vec<u8>, Vec<u8>)>, Vec<u64>);

fn build_snapshot(
    counters: &[RawMetric],
    gauges: &[RawMetric],
    hists: &[RawMetric],
) -> WallSnapshot {
    let id = |name: &[u8], labels: &[(Vec<u8>, Vec<u8>)]| MetricId {
        name: word(name),
        labels: labels.iter().map(|(k, v)| (word(k), word(v))).collect(),
    };
    let mut snap = WallSnapshot {
        counters: counters
            .iter()
            .map(|(n, l, vals)| (id(n, l), vals.iter().sum()))
            .collect(),
        gauges: gauges
            .iter()
            .map(|(n, l, vals)| {
                // Fold samples into one (possibly extreme) float.
                let v = vals.iter().map(|&x| x as f64).sum::<f64>() - 500_000.0;
                (id(n, l), v)
            })
            .collect(),
        hists: hists
            .iter()
            .map(|(n, l, vals)| {
                let mut h = Histogram::new();
                for &v in vals {
                    h.record(v.saturating_mul(v));
                }
                (id(n, l), h)
            })
            .collect(),
    };
    snap.sort();
    snap
}

proptest! {
    #[test]
    fn any_snapshot_renders_parseable_exposition(
        counters in collection::vec(
            (collection::vec(0u8..46, 1..8),
             collection::vec((collection::vec(0u8..46, 1..5), collection::vec(0u8..46, 0..7)), 0..3),
             collection::vec(0u64..1_000_000, 0..4)),
            0..6),
        gauges in collection::vec(
            (collection::vec(0u8..46, 1..8),
             collection::vec((collection::vec(0u8..46, 1..5), collection::vec(0u8..46, 0..7)), 0..3),
             collection::vec(0u64..1_000_000, 0..4)),
            0..6),
        hists in collection::vec(
            (collection::vec(0u8..46, 1..8),
             collection::vec((collection::vec(0u8..46, 1..5), collection::vec(0u8..46, 0..7)), 0..3),
             collection::vec(0u64..5_000_000, 0..12)),
            0..4),
    ) {
        let snap = build_snapshot(&counters, &gauges, &hists);
        let text = render(&snap, "prop");
        prop_assert!(!text.contains("NaN"), "NaN leaked:\n{text}");
        let parsed = match parse_exposition(&text) {
            Ok(p) => p,
            Err(e) => panic!("unparseable exposition: {e}\n--- rendered ---\n{text}"),
        };
        // Every non-skipped family re-parses with a declared kind, and
        // every sample line belongs to a family (the parser enforces
        // grouping); histogram invariants were checked during parsing.
        let declared = text.matches("# TYPE ").count();
        prop_assert_eq!(parsed.families.len(), declared);
    }
}

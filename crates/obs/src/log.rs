//! Leveled human-readable progress stream on stderr.
//!
//! Long study runs (minutes at paper scale) were previously silent
//! until the final report. The [`Logger`] gives the pipeline a live
//! event stream — stage starts/finishes, retries, faults, degradations
//! — without touching stdout, which stays reserved for the report (the
//! experiment scripts grep it).
//!
//! Levels: [`LogLevel::Off`] (silent), [`LogLevel::Progress`] (one
//! line per stage transition), [`LogLevel::Debug`] (adds per-event
//! detail: retries, fault summaries, trace statistics). The logger is
//! `Copy` and carried by value into the parallel analysis wave; each
//! line is a single `eprintln!`, which the standard library locks per
//! call, so concurrent stages interleave only at line granularity.

use std::fmt::Arguments;

/// Verbosity of the stderr event stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum LogLevel {
    /// No output at all (library default, and `--quiet`).
    #[default]
    Off,
    /// Stage-level lifecycle lines.
    Progress,
    /// Everything: retries, fault deltas, per-stage metric summaries.
    Debug,
}

impl LogLevel {
    /// Parses a CLI level name.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s {
            "off" => Some(LogLevel::Off),
            "progress" => Some(LogLevel::Progress),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }
}

/// A leveled stderr logger. Copyable; safe to pass into the parallel
/// analysis wave.
#[derive(Clone, Copy, Debug, Default)]
pub struct Logger {
    level: LogLevel,
}

impl Logger {
    /// A silent logger.
    pub fn off() -> Self {
        Logger {
            level: LogLevel::Off,
        }
    }

    /// A logger at the given level.
    pub fn new(level: LogLevel) -> Self {
        Logger { level }
    }

    /// The configured level.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// True when `level` lines would be emitted.
    pub fn enabled(&self, level: LogLevel) -> bool {
        level != LogLevel::Off && self.level >= level
    }

    /// Emits a progress-level line.
    pub fn progress(&self, args: Arguments<'_>) {
        if self.enabled(LogLevel::Progress) {
            eprintln!("[landscape] {args}");
        }
    }

    /// Emits a debug-level line.
    pub fn debug(&self, args: Arguments<'_>) {
        if self.enabled(LogLevel::Debug) {
            eprintln!("[landscape]   {args}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(LogLevel::Off < LogLevel::Progress);
        assert!(LogLevel::Progress < LogLevel::Debug);
        assert_eq!(LogLevel::parse("off"), Some(LogLevel::Off));
        assert_eq!(LogLevel::parse("progress"), Some(LogLevel::Progress));
        assert_eq!(LogLevel::parse("debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("verbose"), None);
    }

    #[test]
    fn gating() {
        let quiet = Logger::off();
        assert!(!quiet.enabled(LogLevel::Progress));
        let progress = Logger::new(LogLevel::Progress);
        assert!(progress.enabled(LogLevel::Progress));
        assert!(!progress.enabled(LogLevel::Debug));
        let debug = Logger::new(LogLevel::Debug);
        assert!(debug.enabled(LogLevel::Progress));
        assert!(debug.enabled(LogLevel::Debug));
        // Off-level lines are never "enabled", even on a debug logger.
        assert!(!debug.enabled(LogLevel::Off));
    }
}

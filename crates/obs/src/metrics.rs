//! Metric registry: named counters, gauges and log2-bucketed
//! histograms with deterministic quantile summaries.
//!
//! A [`Registry`] is the per-stage replacement for the ad-hoc
//! `Vec<(&'static str, u64)>` counter lists the pipeline used to build
//! by hand. It is insertion-ordered (so JSON layouts are stable),
//! allocation-light, and contains nothing wall-clock dependent: every
//! value in a registry is a pure function of the seed and the plan.
//!
//! Histograms use power-of-two buckets: bucket `0` holds exactly the
//! value `0`, and bucket `i ≥ 1` holds `[2^(i-1), 2^i)`, i.e. its
//! inclusive upper bound is `2^i - 1`. Quantiles are reported as the
//! upper bound of the bucket containing the requested rank — an
//! all-integer definition that is deterministic across platforms and
//! honest about bucket resolution.

/// Number of log2 buckets: one for zero plus one per bit of a `u64`.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Records are O(1); summaries (`count`, `sum`, `min`, `max`,
/// [`Histogram::quantile`]) are exact or bucket-resolution as
/// documented. The empty histogram reports zeros throughout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index holding `v`: `0` for zero, else
    /// `64 - v.leading_zeros()` (so bucket `i` covers `[2^(i-1), 2^i)`).
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// The inclusive upper bound of bucket `i`: `0` for bucket zero,
    /// else `2^i - 1` (saturating at `u64::MAX` for the top bucket).
    pub fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples in O(1).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_index(v)] += n;
        self.count += n;
        self.sum += v.saturating_mul(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The quantile `q` in `[0, 1]`, reported as the inclusive upper
    /// bound of the bucket containing the sample of rank
    /// `max(1, ceil(q · count))`. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report beyond the observed maximum: a p99 of
                // "up to 127" when the largest sample was 70 reads as
                // an instrument error.
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket upper bound).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The non-empty buckets, as `(inclusive upper bound, count)`
    /// pairs in ascending bucket order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper(i), c))
            .collect()
    }

    /// One JSON object (no trailing newline) summarising this
    /// histogram: count, sum, min/max, p50/p90/p99 and the sparse
    /// bucket list. `metric` and `owner` name the histogram and the
    /// stage that recorded it; the field names deliberately avoid the
    /// `"stage"` key so committed baseline greps on per-stage counter
    /// lines never match histogram lines.
    pub fn to_json(&self, metric: &str, owner: &str) -> String {
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .iter()
            .map(|(upper, count)| format!("[{upper}, {count}]"))
            .collect();
        format!(
            "{{\"metric\": \"{}\", \"owner\": \"{}\", \"count\": {}, \"sum\": {}, \
             \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
             \"buckets\": [{}]}}",
            crate::json::escape_json(metric),
            crate::json::escape_json(owner),
            self.count(),
            self.sum(),
            self.min(),
            self.max(),
            self.p50(),
            self.p90(),
            self.p99(),
            buckets.join(", ")
        )
    }
}

/// An insertion-ordered registry of named counters, gauges and
/// histograms. One registry per pipeline stage attempt; the engine
/// folds registries into `StageTiming`s.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    hists: Vec<(&'static str, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `by` to the named counter, creating it (in insertion
    /// order) on first use.
    pub fn inc(&mut self, name: &'static str, by: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += by,
            None => self.counters.push((name, by)),
        }
    }

    /// Sets the named gauge to `v` (last write wins).
    pub fn gauge(&mut self, name: &'static str, v: f64) {
        match self.gauges.iter_mut().find(|(n, _)| *n == name) {
            Some((_, g)) => *g = v,
            None => self.gauges.push((name, v)),
        }
    }

    /// The named histogram, created empty on first use.
    pub fn hist(&mut self, name: &'static str) -> &mut Histogram {
        if !self.hists.iter().any(|(n, _)| *n == name) {
            self.hists.push((name, Histogram::new()));
        }
        // The entry was just ensured above.
        #[allow(clippy::unwrap_used)]
        &mut self.hists.iter_mut().find(|(n, _)| *n == name).unwrap().1
    }

    /// Records one sample into the named histogram.
    pub fn record(&mut self, name: &'static str, v: u64) {
        self.hist(name).record(v);
    }

    /// Folds a pre-built histogram into the named slot.
    pub fn merge_hist(&mut self, name: &'static str, h: &Histogram) {
        self.hist(name).merge(h);
    }

    /// Value of the named counter, if ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// The counters in insertion order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// The gauges in insertion order.
    pub fn gauges(&self) -> &[(&'static str, f64)] {
        &self.gauges
    }

    /// The histograms in insertion order.
    pub fn hists(&self) -> &[(&'static str, Histogram)] {
        &self.hists
    }

    /// Decomposes the registry into `(counters, gauges, histograms)`,
    /// each in insertion order.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        Vec<(&'static str, u64)>,
        Vec<(&'static str, f64)>,
        Vec<(&'static str, Histogram)>,
    ) {
        (self.counters, self.gauges, self.hists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_match_hand_computed_values() {
        // bucket 0 = {0}; bucket i (i >= 1) = [2^(i-1), 2^i).
        let cases: [(u64, usize, u64); 10] = [
            (0, 0, 0),
            (1, 1, 1),
            (2, 2, 3),
            (3, 2, 3),
            (4, 3, 7),
            (7, 3, 7),
            (8, 4, 15),
            (1023, 10, 1023),
            (1024, 11, 2047),
            (u64::MAX, 64, u64::MAX),
        ];
        for (v, idx, upper) in cases {
            assert_eq!(Histogram::bucket_index(v), idx, "index of {v}");
            assert_eq!(Histogram::bucket_upper(idx), upper, "upper of {v}");
        }
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        // Ten samples: 0, 1, 2, 2, 3, 4, 5, 8, 9, 70.
        for v in [0, 1, 2, 2, 3, 4, 5, 8, 9, 70] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 104);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 70);
        // Rank ceil(0.5*10)=5 lands in bucket [2,4) (cum: 1,2,4,5) -> 3.
        assert_eq!(h.p50(), 3);
        // Rank 9 lands in bucket [8,16) (cum through [4,8) is 7, +2 = 9) -> 15.
        assert_eq!(h.p90(), 15);
        // Rank 10 lands in bucket [64,128) but is clamped to max -> 70.
        assert_eq!(h.p99(), 70);
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (3, 3), (7, 2), (15, 2), (127, 1)]
        );
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_and_record_n_agree() {
        let mut a = Histogram::new();
        a.record_n(5, 3);
        let mut b = Histogram::new();
        for _ in 0..3 {
            b.record(5);
        }
        assert_eq!(a, b);
        let mut c = Histogram::new();
        c.merge(&a);
        c.merge(&b);
        assert_eq!(c.count(), 6);
        assert_eq!(c.sum(), 30);
    }

    #[test]
    fn registry_preserves_insertion_order() {
        let mut r = Registry::new();
        r.inc("zeta", 1);
        r.inc("alpha", 2);
        r.inc("zeta", 1);
        r.gauge("ratio", 0.5);
        r.record("depth", 4);
        assert_eq!(r.counters(), &[("zeta", 2), ("alpha", 2)]);
        assert_eq!(r.counter("zeta"), Some(2));
        assert_eq!(r.counter("missing"), None);
        assert_eq!(r.gauges(), &[("ratio", 0.5)]);
        assert_eq!(r.hists()[0].0, "depth");
        assert_eq!(r.hists()[0].1.count(), 1);
    }

    #[test]
    fn histogram_json_shape() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(8);
        let json = h.to_json("scan.fetch_attempts", "port_scan");
        assert!(json.starts_with("{\"metric\": \"scan.fetch_attempts\""));
        assert!(json.contains("\"owner\": \"port_scan\""));
        assert!(json.contains("\"buckets\": [[3, 1], [15, 1]]"));
        assert!(!json.contains("\"stage\""));
    }
}

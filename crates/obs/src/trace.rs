//! Span-based tracing with dual clocks and a Chrome `trace_event`
//! exporter.
//!
//! The trace model is a set of **lanes** (one per pipeline stage plus
//! lane 0 for the run itself), each holding completed [`Span`]s and
//! instant [`TraceEvent`]s. Every span carries two intervals:
//!
//! * a **sim-clock** interval in simulated Unix seconds — a pure
//!   function of the seed and the plan, byte-stable across runs and
//!   machines (this is what `--trace` exports and what the baseline
//!   diff in `scripts_run_experiments.sh trace` pins);
//! * an optional **wall-clock** interval in microseconds since the
//!   run's epoch — real elapsed time, for profiling, never exported in
//!   the deterministic view.
//!
//! [`Trace::to_chrome_json`] renders either view in the Chrome
//! `trace_event` array format: open the file in `chrome://tracing` or
//! <https://ui.perfetto.dev>. In the sim view one trace microsecond
//! equals one simulated second, rebased so the run starts at t=0.
//!
//! Stages that never touch the simulator (the analysis wave) have no
//! sim clock of their own; the engine assigns them synthetic sim
//! intervals — starting where the sim prefix ended, with duration
//! equal to the number of items processed — so the deterministic view
//! still shows their relative workloads.

use crate::json::escape_json;

/// A completed span on one lane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Display name (e.g. `stage:harvest`, `round`, `attempt 2`).
    pub name: String,
    /// Chrome category: `pipeline`, `stage`, `attempt`, `sim`, `ops`,
    /// `shard`. The `shard` category is wall-clock-only profiling data
    /// (one span per measurement-wave shard): the number of shards
    /// varies with the run's thread budget, so the deterministic
    /// sim-clock export drops the category entirely.
    pub cat: &'static str,
    /// Sim-clock start, in simulated Unix seconds.
    pub sim_start: u64,
    /// Sim-clock end, in simulated Unix seconds (`>= sim_start`).
    pub sim_end: u64,
    /// Wall-clock interval in microseconds since the run epoch, when
    /// measured. Sim-internal spans (consensus rounds, traffic ticks)
    /// have no meaningful wall interval and carry `None`.
    pub wall_us: Option<(u64, u64)>,
    /// Numeric arguments, rendered into the Chrome `args` object.
    pub args: Vec<(&'static str, u64)>,
}

/// Typed instant events recorded alongside spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A stage attempt failed and was retried.
    Retry,
    /// The fault layer injected at least one fault during an interval.
    Fault,
    /// A stage exhausted its retry budget and degraded.
    Degraded,
    /// Descriptor-cache activity summary for an interval.
    Cache,
    /// A run stopped early (cancelled, wall deadline, sim budget).
    Halt,
}

impl EventKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Retry => "retry",
            EventKind::Fault => "fault",
            EventKind::Degraded => "degraded",
            EventKind::Cache => "cache",
            EventKind::Halt => "halt",
        }
    }
}

/// An instant event on one lane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// Sim-clock timestamp, in simulated Unix seconds.
    pub sim_at: u64,
    /// Wall-clock timestamp in microseconds since the run epoch, when
    /// measured.
    pub wall_us: Option<u64>,
    /// Numeric arguments.
    pub args: Vec<(&'static str, u64)>,
}

/// Collects spans and events for one lane (one pipeline stage, or the
/// run itself). Stage bodies are sequential, so a recorder needs no
/// synchronisation; the engine merges recorders into a [`Trace`] in
/// canonical stage order after the (possibly parallel) wave joins,
/// which keeps the merged trace deterministic.
#[derive(Clone, Debug, Default)]
pub struct SpanRecorder {
    spans: Vec<Span>,
    events: Vec<TraceEvent>,
}

impl SpanRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        SpanRecorder::default()
    }

    /// Records a completed span.
    pub fn span(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Records an instant event.
    pub fn event(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.events.is_empty()
    }

    /// Consumes the recorder, yielding its spans and events in
    /// recording order.
    pub fn finish(self) -> (Vec<Span>, Vec<TraceEvent>) {
        (self.spans, self.events)
    }
}

/// One lane of a merged trace.
#[derive(Clone, Debug)]
pub struct Lane {
    /// Chrome thread id (0 = pipeline, stage index + 1 otherwise).
    pub tid: u32,
    /// Lane display name (Chrome `thread_name`).
    pub name: String,
    /// Spans in recording order.
    pub spans: Vec<Span>,
    /// Events in recording order.
    pub events: Vec<TraceEvent>,
}

/// Which clock a Chrome export reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceClock {
    /// Deterministic simulated time: byte-stable across runs and
    /// machines, 1 trace µs = 1 sim second, rebased to the run start.
    Sim,
    /// Measured wall time in real microseconds since the run epoch.
    /// Spans without a wall interval (sim-internal work) are omitted.
    Wall,
}

/// A merged, ready-to-export trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Lanes in canonical (deterministic) order.
    pub lanes: Vec<Lane>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a lane (engine calls this in canonical stage order).
    pub fn push_lane(&mut self, tid: u32, name: &str, recorder: SpanRecorder) {
        let (spans, events) = recorder.finish();
        self.lanes.push(Lane {
            tid,
            name: name.to_string(),
            spans,
            events,
        });
    }

    /// Total spans across all lanes.
    pub fn span_count(&self) -> usize {
        self.lanes.iter().map(|l| l.spans.len()).sum()
    }

    /// Total instant events across all lanes.
    pub fn event_count(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    /// The earliest sim timestamp in the trace (the rebase origin for
    /// the sim-clock export). Zero for an empty trace.
    pub fn sim_origin(&self) -> u64 {
        self.lanes
            .iter()
            .flat_map(|l| {
                l.spans
                    .iter()
                    .map(|s| s.sim_start)
                    .chain(l.events.iter().map(|e| e.sim_at))
            })
            .min()
            .unwrap_or(0)
    }

    /// Renders the trace as a Chrome `trace_event` JSON array (one
    /// event per line). With [`TraceClock::Sim`] the output contains
    /// no wall-clock data and is byte-identical for identical seeds
    /// and plans; with [`TraceClock::Wall`] timestamps are measured
    /// microseconds and sim-only spans are omitted.
    pub fn to_chrome_json(&self, clock: TraceClock) -> String {
        let origin = self.sim_origin();
        let mut lines: Vec<String> = Vec::new();
        for lane in &self.lanes {
            lines.push(format!(
                "{{\"ph\": \"M\", \"pid\": 0, \"tid\": {}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"{}\"}}}}",
                lane.tid,
                escape_json(&lane.name)
            ));
        }
        for lane in &self.lanes {
            for span in &lane.spans {
                // Shard spans are profiling-only: their count depends
                // on the thread budget, which must not leak into the
                // byte-stable sim view.
                if clock == TraceClock::Sim && span.cat == "shard" {
                    continue;
                }
                let (ts, dur) = match clock {
                    TraceClock::Sim => (span.sim_start - origin, span.sim_end - span.sim_start),
                    TraceClock::Wall => match span.wall_us {
                        Some((start, end)) => (start, end - start),
                        None => continue,
                    },
                };
                lines.push(format!(
                    "{{\"ph\": \"X\", \"pid\": 0, \"tid\": {}, \"ts\": {}, \"dur\": {}, \
                     \"name\": \"{}\", \"cat\": \"{}\", \"args\": {{{}}}}}",
                    lane.tid,
                    ts,
                    dur,
                    escape_json(&span.name),
                    span.cat,
                    fmt_args(&span.args)
                ));
            }
            for event in &lane.events {
                let ts = match clock {
                    TraceClock::Sim => event.sim_at - origin,
                    TraceClock::Wall => match event.wall_us {
                        Some(at) => at,
                        None => continue,
                    },
                };
                lines.push(format!(
                    "{{\"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \"tid\": {}, \"ts\": {}, \
                     \"name\": \"{}\", \"cat\": \"event\", \"args\": {{{}}}}}",
                    lane.tid,
                    ts,
                    event.kind.name(),
                    fmt_args(&event.args)
                ));
            }
        }
        let mut out = String::from("[\n");
        out.push_str(&lines.join(",\n"));
        out.push_str("\n]\n");
        out
    }
}

fn fmt_args(args: &[(&'static str, u64)]) -> String {
    args.iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Structural JSON validation for exported traces: balanced and
/// properly nested containers, well-formed strings and numbers, one
/// top-level value. Not a full parser — no number range checks — but
/// strict enough that `JSON.parse`-breaking output cannot slip through.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = Scanner {
        bytes: s.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.at));
    }
    Ok(())
}

struct Scanner<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Scanner<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.at,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.at
            )),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.at,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.at,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(c) = self.peek() {
            self.at += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    // Any escaped byte is accepted; \u needs 4 hex digits.
                    let esc = self.peek();
                    self.at += 1;
                    if esc == Some(b'u') {
                        for _ in 0..4 {
                            match self.peek() {
                                Some(h) if h.is_ascii_hexdigit() => self.at += 1,
                                _ => return Err(format!("bad \\u escape at byte {}", self.at)),
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.at += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("bare '-' at byte {}", self.at));
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut rec = SpanRecorder::new();
        rec.span(Span {
            name: "stage:harvest".to_string(),
            cat: "stage",
            sim_start: 1000,
            sim_end: 2000,
            wall_us: Some((5, 105)),
            args: vec![("descriptors", 42)],
        });
        rec.span(Span {
            name: "round".to_string(),
            cat: "sim",
            sim_start: 1000,
            sim_end: 1500,
            wall_us: None,
            args: vec![("fetches", 7)],
        });
        rec.event(TraceEvent {
            kind: EventKind::Retry,
            sim_at: 1500,
            wall_us: None,
            args: vec![("attempt", 2)],
        });
        let mut trace = Trace::new();
        trace.push_lane(1, "stage harvest", rec);
        trace
    }

    #[test]
    fn sim_export_rebases_and_excludes_wall() {
        let json = sample_trace().to_chrome_json(TraceClock::Sim);
        assert!(json.contains("\"ts\": 0, \"dur\": 1000"), "{json}");
        assert!(json.contains("\"ts\": 0, \"dur\": 500"), "{json}");
        assert!(json.contains("\"name\": \"retry\""), "{json}");
        assert!(!json.contains("105"), "wall data leaked: {json}");
        validate_json(&json).expect("sim export is valid JSON");
    }

    #[test]
    fn wall_export_drops_sim_only_spans() {
        let json = sample_trace().to_chrome_json(TraceClock::Wall);
        assert!(json.contains("\"ts\": 5, \"dur\": 100"), "{json}");
        assert!(!json.contains("\"name\": \"round\""), "{json}");
        validate_json(&json).expect("wall export is valid JSON");
    }

    #[test]
    fn shard_spans_export_wall_only() {
        let mut rec = SpanRecorder::new();
        rec.span(Span {
            name: "stage:port_scan".to_string(),
            cat: "stage",
            sim_start: 1000,
            sim_end: 2000,
            wall_us: Some((0, 90)),
            args: Vec::new(),
        });
        rec.span(Span {
            name: "shard 0".to_string(),
            cat: "shard",
            sim_start: 2000,
            sim_end: 2000,
            wall_us: Some((10, 40)),
            args: vec![("items", 17), ("threads", 4)],
        });
        let mut trace = Trace::new();
        trace.push_lane(1, "stage port_scan", rec);
        let sim = trace.to_chrome_json(TraceClock::Sim);
        assert!(!sim.contains("shard"), "shard leaked into sim view: {sim}");
        validate_json(&sim).expect("sim export is valid JSON");
        let wall = trace.to_chrome_json(TraceClock::Wall);
        assert!(wall.contains("\"name\": \"shard 0\""), "{wall}");
        assert!(wall.contains("\"ts\": 10, \"dur\": 30"), "{wall}");
        validate_json(&wall).expect("wall export is valid JSON");
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_trace().to_chrome_json(TraceClock::Sim);
        let b = sample_trace().to_chrome_json(TraceClock::Sim);
        assert_eq!(a, b);
    }

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate_json("[1, 2, {\"a\": [true, null]}]").is_ok());
        assert!(validate_json("{\"a\": 1.5e-3, \"b\": \"x\\\"y\\u00e9\"}").is_ok());
        assert!(validate_json("[1, 2").is_err());
        assert!(validate_json("{\"a\" 1}").is_err());
        assert!(validate_json("[} ]").is_err());
        assert!(validate_json("[1] trailing").is_err());
        assert!(validate_json("\"unterminated").is_err());
    }

    #[test]
    fn empty_trace_exports_an_empty_array_shape() {
        let json = Trace::new().to_chrome_json(TraceClock::Sim);
        validate_json(&json).expect("empty export still parses");
    }
}

//! Minimal hand-rolled JSON helpers shared by the exporters.
//!
//! The workspace has no serde; every JSON artifact (`bench_stages.json`,
//! Chrome traces) is assembled with `format!` from deterministic values.
//! These helpers keep escaping and float formatting consistent.

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a wall-clock duration in milliseconds with fixed precision
/// (three decimals), matching the historical `bench_stages.json` style.
pub fn fmt_ms(ms: f64) -> String {
    format!("{ms:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_control_chars() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn fmt_ms_is_fixed_precision() {
        assert_eq!(fmt_ms(1.5), "1.500");
        assert_eq!(fmt_ms(0.0004), "0.000");
    }
}

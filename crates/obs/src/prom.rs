//! Prometheus text exposition: a renderer for [`WallSnapshot`]s and a
//! strict line parser used by tests and the torn-read audit.
//!
//! The renderer emits the classic text format: one `# TYPE` line per
//! family followed by its sample lines, families sorted by name, label
//! values escaped (`\\`, `\"`, `\n`). Counters get the conventional
//! `_total` suffix; histograms expand into cumulative
//! `_bucket{le="..."}` series plus `_sum` and `_count`.
//!
//! Histogram buckets are rendered on a **fixed `le` ladder** — the
//! log2 bucket upper bounds at even exponents (0, 3, 15, 63, …,
//! 2^40−1) plus `+Inf` — rather than the sparse nonzero buckets. A
//! fixed ladder means the *set* of series is identical no matter what
//! a run recorded, so the committed telemetry baseline only ever needs
//! values normalised, never line sets. 2^40 µs ≈ 12.7 days, far above
//! any latency this daemon can observe; slower samples still land in
//! `+Inf` and `_sum`.
//!
//! Name sanitisation maps the workspace's dotted metric names onto the
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` grammar. When two families collide after
//! sanitisation (or a family would shadow a histogram's derived
//! series), the first registered wins and the loser is skipped with a
//! trailing comment — rendered output is always internally consistent.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::metrics::Histogram;
use crate::wall::WallSnapshot;

/// Even log2 exponents used for the fixed `le` ladder.
const LADDER_EXPONENTS: std::ops::RangeInclusive<usize> = 0..=40;

/// The fixed inclusive upper bounds rendered as `le` labels (before
/// the implicit `+Inf`).
pub fn ladder() -> Vec<u64> {
    LADDER_EXPONENTS
        .step_by(2)
        .map(Histogram::bucket_upper)
        .collect()
}

/// Sanitises a metric family name: dots and other illegal characters
/// become underscores, a leading digit gains a `_` prefix, and a
/// non-empty `namespace` is prepended with `_`.
pub fn sanitize_metric_name(namespace: &str, raw: &str) -> String {
    let mut out = String::new();
    if !namespace.is_empty() {
        out.push_str(namespace);
        out.push('_');
    }
    for c in raw.chars() {
        out.push(match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
            _ => '_',
        });
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Sanitises a label name (`[a-zA-Z_][a-zA-Z0-9_]*` — no colon).
fn sanitize_label_name(raw: &str) -> String {
    let mut out = String::new();
    for c in raw.chars() {
        out.push(match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' => c,
            _ => '_',
        });
    }
    if out.is_empty() || out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value per the exposition format.
fn escape_label_value(raw: &str) -> String {
    let mut out = String::new();
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders sanitised label pairs as `{k="v",...}` (empty string when
/// no labels). Duplicate sanitised label names keep the first value;
/// on histogram series a user label `le` is renamed `le_` so it cannot
/// corrupt bucket grammar.
fn render_labels(
    labels: &[(String, String)],
    protect_le: bool,
    extra: Option<(&str, &str)>,
) -> String {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut parts: Vec<String> = Vec::new();
    if let Some((k, v)) = extra {
        seen.insert(k.to_owned());
        parts.push(format!("{k}=\"{v}\""));
    }
    for (k, v) in labels {
        let mut name = sanitize_label_name(k);
        if protect_le && name == "le" {
            name = "le_".to_owned();
        }
        if !seen.insert(name.clone()) {
            continue;
        }
        parts.push(format!("{name}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Formats a gauge value; non-finite values render as `0` so the
/// output is NaN-free by construction.
fn format_gauge(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn word(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

struct FamilyBlock {
    kind: Kind,
    /// (label-rendering dedup key, sample lines) per series.
    series: Vec<(String, Vec<String>)>,
}

/// Metrics of one kind grouped by rendered family name, each keeping
/// its raw label set.
type Grouped<'a, T> = BTreeMap<String, Vec<(&'a [(String, String)], T)>>;

/// Renders a snapshot as Prometheus text exposition. `namespace` is
/// prefixed to every family name (`landscaped_...`).
pub fn render(snapshot: &WallSnapshot, namespace: &str) -> String {
    // Group raw metrics into rendered families, preserving the
    // snapshot's sorted order within each family.
    let mut counters: Grouped<'_, u64> = BTreeMap::new();
    for (id, v) in &snapshot.counters {
        let fam = format!("{}_total", sanitize_metric_name(namespace, &id.name));
        counters.entry(fam).or_default().push((&id.labels, *v));
    }
    let mut gauges: Grouped<'_, f64> = BTreeMap::new();
    for (id, v) in &snapshot.gauges {
        let fam = sanitize_metric_name(namespace, &id.name);
        gauges.entry(fam).or_default().push((&id.labels, *v));
    }
    let mut hists: Grouped<'_, &Histogram> = BTreeMap::new();
    for (id, h) in &snapshot.hists {
        let fam = sanitize_metric_name(namespace, &id.name);
        hists.entry(fam).or_default().push((&id.labels, h));
    }

    // Claim series names in kind order (counter, gauge, histogram);
    // a family whose names are already taken is skipped with a
    // comment rather than emitting conflicting duplicates.
    let mut taken: BTreeSet<String> = BTreeSet::new();
    let mut blocks: BTreeMap<String, FamilyBlock> = BTreeMap::new();
    let mut skipped: Vec<String> = Vec::new();

    for (fam, series) in &counters {
        if !taken.insert(fam.clone()) {
            skipped.push(fam.clone());
            continue;
        }
        let mut block = FamilyBlock {
            kind: Kind::Counter,
            series: Vec::new(),
        };
        for (labels, v) in series {
            let rendered = render_labels(labels, false, None);
            if block.series.iter().any(|(key, _)| *key == rendered) {
                continue;
            }
            block
                .series
                .push((rendered.clone(), vec![format!("{fam}{rendered} {v}")]));
        }
        blocks.insert(fam.clone(), block);
    }
    for (fam, series) in &gauges {
        if !taken.insert(fam.clone()) {
            skipped.push(fam.clone());
            continue;
        }
        let mut block = FamilyBlock {
            kind: Kind::Gauge,
            series: Vec::new(),
        };
        for (labels, v) in series {
            let rendered = render_labels(labels, false, None);
            if block.series.iter().any(|(key, _)| *key == rendered) {
                continue;
            }
            block.series.push((
                rendered.clone(),
                vec![format!("{fam}{rendered} {}", format_gauge(*v))],
            ));
        }
        blocks.insert(fam.clone(), block);
    }
    for (fam, series) in &hists {
        let derived = [
            fam.clone(),
            format!("{fam}_bucket"),
            format!("{fam}_sum"),
            format!("{fam}_count"),
        ];
        if derived.iter().any(|n| taken.contains(n)) {
            skipped.push(fam.clone());
            continue;
        }
        for n in &derived {
            taken.insert(n.clone());
        }
        let mut block = FamilyBlock {
            kind: Kind::Histogram,
            series: Vec::new(),
        };
        for (labels, hist) in series {
            let base_key = render_labels(labels, true, None);
            if block.series.iter().any(|(key, _)| *key == base_key) {
                continue;
            }
            let mut lines = Vec::new();
            for upper in ladder() {
                let cumulative: u64 = hist
                    .nonzero_buckets()
                    .iter()
                    .filter(|&&(bucket_upper, _)| bucket_upper <= upper)
                    .map(|&(_, c)| c)
                    .sum();
                let with_le = render_labels(labels, true, Some(("le", &upper.to_string())));
                lines.push(format!("{fam}_bucket{with_le} {cumulative}"));
            }
            let inf = render_labels(labels, true, Some(("le", "+Inf")));
            lines.push(format!("{fam}_bucket{inf} {}", hist.count()));
            lines.push(format!("{fam}_sum{base_key} {}", hist.sum()));
            lines.push(format!("{fam}_count{base_key} {}", hist.count()));
            block.series.push((base_key, lines));
        }
        blocks.insert(fam.clone(), block);
    }

    let mut out = String::new();
    for (fam, block) in &blocks {
        out.push_str(&format!("# TYPE {fam} {}\n", block.kind.word()));
        for (_, lines) in &block.series {
            for line in lines {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    skipped.sort();
    for fam in skipped {
        out.push_str(&format!(
            "# telemetry: skipped colliding family \"{fam}\"\n"
        ));
    }
    out
}

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Full series name (`x_total`, `x_bucket`, ...).
    pub name: String,
    /// Unescaped label pairs in line order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// The kind declared by a `# TYPE` line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FamilyKind {
    /// Monotonic counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
}

/// One parsed metric family.
#[derive(Clone, Debug)]
pub struct Family {
    /// Family name from the `# TYPE` line.
    pub name: String,
    /// Declared kind.
    pub kind: FamilyKind,
    /// Samples in line order.
    pub samples: Vec<Sample>,
}

/// A fully parsed exposition.
#[derive(Clone, Debug, Default)]
pub struct Exposition {
    /// Families in document order.
    pub families: Vec<Family>,
}

impl Exposition {
    /// Value of the series with this exact name and label set.
    pub fn value(&self, series: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        self.families
            .iter()
            .flat_map(|f| f.samples.iter())
            .find(|s| s.name == series && s.labels == want)
            .map(|s| s.value)
    }

    /// All `(labels, value)` pairs for one series name.
    pub fn series(&self, series: &str) -> Vec<(&[(String, String)], f64)> {
        self.families
            .iter()
            .flat_map(|f| f.samples.iter())
            .filter(|s| s.name == series)
            .map(|s| (s.labels.as_slice(), s.value))
            .collect()
    }
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parsed labels plus the rest of the line after the closing `}`.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

/// Parses `k="v",...` starting after `{`; returns labels and the rest
/// of the line after the closing `}`.
fn parse_labels(s: &str, lineno: usize) -> Result<ParsedLabels<'_>, String> {
    let mut labels = Vec::new();
    let mut rest = s;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {lineno}: label without '='"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("line {lineno}: bad label name {name:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("line {lineno}: label value not quoted"));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    end = Some(i);
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => {
                        return Err(format!(
                            "line {lineno}: bad escape {:?}",
                            other.map(|(_, c)| c)
                        ))
                    }
                },
                _ => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("line {lineno}: unterminated label value"))?;
        labels.push((name.to_owned(), value));
        rest = &rest[end + 1..];
        if let Some(tail) = rest.strip_prefix(',') {
            rest = tail;
            continue;
        }
        if let Some(tail) = rest.strip_prefix('}') {
            return Ok((labels, tail));
        }
        return Err(format!("line {lineno}: expected ',' or '}}' after label"));
    }
}

/// Checks the cumulative-bucket invariants of one histogram family:
/// per label set, `le` strictly ascending and ending in `+Inf`,
/// cumulative counts non-decreasing, and `_count` matching the `+Inf`
/// bucket, with `_sum` present.
fn check_histogram(family: &Family) -> Result<(), String> {
    let base = &family.name;
    // Bucket groups keyed by the labels-without-le rendering.
    let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut sums: BTreeMap<String, f64> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    let group_key = |labels: &[(String, String)]| -> String {
        labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    for s in &family.samples {
        let key = group_key(&s.labels);
        if s.name == format!("{base}_bucket") {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| format!("histogram {base}: bucket without le"))?;
            let le = if le.1 == "+Inf" {
                f64::INFINITY
            } else {
                le.1.parse::<f64>()
                    .map_err(|_| format!("histogram {base}: bad le {:?}", le.1))?
            };
            groups.entry(key).or_default().push((le, s.value));
        } else if s.name == format!("{base}_sum") {
            sums.insert(key, s.value);
        } else if s.name == format!("{base}_count") {
            counts.insert(key, s.value);
        } else {
            return Err(format!("histogram {base}: unexpected series {:?}", s.name));
        }
    }
    for (key, buckets) in &groups {
        let mut last_le = f64::NEG_INFINITY;
        let mut last_cum = -1.0;
        for &(le, cum) in buckets {
            if le <= last_le {
                return Err(format!("histogram {base}: le not ascending ({key})"));
            }
            if cum < last_cum {
                return Err(format!("histogram {base}: buckets not cumulative ({key})"));
            }
            last_le = le;
            last_cum = cum;
        }
        if last_le != f64::INFINITY {
            return Err(format!("histogram {base}: missing +Inf bucket ({key})"));
        }
        let total = counts
            .get(key)
            .ok_or_else(|| format!("histogram {base}: missing _count ({key})"))?;
        if (*total - last_cum).abs() > f64::EPSILON {
            return Err(format!(
                "histogram {base}: _count {total} != +Inf bucket {last_cum} ({key})"
            ));
        }
        if !sums.contains_key(key) {
            return Err(format!("histogram {base}: missing _sum ({key})"));
        }
    }
    Ok(())
}

/// Parses a full exposition document, enforcing the line grammar,
/// NaN-free finite values, one `# TYPE` per family, samples grouped
/// under their family, no duplicate series, and cumulative `le`-sorted
/// histogram buckets.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut exposition = Exposition::default();
    let mut current: Option<Family> = None;
    let mut family_names: BTreeSet<String> = BTreeSet::new();
    let mut series_seen: BTreeSet<String> = BTreeSet::new();

    let close = |fam: Option<Family>, out: &mut Exposition| -> Result<(), String> {
        if let Some(f) = fam {
            if f.kind == FamilyKind::Histogram {
                check_histogram(&f)?;
            }
            out.families.push(f);
        }
        Ok(())
    };

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without name"))?;
                let kind = match parts.next() {
                    Some("counter") => FamilyKind::Counter,
                    Some("gauge") => FamilyKind::Gauge,
                    Some("histogram") => FamilyKind::Histogram,
                    other => return Err(format!("line {lineno}: bad TYPE kind {other:?}")),
                };
                if parts.next().is_some() {
                    return Err(format!("line {lineno}: trailing TYPE tokens"));
                }
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: bad family name {name:?}"));
                }
                if !family_names.insert(name.to_owned()) {
                    return Err(format!("line {lineno}: duplicate TYPE for {name:?}"));
                }
                close(current.take(), &mut exposition)?;
                current = Some(Family {
                    name: name.to_owned(),
                    kind,
                    samples: Vec::new(),
                });
            }
            // Other comments (HELP, renderer skip notes) are ignored.
            continue;
        }

        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {lineno}: no value"))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: bad metric name {name:?}"));
        }
        let (labels, rest) = if line[name_end..].starts_with('{') {
            parse_labels(&line[name_end + 1..], lineno)?
        } else {
            (Vec::new(), &line[name_end..])
        };
        let value_str = rest.trim();
        if value_str.is_empty() || value_str.split_whitespace().count() != 1 {
            return Err(format!("line {lineno}: malformed value field"));
        }
        let value: f64 = value_str
            .parse()
            .map_err(|_| format!("line {lineno}: unparseable value {value_str:?}"))?;
        if !value.is_finite() {
            return Err(format!("line {lineno}: non-finite value {value_str:?}"));
        }

        let family = current
            .as_mut()
            .ok_or_else(|| format!("line {lineno}: sample before any TYPE"))?;
        let belongs = match family.kind {
            FamilyKind::Counter | FamilyKind::Gauge => name == family.name,
            FamilyKind::Histogram => {
                name == format!("{}_bucket", family.name)
                    || name == format!("{}_sum", family.name)
                    || name == format!("{}_count", family.name)
            }
        };
        if !belongs {
            return Err(format!(
                "line {lineno}: sample {name:?} outside family {:?}",
                family.name
            ));
        }
        let series_key = format!("{name}|{labels:?}");
        if !series_seen.insert(series_key) {
            return Err(format!("line {lineno}: duplicate series {name:?}"));
        }
        family.samples.push(Sample {
            name: name.to_owned(),
            labels,
            value,
        });
    }
    close(current.take(), &mut exposition)?;
    Ok(exposition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wall::WallRegistry;

    fn sample_registry() -> WallRegistry {
        let reg = WallRegistry::new();
        reg.counter("queries.started", &[]).add(7);
        reg.counter("query.outcome", &[("outcome", "ok")]).add(5);
        reg.counter("query.outcome", &[("outcome", "partial")])
            .add(2);
        reg.gauge("inflight", &[]).set(3.0);
        let h = reg.histogram("query.wall_us", &[]);
        h.observe(0);
        h.observe(10);
        h.observe(900);
        reg
    }

    #[test]
    fn golden_exposition_shape_and_order() {
        let text = render(&sample_registry().snapshot(), "landscaped");
        let expected_prefix = "\
# TYPE landscaped_inflight gauge
landscaped_inflight 3
# TYPE landscaped_queries_started_total counter
landscaped_queries_started_total 7
# TYPE landscaped_query_outcome_total counter
landscaped_query_outcome_total{outcome=\"ok\"} 5
landscaped_query_outcome_total{outcome=\"partial\"} 2
# TYPE landscaped_query_wall_us histogram
landscaped_query_wall_us_bucket{le=\"0\"} 1
landscaped_query_wall_us_bucket{le=\"3\"} 1
landscaped_query_wall_us_bucket{le=\"15\"} 2
landscaped_query_wall_us_bucket{le=\"63\"} 2
landscaped_query_wall_us_bucket{le=\"255\"} 2
landscaped_query_wall_us_bucket{le=\"1023\"} 3
";
        assert!(
            text.starts_with(expected_prefix),
            "got:\n{text}\nwanted prefix:\n{expected_prefix}"
        );
        assert!(text.contains("landscaped_query_wall_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("landscaped_query_wall_us_sum 910\n"));
        assert!(text.contains("landscaped_query_wall_us_count 3\n"));
        // Rendering is deterministic.
        assert_eq!(text, render(&sample_registry().snapshot(), "landscaped"));
    }

    #[test]
    fn renders_fixed_ladder_even_when_empty() {
        let reg = WallRegistry::new();
        reg.histogram("empty_us", &[]);
        let text = render(&reg.snapshot(), "t");
        // 21 ladder buckets + +Inf, all zero; no NaN anywhere.
        assert_eq!(text.matches("t_empty_us_bucket{le=").count(), 22);
        assert!(text.contains("t_empty_us_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("t_empty_us_sum 0\n"));
        assert!(text.contains("t_empty_us_count 0\n"));
        assert!(!text.contains("NaN"));
        parse_exposition(&text).expect("empty histogram parses");
    }

    #[test]
    fn label_values_are_escaped_and_roundtrip() {
        let reg = WallRegistry::new();
        reg.counter("weird", &[("peer", "a\\b\"c\nd")]).add(1);
        let text = render(&reg.snapshot(), "t");
        assert!(text.contains("peer=\"a\\\\b\\\"c\\nd\""), "{text}");
        let parsed = parse_exposition(&text).expect("escaped labels parse");
        assert_eq!(
            parsed.value("t_weird_total", &[("peer", "a\\b\"c\nd")]),
            Some(1.0)
        );
    }

    #[test]
    fn nonfinite_gauges_render_as_zero() {
        let reg = WallRegistry::new();
        reg.gauge("bad", &[]).set(f64::NAN);
        reg.gauge("worse", &[]).set(f64::INFINITY);
        let text = render(&reg.snapshot(), "t");
        assert!(text.contains("t_bad 0\n"));
        assert!(text.contains("t_worse 0\n"));
        parse_exposition(&text).expect("sanitised gauges parse");
    }

    #[test]
    fn colliding_families_are_skipped_not_duplicated() {
        let reg = WallRegistry::new();
        reg.counter("x", &[]).add(1); // renders as t_x_total
        reg.gauge("x.total", &[]).set(2.0); // sanitises to t_x_total too
        reg.histogram("x.total", &[]); // base t_x_total also collides
        let text = render(&reg.snapshot(), "t");
        assert_eq!(text.matches("# TYPE t_x_total ").count(), 1);
        assert!(text.contains("skipped colliding family"));
        parse_exposition(&text).expect("collision output still parses");
    }

    #[test]
    fn parser_rejects_bad_documents() {
        for (doc, why) in [
            ("t_x 1\n", "sample before TYPE"),
            (
                "# TYPE t_x counter\n# TYPE t_x counter\nt_x 1\n",
                "dup TYPE",
            ),
            ("# TYPE t_x counter\nt_x 1\nt_x 1\n", "dup series"),
            ("# TYPE t_x counter\nt_y 1\n", "foreign sample"),
            ("# TYPE t_x gauge\nt_x NaN\n", "NaN"),
            ("# TYPE t_x gauge\nt_x\n", "no value"),
            ("# TYPE t_x gauge\nt_x{k=\"v} 1\n", "unterminated label"),
            ("# TYPE 9x gauge\n9x 1\n", "bad name"),
            (
                "# TYPE t_h histogram\nt_h_bucket{le=\"1\"} 1\nt_h_sum 1\nt_h_count 1\n",
                "no +Inf",
            ),
            (
                "# TYPE t_h histogram\nt_h_bucket{le=\"1\"} 2\n\
                 t_h_bucket{le=\"+Inf\"} 1\nt_h_sum 1\nt_h_count 1\n",
                "not cumulative",
            ),
            (
                "# TYPE t_h histogram\nt_h_bucket{le=\"+Inf\"} 1\nt_h_sum 1\n",
                "missing count",
            ),
        ] {
            assert!(parse_exposition(doc).is_err(), "accepted bad doc ({why})");
        }
    }

    #[test]
    fn parser_reads_series_back() {
        let text = render(&sample_registry().snapshot(), "landscaped");
        let parsed = parse_exposition(&text).expect("golden parses");
        assert_eq!(
            parsed.value("landscaped_queries_started_total", &[]),
            Some(7.0)
        );
        assert_eq!(
            parsed.value("landscaped_query_outcome_total", &[("outcome", "ok")]),
            Some(5.0)
        );
        assert_eq!(parsed.series("landscaped_query_outcome_total").len(), 2);
        assert_eq!(parsed.value("landscaped_inflight", &[]), Some(3.0));
    }
}

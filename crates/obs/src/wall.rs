//! Thread-safe **wall-clock** metric registry for resident services.
//!
//! The deterministic [`crate::metrics::Registry`] is single-owner by
//! design: one registry per stage attempt, folded into timings after
//! the stage body returns, every value a pure function of the seed.
//! A resident daemon needs the opposite instrument — one registry that
//! lives as long as the process, is written concurrently by every
//! connection thread, and records *real* time (admission waits, query
//! latencies, epoch age). [`WallRegistry`] is that instrument:
//!
//! * **counters** and **gauges** are single atomics behind cloneable
//!   handles — the hot path after registration is one
//!   `fetch_add`/`store`, no lock;
//! * **histograms** reuse the deterministic log2-bucketed
//!   [`Histogram`], each behind its own mutex, with registration
//!   sharded by name hash so concurrent lookups of different metrics
//!   rarely contend;
//! * [`WallRegistry::snapshot`] produces a [`WallSnapshot`] sorted by
//!   metric identity, which is what the Prometheus renderer
//!   ([`crate::prom`]) consumes.
//!
//! The separation rule the workspace lives by: values recorded here
//! are wall-clock-dependent and MUST NEVER flow into a committed
//! byte-stable artifact (reports, sim traces, bench counters). The
//! deterministic registries never flow the other way either — the two
//! planes share the [`Histogram`] type and nothing else.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::Histogram;

/// Registration shards for histogram lookup.
const SHARDS: usize = 8;

/// A metric identity: family name plus an ordered label set.
///
/// Ordering is lexicographic on `(name, labels)`, which gives
/// snapshots (and therefore rendered expositions) a stable order
/// independent of registration order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MetricId {
    /// Family name (dots allowed; the renderer sanitizes).
    pub name: String,
    /// Label pairs in the order given at registration.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Builds an id from borrowed parts.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        MetricId {
            name: name.to_owned(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        }
    }
}

/// Cloneable handle to one monotonic counter.
#[derive(Clone, Debug, Default)]
pub struct WallCounter(Arc<AtomicU64>);

impl WallCounter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `by`.
    pub fn add(&self, by: u64) {
        self.0.fetch_add(by, Ordering::Relaxed);
    }

    /// Overwrites the value. Only for mirroring an *external*
    /// monotonic source (e.g. cache counters owned by another
    /// subsystem) at scrape time — never mix with [`WallCounter::add`]
    /// on the same handle.
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Cloneable handle to one point-in-time gauge (f64, stored as bits).
#[derive(Clone, Debug)]
pub struct WallGauge(Arc<AtomicU64>);

impl Default for WallGauge {
    fn default() -> Self {
        WallGauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl WallGauge {
    /// Sets the gauge (last write wins).
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Cloneable handle to one mutex-protected log2 histogram.
#[derive(Clone, Debug, Default)]
pub struct WallHistogram(Arc<Mutex<Histogram>>);

impl WallHistogram {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        locked(&self.0).record(v);
    }

    /// Records the elapsed wall time since `start` in microseconds —
    /// the common shape for queue-wait / latency families.
    pub fn observe_since(&self, start: std::time::Instant) {
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.observe(us);
    }

    /// A copy of the current distribution.
    pub fn snapshot(&self) -> Histogram {
        locked(&self.0).clone()
    }
}

/// Poison-tolerant lock: a panicking scraper must not wedge the
/// telemetry plane.
fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A point-in-time copy of every registered metric, sorted by
/// [`MetricId`]. Public fields so adapters (e.g. the batch pipeline's
/// deterministic timings) can build one by hand and reuse the
/// Prometheus renderer.
#[derive(Clone, Debug, Default)]
pub struct WallSnapshot {
    /// Monotonic counters.
    pub counters: Vec<(MetricId, u64)>,
    /// Point-in-time gauges.
    pub gauges: Vec<(MetricId, f64)>,
    /// Distribution histograms.
    pub hists: Vec<(MetricId, Histogram)>,
}

impl WallSnapshot {
    /// Sorts every section by metric identity (renderer precondition).
    pub fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.hists.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Looks up a counter by name and labels.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let id = MetricId::new(name, labels);
        self.counters
            .iter()
            .find(|(i, _)| *i == id)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name and labels.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let id = MetricId::new(name, labels);
        self.gauges.iter().find(|(i, _)| *i == id).map(|&(_, v)| v)
    }

    /// Looks up a histogram by name and labels.
    pub fn hist(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        let id = MetricId::new(name, labels);
        self.hists.iter().find(|(i, _)| *i == id).map(|(_, h)| h)
    }
}

/// The wall-clock registry: concurrent registration, lock-free
/// recording through handles, sorted snapshots.
#[derive(Debug, Default)]
pub struct WallRegistry {
    counters: Mutex<Vec<(MetricId, WallCounter)>>,
    gauges: Mutex<Vec<(MetricId, WallGauge)>>,
    hist_shards: [Mutex<Vec<(MetricId, WallHistogram)>>; SHARDS],
}

/// FNV-1a, for shard selection only.
fn name_shard(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % SHARDS
}

impl WallRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        WallRegistry::default()
    }

    /// The counter handle for `(name, labels)`, registered on first
    /// use. Subsequent calls return a handle to the same atomic.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> WallCounter {
        let id = MetricId::new(name, labels);
        let mut reg = locked(&self.counters);
        if let Some((_, h)) = reg.iter().find(|(i, _)| *i == id) {
            return h.clone();
        }
        let handle = WallCounter::default();
        reg.push((id, handle.clone()));
        handle
    }

    /// The gauge handle for `(name, labels)`, registered on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> WallGauge {
        let id = MetricId::new(name, labels);
        let mut reg = locked(&self.gauges);
        if let Some((_, h)) = reg.iter().find(|(i, _)| *i == id) {
            return h.clone();
        }
        let handle = WallGauge::default();
        reg.push((id, handle.clone()));
        handle
    }

    /// The histogram handle for `(name, labels)`, registered on first
    /// use. Registration is sharded by name hash; recording locks only
    /// the one histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> WallHistogram {
        let id = MetricId::new(name, labels);
        let mut shard = locked(&self.hist_shards[name_shard(name)]);
        if let Some((_, h)) = shard.iter().find(|(i, _)| *i == id) {
            return h.clone();
        }
        let handle = WallHistogram::default();
        shard.push((id, handle.clone()));
        handle
    }

    /// Convenience: add `by` to a counter by name (registration lock
    /// per call — cache the handle for hot paths).
    pub fn inc(&self, name: &str, labels: &[(&str, &str)], by: u64) {
        self.counter(name, labels).add(by);
    }

    /// Convenience: record one histogram sample by name.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.histogram(name, labels).observe(v);
    }

    /// A sorted point-in-time copy of everything registered.
    ///
    /// Each value is read atomically per metric; the snapshot as a
    /// whole is *not* a consistent cut across metrics (scrapes race
    /// with writers by design). Per-series monotonicity of counters
    /// still holds on every scrape, which is what the torn-read audit
    /// pins.
    pub fn snapshot(&self) -> WallSnapshot {
        let mut snap = WallSnapshot {
            counters: locked(&self.counters)
                .iter()
                .map(|(id, h)| (id.clone(), h.value()))
                .collect(),
            gauges: locked(&self.gauges)
                .iter()
                .map(|(id, h)| (id.clone(), h.value()))
                .collect(),
            hists: Vec::new(),
        };
        for shard in &self.hist_shards {
            for (id, h) in locked(shard).iter() {
                snap.hists.push((id.clone(), h.snapshot()));
            }
        }
        snap.sort();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_register_once() {
        let reg = WallRegistry::new();
        let a = reg.counter("queries", &[("outcome", "ok")]);
        let b = reg.counter("queries", &[("outcome", "ok")]);
        a.inc();
        b.add(2);
        assert_eq!(a.value(), 3);
        let other = reg.counter("queries", &[("outcome", "err")]);
        other.inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.counter("queries", &[("outcome", "ok")]), Some(3));
        assert_eq!(snap.counter("queries", &[("outcome", "err")]), Some(1));
        assert_eq!(snap.counter("queries", &[]), None);
    }

    #[test]
    fn gauges_last_write_wins() {
        let reg = WallRegistry::new();
        let g = reg.gauge("inflight", &[]);
        g.set(4.0);
        g.set(2.5);
        assert_eq!(reg.snapshot().gauge("inflight", &[]), Some(2.5));
    }

    #[test]
    fn histograms_record_into_log2_buckets() {
        let reg = WallRegistry::new();
        let h = reg.histogram("latency_ms", &[]);
        h.observe(3);
        h.observe(70);
        reg.observe("latency_ms", &[], 5);
        let snap = reg.snapshot();
        let hist = snap.hist("latency_ms", &[]).expect("registered");
        assert_eq!(hist.count(), 3);
        assert_eq!(hist.max(), 70);
    }

    #[test]
    fn snapshot_is_sorted_by_identity_not_registration_order() {
        let reg = WallRegistry::new();
        reg.counter("zeta", &[]).inc();
        reg.counter("alpha", &[("b", "2")]).inc();
        reg.counter("alpha", &[("b", "1")]).inc();
        let names: Vec<String> = reg
            .snapshot()
            .counters
            .iter()
            .map(|(id, _)| format!("{}/{:?}", id.name, id.labels))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let reg = std::sync::Arc::new(WallRegistry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.counter("hits", &[]);
                    let h = reg.histogram("wait_us", &[]);
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("join");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits", &[]), Some(8000));
        assert_eq!(snap.hist("wait_us", &[]).map(Histogram::count), Some(8000));
    }
}

//! Observability primitives for the hidden-service landscape study.
//!
//! The paper's results are measurements, and measurements need
//! instruments. This crate provides the three instruments the rest of
//! the workspace records into:
//!
//! * [`metrics`] — an insertion-ordered [`metrics::Registry`] of named
//!   counters, gauges and log2-bucketed [`metrics::Histogram`]s with
//!   deterministic p50/p90/p99 summaries;
//! * [`trace`] — a span tracer ([`trace::SpanRecorder`] per execution
//!   lane, merged into a [`trace::Trace`]) whose spans carry *both* a
//!   deterministic sim-clock interval and a wall-clock interval, with a
//!   Chrome `trace_event` JSON exporter for `chrome://tracing` and
//!   Perfetto;
//! * [`log`] — a leveled, human-readable progress stream on stderr
//!   (off / progress / debug) for long interactive runs;
//! * [`wall`] — a thread-safe **wall-clock** registry
//!   ([`wall::WallRegistry`]) for resident services, strictly separate
//!   from the deterministic [`metrics::Registry`];
//! * [`prom`] — a Prometheus text-exposition renderer and strict
//!   parser over [`wall::WallSnapshot`]s.
//!
//! Everything here follows the workspace's determinism discipline: the
//! sim-clock view of a trace and every metric value are pure functions
//! of the seed and the plan. Wall-clock data is carried separately so
//! the deterministic view can be exported byte-identically across runs
//! and machines ([`trace::TraceClock::Sim`]). JSON is hand-rolled (no
//! serde anywhere in the workspace) and emitted in insertion order.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod json;
pub mod log;
pub mod metrics;
pub mod prom;
pub mod trace;
pub mod wall;

pub use json::escape_json;
pub use log::{LogLevel, Logger};
pub use metrics::{Histogram, Registry};
pub use trace::{validate_json, Lane};
pub use trace::{EventKind, Span, SpanRecorder, Trace, TraceClock, TraceEvent};
pub use wall::{WallCounter, WallGauge, WallHistogram, WallRegistry, WallSnapshot};

//! Opportunistic deanonymisation of hidden-service clients (Sec. VI).
//!
//! The attacker (1) controls the responsible HSDirs of the target
//! service — by brute-forcing relay fingerprints just past the
//! service's daily descriptor IDs — and (2) runs a set of entry
//! guards. Each descriptor response from an attacker HSDir is wrapped
//! in a traffic signature; whenever the requesting client's entry
//! guard happens to be one of the attacker's, the guard sees the
//! signature and reads the client's IP address directly off the
//! connection.

use onion_crypto::descriptor::DescriptorId;
use onion_crypto::identity::{Fingerprint, SimIdentity};
use onion_crypto::onion::OnionAddress;
use onion_crypto::u160::U160;

use tor_sim::cells::TrafficSignature;
use tor_sim::clock::{DAY, HOUR};
use tor_sim::flags::RelayFlags;
use tor_sim::network::Network;
use tor_sim::relay::{Ipv4, Operator, RelayId};

/// Attack parameters.
#[derive(Clone, Debug)]
pub struct DeanonConfig {
    /// Number of attacker guard relays.
    pub guards: u32,
    /// Bandwidth of each attacker guard (kB/s) — drives the share of
    /// victim guard sets the attacker lands in.
    pub guard_bandwidth: u64,
    /// The cell signature armed on the attacker HSDirs.
    pub signature: TrafficSignature,
}

impl Default for DeanonConfig {
    fn default() -> Self {
        DeanonConfig {
            guards: 4,
            guard_bandwidth: 5_000,
            signature: TrafficSignature::default(),
        }
    }
}

/// The deployed attack.
#[derive(Debug)]
pub struct DeanonAttack {
    target: OnionAddress,
    guard_relays: Vec<RelayId>,
    hsdir_relays: Vec<RelayId>,
}

impl DeanonAttack {
    /// Creates the attacker's guard relays, backdated past the
    /// Guard-flag uptime threshold (a real attacker simply waits
    /// 8 days). Guards must be running *before* victims build their
    /// guard sets — the attack is opportunistic: it catches the
    /// clients whose long-lived guard choice already fell on the
    /// attacker.
    pub fn preposition_guards(net: &mut Network, config: &DeanonConfig) -> Vec<RelayId> {
        let now = net.time();
        let mut guard_relays = Vec::with_capacity(config.guards as usize);
        for g in 0..config.guards {
            let fp = Fingerprint::from_digest(onion_crypto::sha1::Sha1::digest(
                format!("deanon guard {g}").as_bytes(),
            ));
            let id = net.add_relay(
                format!("fastguard{g}"),
                Ipv4::new(203, 0, 113, 10 + g as u8),
                9001,
                SimIdentity::forge(fp),
                config.guard_bandwidth,
                Operator::Harvester,
            );
            net.relay_mut(id).last_restart = now - 30 * DAY;
            guard_relays.push(id);
        }
        net.revote();
        guard_relays
    }

    /// Deploys attacker guards and HSDir trackers against `target`.
    ///
    /// Convenience wrapper: prepositions guards and immediately deploys
    /// the trackers. When victims' guard sets already exist, call
    /// [`DeanonAttack::preposition_guards`] first (before the victims
    /// appear) and finish with [`DeanonAttack::deploy_with_guards`].
    pub fn deploy(net: &mut Network, target: OnionAddress, config: &DeanonConfig) -> Self {
        let guards = Self::preposition_guards(net, config);
        Self::deploy_with_guards(net, target, config, guards)
    }

    /// Deploys the 6 HSDir tracker relays (26 h backdated uptime,
    /// fingerprints just past the target's current descriptor IDs),
    /// arms the traffic signature, and takes ownership of the
    /// prepositioned `guard_relays`. Call [`DeanonAttack::reposition`]
    /// whenever the service's time period changes.
    pub fn deploy_with_guards(
        net: &mut Network,
        target: OnionAddress,
        config: &DeanonConfig,
        guard_relays: Vec<RelayId>,
    ) -> Self {
        let now = net.time();
        let mut hsdir_relays = Vec::with_capacity(6);
        for h in 0..6u32 {
            let fp = Fingerprint::from_digest(onion_crypto::sha1::Sha1::digest(
                format!("deanon hsdir {h}").as_bytes(),
            ));
            let id = net.add_relay(
                format!("tracker{h}"),
                Ipv4::new(203, 0, 114, 10 + h as u8),
                9001,
                SimIdentity::forge(fp),
                800,
                Operator::Harvester,
            );
            net.relay_mut(id).last_restart = now - 26 * HOUR;
            hsdir_relays.push(id);
        }

        net.arm_signature(target, config.signature.clone());
        let mut attack = DeanonAttack {
            target,
            guard_relays,
            hsdir_relays,
        };
        attack.reposition(net);
        net.revote();
        attack
    }

    /// The attacked service.
    pub fn target(&self) -> OnionAddress {
        self.target
    }

    /// The attacker's guard relays.
    pub fn guards(&self) -> &[RelayId] {
        &self.guard_relays
    }

    /// The attacker's HSDir tracker relays.
    pub fn hsdirs(&self) -> &[RelayId] {
        &self.hsdir_relays
    }

    /// Rotates the tracker relays' fingerprints to sit immediately
    /// after the target's current descriptor IDs (3 per replica) —
    /// exactly the behaviour the Sec. VII detector later finds in the
    /// consensus archive.
    pub fn reposition(&mut self, net: &mut Network) {
        let ids = DescriptorId::pair_at(self.target, net.time().unix());
        for (r, &relay) in self.hsdir_relays.iter().enumerate() {
            let replica = r / 3;
            let slot = (r % 3) as u64;
            let pos = ids[replica]
                .to_u160()
                .wrapping_add(U160::from_u64(slot + 1));
            let identity = SimIdentity::forge(Fingerprint::from_digest(pos.into()));
            net.relay_mut(relay).rotate_identity(identity);
        }
        net.revote();
    }

    /// Probability that a *single* descriptor fetch is caught: the
    /// chance the victim's circuit uses an attacker guard, estimated
    /// from consensus guard bandwidth (guard sets are sampled
    /// bandwidth-weighted).
    pub fn expected_catch_rate(&self, net: &Network) -> f64 {
        let total: u64 = net.consensus().guard_bandwidth();
        if total == 0 {
            return 0.0;
        }
        let ours: u64 = self
            .guard_relays
            .iter()
            .filter_map(|&r| net.consensus().entry(net.relay(r).fingerprint()))
            .filter(|e| e.flags.contains(RelayFlags::GUARD))
            .map(|e| e.bandwidth)
            .sum();
        ours as f64 / total as f64
    }

    /// Whether the attacker currently holds all six responsible HSDir
    /// slots of the target.
    pub fn controls_responsible_set(&self, net: &Network) -> bool {
        let responsible = net
            .consensus()
            .responsible_for_service(self.target, net.time().unix());
        responsible.len() == 6
            && responsible
                .iter()
                .all(|e| self.hsdir_relays.contains(&e.relay))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tor_sim::clock::SimTime;
    use tor_sim::network::{FetchOutcome, NetworkBuilder};

    fn setup() -> (Network, DeanonAttack, OnionAddress) {
        let mut net = NetworkBuilder::new()
            .relays(120)
            .seed(31)
            .start(SimTime::from_ymd(2013, 2, 1))
            .build();
        let target = OnionAddress::from_pubkey(b"watched hidden service");
        net.register_service(target, true);
        net.advance_hours(1);
        let attack = DeanonAttack::deploy(&mut net, target, &DeanonConfig::default());
        net.advance_hours(1);
        (net, attack, target)
    }

    #[test]
    fn trackers_take_all_six_slots() {
        let (net, attack, _) = setup();
        assert!(attack.controls_responsible_set(&net));
    }

    #[test]
    fn guards_enter_consensus_with_guard_flag() {
        let (net, attack, _) = setup();
        for &g in attack.guards() {
            let entry = net
                .consensus()
                .entry(net.relay(g).fingerprint())
                .expect("guard listed");
            assert!(entry.flags.contains(RelayFlags::GUARD));
        }
    }

    #[test]
    fn victims_with_attacker_guard_are_deanonymised() {
        let (mut net, attack, target) = setup();
        let mut caught = 0u32;
        let n = 60;
        for i in 0..n {
            let ip = Ipv4::new(85, 1 + (i / 200) as u8, (i % 200) as u8 + 1, 9);
            let client = net.add_client(ip);
            assert_eq!(net.client_fetch(client, target), FetchOutcome::Found);
        }
        let observations = net.take_guard_observations();
        for obs in &observations {
            assert!(attack.guards().contains(&obs.guard));
            assert_eq!(obs.onion, target);
            caught += 1;
        }
        // The expected rate is the attacker's guard-bandwidth share;
        // with 4 × 5000 kB/s guards it is well above zero.
        let expected = attack.expected_catch_rate(&net);
        assert!(expected > 0.02, "expected {expected}");
        assert!(
            caught > 0,
            "some victims caught (expected ~{expected}/fetch)"
        );
    }

    #[test]
    fn repositioning_follows_rotation() {
        let (mut net, mut attack, _) = setup();
        assert!(attack.controls_responsible_set(&net));
        net.advance_hours(25); // cross the period boundary
                               // After rotation, trackers point at stale positions...
        attack.reposition(&mut net);
        // ... until repositioned.
        assert!(attack.controls_responsible_set(&net));
    }

    #[test]
    fn fetch_for_other_services_not_observed() {
        let (mut net, _attack, _) = setup();
        let other = OnionAddress::from_pubkey(b"innocent service");
        net.register_service(other, true);
        net.advance_hours(1);
        let client = net.add_client(Ipv4::new(9, 8, 7, 6));
        let _ = net.client_fetch(client, other);
        assert!(net.take_guard_observations().is_empty());
    }
}

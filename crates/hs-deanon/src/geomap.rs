//! Geographic mapping of deanonymised clients (Fig. 3).
//!
//! The paper plotted the world-wide locations of clients of one of the
//! Goldnet hidden services. We reproduce the same join — observed
//! client IP → country — against the synthetic geolocation database,
//! plus an ASCII world map for terminal output.

use std::collections::HashMap;

use tor_sim::network::GuardObservation;

use hs_world::geo::{Country, GeoDb};

/// The per-country census of deanonymised clients.
#[derive(Clone, Debug, Default)]
pub struct GeoMap {
    /// (country code, country name, unique clients).
    rows: Vec<(&'static str, &'static str, u32)>,
    /// Country → representative coordinates and count (for plotting).
    points: Vec<(f64, f64, u32)>,
    /// Total unique client IPs mapped.
    total: u32,
}

impl GeoMap {
    /// Builds the map from guard observations (deduplicating client
    /// IPs).
    pub fn build(db: &GeoDb, observations: &[GuardObservation]) -> Self {
        let mut unique_ips: Vec<_> = observations.iter().map(|o| o.client_ip).collect();
        unique_ips.sort();
        unique_ips.dedup();

        let mut counts: HashMap<&'static str, (&'static Country, u32)> = HashMap::new();
        for ip in &unique_ips {
            let c = db.lookup(*ip);
            counts.entry(c.code).or_insert((c, 0)).1 += 1;
        }
        // Sort both projections: map iteration order is not
        // deterministic and these are artifact fields.
        let mut rows: Vec<_> = counts.values().map(|(c, n)| (c.code, c.name, *n)).collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        let mut entries: Vec<_> = counts.values().collect();
        entries.sort_by_key(|(c, _)| c.code);
        let points = entries
            .into_iter()
            .map(|(c, n)| (c.lat, c.lon, *n))
            .collect();
        GeoMap {
            rows,
            points,
            total: unique_ips.len() as u32,
        }
    }

    /// Country histogram rows, descending by client count.
    pub fn rows(&self) -> &[(&'static str, &'static str, u32)] {
        &self.rows
    }

    /// Total unique clients mapped.
    pub fn total_clients(&self) -> u32 {
        self.total
    }

    /// Number of countries with at least one client.
    pub fn country_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders an ASCII world map (equirectangular projection) with
    /// density markers: `.` 1+, `o` 5+, `O` 20+, `@` 100+ clients.
    pub fn ascii_map(&self) -> String {
        const W: usize = 72;
        const H: usize = 24;
        let mut grid = vec![vec![' '; W]; H];
        for &(lat, lon, n) in &self.points {
            let x = (((lon + 180.0) / 360.0) * (W as f64 - 1.0)).round() as usize;
            let y = (((90.0 - lat) / 180.0) * (H as f64 - 1.0)).round() as usize;
            let marker = match n {
                0 => continue,
                1..=4 => '.',
                5..=19 => 'o',
                20..=99 => 'O',
                _ => '@',
            };
            grid[y.min(H - 1)][x.min(W - 1)] = marker;
        }
        let mut out = String::with_capacity((W + 1) * H);
        out.push('+');
        out.push_str(&"-".repeat(W));
        out.push_str("+\n");
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push_str("|\n");
        }
        out.push('+');
        out.push_str(&"-".repeat(W));
        out.push('+');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_crypto::onion::OnionAddress;
    use tor_sim::clock::SimTime;
    use tor_sim::relay::{Ipv4, RelayId};

    fn obs(ip: Ipv4) -> GuardObservation {
        GuardObservation {
            time: SimTime::from_ymd(2013, 2, 5),
            guard: RelayId(0),
            client_ip: ip,
            onion: OnionAddress::from_pubkey(b"goldnet"),
        }
    }

    #[test]
    fn deduplicates_client_ips() {
        let db = GeoDb::new();
        let ip = Ipv4::new(10, 1, 2, 3);
        let map = GeoMap::build(&db, &[obs(ip), obs(ip), obs(ip)]);
        assert_eq!(map.total_clients(), 1);
    }

    #[test]
    fn counts_by_country() {
        let db = GeoDb::new();
        let observations: Vec<GuardObservation> = (0..50u32)
            .map(|i| obs(Ipv4::new((1 + i * 4 % 220) as u8, i as u8, 1, 1)))
            .collect();
        let map = GeoMap::build(&db, &observations);
        assert_eq!(map.total_clients(), 50);
        let sum: u32 = map.rows().iter().map(|r| r.2).sum();
        assert_eq!(sum, 50);
        assert!(map.country_count() > 3);
        // Rows sorted descending.
        for pair in map.rows().windows(2) {
            assert!(pair[0].2 >= pair[1].2);
        }
    }

    #[test]
    fn ascii_map_renders() {
        let db = GeoDb::new();
        let observations: Vec<GuardObservation> = (0..200u32)
            .map(|i| obs(Ipv4::new((1 + i * 7 % 220) as u8, (i % 255) as u8, 3, 4)))
            .collect();
        let map = GeoMap::build(&db, &observations);
        let art = map.ascii_map();
        assert!(art.lines().count() >= 24);
        assert!(art.contains('.') || art.contains('o') || art.contains('O'));
    }

    #[test]
    fn empty_observations() {
        let db = GeoDb::new();
        let map = GeoMap::build(&db, &[]);
        assert_eq!(map.total_clients(), 0);
        assert_eq!(map.country_count(), 0);
        assert!(!map.ascii_map().is_empty());
    }
}

//! Opportunistic deanonymisation of Tor hidden-service clients
//! (Sec. VI of Biryukov et al., ICDCS 2014).
//!
//! The attack combines two footholds: control of the target service's
//! responsible HSDirs (gained by brute-forcing relay fingerprints just
//! past the daily descriptor IDs) and a set of attacker entry guards.
//! Descriptor responses are wrapped in a cell-level traffic signature;
//! when a victim's circuit happens to enter through an attacker guard,
//! the guard detects the signature and reads the victim's IP address.
//!
//! - [`attack`] — deployment, daily fingerprint repositioning, catch
//!   rates (analytic and measured);
//! - [`geomap`] — the Fig. 3 country census and ASCII world map.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod attack;
pub mod geomap;

pub use attack::{DeanonAttack, DeanonConfig};
pub use geomap::GeoMap;

//! Simulated RSA identities and relay fingerprints.
//!
//! In the real 2013 Tor network every relay and every hidden service owns
//! an RSA-1024 key pair; the relay *fingerprint* is the SHA-1 digest of the
//! DER-encoded public key. Nothing in the protocol logic this repository
//! reproduces ever performs RSA operations — the attacks only care about
//! *where a key's fingerprint lands on the 160-bit ring* and that key
//! generation is cheap enough to brute-force placements. We therefore
//! simulate a key pair as an opaque blob of deterministic random bytes and
//! hash it for real.
//!
//! The one capability the harvesting/tracking attackers need — generating
//! keys until the fingerprint falls just before a chosen ring position —
//! is modelled by [`SimIdentity::brute_force_before`], which reports the
//! number of candidate keys tried so the cost stays observable.

use core::fmt;

use rand::{Rng, RngExt};

use crate::sha1::{Digest, Sha1};
use crate::u160::U160;

/// Size of a simulated DER-encoded RSA-1024 public key.
///
/// Real keys are ~140 bytes; the exact length is irrelevant to the
/// protocol, only the digest of the bytes matters.
pub const PUBKEY_LEN: usize = 140;

/// SHA-1 digest of a public key: the identity of a relay (and the
/// permanent identifier a hidden service's onion address is derived from).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(Digest);

impl Fingerprint {
    /// Wraps a raw digest as a fingerprint.
    pub fn from_digest(d: Digest) -> Self {
        Fingerprint(d)
    }

    /// Computes the fingerprint of a public key blob.
    pub fn of_pubkey(pubkey: &[u8]) -> Self {
        Fingerprint(Sha1::digest(pubkey))
    }

    /// The underlying digest.
    pub fn digest(&self) -> Digest {
        self.0
    }

    /// The fingerprint as a ring position.
    pub fn to_u160(self) -> U160 {
        U160::from(self.0)
    }

    /// Lowercase hex rendering (40 chars).
    pub fn to_hex(&self) -> String {
        self.0.to_hex()
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({})", &self.0.to_hex()[..12])
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.to_hex())
    }
}

impl From<Digest> for Fingerprint {
    fn from(d: Digest) -> Self {
        Fingerprint(d)
    }
}

impl From<Fingerprint> for U160 {
    fn from(fp: Fingerprint) -> Self {
        fp.to_u160()
    }
}

/// A simulated RSA identity key pair.
///
/// # Examples
///
/// ```
/// use onion_crypto::identity::SimIdentity;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let id = SimIdentity::generate(&mut rng);
/// assert_eq!(id.fingerprint(), SimIdentity::from_pubkey(id.public_key().to_vec()).fingerprint());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SimIdentity {
    pubkey: Vec<u8>,
    fingerprint: Fingerprint,
}

impl SimIdentity {
    /// Generates a fresh key pair from `rng`.
    pub fn generate(rng: &mut impl Rng) -> Self {
        let mut pubkey = vec![0u8; PUBKEY_LEN];
        rng.fill(&mut pubkey[..]);
        Self::from_pubkey(pubkey)
    }

    /// Builds an identity from existing public-key bytes.
    pub fn from_pubkey(pubkey: Vec<u8>) -> Self {
        let fingerprint = Fingerprint::of_pubkey(&pubkey);
        SimIdentity {
            pubkey,
            fingerprint,
        }
    }

    /// The public-key bytes.
    pub fn public_key(&self) -> &[u8] {
        &self.pubkey
    }

    /// The SHA-1 fingerprint of the public key.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Brute-forces key pairs until one's fingerprint lands in the ring
    /// interval `(target − max_gap, target]`, i.e. *just before or at* the
    /// target position so the key's owner becomes one of the relays
    /// immediately following... — more precisely, Tor's responsible-HSDir
    /// rule picks the fingerprints *following* the descriptor ID, so an
    /// attacker wants a fingerprint in `(descriptor_id, descriptor_id +
    /// max_gap]`. This method searches that interval.
    ///
    /// Returns the identity and the number of candidate keys generated —
    /// the attacker's offline work factor. This mirrors what the paper's
    /// trackers did: §VII observes relays whose fingerprints sit at ring
    /// distances thousands of times smaller than the average gap.
    ///
    /// # Panics
    ///
    /// Panics if `max_gap` is zero.
    pub fn brute_force_after(target: U160, max_gap: U160, rng: &mut impl Rng) -> (Self, u64) {
        assert!(max_gap != U160::ZERO, "max_gap must be nonzero");
        let mut tries = 0u64;
        loop {
            tries += 1;
            let id = Self::generate(rng);
            let dist = target.distance_to(id.fingerprint.to_u160());
            if dist != U160::ZERO && dist <= max_gap {
                return (id, tries);
            }
            // Safety valve: with a sane max_gap the expected number of
            // tries is 2^160 / max_gap; tests use wide gaps.
            if tries == u64::MAX {
                unreachable!("brute force exhausted");
            }
        }
    }

    /// Constructs an identity whose fingerprint is exactly `fp`.
    ///
    /// Real attackers cannot invert SHA-1; they brute-force many keys
    /// (see [`SimIdentity::brute_force_after`]). The forged constructor
    /// exists so large simulations can *place* attacker relays at the ring
    /// positions a real brute force would have found, without spending the
    /// work factor inside the simulation. The public-key bytes of a forged
    /// identity are empty, marking it as synthetic.
    pub fn forge(fp: Fingerprint) -> Self {
        SimIdentity {
            pubkey: Vec::new(),
            fingerprint: fp,
        }
    }

    /// Whether this identity was created by [`SimIdentity::forge`].
    pub fn is_forged(&self) -> bool {
        self.pubkey.is_empty()
    }
}

impl fmt::Debug for SimIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimIdentity")
            .field("fingerprint", &self.fingerprint)
            .field("forged", &self.is_forged())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_generation() {
        let a = SimIdentity::generate(&mut StdRng::seed_from_u64(42));
        let b = SimIdentity::generate(&mut StdRng::seed_from_u64(42));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = SimIdentity::generate(&mut StdRng::seed_from_u64(43));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_is_sha1_of_pubkey() {
        let mut rng = StdRng::seed_from_u64(1);
        let id = SimIdentity::generate(&mut rng);
        assert_eq!(id.fingerprint().digest(), Sha1::digest(id.public_key()));
    }

    #[test]
    fn brute_force_lands_in_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let target = U160::from(Sha1::digest(b"descriptor"));
        // A gap of 2^160/8 succeeds in ~8 expected tries.
        let gap = U160::MAX.div_u64(8);
        let (id, tries) = SimIdentity::brute_force_after(target, gap, &mut rng);
        let dist = target.distance_to(id.fingerprint().to_u160());
        assert!(dist <= gap && dist != U160::ZERO);
        assert!(tries >= 1);
        assert!(!id.is_forged());
    }

    #[test]
    fn forged_identity() {
        let fp = Fingerprint::from_digest(Sha1::digest(b"placed"));
        let id = SimIdentity::forge(fp);
        assert!(id.is_forged());
        assert_eq!(id.fingerprint(), fp);
    }

    #[test]
    #[should_panic(expected = "max_gap must be nonzero")]
    fn brute_force_zero_gap_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = SimIdentity::brute_force_after(U160::ZERO, U160::ZERO, &mut rng);
    }
}

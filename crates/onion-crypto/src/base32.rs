//! RFC 4648 base32 encoding, in the lowercase, unpadded flavour used by
//! `.onion` addresses.
//!
//! Tor derives a v2 onion address by base32-encoding the first 10 bytes of
//! the SHA-1 digest of the service's public key, yielding the familiar
//! 16-character names like `silkroadvb5piz3r`.
//!
//! # Examples
//!
//! ```
//! use onion_crypto::base32;
//!
//! assert_eq!(base32::encode(b"hello"), "nbswy3dp");
//! assert_eq!(base32::decode("nbswy3dp").unwrap(), b"hello");
//! ```

use core::fmt;

const ALPHABET: &[u8; 32] = b"abcdefghijklmnopqrstuvwxyz234567";

/// Encodes `data` as lowercase, unpadded RFC 4648 base32.
pub fn encode(data: impl AsRef<[u8]>) -> String {
    let data = data.as_ref();
    let mut out = String::with_capacity(data.len().div_ceil(5) * 8);
    let mut acc: u64 = 0;
    let mut bits: u32 = 0;
    for &byte in data {
        acc = (acc << 8) | u64::from(byte);
        bits += 8;
        while bits >= 5 {
            bits -= 5;
            out.push(ALPHABET[((acc >> bits) & 0x1f) as usize] as char);
        }
    }
    if bits > 0 {
        out.push(ALPHABET[((acc << (5 - bits)) & 0x1f) as usize] as char);
    }
    out
}

/// Decodes lowercase or uppercase unpadded base32.
///
/// Trailing `=` padding is accepted and ignored so that strings produced by
/// other encoders round-trip.
///
/// # Errors
///
/// Returns [`DecodeError`] when a character outside the base32 alphabet is
/// encountered.
pub fn decode(s: &str) -> Result<Vec<u8>, DecodeError> {
    let s = s.trim_end_matches('=');
    let mut out = Vec::with_capacity(s.len() * 5 / 8);
    let mut acc: u64 = 0;
    let mut bits: u32 = 0;
    for (pos, ch) in s.bytes().enumerate() {
        let val = match ch {
            b'a'..=b'z' => ch - b'a',
            b'A'..=b'Z' => ch - b'A',
            b'2'..=b'7' => ch - b'2' + 26,
            _ => {
                return Err(DecodeError {
                    position: pos,
                    byte: ch,
                })
            }
        };
        acc = (acc << 5) | u64::from(val);
        bits += 5;
        if bits >= 8 {
            bits -= 8;
            out.push(((acc >> bits) & 0xff) as u8);
        }
    }
    Ok(out)
}

/// Error returned by [`decode`] when input contains a non-base32 character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset of the offending character.
    pub position: usize,
    /// The offending byte.
    pub byte: u8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid base32 character {:?} at position {}",
            self.byte as char, self.position
        )
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        // RFC 4648 test vectors, lowered and unpadded.
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "my");
        assert_eq!(encode(b"fo"), "mzxq");
        assert_eq!(encode(b"foo"), "mzxw6");
        assert_eq!(encode(b"foob"), "mzxw6yq");
        assert_eq!(encode(b"fooba"), "mzxw6ytb");
        assert_eq!(encode(b"foobar"), "mzxw6ytboi");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("").unwrap(), b"");
        assert_eq!(decode("mzxw6ytboi").unwrap(), b"foobar");
        assert_eq!(decode("MZXW6YTBOI").unwrap(), b"foobar");
        assert_eq!(decode("mzxw6ytboi======").unwrap(), b"foobar");
    }

    #[test]
    fn decode_rejects_invalid() {
        let err = decode("mzx0").unwrap_err();
        assert_eq!(err.position, 3);
        assert_eq!(err.byte, b'0');
        assert!(decode("a!b").is_err());
        assert!(decode("abc1").is_err()); // '1' is not in the alphabet
    }

    #[test]
    fn onion_length() {
        // 10 bytes encode to exactly 16 characters — the v2 onion length.
        assert_eq!(encode([0u8; 10]).len(), 16);
        assert_eq!(encode([0xffu8; 10]).len(), 16);
    }

    #[test]
    fn roundtrip_all_lengths() {
        for len in 0..64usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data, "len {len}");
        }
    }
}

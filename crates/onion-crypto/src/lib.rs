//! Cryptographic identifiers of the Tor v2 hidden-service protocol.
//!
//! This crate is the foundation of the `tor-hs-landscape` workspace, a
//! reproduction of *"Content and popularity analysis of Tor hidden
//! services"* (Biryukov, Pustogarov, Thill, Weinmann, ICDCS 2014). It
//! implements, from scratch, every identifier derivation the paper's
//! measurement pipelines depend on:
//!
//! - [`sha1`] — the SHA-1 digest (FIPS 180-4), Tor's v2 workhorse hash;
//! - [`base32`] — RFC 4648 base32, the `.onion` address encoding;
//! - [`u160`] — 160-bit ring arithmetic for HSDir ring positions;
//! - [`identity`] — simulated RSA identities and relay fingerprints;
//! - [`onion`] — v2 onion addresses and permanent identifiers;
//! - [`descriptor`] — descriptor IDs, replicas and the 24 h rotation
//!   schedule;
//! - [`hsdesc`] — the v2 descriptor document format (encode/parse with
//!   signature and consistency checks).
//!
//! Only key *generation* is simulated (opaque random bytes instead of RSA
//! moduli); every hash and every derived identifier is computed exactly as
//! the 2013 Tor network computed it, so ring placement, descriptor
//! rotation and the paper's statistical detectors behave faithfully.
//!
//! # Examples
//!
//! Derive a service's onion address and its current descriptor IDs:
//!
//! ```
//! use onion_crypto::{identity::SimIdentity, onion::OnionAddress,
//!                    descriptor::DescriptorId};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(2013);
//! let key = SimIdentity::generate(&mut rng);
//! let addr = OnionAddress::from_pubkey(key.public_key());
//! let now = 1_359_936_000; // 2013-02-04, the paper's harvest date
//! let [replica0, replica1] = DescriptorId::pair_at(addr, now);
//! assert_ne!(replica0, replica1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod base32;
pub mod descriptor;
pub mod hsdesc;
pub mod identity;
pub mod onion;
pub mod sha1;
pub mod u160;

pub use descriptor::{DescriptorId, Replica, TimePeriod};
pub use identity::{Fingerprint, SimIdentity};
pub use onion::{OnionAddress, PermanentId};
pub use sha1::{Digest, Sha1};
pub use u160::U160;

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::{base32, sha1::Sha1, u160::U160};

    proptest! {
        #[test]
        fn base32_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let enc = base32::encode(&data);
            prop_assert_eq!(base32::decode(&enc).unwrap(), data);
        }

        #[test]
        fn base32_output_alphabet(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let enc = base32::encode(&data);
            prop_assert!(enc.bytes().all(|c| c.is_ascii_lowercase() || (b'2'..=b'7').contains(&c)));
        }

        #[test]
        fn sha1_incremental_equals_oneshot(
            data in proptest::collection::vec(any::<u8>(), 0..512),
            split in 0usize..512,
        ) {
            let split = split.min(data.len());
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), Sha1::digest(&data));
        }

        #[test]
        fn u160_add_sub_inverse(a in any::<[u8; 20]>(), b in any::<[u8; 20]>()) {
            let a = U160::from_bytes(&a);
            let b = U160::from_bytes(&b);
            prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
        }

        #[test]
        fn u160_distance_antisymmetry(a in any::<[u8; 20]>(), b in any::<[u8; 20]>()) {
            let a = U160::from_bytes(&a);
            let b = U160::from_bytes(&b);
            let d1 = a.distance_to(b);
            let d2 = b.distance_to(a);
            // Forward + backward distances sum to 0 mod 2^160.
            prop_assert_eq!(d1.wrapping_add(d2), U160::ZERO);
        }

        #[test]
        fn u160_bytes_roundtrip(a in any::<[u8; 20]>()) {
            prop_assert_eq!(U160::from_bytes(&a).to_bytes(), a);
        }

        #[test]
        fn u160_ordering_matches_byte_ordering(a in any::<[u8; 20]>(), b in any::<[u8; 20]>()) {
            let (ua, ub) = (U160::from_bytes(&a), U160::from_bytes(&b));
            prop_assert_eq!(ua.cmp(&ub), a.cmp(&b));
        }
    }
}

//! A from-scratch implementation of the SHA-1 message digest (FIPS 180-4).
//!
//! Tor's v2 hidden-service machinery is built entirely on SHA-1: relay
//! fingerprints, onion addresses and descriptor identifiers are all (parts
//! of) SHA-1 digests. The simulator therefore carries its own
//! implementation rather than pulling in an external dependency.
//!
//! SHA-1 is cryptographically broken for collision resistance, but the
//! protocol logic reproduced here only relies on it as a deterministic
//! 160-bit map, exactly as the 2013 Tor network did.
//!
//! # Examples
//!
//! ```
//! use onion_crypto::sha1::Sha1;
//!
//! let digest = Sha1::digest(b"abc");
//! assert_eq!(
//!     digest.to_hex(),
//!     "a9993e364706816aba3e25717850c26c9cd0d89d"
//! );
//! ```

use core::fmt;

/// Length of a SHA-1 digest in bytes.
pub const DIGEST_LEN: usize = 20;

/// A 160-bit SHA-1 digest.
///
/// The inner bytes are exposed through [`Digest::as_bytes`] and
/// [`Digest::into_bytes`]; the type mainly exists so digests render as hex
/// in debug output and can be compared/ordered as ring positions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub(crate) [u8; DIGEST_LEN]);

impl Digest {
    /// Wraps raw digest bytes.
    pub fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }

    /// Borrows the digest bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Consumes the digest, returning the raw bytes.
    pub fn into_bytes(self) -> [u8; DIGEST_LEN] {
        self.0
    }

    /// Lowercase hexadecimal rendering of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in &self.0 {
            s.push(HEX[(b >> 4) as usize] as char);
            s.push(HEX[(b & 0xf) as usize] as char);
        }
        s
    }

    /// Parses a 40-character hex string into a digest.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDigestError`] if the input is not exactly 40 hex
    /// characters.
    pub fn parse_hex(s: &str) -> Result<Self, ParseDigestError> {
        let bytes = s.as_bytes();
        if bytes.len() != DIGEST_LEN * 2 {
            return Err(ParseDigestError);
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, chunk) in bytes.chunks_exact(2).enumerate() {
            let hi = hex_val(chunk[0]).ok_or(ParseDigestError)?;
            let lo = hex_val(chunk[1]).ok_or(ParseDigestError)?;
            out[i] = (hi << 4) | lo;
        }
        Ok(Digest(out))
    }
}

const HEX: &[u8; 16] = b"0123456789abcdef";

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }
}

/// Error returned by [`Digest::parse_hex`] for malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseDigestError;

impl fmt::Display for ParseDigestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid sha-1 digest hex string")
    }
}

impl std::error::Error for ParseDigestError {}

/// Incremental SHA-1 hasher.
///
/// Use [`Sha1::digest`] for one-shot hashing, or [`Sha1::new`] +
/// [`Sha1::update`] + [`Sha1::finalize`] for streaming input.
///
/// # Examples
///
/// ```
/// use onion_crypto::sha1::Sha1;
///
/// let mut hasher = Sha1::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// assert_eq!(hasher.finalize(), Sha1::digest(b"hello world"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the standard initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// One-shot convenience: hash `data` and return the digest.
    pub fn digest(data: impl AsRef<[u8]>) -> Digest {
        let mut h = Sha1::new();
        h.update(data.as_ref());
        h.finalize()
    }

    /// Absorbs more message bytes.
    pub fn update(&mut self, data: impl AsRef<[u8]>) {
        let mut data = data.as_ref();
        self.len = self.len.wrapping_add(data.len() as u64);

        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            } else {
                // Buffer still partial ⇒ the input was fully consumed;
                // falling through would clobber buf_len with an empty
                // remainder.
                return;
            }
        }

        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Finishes the computation and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit length.
        self.update([0x80u8]);
        while self.buf_len != 56 {
            self.update([0u8]);
        }
        // `update` would adjust `len`; write the length block directly.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;

        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        Sha1::digest(data).to_hex()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 17, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn length_boundary_padding() {
        // Messages around the 55/56/64-byte padding boundaries.
        for len in 50..70 {
            let data = vec![0xabu8; len];
            // Compare against a second independent run; the digest must be
            // stable and the hasher must not panic on any boundary.
            assert_eq!(Sha1::digest(&data), Sha1::digest(&data));
        }
        assert_eq!(hex(&[0u8; 64]), "c8d7d0ef0eedfa82d2ea1aa592845b9a6d4b02b7");
    }

    #[test]
    fn digest_hex_roundtrip() {
        let d = Sha1::digest(b"roundtrip");
        let parsed = Digest::parse_hex(&d.to_hex()).unwrap();
        assert_eq!(d, parsed);
    }

    #[test]
    fn parse_hex_rejects_bad_input() {
        assert!(Digest::parse_hex("abc").is_err());
        assert!(Digest::parse_hex(&"g".repeat(40)).is_err());
        let ok = "a".repeat(40);
        assert!(Digest::parse_hex(&ok).is_ok());
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let d = Sha1::digest(b"x");
        assert!(!format!("{d}").is_empty());
        assert!(format!("{d:?}").starts_with("Digest("));
    }
}

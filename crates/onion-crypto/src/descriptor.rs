//! v2 hidden-service descriptor identifiers and the 24-hour rotation
//! schedule (rend-spec-v2 §1.3).
//!
//! Every hidden service periodically publishes two *descriptors* (one per
//! replica). Each descriptor is stored under a *descriptor ID* that
//! changes every 24 hours:
//!
//! ```text
//! descriptor-id = SHA1(permanent-id | secret-id-part)
//! secret-id-part = SHA1(time-period | replica)        // no cookie: public service
//! time-period = (current-time + permanent-id-byte-0 * 86400 / 256) / 86400
//! ```
//!
//! The per-service offset derived from `permanent-id-byte-0` staggers
//! rotation moments across services so all descriptors don't rotate at
//! midnight simultaneously. The popularity measurement of Sec. V resolves
//! observed descriptor IDs back to onion addresses by recomputing this
//! forward map for every collected address over a window of days.

use core::fmt;

use crate::onion::{OnionAddress, PermanentId};
use crate::sha1::{Digest, Sha1};
use crate::u160::U160;

/// Seconds in a time period (24 hours).
pub const TIME_PERIOD_SECS: u64 = 86_400;

/// Number of descriptor replicas a service publishes per period.
pub const REPLICAS: u8 = 2;

/// Number of consecutive HSDir fingerprints responsible per replica.
pub const HSDIRS_PER_REPLICA: usize = 3;

/// A descriptor replica index (`0` or `1`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Replica(u8);

impl Replica {
    /// Both replicas, in order.
    pub const ALL: [Replica; REPLICAS as usize] = [Replica(0), Replica(1)];

    /// Creates a replica index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= REPLICAS`.
    pub fn new(index: u8) -> Self {
        assert!(index < REPLICAS, "replica index out of range");
        Replica(index)
    }

    /// The raw index.
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Replica {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "replica {}", self.0)
    }
}

/// A time-period number: which 24-hour window a descriptor ID is valid
/// for, *as seen by one particular service* (periods are per-service
/// staggered).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimePeriod(pub u64);

impl TimePeriod {
    /// Computes the time period for a service at a Unix timestamp.
    pub fn at(now_unix: u64, id: PermanentId) -> Self {
        TimePeriod((now_unix + u64::from(id.byte0()) * TIME_PERIOD_SECS / 256) / TIME_PERIOD_SECS)
    }

    /// The Unix timestamp at which this service's period began.
    ///
    /// Period 0 of a service with a nonzero `byte0` offset nominally
    /// begins *before* the Unix epoch; the subtraction saturates to 0
    /// instead of underflowing (`TimePeriod::at(0, id)` is period 0 for
    /// every service, so the clamped start stays consistent with `at`).
    pub fn start_unix(self, id: PermanentId) -> u64 {
        (self.0 * TIME_PERIOD_SECS).saturating_sub(u64::from(id.byte0()) * TIME_PERIOD_SECS / 256)
    }

    /// The next period.
    pub fn next(self) -> Self {
        TimePeriod(self.0 + 1)
    }
}

impl fmt::Display for TimePeriod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "period {}", self.0)
    }
}

/// A v2 descriptor identifier: the ring position a descriptor is stored
/// at for one (service, period, replica) triple.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DescriptorId(Digest);

impl DescriptorId {
    /// Computes `SHA1(permanent-id | SHA1(time-period | replica))`.
    pub fn compute(id: PermanentId, period: TimePeriod, replica: Replica) -> Self {
        let mut inner = Sha1::new();
        inner.update((period.0 as u32).to_be_bytes());
        inner.update([replica.index()]);
        let secret_id_part = inner.finalize();

        let mut outer = Sha1::new();
        outer.update(id.as_bytes());
        outer.update(secret_id_part.as_bytes());
        DescriptorId(outer.finalize())
    }

    /// Computes both replicas' descriptor IDs for a service at `now`.
    pub fn pair_at(onion: OnionAddress, now_unix: u64) -> [DescriptorId; REPLICAS as usize] {
        let id = onion.permanent_id();
        let period = TimePeriod::at(now_unix, id);
        Replica::ALL.map(|r| DescriptorId::compute(id, period, r))
    }

    /// Wraps a raw digest (e.g. an ID observed in a request log).
    pub fn from_digest(d: Digest) -> Self {
        DescriptorId(d)
    }

    /// The underlying digest.
    pub fn digest(&self) -> Digest {
        self.0
    }

    /// The ID as a ring position.
    pub fn to_u160(self) -> U160 {
        U160::from(self.0)
    }

    /// Base32 rendering, as descriptor IDs appear in HSDir request logs.
    pub fn to_base32(self) -> String {
        crate::base32::encode(self.0.as_bytes())
    }
}

impl fmt::Debug for DescriptorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DescriptorId({})", &self.0.to_hex()[..12])
    }
}

impl fmt::Display for DescriptorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_base32())
    }
}

impl From<DescriptorId> for U160 {
    fn from(d: DescriptorId) -> Self {
        d.to_u160()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onion::OnionAddress;

    fn onion(seed: &[u8]) -> OnionAddress {
        OnionAddress::from_pubkey(seed)
    }

    #[test]
    fn period_changes_every_24h() {
        let o = onion(b"svc");
        let id = o.permanent_id();
        let t0 = 1_359_936_000u64; // 2013-02-04 00:00 UTC
        let p0 = TimePeriod::at(t0, id);
        assert_eq!(TimePeriod::at(t0 + 3600, id), p0);
        assert_eq!(TimePeriod::at(t0 + TIME_PERIOD_SECS, id).0, p0.0 + 1);
    }

    #[test]
    fn period_offset_staggers_services() {
        // A service whose byte0 is large rotates earlier within the day.
        let id_hi = PermanentId::from_bytes([0xff, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let id_lo = PermanentId::from_bytes([0x00, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        // Just before midnight, the high-offset service is already in the
        // next period.
        let t = TIME_PERIOD_SECS - 120;
        assert_eq!(TimePeriod::at(t, id_lo).0, 0);
        assert_eq!(TimePeriod::at(t, id_hi).0, 1);
    }

    #[test]
    fn period_start_inverse() {
        let id = onion(b"k").permanent_id();
        let t = 1_360_000_000u64;
        let p = TimePeriod::at(t, id);
        let start = p.start_unix(id);
        assert!(start <= t);
        assert_eq!(TimePeriod::at(start, id), p);
        assert_eq!(TimePeriod::at(start + TIME_PERIOD_SECS - 1, id), p);
        assert_eq!(TimePeriod::at(start + TIME_PERIOD_SECS, id).0, p.0 + 1);
    }

    #[test]
    fn start_unix_saturates_at_epoch_boundary() {
        // Period 0 of a service with a nonzero byte0 nominally starts
        // before the epoch; the subtraction must clamp, not underflow.
        let id_hi = PermanentId::from_bytes([0xff, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(TimePeriod::at(0, id_hi), TimePeriod(0));
        assert_eq!(TimePeriod(0).start_unix(id_hi), 0);
        // Later periods are unaffected by the clamp.
        let start1 = TimePeriod(1).start_unix(id_hi);
        assert_eq!(
            start1,
            TIME_PERIOD_SECS - u64::from(0xffu8) * TIME_PERIOD_SECS / 256
        );
        assert_eq!(TimePeriod::at(start1, id_hi), TimePeriod(1));
    }

    #[test]
    fn replicas_differ() {
        let o = onion(b"svc2");
        let [a, b] = DescriptorId::pair_at(o, 1_360_000_000);
        assert_ne!(a, b);
    }

    #[test]
    fn ids_stable_within_period_and_rotate() {
        let o = onion(b"svc3");
        let id = o.permanent_id();
        let start = TimePeriod::at(1_360_000_000, id).start_unix(id);
        let a = DescriptorId::pair_at(o, start);
        let b = DescriptorId::pair_at(o, start + TIME_PERIOD_SECS / 2);
        assert_eq!(a, b);
        let c = DescriptorId::pair_at(o, start + TIME_PERIOD_SECS);
        assert_ne!(a[0], c[0]);
        assert_ne!(a[1], c[1]);
    }

    #[test]
    fn distinct_services_distinct_ids() {
        let t = 1_360_000_000;
        let a = DescriptorId::pair_at(onion(b"one"), t);
        let b = DescriptorId::pair_at(onion(b"two"), t);
        assert_ne!(a[0], b[0]);
    }

    #[test]
    #[should_panic(expected = "replica index out of range")]
    fn replica_bounds() {
        let _ = Replica::new(2);
    }

    #[test]
    fn base32_rendering_is_32_chars() {
        let [a, _] = DescriptorId::pair_at(onion(b"svc4"), 1_360_000_000);
        assert_eq!(a.to_base32().len(), 32);
    }
}

//! 160-bit unsigned integers: positions on the hidden-service directory
//! ring.
//!
//! Relay fingerprints and descriptor identifiers are SHA-1 digests. The
//! responsible-HSDir rule and the tracking-detection heuristics of
//! Sec. VII both interpret those digests as big-endian 160-bit integers on
//! a wrapping ring: a relay is responsible for a descriptor when its
//! fingerprint is one of the three that *follow* the descriptor ID, and a
//! tracker betrays itself by placing its fingerprint at an abnormally
//! small ring distance from the target's descriptor ID.
//!
//! # Examples
//!
//! ```
//! use onion_crypto::u160::U160;
//!
//! let a = U160::from_u64(10);
//! let b = U160::from_u64(3);
//! // Ring distance from 3 forward to 10 is 7; from 10 forward to 3 wraps.
//! assert_eq!(b.distance_to(a), U160::from_u64(7));
//! assert!(a.distance_to(b) > U160::from_u64(u64::MAX));
//! ```

use core::fmt;

use crate::sha1::{Digest, DIGEST_LEN};

/// A 160-bit unsigned integer, stored as five 32-bit big-endian limbs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct U160 {
    /// limbs[0] is the most significant 32 bits.
    limbs: [u32; 5],
}

impl U160 {
    /// The zero value.
    pub const ZERO: U160 = U160 { limbs: [0; 5] };

    /// The all-ones value (2^160 − 1).
    pub const MAX: U160 = U160 {
        limbs: [u32::MAX; 5],
    };

    /// Builds a value from big-endian digest bytes.
    pub fn from_bytes(bytes: &[u8; DIGEST_LEN]) -> Self {
        let mut limbs = [0u32; 5];
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            limbs[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        U160 { limbs }
    }

    /// Builds a value from a small integer.
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = [0u32; 5];
        limbs[3] = (v >> 32) as u32;
        limbs[4] = v as u32;
        U160 { limbs }
    }

    /// Returns the big-endian byte representation.
    pub fn to_bytes(self) -> [u8; DIGEST_LEN] {
        let mut out = [0u8; DIGEST_LEN];
        for (i, limb) in self.limbs.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Wrapping addition modulo 2^160.
    pub fn wrapping_add(self, rhs: U160) -> U160 {
        let mut out = [0u32; 5];
        let mut carry = 0u64;
        for i in (0..5).rev() {
            let sum = u64::from(self.limbs[i]) + u64::from(rhs.limbs[i]) + carry;
            out[i] = sum as u32;
            carry = sum >> 32;
        }
        U160 { limbs: out }
    }

    /// Wrapping subtraction modulo 2^160.
    pub fn wrapping_sub(self, rhs: U160) -> U160 {
        let mut out = [0u32; 5];
        let mut borrow = 0i64;
        for i in (0..5).rev() {
            let diff = i64::from(self.limbs[i]) - i64::from(rhs.limbs[i]) - borrow;
            if diff < 0 {
                out[i] = (diff + (1i64 << 32)) as u32;
                borrow = 1;
            } else {
                out[i] = diff as u32;
                borrow = 0;
            }
        }
        U160 { limbs: out }
    }

    /// Forward (clockwise) ring distance from `self` to `other`:
    /// `other − self mod 2^160`.
    ///
    /// This is the quantity the Sec. VII tracking detector compares against
    /// the average inter-fingerprint gap.
    pub fn distance_to(self, other: U160) -> U160 {
        other.wrapping_sub(self)
    }

    /// Approximate conversion to `f64` (keeps ~53 bits of precision).
    ///
    /// Used for the `avg_dist / distance` ratio statistic, where relative
    /// magnitude is all that matters.
    pub fn to_f64(self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in &self.limbs {
            acc = acc * 4294967296.0 + f64::from(limb);
        }
        acc
    }

    /// Divides by a small integer, returning the quotient (remainder
    /// discarded). Used to compute the average ring gap `2^160 / n`.
    pub fn div_u64(self, divisor: u64) -> U160 {
        assert!(divisor != 0, "division by zero");
        let mut out = [0u32; 5];
        let mut rem: u64 = 0;
        for (slot, &limb) in out.iter_mut().zip(self.limbs.iter()) {
            let cur = (rem << 32) | u64::from(limb);
            *slot = (cur / divisor) as u32;
            rem = cur % divisor;
        }
        U160 { limbs: out }
    }

    /// Lowercase hex rendering (40 characters).
    pub fn to_hex(self) -> String {
        Digest::from_bytes(self.to_bytes()).to_hex()
    }
}

impl From<Digest> for U160 {
    fn from(d: Digest) -> Self {
        U160::from_bytes(d.as_bytes())
    }
}

impl From<U160> for Digest {
    fn from(v: U160) -> Self {
        Digest::from_bytes(v.to_bytes())
    }
}

impl fmt::Debug for U160 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U160({})", self.to_hex())
    }
}

impl fmt::Display for U160 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::LowerHex for U160 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        let bytes: [u8; 20] = core::array::from_fn(|i| (i * 13 + 1) as u8);
        assert_eq!(U160::from_bytes(&bytes).to_bytes(), bytes);
    }

    #[test]
    fn ordering_matches_bytes() {
        let lo = U160::from_u64(5);
        let hi = U160::from_bytes(&{
            let mut b = [0u8; 20];
            b[0] = 1;
            b
        });
        assert!(lo < hi);
        assert!(U160::ZERO < lo);
        assert!(hi < U160::MAX);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = U160::from_bytes(&[0xab; 20]);
        let b = U160::from_u64(0xdead_beef_0123);
        assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
        assert_eq!(a.wrapping_sub(b).wrapping_add(b), a);
    }

    #[test]
    fn wrapping_behaviour() {
        assert_eq!(U160::MAX.wrapping_add(U160::from_u64(1)), U160::ZERO);
        assert_eq!(U160::ZERO.wrapping_sub(U160::from_u64(1)), U160::MAX);
    }

    #[test]
    fn ring_distance() {
        let a = U160::from_u64(100);
        let b = U160::from_u64(40);
        assert_eq!(b.distance_to(a), U160::from_u64(60));
        // Wrapping the other way: 2^160 - 60.
        assert_eq!(a.distance_to(b), U160::MAX.wrapping_sub(U160::from_u64(59)));
        assert_eq!(a.distance_to(a), U160::ZERO);
    }

    #[test]
    fn div_small() {
        assert_eq!(U160::from_u64(100).div_u64(7), U160::from_u64(14));
        // 2^160 / 2 == 2^159: top bit of limb 0 set.
        let half = U160::MAX.div_u64(2);
        assert_eq!(half.to_bytes()[0], 0x7f);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_zero_panics() {
        let _ = U160::from_u64(1).div_u64(0);
    }

    #[test]
    fn to_f64_monotone() {
        let small = U160::from_u64(1 << 40);
        let big = U160::MAX;
        assert!(small.to_f64() < big.to_f64());
        assert!((small.to_f64() - (1u64 << 40) as f64).abs() < 1.0);
        // MAX ≈ 2^160
        assert!((big.to_f64() / 2f64.powi(160) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn digest_conversions() {
        let d = crate::sha1::Sha1::digest(b"ring");
        let v = U160::from(d);
        assert_eq!(Digest::from(v), d);
    }
}

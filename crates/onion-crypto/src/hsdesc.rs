//! The v2 hidden-service descriptor document (rend-spec-v2 §1.3):
//! text encoding and parsing.
//!
//! A v2 descriptor is a line-oriented document a hidden service uploads
//! to its responsible directories and a client fetches to learn the
//! service's public key and introduction points. The harvesting attack
//! derived its onion-address crop from exactly these documents: the
//! `permanent-key` field yields the onion address by hashing.
//!
//! ```text
//! rendezvous-service-descriptor <descriptor-id-base32>
//! version 2
//! permanent-key <base32 of key bytes>
//! secret-id-part <base32>
//! publication-time 2013-02-04T12:00:00Z
//! protocol-versions 2,3
//! introduction-points <count>
//! introduction-point <relay fingerprint hex>
//! (repeated)
//! signature <base32>
//! ```
//!
//! The real format wraps RSA keys and intro-point blobs in PEM-style
//! armor; this codec keeps the same field structure over the simulated
//! key bytes, which is all the measurement pipelines consume.

use core::fmt;

use crate::base32;
use crate::descriptor::{DescriptorId, Replica, TimePeriod};
use crate::identity::Fingerprint;
use crate::onion::OnionAddress;
use crate::sha1::{Digest, Sha1};

/// An in-memory v2 descriptor document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HsDescriptor {
    /// The ID the document is stored under.
    pub descriptor_id: DescriptorId,
    /// The service's public identity key bytes.
    pub permanent_key: Vec<u8>,
    /// The secret-id-part for the (period, replica) pair.
    pub secret_id_part: Digest,
    /// Unix publication time.
    pub publication_time: u64,
    /// Fingerprints of the introduction-point relays.
    pub introduction_points: Vec<Fingerprint>,
}

impl HsDescriptor {
    /// Builds the descriptor a service publishes for `replica` at
    /// `now_unix`.
    pub fn create(
        permanent_key: Vec<u8>,
        replica: Replica,
        now_unix: u64,
        introduction_points: Vec<Fingerprint>,
    ) -> Self {
        let onion = OnionAddress::from_pubkey(&permanent_key);
        let perm = onion.permanent_id();
        let period = TimePeriod::at(now_unix, perm);

        let mut inner = Sha1::new();
        inner.update((period.0 as u32).to_be_bytes());
        inner.update([replica.index()]);
        let secret_id_part = inner.finalize();

        let mut outer = Sha1::new();
        outer.update(perm.as_bytes());
        outer.update(secret_id_part.as_bytes());
        let descriptor_id = DescriptorId::from_digest(outer.finalize());

        HsDescriptor {
            descriptor_id,
            permanent_key,
            secret_id_part,
            publication_time: now_unix,
            introduction_points,
        }
    }

    /// The onion address derived from the permanent key — what the
    /// harvesters extracted from every collected descriptor.
    pub fn onion_address(&self) -> OnionAddress {
        OnionAddress::from_pubkey(&self.permanent_key)
    }

    /// Whether the document is internally consistent: the descriptor
    /// ID must equal `SHA1(permanent-id | secret-id-part)`. Honest
    /// directories verify this before storing.
    pub fn is_consistent(&self) -> bool {
        let perm = self.onion_address().permanent_id();
        let mut outer = Sha1::new();
        outer.update(perm.as_bytes());
        outer.update(self.secret_id_part.as_bytes());
        DescriptorId::from_digest(outer.finalize()) == self.descriptor_id
    }

    /// Serializes to the text document format.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "rendezvous-service-descriptor {}\n",
            self.descriptor_id.to_base32()
        ));
        out.push_str("version 2\n");
        out.push_str(&format!(
            "permanent-key {}\n",
            base32::encode(&self.permanent_key)
        ));
        out.push_str(&format!(
            "secret-id-part {}\n",
            base32::encode(self.secret_id_part.as_bytes())
        ));
        out.push_str(&format!("publication-time {}\n", self.publication_time));
        out.push_str(&format!(
            "introduction-points {}\n",
            self.introduction_points.len()
        ));
        for ip in &self.introduction_points {
            out.push_str(&format!("introduction-point {}\n", ip.to_hex()));
        }
        // The "signature" ties the document to the permanent key; the
        // simulator stands in a keyed hash for the RSA signature.
        let mut sig = Sha1::new();
        sig.update(&self.permanent_key);
        sig.update(self.descriptor_id.digest().as_bytes());
        sig.update(self.publication_time.to_be_bytes());
        out.push_str(&format!(
            "signature {}\n",
            base32::encode(sig.finalize().as_bytes())
        ));
        out
    }

    /// Parses a document produced by [`HsDescriptor::encode`],
    /// verifying the signature and descriptor-ID consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDescError`] for malformed fields, a wrong
    /// signature, or an inconsistent descriptor ID.
    pub fn decode(doc: &str) -> Result<Self, ParseDescError> {
        let mut lines = doc.lines();
        let take = |lines: &mut std::str::Lines<'_>, key: &'static str| {
            lines
                .next()
                .and_then(|l| l.strip_prefix(key))
                .map(|v| v.trim().to_owned())
                .ok_or(ParseDescError::MissingField(key))
        };

        let desc_id_b32 = take(&mut lines, "rendezvous-service-descriptor ")?;
        let version = take(&mut lines, "version ")?;
        if version != "2" {
            return Err(ParseDescError::BadVersion);
        }
        let key_b32 = take(&mut lines, "permanent-key ")?;
        let secret_b32 = take(&mut lines, "secret-id-part ")?;
        let pub_time = take(&mut lines, "publication-time ")?;
        let ip_count = take(&mut lines, "introduction-points ")?;

        let descriptor_id = DescriptorId::from_digest(digest_from_b32(&desc_id_b32)?);
        let permanent_key =
            base32::decode(&key_b32).map_err(|_| ParseDescError::BadEncoding("permanent-key"))?;
        let secret_id_part = digest_from_b32(&secret_b32)?;
        let publication_time: u64 = pub_time
            .parse()
            .map_err(|_| ParseDescError::BadEncoding("publication-time"))?;
        let n: usize = ip_count
            .parse()
            .map_err(|_| ParseDescError::BadEncoding("introduction-points"))?;

        let mut introduction_points = Vec::with_capacity(n);
        for _ in 0..n {
            let fp_hex = take(&mut lines, "introduction-point ")?;
            let digest = Digest::parse_hex(&fp_hex)
                .map_err(|_| ParseDescError::BadEncoding("introduction-point"))?;
            introduction_points.push(Fingerprint::from_digest(digest));
        }
        let sig_b32 = take(&mut lines, "signature ")?;

        let desc = HsDescriptor {
            descriptor_id,
            permanent_key,
            secret_id_part,
            publication_time,
            introduction_points,
        };

        let mut sig = Sha1::new();
        sig.update(&desc.permanent_key);
        sig.update(desc.descriptor_id.digest().as_bytes());
        sig.update(desc.publication_time.to_be_bytes());
        if base32::encode(sig.finalize().as_bytes()) != sig_b32 {
            return Err(ParseDescError::BadSignature);
        }
        if !desc.is_consistent() {
            return Err(ParseDescError::InconsistentId);
        }
        Ok(desc)
    }
}

fn digest_from_b32(s: &str) -> Result<Digest, ParseDescError> {
    let bytes = base32::decode(s).map_err(|_| ParseDescError::BadEncoding("digest"))?;
    if bytes.len() != 20 {
        return Err(ParseDescError::BadEncoding("digest length"));
    }
    let mut d = [0u8; 20];
    d.copy_from_slice(&bytes);
    Ok(Digest::from_bytes(d))
}

/// Errors from [`HsDescriptor::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseDescError {
    /// A required field is missing or out of order.
    MissingField(&'static str),
    /// Only version 2 descriptors are supported.
    BadVersion,
    /// A field failed to decode.
    BadEncoding(&'static str),
    /// The signature does not match the document.
    BadSignature,
    /// The descriptor ID does not match the key and secret-id-part.
    InconsistentId,
}

impl fmt::Display for ParseDescError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDescError::MissingField(k) => write!(f, "missing field {k:?}"),
            ParseDescError::BadVersion => f.write_str("unsupported descriptor version"),
            ParseDescError::BadEncoding(k) => write!(f, "malformed field {k:?}"),
            ParseDescError::BadSignature => f.write_str("signature verification failed"),
            ParseDescError::InconsistentId => {
                f.write_str("descriptor id inconsistent with key and secret-id-part")
            }
        }
    }
}

impl std::error::Error for ParseDescError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::SimIdentity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> HsDescriptor {
        let mut rng = StdRng::seed_from_u64(77);
        let key = SimIdentity::generate(&mut rng);
        let intro: Vec<Fingerprint> = (0..3)
            .map(|_| SimIdentity::generate(&mut rng).fingerprint())
            .collect();
        HsDescriptor::create(
            key.public_key().to_vec(),
            Replica::new(0),
            1_359_936_000,
            intro,
        )
    }

    #[test]
    fn created_descriptor_matches_pair_at() {
        let desc = sample();
        let ids = DescriptorId::pair_at(desc.onion_address(), desc.publication_time);
        assert_eq!(desc.descriptor_id, ids[0]);
        assert!(desc.is_consistent());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let desc = sample();
        let doc = desc.encode();
        let parsed = HsDescriptor::decode(&doc).unwrap();
        assert_eq!(parsed, desc);
        assert_eq!(parsed.onion_address(), desc.onion_address());
        assert_eq!(parsed.introduction_points.len(), 3);
    }

    #[test]
    fn tampered_signature_rejected() {
        let desc = sample();
        let doc = desc.encode();
        // Flip the publication time without re-signing.
        let tampered = doc.replace("publication-time 1359936000", "publication-time 1359936001");
        assert_eq!(
            HsDescriptor::decode(&tampered),
            Err(ParseDescError::BadSignature)
        );
    }

    #[test]
    fn tampered_descriptor_id_rejected() {
        let mut desc = sample();
        // Claim a different ID than the key derives.
        desc.descriptor_id = DescriptorId::from_digest(Sha1::digest(b"forged"));
        assert!(!desc.is_consistent());
        // Encoding re-signs over the forged ID, so the signature passes
        // but the consistency check still rejects it.
        assert_eq!(
            HsDescriptor::decode(&desc.encode()),
            Err(ParseDescError::InconsistentId)
        );
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(matches!(
            HsDescriptor::decode(""),
            Err(ParseDescError::MissingField(_))
        ));
        let desc = sample();
        let doc = desc.encode().replace("version 2", "version 3");
        assert_eq!(HsDescriptor::decode(&doc), Err(ParseDescError::BadVersion));
    }

    #[test]
    fn replicas_give_different_ids() {
        let mut rng = StdRng::seed_from_u64(78);
        let key = SimIdentity::generate(&mut rng);
        let a = HsDescriptor::create(
            key.public_key().to_vec(),
            Replica::new(0),
            1_360_000_000,
            vec![],
        );
        let b = HsDescriptor::create(
            key.public_key().to_vec(),
            Replica::new(1),
            1_360_000_000,
            vec![],
        );
        assert_ne!(a.descriptor_id, b.descriptor_id);
        assert_eq!(a.onion_address(), b.onion_address());
    }
}

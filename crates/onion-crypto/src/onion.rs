//! v2 onion addresses and permanent identifiers.
//!
//! A v2 onion address is the base32 encoding of the first 10 bytes of the
//! SHA-1 digest of the hidden service's public identity key — 16 lowercase
//! characters, e.g. `silkroadvb5piz3r`. Those 10 bytes are the service's
//! *permanent identifier*, the value the descriptor-ID schedule of
//! [`crate::descriptor`] is keyed on.

use core::fmt;
use std::str::FromStr;

use crate::base32;
use crate::sha1::Sha1;

/// Length of the permanent identifier in bytes.
pub const PERMANENT_ID_LEN: usize = 10;

/// Length of a v2 onion address in base32 characters (without `.onion`).
pub const ONION_ADDR_LEN: usize = 16;

/// The first 10 bytes of `SHA1(public key)`: a hidden service's permanent
/// identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PermanentId(pub(crate) [u8; PERMANENT_ID_LEN]);

impl PermanentId {
    /// Derives the permanent identifier from public-key bytes.
    pub fn from_pubkey(pubkey: &[u8]) -> Self {
        let digest = Sha1::digest(pubkey);
        let mut id = [0u8; PERMANENT_ID_LEN];
        id.copy_from_slice(&digest.as_bytes()[..PERMANENT_ID_LEN]);
        PermanentId(id)
    }

    /// Wraps raw identifier bytes.
    pub fn from_bytes(bytes: [u8; PERMANENT_ID_LEN]) -> Self {
        PermanentId(bytes)
    }

    /// The identifier bytes.
    pub fn as_bytes(&self) -> &[u8; PERMANENT_ID_LEN] {
        &self.0
    }

    /// The first byte, used by the descriptor-ID time-period offset.
    pub fn byte0(&self) -> u8 {
        self.0[0]
    }

    /// The onion address corresponding to this identifier.
    pub fn to_onion(self) -> OnionAddress {
        OnionAddress(self)
    }
}

impl fmt::Debug for PermanentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PermanentId({})", base32::encode(self.0))
    }
}

/// A v2 onion address (the 16-character label, without the `.onion`
/// suffix).
///
/// # Examples
///
/// ```
/// use onion_crypto::onion::OnionAddress;
///
/// let addr: OnionAddress = "silkroadvb5piz3r".parse()?;
/// assert_eq!(addr.to_string(), "silkroadvb5piz3r.onion");
/// # Ok::<(), onion_crypto::onion::ParseOnionError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OnionAddress(PermanentId);

impl OnionAddress {
    /// Derives the onion address of a public key.
    pub fn from_pubkey(pubkey: &[u8]) -> Self {
        OnionAddress(PermanentId::from_pubkey(pubkey))
    }

    /// The underlying permanent identifier.
    pub fn permanent_id(&self) -> PermanentId {
        self.0
    }

    /// The bare 16-character base32 label (no `.onion` suffix).
    pub fn label(&self) -> String {
        base32::encode(self.0 .0)
    }
}

impl fmt::Debug for OnionAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OnionAddress({}.onion)", self.label())
    }
}

impl fmt::Display for OnionAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.onion", self.label())
    }
}

impl From<PermanentId> for OnionAddress {
    fn from(id: PermanentId) -> Self {
        OnionAddress(id)
    }
}

/// Error parsing an onion address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOnionError {
    /// The label is not exactly 16 characters.
    BadLength(usize),
    /// The label contains a character outside the base32 alphabet.
    BadCharacter(base32::DecodeError),
}

impl fmt::Display for ParseOnionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseOnionError::BadLength(n) => {
                write!(f, "onion label must be 16 characters, got {n}")
            }
            ParseOnionError::BadCharacter(e) => write!(f, "invalid onion label: {e}"),
        }
    }
}

impl std::error::Error for ParseOnionError {}

impl FromStr for OnionAddress {
    type Err = ParseOnionError;

    /// Parses `xxxxxxxxxxxxxxxx` or `xxxxxxxxxxxxxxxx.onion`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let label = s.strip_suffix(".onion").unwrap_or(s);
        if label.len() != ONION_ADDR_LEN {
            return Err(ParseOnionError::BadLength(label.len()));
        }
        let bytes = base32::decode(label).map_err(ParseOnionError::BadCharacter)?;
        let mut id = [0u8; PERMANENT_ID_LEN];
        id.copy_from_slice(&bytes[..PERMANENT_ID_LEN]);
        Ok(OnionAddress(PermanentId(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_matches_spec() {
        // Address = base32(first 10 bytes of SHA1(pubkey)).
        let pubkey = b"example public key bytes";
        let addr = OnionAddress::from_pubkey(pubkey);
        let digest = Sha1::digest(pubkey);
        assert_eq!(addr.label(), base32::encode(&digest.as_bytes()[..10]));
        assert_eq!(addr.label().len(), ONION_ADDR_LEN);
    }

    #[test]
    fn parse_roundtrip() {
        let addr = OnionAddress::from_pubkey(b"some key");
        let parsed: OnionAddress = addr.label().parse().unwrap();
        assert_eq!(parsed, addr);
        let parsed2: OnionAddress = addr.to_string().parse().unwrap();
        assert_eq!(parsed2, addr);
    }

    #[test]
    fn parse_silkroad() {
        let addr: OnionAddress = "silkroadvb5piz3r.onion".parse().unwrap();
        assert_eq!(addr.label(), "silkroadvb5piz3r");
        assert_eq!(addr.to_string(), "silkroadvb5piz3r.onion");
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(matches!(
            "short".parse::<OnionAddress>(),
            Err(ParseOnionError::BadLength(5))
        ));
        assert!(matches!(
            "0000000000000000".parse::<OnionAddress>(),
            Err(ParseOnionError::BadCharacter(_))
        ));
    }

    #[test]
    fn byte0_is_first_digest_byte() {
        let pubkey = b"key";
        let id = PermanentId::from_pubkey(pubkey);
        assert_eq!(id.byte0(), Sha1::digest(pubkey).as_bytes()[0]);
    }
}

//! Seed vocabularies for page generation and classifier training.
//!
//! The world generator renders hidden-service pages by sampling from a
//! per-topic keyword vocabulary mixed with common filler, in one of 17
//! languages. The content-analysis crate trains its language detector
//! and topic classifier on documents synthesised from these same seed
//! lists *with independent sampling noise*, standing in for the paper's
//! Langdetect profiles and Mallet/uClassify training corpora.

use crate::taxonomy::{Language, Topic};

/// Topic-specific keywords (English), used both to generate pages and to
/// train the topic classifier.
pub fn topic_keywords(topic: Topic) -> &'static [&'static str] {
    match topic {
        Topic::Adult => &[
            "adult", "explicit", "webcam", "video", "gallery", "amateur", "premium",
            "membership", "photos", "models", "erotic", "mature", "cams", "fetish",
            "uncensored", "nude", "hot", "exclusive", "pics", "movies", "dating",
            "singles", "chat", "live", "stream", "sexy", "babes", "hardcore",
        ],
        Topic::Drugs => &[
            "cannabis", "weed", "marijuana", "mdma", "ecstasy", "lsd", "cocaine",
            "heroin", "pills", "grams", "ounce", "vendor", "stealth", "shipping",
            "escrow", "marketplace", "listing", "opioid", "psychedelic", "mushrooms",
            "hash", "strain", "dose", "tabs", "pure", "lab", "tested", "reship",
            "dispensary", "pharma",
        ],
        Topic::Politics => &[
            "freedom", "speech", "corruption", "leak", "cables", "government",
            "censorship", "repression", "rights", "human", "activist", "dissident",
            "regime", "protest", "revolution", "transparency", "whistleblower",
            "democracy", "election", "propaganda", "surveillance", "journalist",
            "press", "liberty", "oppression", "reform", "manifesto", "petition",
        ],
        Topic::Counterfeit => &[
            "counterfeit", "replica", "cards", "stolen", "dumps", "cvv", "fullz",
            "paypal", "accounts", "hacked", "skimmer", "cloned", "passport", "fake",
            "documents", "license", "banknotes", "bills", "currency", "carding",
            "track2", "balance", "transfer", "westernunion", "cashout", "atm",
            "identity", "ssn",
        ],
        Topic::Weapons => &[
            "weapon", "firearm", "pistol", "rifle", "glock", "ammunition", "ammo",
            "caliber", "rounds", "barrel", "suppressor", "holster", "tactical",
            "gun", "shotgun", "magazine", "scope", "knife", "blade", "armory",
            "ballistic", "trigger", "parts", "kit",
        ],
        Topic::Tutorials => &[
            "tutorial", "guide", "howto", "faq", "beginners", "stepbystep",
            "instructions", "learn", "manual", "walkthrough", "tips", "tricks",
            "frequently", "asked", "questions", "answers", "basics", "advanced",
            "lesson", "course", "handbook", "reference", "explained", "primer",
        ],
        Topic::Security => &[
            "security", "encryption", "pgp", "gpg", "cipher", "key", "signature",
            "vulnerability", "patch", "firewall", "malware", "antivirus", "audit",
            "pentest", "hardening", "passphrase", "opsec", "threat", "exploit",
            "disclosure", "advisory", "sandbox", "integrity", "authentication",
            "certificate", "cryptography",
        ],
        Topic::Anonymity => &[
            "anonymity", "anonymous", "privacy", "onion", "relay", "circuit",
            "pseudonym", "remailer", "mixnet", "hidden", "untraceable", "metadata",
            "fingerprinting", "proxy", "vpn", "i2p", "freenet", "darknet",
            "deanonymization", "traffic", "analysis", "hosting", "mail",
            "anonymizer", "bridge", "pluggable",
        ],
        Topic::Hacking => &[
            "hacking", "hacker", "botnet", "ddos", "rootkit", "keylogger", "rat",
            "zeroday", "sqlinjection", "xss", "phishing", "bruteforce", "shell",
            "backdoor", "payload", "crack", "warez", "defacement", "dox", "leak",
            "database", "breach", "spam", "flood",
        ],
        Topic::Software => &[
            "software", "hardware", "download", "release", "version", "linux",
            "windows", "source", "code", "repository", "compile", "build",
            "install", "package", "driver", "firmware", "cpu", "gpu", "router",
            "server", "client", "library", "framework", "opensource", "license",
            "binary", "patchnotes",
        ],
        Topic::Art => &[
            "art", "gallery", "painting", "poetry", "poems", "literature",
            "drawing", "sketch", "artist", "exhibition", "creative", "writing",
            "fiction", "stories", "novel", "photography", "portrait", "canvas",
            "sculpture", "zine",
        ],
        Topic::Services => &[
            "service", "escrow", "laundering", "mixer", "tumbler", "hitman",
            "hire", "contract", "fee", "bitcoin", "payment", "wallet", "deposit",
            "guarantee", "reputation", "vouches", "middleman", "broker", "rent",
            "custom", "order", "delivery", "refund", "commission",
        ],
        Topic::Games => &[
            "game", "chess", "poker", "lottery", "casino", "bet", "wager",
            "jackpot", "dice", "roll", "tournament", "player", "rank", "elo",
            "cards", "blackjack", "roulette", "winnings", "odds", "stake",
        ],
        Topic::Science => &[
            "science", "research", "physics", "chemistry", "biology", "paper",
            "journal", "experiment", "hypothesis", "theory", "quantum", "genome",
            "mathematics", "theorem", "proof", "dataset", "laboratory", "peer",
            "review", "citation",
        ],
        Topic::DigitalLibraries => &[
            "library", "ebook", "books", "archive", "collection", "catalog",
            "author", "title", "isbn", "pdf", "epub", "mirror", "repository",
            "texts", "manuscripts", "scanned", "volumes", "index", "borrow",
            "shelf", "bibliography",
        ],
        Topic::Sports => &[
            "sports", "football", "soccer", "league", "match", "score", "team",
            "season", "championship", "tournament", "player", "transfer",
            "standings", "fixtures", "goals", "basketball", "tennis", "racing",
        ],
        Topic::Technology => &[
            "technology", "gadget", "mobile", "phone", "tablet", "innovation",
            "startup", "electronics", "chip", "sensor", "robotics", "network",
            "protocol", "bandwidth", "wireless", "satellite", "drone", "battery",
            "review", "benchmark",
        ],
        Topic::Other => &[
            "misc", "random", "personal", "blog", "diary", "notes", "links",
            "directory", "list", "page", "home", "welcome", "about", "contact",
            "updates", "news", "announcement", "forum", "stuff", "various",
        ],
    }
}

/// Common English filler words mixed into every English page so topic
/// classification is non-trivial.
pub const ENGLISH_FILLER: &[&str] = &[
    "the", "and", "for", "with", "this", "that", "from", "have", "are", "you",
    "not", "all", "can", "your", "will", "one", "more", "when", "what", "some",
    "time", "there", "here", "about", "which", "their", "other", "into", "only",
    "also", "them", "then", "its", "our", "new", "use", "any", "these", "most",
    "make", "like", "just", "over", "such", "very", "even", "back", "after",
    "first", "well", "year", "where", "must", "before", "right", "too", "does",
];

/// Characteristic common words per language, used to generate non-English
/// pages and to build language-detector profiles.
pub fn language_words(lang: Language) -> &'static [&'static str] {
    match lang {
        Language::English => ENGLISH_FILLER,
        Language::German => &[
            "und", "der", "die", "das", "nicht", "mit", "ist", "von", "sich",
            "auch", "auf", "werden", "haben", "eine", "einen", "dem", "des",
            "für", "aber", "wenn", "oder", "wird", "sind", "noch", "wie",
            "einem", "über", "zum", "kann", "mehr", "schon", "durch", "gegen",
            "seine", "ihre", "unter", "dieser", "alle", "wieder", "zeit",
            "jahr", "immer", "beim", "große", "neue", "deutsch", "sprache",
        ],
        Language::Russian => &[
            "и", "в", "не", "на", "что", "с", "это", "как", "по", "но", "все",
            "она", "так", "его", "только", "мне", "было", "меня", "еще", "нет",
            "для", "уже", "вот", "когда", "даже", "ничего", "себя", "может",
            "они", "есть", "надо", "сказал", "этого", "чтобы", "быть", "будет",
            "время", "если", "люди", "русский", "язык", "страница", "сайт",
        ],
        Language::Portuguese => &[
            "que", "não", "uma", "com", "para", "mais", "como", "mas", "foi",
            "ele", "das", "tem", "seu", "sua", "ser", "quando", "muito", "nos",
            "já", "está", "eu", "também", "pelo", "pela", "até", "isso", "ela",
            "entre", "depois", "sem", "mesmo", "aos", "seus", "quem", "nas",
            "esse", "eles", "você", "essa", "num", "nem", "são", "português",
            "página", "serviço", "então", "coisa",
        ],
        Language::Spanish => &[
            "que", "de", "no", "la", "el", "en", "es", "y", "los", "se", "del",
            "las", "por", "un", "para", "con", "una", "su", "al", "lo", "como",
            "más", "pero", "sus", "le", "ya", "o", "este", "sí", "porque",
            "esta", "entre", "cuando", "muy", "sin", "sobre", "también", "hasta",
            "hay", "donde", "quien", "desde", "todo", "nos", "durante", "todos",
            "español", "página", "gracias", "ahora", "cada",
        ],
        Language::French => &[
            "les", "des", "est", "dans", "et", "que", "une", "pour", "qui",
            "pas", "sur", "plus", "par", "avec", "tout", "faire", "son", "mais",
            "comme", "nous", "vous", "bien", "sans", "peut", "cette", "été",
            "aussi", "leur", "sont", "deux", "même", "ils", "elle", "était",
            "fait", "être", "aux", "ces", "donc", "encore", "français", "très",
            "après", "autres", "depuis", "toujours", "chez",
        ],
        Language::Polish => &[
            "nie", "się", "jest", "na", "do", "że", "jak", "ale", "po", "co",
            "tak", "za", "tego", "tym", "już", "tylko", "był", "być", "może",
            "przez", "jego", "przy", "bardzo", "kiedy", "nawet", "żeby",
            "jeszcze", "wszystko", "gdzie", "które", "można", "przed", "także",
            "sobie", "czy", "ich", "bez", "lub", "polski", "strona", "dla",
            "jako", "pod", "oraz", "między", "każdy",
        ],
        Language::Japanese => &[
            "の", "に", "は", "を", "た", "が", "で", "て", "と", "し", "れ",
            "さ", "ある", "いる", "も", "する", "から", "な", "こと", "として",
            "い", "や", "れる", "など", "なっ", "ない", "この", "ため", "その",
            "あっ", "よう", "また", "もの", "という", "あり", "まで", "られ",
            "なる", "へ", "か", "だ", "これ", "によって", "により", "おり",
            "日本語", "ページ", "サービス",
        ],
        Language::Italian => &[
            "che", "di", "la", "il", "un", "per", "non", "sono", "una", "con",
            "si", "da", "come", "anche", "più", "ma", "del", "le", "nel",
            "della", "questo", "quando", "nella", "hanno", "essere", "fatto",
            "dei", "alla", "era", "molto", "stato", "quella", "tutti", "ancora",
            "sua", "loro", "tempo", "può", "così", "due", "italiano", "pagina",
            "dopo", "senza", "anni", "solo",
        ],
        Language::Czech => &[
            "je", "se", "na", "že", "to", "však", "jako", "jsem", "jsou",
            "který", "ale", "tak", "by", "bylo", "byl", "nebo", "podle", "ještě",
            "až", "byla", "české", "aby", "co", "či", "už", "při", "pro",
            "která", "může", "své", "jeho", "mezi", "tím", "být", "další",
            "když", "velmi", "český", "stránka", "jen", "také", "nové", "proto",
            "tady", "kde",
        ],
        Language::Arabic => &[
            "في", "من", "على", "أن", "إلى", "عن", "مع", "هذا", "كان", "التي",
            "الذي", "هذه", "ما", "لا", "أو", "كل", "بعد", "قد", "بين", "وقد",
            "كما", "لم", "فيها", "عند", "لكن", "منذ", "حيث", "هناك", "ولا",
            "عليه", "إذا", "ثم", "أكثر", "حتى", "غير", "بها", "وهو", "العربية",
            "صفحة", "خدمة", "موقع", "جديد",
        ],
        Language::Dutch => &[
            "de", "het", "een", "van", "en", "in", "is", "dat", "op", "te",
            "zijn", "voor", "met", "die", "niet", "aan", "er", "om", "ook",
            "als", "maar", "dan", "zij", "bij", "nog", "kan", "naar", "uit",
            "worden", "wordt", "heeft", "hebben", "deze", "meer", "door",
            "over", "zich", "hij", "wel", "geen", "nederlands", "pagina",
            "onze", "alle", "tussen", "onder",
        ],
        Language::Basque => &[
            "eta", "da", "ez", "du", "bat", "zen", "dira", "ere", "baina",
            "dute", "izan", "egin", "hau", "den", "beste", "bere", "zuen",
            "behar", "horrek", "baino", "oso", "gabe", "arte", "bezala",
            "horren", "dela", "duen", "ziren", "lehen", "berri", "urte",
            "euskaraz", "orrialdea", "zerbitzua", "guztiak", "hemen", "orain",
            "gero", "bakarrik", "baita",
        ],
        Language::Chinese => &[
            "的", "是", "在", "了", "不", "和", "有", "我", "这", "他", "就",
            "人", "都", "一个", "上", "也", "很", "到", "说", "要", "去", "你",
            "会", "着", "没有", "看", "好", "自己", "这个", "那", "来", "对",
            "能", "中国", "中文", "页面", "服务", "网站", "可以", "我们",
            "时候", "什么", "知道", "因为",
        ],
        Language::Hungarian => &[
            "a", "az", "és", "hogy", "nem", "is", "egy", "volt", "de", "van",
            "már", "ezt", "csak", "meg", "mint", "ha", "vagy", "még", "ki",
            "azt", "el", "minden", "lehet", "olyan", "amikor", "nagyon",
            "magyar", "oldal", "szolgáltatás", "után", "akkor", "mert", "így",
            "amely", "más", "ember", "kell", "való", "itt", "most", "pedig",
            "sem", "lesz", "ezek",
        ],
        Language::Bantu => &[
            "na", "ya", "wa", "kwa", "ni", "za", "katika", "hii", "hiyo",
            "watu", "kama", "lakini", "sasa", "pia", "tu", "yake", "wake",
            "hapa", "sana", "kila", "baada", "kabla", "ndani", "nje", "juu",
            "chini", "moja", "mbili", "habari", "ukurasa", "huduma", "karibu",
            "asante", "ndiyo", "hapana", "kitu", "mahali", "wakati", "siku",
            "mtu",
        ],
        Language::Swedish => &[
            "och", "att", "det", "som", "en", "på", "är", "av", "för", "med",
            "till", "den", "har", "de", "inte", "om", "ett", "men", "var",
            "jag", "sig", "från", "vi", "så", "kan", "när", "han", "skulle",
            "kommer", "eller", "vad", "sina", "här", "alla", "andra", "mycket",
            "svenska", "sidan", "tjänst", "efter", "utan", "mellan", "bara",
            "finns", "några", "då",
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_topic_has_keywords() {
        for topic in Topic::ALL {
            let kw = topic_keywords(topic);
            assert!(kw.len() >= 15, "{topic}: only {} keywords", kw.len());
        }
    }

    #[test]
    fn every_language_has_words() {
        for lang in Language::ALL {
            let words = language_words(lang);
            assert!(words.len() >= 35, "{lang}: only {} words", words.len());
        }
    }

    #[test]
    fn topic_vocabularies_mostly_disjoint() {
        // Some overlap is fine (and realistic) but each pair must differ
        // in the bulk of its vocabulary for classification to make sense.
        for a in Topic::ALL {
            for b in Topic::ALL {
                if a >= b {
                    continue;
                }
                let wa: std::collections::HashSet<_> =
                    topic_keywords(a).iter().collect();
                let overlap = topic_keywords(b)
                    .iter()
                    .filter(|w| wa.contains(*w))
                    .count();
                assert!(
                    overlap * 3 <= topic_keywords(b).len(),
                    "{a} and {b} overlap too much ({overlap})"
                );
            }
        }
    }

    #[test]
    fn language_lexicons_distinct_from_english() {
        for lang in &Language::ALL[1..] {
            let en: std::collections::HashSet<_> = ENGLISH_FILLER.iter().collect();
            let overlap = language_words(*lang)
                .iter()
                .filter(|w| en.contains(*w))
                .count();
            assert!(
                overlap <= 3,
                "{lang} shares {overlap} words with English filler"
            );
        }
    }
}

//! The named hidden services of Table II, planted into the synthetic
//! world with the paper's onion addresses and request rates.
//!
//! Request rates are the Poisson means of descriptor fetches per
//! two-hour observation window; the popularity pipeline recovers them
//! and reproduces the ranking.

use crate::taxonomy::Topic;

/// What a planted entity is (drives its role, ports and content).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EntityKind {
    /// Goldnet command-and-control front end: port 80, answers 503,
    /// exposes `server-status`. `group` identifies the physical server
    /// (the paper found two groups by Apache-uptime matching).
    Goldnet {
        /// Physical-server group (0 or 1).
        group: u8,
    },
    /// Unidentified high-traffic service (`<n/a>` rows of Table II).
    Unknown,
    /// Skynet command-and-control onion.
    SkynetCc,
    /// Skynet bitcoin-mining pool front end.
    BitcoinMiner,
    /// An ordinary web service with the given topic.
    Web(Topic),
}

/// One planted Table II row.
#[derive(Clone, Copy, Debug)]
pub struct PlantedEntity {
    /// Label used in reports (Table II "Desc" column).
    pub name: &'static str,
    /// The 16-character onion label (as printed in Table II; starred
    /// digits are replaced with `a`).
    pub onion_label: &'static str,
    /// Expected descriptor requests per 2-hour window.
    pub requests_2h: u32,
    /// Paper rank in Table II (informational; the pipeline re-derives
    /// ranks from measured counts).
    pub paper_rank: u32,
    /// What the service is.
    pub kind: EntityKind,
}

/// Every named or characterised row of Table II, plus the remaining
/// Goldnet front ends discovered via server-status fingerprinting.
pub const PLANTED: &[PlantedEntity] = &[
    PlantedEntity {
        name: "Goldnet",
        onion_label: "uecbcfgfofuwkcrd",
        requests_2h: 13_714,
        paper_rank: 1,
        kind: EntityKind::Goldnet { group: 0 },
    },
    PlantedEntity {
        name: "Goldnet",
        onion_label: "arloppepzch53w3i",
        requests_2h: 11_582,
        paper_rank: 2,
        kind: EntityKind::Goldnet { group: 0 },
    },
    PlantedEntity {
        name: "Goldnet",
        onion_label: "pomyeasfnmtn544p",
        requests_2h: 11_315,
        paper_rank: 3,
        kind: EntityKind::Goldnet { group: 0 },
    },
    PlantedEntity {
        name: "Goldnet",
        onion_label: "lqqciuwa5yzxewc3",
        requests_2h: 7_324,
        paper_rank: 4,
        kind: EntityKind::Goldnet { group: 1 },
    },
    PlantedEntity {
        name: "Goldnet",
        onion_label: "eqlbyxrpd2wdjeig",
        requests_2h: 7_183,
        paper_rank: 5,
        kind: EntityKind::Goldnet { group: 1 },
    },
    PlantedEntity {
        name: "<n/a>",
        onion_label: "onhiimfoqy4acjv4",
        requests_2h: 6_852,
        paper_rank: 6,
        kind: EntityKind::Unknown,
    },
    PlantedEntity {
        name: "Goldnet",
        onion_label: "saxtca3ktuhcyqx3",
        requests_2h: 6_528,
        paper_rank: 7,
        kind: EntityKind::Goldnet { group: 1 },
    },
    PlantedEntity {
        name: "<n/a>",
        onion_label: "qxc7mc24mj7m4e2o",
        requests_2h: 4_941,
        paper_rank: 8,
        kind: EntityKind::Unknown,
    },
    PlantedEntity {
        name: "BcMine",
        onion_label: "mwjjmmahc4cjjlqp",
        requests_2h: 3_746,
        paper_rank: 9,
        kind: EntityKind::BitcoinMiner,
    },
    PlantedEntity {
        name: "Skynet",
        onion_label: "mepogl2rljvj374e",
        requests_2h: 3_678,
        paper_rank: 10,
        kind: EntityKind::SkynetCc,
    },
    PlantedEntity {
        name: "Adult",
        onion_label: "m3hjrfh4hlqc6aaa",
        requests_2h: 2_573,
        paper_rank: 11,
        kind: EntityKind::Web(Topic::Adult),
    },
    PlantedEntity {
        name: "Skynet",
        onion_label: "ua4ttfm47jt32igm",
        requests_2h: 1_950,
        paper_rank: 12,
        kind: EntityKind::SkynetCc,
    },
    PlantedEntity {
        name: "Adult",
        onion_label: "opva2pilsncvtaaa",
        requests_2h: 1_863,
        paper_rank: 13,
        kind: EntityKind::Web(Topic::Adult),
    },
    PlantedEntity {
        name: "Adult",
        onion_label: "nbo32el47o5claaa",
        requests_2h: 1_665,
        paper_rank: 14,
        kind: EntityKind::Web(Topic::Adult),
    },
    PlantedEntity {
        name: "Adult",
        onion_label: "firelol5skg6eaaa",
        requests_2h: 1_631,
        paper_rank: 15,
        kind: EntityKind::Web(Topic::Adult),
    },
    PlantedEntity {
        name: "Skynet",
        onion_label: "niazgxzlrbpevgvq",
        requests_2h: 1_481,
        paper_rank: 16,
        kind: EntityKind::SkynetCc,
    },
    PlantedEntity {
        name: "Skynet",
        onion_label: "owbm3sjqdnndmydf",
        requests_2h: 1_326,
        paper_rank: 17,
        kind: EntityKind::SkynetCc,
    },
    PlantedEntity {
        name: "SilkRoad",
        onion_label: "silkroadvb5piz3r",
        requests_2h: 1_175,
        paper_rank: 18,
        kind: EntityKind::Web(Topic::Drugs),
    },
    PlantedEntity {
        name: "Adult",
        onion_label: "candy4ci6id24aaa",
        requests_2h: 1_094,
        paper_rank: 19,
        kind: EntityKind::Web(Topic::Adult),
    },
    PlantedEntity {
        name: "Skynet",
        onion_label: "x3wyzqg6cfbqrwht",
        requests_2h: 1_021,
        paper_rank: 20,
        kind: EntityKind::SkynetCc,
    },
    PlantedEntity {
        name: "Skynet",
        onion_label: "4njzp3wzi6leo772",
        requests_2h: 942,
        paper_rank: 21,
        kind: EntityKind::SkynetCc,
    },
    PlantedEntity {
        name: "Skynet",
        onion_label: "qdzjxwujdtxrjkrz",
        requests_2h: 899,
        paper_rank: 22,
        kind: EntityKind::SkynetCc,
    },
    PlantedEntity {
        name: "Skynet",
        onion_label: "6tkpktox73usm5vq",
        requests_2h: 898,
        paper_rank: 23,
        kind: EntityKind::SkynetCc,
    },
    PlantedEntity {
        name: "Adult",
        onion_label: "kk2wajy64oip2aaa",
        requests_2h: 889,
        paper_rank: 24,
        kind: EntityKind::Web(Topic::Adult),
    },
    PlantedEntity {
        name: "Skynet",
        onion_label: "gpt2u5hhaqvmnwhr",
        requests_2h: 781,
        paper_rank: 25,
        kind: EntityKind::SkynetCc,
    },
    PlantedEntity {
        name: "<n/a>",
        onion_label: "smouse2lbzrgeof4",
        requests_2h: 746,
        paper_rank: 26,
        kind: EntityKind::Unknown,
    },
    PlantedEntity {
        name: "FreedomHosting",
        onion_label: "xqz3u5drneuzhaeo",
        requests_2h: 694,
        paper_rank: 27,
        kind: EntityKind::Web(Topic::Anonymity),
    },
    PlantedEntity {
        name: "Skynet",
        onion_label: "f2ylgv2jochpzm4c",
        requests_2h: 667,
        paper_rank: 28,
        kind: EntityKind::SkynetCc,
    },
    PlantedEntity {
        name: "Adult",
        onion_label: "kdq2y44aaas2aaaa",
        requests_2h: 585,
        paper_rank: 29,
        kind: EntityKind::Web(Topic::Adult),
    },
    PlantedEntity {
        name: "Adult",
        onion_label: "4pms4sejqrrycaaa",
        requests_2h: 542,
        paper_rank: 30,
        kind: EntityKind::Web(Topic::Adult),
    },
    PlantedEntity {
        name: "SilkRoad(wiki)",
        onion_label: "dkn255hz262ypmii",
        requests_2h: 453,
        paper_rank: 34,
        kind: EntityKind::Web(Topic::Drugs),
    },
    PlantedEntity {
        name: "TorDir",
        onion_label: "dppmfxaacucguzpc",
        requests_2h: 255,
        paper_rank: 47,
        kind: EntityKind::Web(Topic::Other),
    },
    PlantedEntity {
        name: "BlckMrktReloaded",
        onion_label: "5onwnspjvuk7cwvk",
        requests_2h: 172,
        paper_rank: 62,
        kind: EntityKind::Web(Topic::Drugs),
    },
    PlantedEntity {
        name: "DuckDuckGo",
        onion_label: "3g2upl4pq6kufc4m",
        requests_2h: 55,
        paper_rank: 157,
        kind: EntityKind::Web(Topic::Technology),
    },
    PlantedEntity {
        name: "Onion Bookmarks",
        onion_label: "x7yxqg5v4j6yzhti",
        requests_2h: 30,
        paper_rank: 250,
        kind: EntityKind::Web(Topic::Other),
    },
    PlantedEntity {
        name: "Tor Host",
        onion_label: "torhostg5s7pa2sn",
        requests_2h: 10,
        paper_rank: 547,
        kind: EntityKind::Web(Topic::Anonymity),
    },
    // The three additional Goldnet front ends identified by identical
    // server-status characteristics (Sec. V), below the top-30 cutoff
    // (the paper found 4 more beyond the top five; one — rank 7 — is
    // already listed above).
    PlantedEntity {
        name: "Goldnet",
        onion_label: "b5cgpkzjwwv7ywaa",
        requests_2h: 510,
        paper_rank: 31,
        kind: EntityKind::Goldnet { group: 0 },
    },
    PlantedEntity {
        name: "Goldnet",
        onion_label: "c6dhqlakxwv2zwaa",
        requests_2h: 495,
        paper_rank: 32,
        kind: EntityKind::Goldnet { group: 1 },
    },
    PlantedEntity {
        name: "Goldnet",
        onion_label: "d7eirmblyxv3axaa",
        requests_2h: 470,
        paper_rank: 33,
        kind: EntityKind::Goldnet { group: 0 },
    },
];

/// The Skynet bitcoin-pool entry also counts toward the Skynet cluster;
/// public pools for comparison (Sec. V): Slush got 2 requests, Eligius 0.
pub const PUBLIC_POOL_SLUSH: PlantedEntity = PlantedEntity {
    name: "Slush (public pool)",
    onion_label: "slushpool2iyzq6a",
    requests_2h: 2,
    paper_rank: 0,
    kind: EntityKind::Web(Topic::Technology),
};

/// Eligius public mining pool: zero requests in the paper.
pub const PUBLIC_POOL_ELIGIUS: PlantedEntity = PlantedEntity {
    name: "Eligius (public pool)",
    onion_label: "eligiuspool4syha",
    requests_2h: 0,
    paper_rank: 0,
    kind: EntityKind::Web(Topic::Technology),
};

#[cfg(test)]
mod tests {
    use super::*;
    use onion_crypto::onion::OnionAddress;

    #[test]
    fn all_labels_parse_as_onions() {
        for e in PLANTED {
            let parsed: Result<OnionAddress, _> = e.onion_label.parse();
            assert!(parsed.is_ok(), "{} ({})", e.onion_label, e.name);
            assert_eq!(parsed.unwrap().label(), e.onion_label);
        }
        assert!(PUBLIC_POOL_SLUSH
            .onion_label
            .parse::<OnionAddress>()
            .is_ok());
        assert!(PUBLIC_POOL_ELIGIUS
            .onion_label
            .parse::<OnionAddress>()
            .is_ok());
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = PLANTED.iter().map(|e| e.onion_label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), PLANTED.len());
    }

    #[test]
    fn rates_weakly_decreasing_by_paper_rank() {
        let mut by_rank: Vec<_> = PLANTED.to_vec();
        by_rank.sort_by_key(|e| e.paper_rank);
        for pair in by_rank.windows(2) {
            assert!(
                pair[0].requests_2h >= pair[1].requests_2h,
                "{} (rank {}) < {} (rank {})",
                pair[0].requests_2h,
                pair[0].paper_rank,
                pair[1].requests_2h,
                pair[1].paper_rank
            );
        }
    }

    #[test]
    fn goldnet_count_matches_calibration() {
        let goldnet = PLANTED
            .iter()
            .filter(|e| matches!(e.kind, EntityKind::Goldnet { .. }))
            .count();
        assert_eq!(goldnet as u32, crate::calib::GOLDNET_FRONTENDS);
    }

    #[test]
    fn skynet_cluster_sits_between_ranks_10_and_28() {
        for e in PLANTED.iter().filter(|e| e.kind == EntityKind::SkynetCc) {
            assert!((10..=28).contains(&e.paper_rank), "rank {}", e.paper_rank);
        }
        let skynet = PLANTED
            .iter()
            .filter(|e| e.kind == EntityKind::SkynetCc)
            .count();
        // 10 Skynet C&C onions plus the BcMine pool = 11 in the cluster.
        assert_eq!(skynet, 10);
    }

    #[test]
    fn top_ranks_are_goldnet() {
        let top5: Vec<_> = {
            let mut v = PLANTED.to_vec();
            v.sort_by_key(|e| e.paper_rank);
            v.into_iter().take(5).collect()
        };
        assert!(top5
            .iter()
            .all(|e| matches!(e.kind, EntityKind::Goldnet { .. })));
    }
}

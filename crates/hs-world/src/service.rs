//! The hidden-service model: roles, open ports, page content and TLS
//! certificates.

use core::fmt;

use onion_crypto::onion::OnionAddress;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::lexicon;
use crate::taxonomy::{Language, Topic};

/// Skynet's connection-forwarder port.
pub const SKYNET_PORT: u16 = 55_080;
/// TorChat's listening port.
pub const TORCHAT_PORT: u16 = 11_009;
/// The IRC port seen in Fig. 1.
pub const IRC_PORT: u16 = 6_667;
/// The unexplained port-4050 cluster of Fig. 1.
pub const PORT_4050: u16 = 4_050;

/// What a service fundamentally is; determines ports and content.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// A machine infected with the Skynet malware: no open ports, but
    /// port 55080 answers with an abnormal error.
    SkynetBot,
    /// A Goldnet command-and-control front end (port 80, 503 + exposed
    /// `server-status`); `group` is the physical server.
    GoldnetCc {
        /// Physical-server group (0 or 1), recoverable from matching
        /// Apache uptimes on the status page.
        group: u8,
    },
    /// A Skynet command-and-control or bitcoin-pool onion.
    SkynetCc,
    /// A web service on port 80 (possibly mirrored on 443).
    Web,
    /// An SSH host (port 22 only).
    SshHost,
    /// A TorChat peer (port 11009).
    TorChat,
    /// An IRC server (port 6667).
    Irc,
    /// One of the long tail of unusual single-port services.
    CustomPort(u16),
    /// Descriptor published but no open ports at all.
    NoOpenPorts,
    /// Address harvested but descriptor no longer published (dead
    /// service; target of phantom requests).
    Dark,
}

/// TLS certificate flavour served on port 443 (Sec. III).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CertKind {
    /// Self-signed, common name unrelated to the requested host.
    SelfSignedMismatch,
    /// The TorHost shared certificate (`esjqyk2khizsy43i.onion`).
    TorHostCn,
    /// Carries the operator's *clearnet* DNS name — deanonymising.
    ClearnetDns,
    /// Common name matches the onion address.
    MatchingOnion,
}

/// A TLS certificate as observed by the scanner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// The certificate's common name.
    pub common_name: String,
    /// Whether it is self-signed.
    pub self_signed: bool,
    /// Its flavour.
    pub kind: CertKind,
}

/// Web-content attributes of a service with HTTP content.
#[derive(Clone, Copy, Debug)]
pub struct WebProfile {
    /// Page topic.
    pub topic: Topic,
    /// Page language.
    pub language: Language,
    /// Shows the TorHost free-hosting default page.
    pub torhost_default: bool,
    /// Fewer than 20 words of text.
    pub short_page: bool,
    /// An error message wrapped in HTML.
    pub error_page: bool,
    /// Port 443 open too.
    pub https: bool,
    /// Port 443 serves a byte-identical copy of port 80.
    pub https_mirror: bool,
    /// Certificate flavour when `https`.
    pub cert: CertKind,
    /// Serves on 8080 instead of 80 (Table I's four oddballs).
    pub on_8080: bool,
    /// Serves HTTPS only — port 443 without a port-80 counterpart.
    pub https_only: bool,
}

impl Default for WebProfile {
    fn default() -> Self {
        WebProfile {
            topic: Topic::Other,
            language: Language::English,
            torhost_default: false,
            short_page: false,
            error_page: false,
            https: false,
            https_mirror: false,
            cert: CertKind::MatchingOnion,
            on_8080: false,
            https_only: false,
        }
    }
}

/// One hidden service in the synthetic world.
#[derive(Clone, Debug)]
pub struct Service {
    /// Stable index in the world.
    pub index: u32,
    /// The service's onion address.
    pub onion: OnionAddress,
    /// What it is.
    pub role: Role,
    /// Web attributes (meaningful for `Web`-role services).
    pub web: WebProfile,
    /// Expected descriptor fetches per 2-hour window.
    pub popularity: f64,
    /// Table II label, if this is a planted entity.
    pub planted: Option<&'static str>,
    /// Probability the service is up on any given day of the scan week
    /// (scan-time churn; the paper reached 87 % port coverage).
    pub daily_availability: f64,
    /// Destination still in place at crawl time, two months later.
    pub alive_at_crawl: bool,
    /// An HTTP(S) connection to the destination succeeds at crawl time
    /// (the paper connected to 6,579 of 7,114 still-open destinations).
    pub connects_at_crawl: bool,
}

impl Service {
    /// The ports this service listens on (sorted). Port 55080's
    /// abnormal-close behaviour is *not* listed here — it is not an
    /// open port, merely a distinguishable reply.
    pub fn open_ports(&self) -> Vec<u16> {
        match self.role {
            Role::SkynetBot => vec![],
            Role::GoldnetCc { .. } => vec![80],
            Role::SkynetCc => vec![IRC_PORT, SKYNET_PORT],
            Role::Web => {
                if self.web.https_only {
                    return vec![443];
                }
                let mut p = vec![if self.web.on_8080 { 8080 } else { 80 }];
                if self.web.https {
                    p.push(443);
                }
                p.sort_unstable();
                p
            }
            Role::SshHost => vec![22],
            Role::TorChat => vec![TORCHAT_PORT],
            Role::Irc => vec![IRC_PORT],
            Role::CustomPort(p) => vec![p],
            Role::NoOpenPorts | Role::Dark => vec![],
        }
    }

    /// Whether the service publishes descriptors at all.
    pub fn publishes_descriptors(&self) -> bool {
        !matches!(self.role, Role::Dark)
    }

    /// Whether this is one of the skynet-infected machines (counted via
    /// the 55080 oracle).
    pub fn is_skynet_bot(&self) -> bool {
        matches!(self.role, Role::SkynetBot)
    }

    /// The TLS certificate served on 443, if any.
    pub fn certificate(&self) -> Option<Certificate> {
        if !(matches!(self.role, Role::Web) && (self.web.https || self.web.https_only)) {
            return None;
        }
        let cn_seed = self.onion.label();
        let cert = match self.web.cert {
            CertKind::TorHostCn => Certificate {
                common_name: "esjqyk2khizsy43i.onion".to_owned(),
                self_signed: true,
                kind: CertKind::TorHostCn,
            },
            CertKind::SelfSignedMismatch => Certificate {
                // A common name unrelated to the requested host.
                common_name: format!("{}.local", &cn_seed[..8]),
                self_signed: true,
                kind: CertKind::SelfSignedMismatch,
            },
            CertKind::ClearnetDns => Certificate {
                common_name: format!("www.{}.example.com", &cn_seed[..6]),
                self_signed: false,
                kind: CertKind::ClearnetDns,
            },
            CertKind::MatchingOnion => Certificate {
                common_name: format!("{cn_seed}.onion"),
                self_signed: true,
                kind: CertKind::MatchingOnion,
            },
        };
        Some(cert)
    }

    /// Renders the page text served at `port`, or `None` when the port
    /// speaks no HTTP. Deterministic per (service, port).
    pub fn render_page(&self, port: u16) -> Option<Page> {
        match self.role {
            Role::GoldnetCc { group } if port == 80 => Some(Page {
                status: 503,
                body: format!(
                    "<html><head><title>503 Service Unavailable</title></head>\
                     <body><h1>Service Unavailable</h1></body></html>\
                     <!-- server-status: Apache uptime {} seconds, \
                     10 req/sec, 330 KB/s, POST -->",
                    3_000_000 + u64::from(group) * 777_777
                ),
                words: 5,
            }),
            Role::SshHost if port == 22 => Some(Page {
                status: 0,
                body: format!(
                    "SSH-2.0-OpenSSH_5.9p1 Debian-5ubuntu1 {}",
                    &self.onion.label()[..4]
                ),
                words: 2,
            }),
            Role::Web => {
                if self.web.https_only {
                    return (port == 443).then(|| self.render_web_page());
                }
                let web_port = if self.web.on_8080 { 8080 } else { 80 };
                if port == web_port || (port == 443 && self.web.https) {
                    Some(self.render_web_page())
                } else {
                    None
                }
            }
            // TorChat/IRC/custom ports accept TCP but reply with a
            // non-HTTP protocol greeting: a handful of words at most.
            Role::TorChat if port == TORCHAT_PORT => Some(Page {
                status: 0,
                body: "ping 1a2b3c4d".to_owned(),
                words: 2,
            }),
            Role::Irc | Role::SkynetCc if port == IRC_PORT => Some(Page {
                status: 0,
                body: ":server NOTICE AUTH :*** Looking up your hostname".to_owned(),
                words: 7,
            }),
            Role::CustomPort(p) if port == p => Some(Page {
                status: 0,
                body: "protocol error".to_owned(),
                words: 2,
            }),
            _ => None,
        }
    }

    fn render_web_page(&self) -> Page {
        let mut rng = self.page_rng();
        if self.web.torhost_default {
            return Page {
                status: 200,
                body: torhost_default_page(),
                words: 40,
            };
        }
        if self.web.error_page {
            return Page {
                status: 200,
                body: "<html><body><h1>Error</h1><p>database connection \
                       failed please contact the administrator of this \
                       site for details about this internal error and try \
                       again later thank you</p></body></html>"
                    .to_owned(),
                words: 24,
            };
        }
        if self.web.short_page {
            let n = rng.random_range(1..20usize);
            let words = sample_words(Language::English, self.web.topic, n, &mut rng);
            return Page {
                status: 200,
                body: format!("<html><body>{}</body></html>", words.join(" ")),
                words: n,
            };
        }
        let n = rng.random_range(60..400usize);
        let words = sample_words(self.web.language, self.web.topic, n, &mut rng);
        Page {
            status: 200,
            body: format!(
                "<html><head><title>{}</title></head><body><p>{}</p></body></html>",
                self.onion.label(),
                words.join(" ")
            ),
            words: n,
        }
    }

    /// Per-service deterministic RNG for page rendering.
    fn page_rng(&self) -> StdRng {
        let b = self.onion.permanent_id();
        let mut seed = 0u64;
        for &x in b.as_bytes() {
            seed = seed.wrapping_mul(131).wrapping_add(u64::from(x));
        }
        StdRng::seed_from_u64(seed ^ 0x9a9e_2013)
    }
}

/// A fetched page (or protocol banner).
#[derive(Clone, Debug)]
pub struct Page {
    /// HTTP status (0 for non-HTTP protocol replies).
    pub status: u16,
    /// Raw body.
    pub body: String,
    /// Number of natural-language words in the body (what the crawl's
    /// 20-word rule counts).
    pub words: usize,
}

impl fmt::Display for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} words", self.status, self.words)
    }
}

/// The TorHost free-hosting default page (served by 805 crawled
/// services in the paper).
pub fn torhost_default_page() -> String {
    "<html><head><title>TorHost free anonymous hosting</title></head><body>\
     <h1>Welcome to your new TorHost site</h1><p>This is the default page \
     of the torhost onion free anonymous hosting service. Upload your own \
     content to replace this page. Free hosting for hidden services with \
     anonymous registration and no logs kept of any uploads or visits \
     enjoy your stay on the hidden web</p></body></html>"
        .to_owned()
}

/// Samples `n` words: roughly 55 % topic keywords, 45 % language filler
/// for English pages; non-English pages draw from the language lexicon
/// with a sprinkle of (English) topic keywords, as real pages do.
pub fn sample_words(language: Language, topic: Topic, n: usize, rng: &mut impl Rng) -> Vec<String> {
    let keywords = lexicon::topic_keywords(topic);
    let filler = lexicon::language_words(language);
    let keyword_share = if language == Language::English {
        0.55
    } else {
        0.15
    };
    (0..n)
        .map(|_| {
            let pool = if rng.random::<f64>() < keyword_share {
                keywords
            } else {
                filler
            };
            pool[rng.random_range(0..pool.len())].to_owned()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn web_service(web: WebProfile) -> Service {
        Service {
            index: 0,
            onion: OnionAddress::from_pubkey(b"a web service"),
            role: Role::Web,
            web,
            popularity: 1.0,
            planted: None,
            daily_availability: 1.0,
            alive_at_crawl: true,
            connects_at_crawl: true,
        }
    }

    #[test]
    fn skynet_bot_has_no_open_ports() {
        let s = Service {
            index: 0,
            onion: OnionAddress::from_pubkey(b"bot"),
            role: Role::SkynetBot,
            web: WebProfile::default(),
            popularity: 0.0,
            planted: None,
            daily_availability: 1.0,
            alive_at_crawl: true,
            connects_at_crawl: true,
        };
        assert!(s.open_ports().is_empty());
        assert!(s.is_skynet_bot());
        assert!(s.render_page(SKYNET_PORT).is_none());
    }

    #[test]
    fn web_ports_follow_profile() {
        let mut web = WebProfile {
            https: true,
            ..WebProfile::default()
        };
        assert_eq!(web_service(web).open_ports(), vec![80, 443]);
        web.https = false;
        assert_eq!(web_service(web).open_ports(), vec![80]);
        web.on_8080 = true;
        assert_eq!(web_service(web).open_ports(), vec![8080]);
    }

    #[test]
    fn page_rendering_deterministic() {
        let s = web_service(WebProfile {
            topic: Topic::Drugs,
            ..WebProfile::default()
        });
        let a = s.render_page(80).unwrap();
        let b = s.render_page(80).unwrap();
        assert_eq!(a.body, b.body);
        assert!(a.words >= 60);
        assert_eq!(a.status, 200);
    }

    #[test]
    fn https_mirror_serves_identical_content() {
        let s = web_service(WebProfile {
            https: true,
            https_mirror: true,
            ..WebProfile::default()
        });
        assert_eq!(
            s.render_page(80).unwrap().body,
            s.render_page(443).unwrap().body
        );
    }

    #[test]
    fn short_page_under_20_words() {
        let s = web_service(WebProfile {
            short_page: true,
            ..WebProfile::default()
        });
        assert!(s.render_page(80).unwrap().words < 20);
    }

    #[test]
    fn torhost_default_page_is_english_boilerplate() {
        let s = web_service(WebProfile {
            torhost_default: true,
            ..WebProfile::default()
        });
        let p = s.render_page(80).unwrap();
        assert!(p.body.contains("TorHost"));
        assert!(p.words >= 20);
    }

    #[test]
    fn goldnet_returns_503_with_server_status() {
        let s = Service {
            index: 0,
            onion: OnionAddress::from_pubkey(b"goldnet"),
            role: Role::GoldnetCc { group: 1 },
            web: WebProfile::default(),
            popularity: 10_000.0,
            planted: Some("Goldnet"),
            daily_availability: 1.0,
            alive_at_crawl: true,
            connects_at_crawl: true,
        };
        let p = s.render_page(80).unwrap();
        assert_eq!(p.status, 503);
        assert!(p.body.contains("server-status"));
    }

    #[test]
    fn certificates_by_kind() {
        let mk = |cert| {
            web_service(WebProfile {
                https: true,
                cert,
                ..WebProfile::default()
            })
            .certificate()
            .unwrap()
        };
        let torhost = mk(CertKind::TorHostCn);
        assert_eq!(torhost.common_name, "esjqyk2khizsy43i.onion");
        assert!(torhost.self_signed);

        let clearnet = mk(CertKind::ClearnetDns);
        assert!(clearnet.common_name.ends_with(".example.com"));
        assert!(!clearnet.self_signed);

        let matching = mk(CertKind::MatchingOnion);
        assert!(matching.common_name.ends_with(".onion"));

        // No HTTPS → no certificate.
        assert!(web_service(WebProfile::default()).certificate().is_none());
    }

    #[test]
    fn ssh_banner_is_short() {
        let s = Service {
            index: 0,
            onion: OnionAddress::from_pubkey(b"sshhost"),
            role: Role::SshHost,
            web: WebProfile::default(),
            popularity: 0.5,
            planted: None,
            daily_availability: 1.0,
            alive_at_crawl: true,
            connects_at_crawl: true,
        };
        let p = s.render_page(22).unwrap();
        assert!(p.body.starts_with("SSH-2.0"));
        assert!(p.words < 20);
        assert!(s.render_page(80).is_none());
    }

    #[test]
    fn non_english_pages_use_language_lexicon() {
        let s = web_service(WebProfile {
            language: Language::German,
            topic: Topic::Politics,
            ..WebProfile::default()
        });
        let p = s.render_page(80).unwrap();
        let german_hits = ["und", "der", "nicht", "das", "werden"]
            .iter()
            .filter(|w| p.body.split_whitespace().any(|t| t == **w))
            .count();
        assert!(german_hits >= 2, "expected German words in body");
    }
}

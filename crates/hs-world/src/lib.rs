//! Synthetic Tor hidden-service world, calibrated to the populations
//! measured by *"Content and popularity analysis of Tor hidden
//! services"* (Biryukov et al., ICDCS 2014).
//!
//! The paper studied the live 2013 network; this crate substitutes a
//! deterministic generator that reproduces every marginal the paper
//! reports — Fig. 1's port distribution, Sec. III's certificate
//! populations, Sec. IV's content funnel, languages and topics, and
//! Table II's popularity ranking — so the measurement pipelines in the
//! sibling crates can run unchanged against it.
//!
//! - [`taxonomy`] — the 18 topics of Fig. 2 and 17 languages of Sec. IV;
//! - [`lexicon`] — seed vocabularies for page generation and training;
//! - [`calib`] — every count the paper reports, as constants;
//! - [`entities`] — the named Table II services, planted verbatim;
//! - [`service`] — the per-service model (roles, ports, pages, certs);
//! - [`world`] — the generator and the [`tor_sim::ServiceBackend`] glue;
//! - [`geo`] — a synthetic IP-geolocation database for Fig. 3.
//!
//! # Examples
//!
//! ```
//! use hs_world::{World, WorldConfig};
//!
//! let world = World::generate(WorldConfig::test_scale());
//! let silkroad = world.get("silkroadvb5piz3r".parse()?).unwrap();
//! assert_eq!(silkroad.planted, Some("SilkRoad"));
//! # Ok::<(), onion_crypto::onion::ParseOnionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod calib;
pub mod entities;
pub mod geo;
pub mod lexicon;
pub mod service;
pub mod taxonomy;
pub mod world;

pub use geo::GeoDb;
pub use service::{CertKind, Certificate, Page, Role, Service, WebProfile};
pub use taxonomy::{Language, Topic};
pub use world::{World, WorldConfig};

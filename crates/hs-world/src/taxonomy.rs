//! The classification taxonomy of the paper: 18 content topics (Fig. 2)
//! and 17 page languages (Sec. IV).

use core::fmt;

/// The 18 content categories of Fig. 2.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Topic {
    /// Adult content (17 % of classified English pages).
    Adult,
    /// Drug marketplaces and forums (15 %).
    Drugs,
    /// Political reporting, leaks, human-rights resources (9 %).
    Politics,
    /// Counterfeit goods, stolen card numbers, hacked accounts (8 %).
    Counterfeit,
    /// Weapon sales (4 %).
    Weapons,
    /// FAQs and tutorials (4 %).
    Tutorials,
    /// Security resources (5 %).
    Security,
    /// Anonymity technology and discussion (8 %).
    Anonymity,
    /// Hacking fora and services (3 %).
    Hacking,
    /// Software and hardware (7 %).
    Software,
    /// Art (2 %).
    Art,
    /// Escrow, money laundering, hit-man style "services" (4 %).
    Services,
    /// Games: chess, lotteries, bitcoin poker (1 %).
    Games,
    /// Science (1 %).
    Science,
    /// Digital libraries (4 %).
    DigitalLibraries,
    /// Sports (1 %).
    Sports,
    /// Technology (4 %).
    Technology,
    /// Everything else (3 %).
    Other,
}

impl Topic {
    /// All topics, in Fig. 2 order.
    pub const ALL: [Topic; 18] = [
        Topic::Adult,
        Topic::Drugs,
        Topic::Politics,
        Topic::Counterfeit,
        Topic::Weapons,
        Topic::Tutorials,
        Topic::Security,
        Topic::Anonymity,
        Topic::Hacking,
        Topic::Software,
        Topic::Art,
        Topic::Services,
        Topic::Games,
        Topic::Science,
        Topic::DigitalLibraries,
        Topic::Sports,
        Topic::Technology,
        Topic::Other,
    ];

    /// The paper's measured share of classified English pages, in
    /// percent (Fig. 2; sums to 100).
    pub fn paper_percent(self) -> u32 {
        match self {
            Topic::Adult => 17,
            Topic::Drugs => 15,
            Topic::Politics => 9,
            Topic::Counterfeit => 8,
            Topic::Weapons => 4,
            Topic::Tutorials => 4,
            Topic::Security => 5,
            Topic::Anonymity => 8,
            Topic::Hacking => 3,
            Topic::Software => 7,
            Topic::Art => 2,
            Topic::Services => 4,
            Topic::Games => 1,
            Topic::Science => 1,
            Topic::DigitalLibraries => 4,
            Topic::Sports => 1,
            Topic::Technology => 4,
            Topic::Other => 3,
        }
    }

    /// Human-readable label matching Fig. 2.
    pub fn label(self) -> &'static str {
        match self {
            Topic::Adult => "Adult",
            Topic::Drugs => "Drugs",
            Topic::Politics => "Politics",
            Topic::Counterfeit => "Counterfeit",
            Topic::Weapons => "Weapons",
            Topic::Tutorials => "FAQs,Tutorials",
            Topic::Security => "Security",
            Topic::Anonymity => "Anonymity",
            Topic::Hacking => "Hacking",
            Topic::Software => "Software,Hardware",
            Topic::Art => "Art",
            Topic::Services => "Services",
            Topic::Games => "Games",
            Topic::Science => "Science",
            Topic::DigitalLibraries => "Digital libs",
            Topic::Sports => "Sports",
            Topic::Technology => "Technology",
            Topic::Other => "Other",
        }
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The 17 page languages the paper found (Sec. IV).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Language {
    /// English — 84 % of classified pages.
    English,
    /// German.
    German,
    /// Russian.
    Russian,
    /// Portuguese.
    Portuguese,
    /// Spanish.
    Spanish,
    /// French.
    French,
    /// Polish.
    Polish,
    /// Japanese.
    Japanese,
    /// Italian.
    Italian,
    /// Czech.
    Czech,
    /// Arabic.
    Arabic,
    /// Dutch.
    Dutch,
    /// Basque.
    Basque,
    /// Chinese.
    Chinese,
    /// Hungarian.
    Hungarian,
    /// Bantu (as reported by the paper's detector).
    Bantu,
    /// Swedish.
    Swedish,
}

impl Language {
    /// All languages, English first.
    pub const ALL: [Language; 17] = [
        Language::English,
        Language::German,
        Language::Russian,
        Language::Portuguese,
        Language::Spanish,
        Language::French,
        Language::Polish,
        Language::Japanese,
        Language::Italian,
        Language::Czech,
        Language::Arabic,
        Language::Dutch,
        Language::Basque,
        Language::Chinese,
        Language::Hungarian,
        Language::Bantu,
        Language::Swedish,
    ];

    /// Share of classified pages in this language, in permille
    /// (English 840‰, every other language < 30‰; sums to 1000).
    pub fn paper_permille(self) -> u32 {
        match self {
            Language::English => 840,
            Language::German => 25,
            Language::Russian => 22,
            Language::Portuguese => 18,
            Language::Spanish => 15,
            Language::French => 14,
            Language::Polish => 12,
            Language::Japanese => 10,
            Language::Italian => 9,
            Language::Czech => 7,
            Language::Arabic => 6,
            Language::Dutch => 6,
            Language::Basque => 4,
            Language::Chinese => 4,
            Language::Hungarian => 3,
            Language::Bantu => 2,
            Language::Swedish => 3,
        }
    }

    /// ISO-639-ish code used in reports.
    pub fn code(self) -> &'static str {
        match self {
            Language::English => "en",
            Language::German => "de",
            Language::Russian => "ru",
            Language::Portuguese => "pt",
            Language::Spanish => "es",
            Language::French => "fr",
            Language::Polish => "pl",
            Language::Japanese => "ja",
            Language::Italian => "it",
            Language::Czech => "cs",
            Language::Arabic => "ar",
            Language::Dutch => "nl",
            Language::Basque => "eu",
            Language::Chinese => "zh",
            Language::Hungarian => "hu",
            Language::Bantu => "bnt",
            Language::Swedish => "sv",
        }
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_percentages_sum_to_100() {
        let total: u32 = Topic::ALL.iter().map(|t| t.paper_percent()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn language_permille_sums_to_1000() {
        let total: u32 = Language::ALL.iter().map(|l| l.paper_permille()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn english_dominates() {
        assert_eq!(Language::English.paper_permille(), 840);
        for lang in &Language::ALL[1..] {
            assert!(lang.paper_permille() < 30, "{lang} must be <3%");
        }
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = Topic::ALL.iter().map(|t| t.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 18);
        let mut codes: Vec<&str> = Language::ALL.iter().map(|l| l.code()).collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), 17);
    }

    #[test]
    fn fig2_headline_shape() {
        // Adult and Drugs lead; Drugs+Adult+Counterfeit+Weapons = 44 %.
        let illegal = Topic::Adult.paper_percent()
            + Topic::Drugs.paper_percent()
            + Topic::Counterfeit.paper_percent()
            + Topic::Weapons.paper_percent();
        assert_eq!(illegal, 44);
    }
}

//! A synthetic IPv4 geolocation database.
//!
//! Fig. 3 of the paper plots the countries of deanonymised clients of a
//! popular hidden service. The original used a commercial geo-IP
//! database over live client IPs; we substitute a deterministic
//! allocation of first-octet blocks to countries, weighted by a
//! plausible 2013 Tor-client population, so the attack pipeline can
//! perform the same IP → country join.

use rand::{Rng, RngExt};

use tor_sim::relay::Ipv4;

/// A country in the synthetic database.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Country {
    /// ISO 3166-1 alpha-2 code.
    pub code: &'static str,
    /// English name.
    pub name: &'static str,
    /// Relative Tor-client population weight.
    pub weight: u32,
    /// Representative latitude (for map rendering).
    pub lat: f64,
    /// Representative longitude.
    pub lon: f64,
}

/// 2013-plausible Tor client distribution (weights sum to 1000).
pub const COUNTRIES: &[Country] = &[
    Country {
        code: "US",
        name: "United States",
        weight: 175,
        lat: 39.8,
        lon: -98.5,
    },
    Country {
        code: "DE",
        name: "Germany",
        weight: 105,
        lat: 51.2,
        lon: 10.4,
    },
    Country {
        code: "RU",
        name: "Russia",
        weight: 85,
        lat: 61.5,
        lon: 105.3,
    },
    Country {
        code: "FR",
        name: "France",
        weight: 65,
        lat: 46.2,
        lon: 2.2,
    },
    Country {
        code: "IT",
        name: "Italy",
        weight: 60,
        lat: 41.9,
        lon: 12.6,
    },
    Country {
        code: "GB",
        name: "United Kingdom",
        weight: 55,
        lat: 55.4,
        lon: -3.4,
    },
    Country {
        code: "ES",
        name: "Spain",
        weight: 45,
        lat: 40.5,
        lon: -3.7,
    },
    Country {
        code: "PL",
        name: "Poland",
        weight: 38,
        lat: 51.9,
        lon: 19.1,
    },
    Country {
        code: "NL",
        name: "Netherlands",
        weight: 35,
        lat: 52.1,
        lon: 5.3,
    },
    Country {
        code: "JP",
        name: "Japan",
        weight: 33,
        lat: 36.2,
        lon: 138.3,
    },
    Country {
        code: "BR",
        name: "Brazil",
        weight: 32,
        lat: -14.2,
        lon: -51.9,
    },
    Country {
        code: "CA",
        name: "Canada",
        weight: 30,
        lat: 56.1,
        lon: -106.3,
    },
    Country {
        code: "SE",
        name: "Sweden",
        weight: 25,
        lat: 60.1,
        lon: 18.6,
    },
    Country {
        code: "UA",
        name: "Ukraine",
        weight: 23,
        lat: 48.4,
        lon: 31.2,
    },
    Country {
        code: "IR",
        name: "Iran",
        weight: 22,
        lat: 32.4,
        lon: 53.7,
    },
    Country {
        code: "AU",
        name: "Australia",
        weight: 22,
        lat: -25.3,
        lon: 133.8,
    },
    Country {
        code: "CZ",
        name: "Czech Republic",
        weight: 20,
        lat: 49.8,
        lon: 15.5,
    },
    Country {
        code: "AT",
        name: "Austria",
        weight: 18,
        lat: 47.5,
        lon: 14.6,
    },
    Country {
        code: "CH",
        name: "Switzerland",
        weight: 17,
        lat: 46.8,
        lon: 8.2,
    },
    Country {
        code: "RO",
        name: "Romania",
        weight: 15,
        lat: 45.9,
        lon: 25.0,
    },
    Country {
        code: "IN",
        name: "India",
        weight: 14,
        lat: 20.6,
        lon: 79.0,
    },
    Country {
        code: "CN",
        name: "China",
        weight: 13,
        lat: 35.9,
        lon: 104.2,
    },
    Country {
        code: "AR",
        name: "Argentina",
        weight: 12,
        lat: -38.4,
        lon: -63.6,
    },
    Country {
        code: "MX",
        name: "Mexico",
        weight: 11,
        lat: 23.6,
        lon: -102.6,
    },
    Country {
        code: "TR",
        name: "Turkey",
        weight: 10,
        lat: 39.0,
        lon: 35.2,
    },
    Country {
        code: "KR",
        name: "South Korea",
        weight: 9,
        lat: 35.9,
        lon: 127.8,
    },
    Country {
        code: "FI",
        name: "Finland",
        weight: 4,
        lat: 61.9,
        lon: 25.7,
    },
    Country {
        code: "NO",
        name: "Norway",
        weight: 3,
        lat: 60.5,
        lon: 8.5,
    },
    Country {
        code: "EG",
        name: "Egypt",
        weight: 2,
        lat: 26.8,
        lon: 30.8,
    },
    Country {
        code: "ZA",
        name: "South Africa",
        weight: 2,
        lat: -30.6,
        lon: 22.9,
    },
];

/// The synthetic geolocation database: first-octet blocks 1–223 are
/// assigned to countries proportionally to client weight.
#[derive(Clone, Debug)]
pub struct GeoDb {
    /// `octet_owner[o]` = index into [`COUNTRIES`] for first octet `o`.
    octet_owner: [u8; 224],
}

impl Default for GeoDb {
    fn default() -> Self {
        Self::new()
    }
}

impl GeoDb {
    /// Builds the database (deterministic, no RNG involved).
    pub fn new() -> Self {
        let total: u32 = COUNTRIES.iter().map(|c| c.weight).sum();
        let usable = 223u32; // first octets 1..=223 (classic unicast)
        let mut octet_owner = [0u8; 224];
        let mut next_octet = 1usize;
        let mut acc = 0u32;
        for (i, c) in COUNTRIES.iter().enumerate() {
            acc += c.weight;
            let end = 1 + (acc * usable / total) as usize;
            while next_octet < end.min(224) {
                octet_owner[next_octet] = i as u8;
                next_octet += 1;
            }
        }
        while next_octet < 224 {
            octet_owner[next_octet] = (COUNTRIES.len() - 1) as u8;
            next_octet += 1;
        }
        GeoDb { octet_owner }
    }

    /// Looks up the country of an IP address.
    pub fn lookup(&self, ip: Ipv4) -> &'static Country {
        let octet = ip.octets()[0] as usize;
        let idx = if octet == 0 || octet > 223 {
            0
        } else {
            self.octet_owner[octet] as usize
        };
        &COUNTRIES[idx]
    }

    /// Samples a client IP address with country frequencies following
    /// the population weights.
    pub fn sample_client_ip(&self, rng: &mut impl Rng) -> Ipv4 {
        // Sample a country by weight, then a random host inside one of
        // its octet blocks.
        let total: u32 = COUNTRIES.iter().map(|c| c.weight).sum();
        let mut target = rng.random_range(0..total);
        let mut country_idx = 0usize;
        for (i, c) in COUNTRIES.iter().enumerate() {
            if target < c.weight {
                country_idx = i;
                break;
            }
            target -= c.weight;
        }
        let blocks: Vec<u8> = (1..=223u8)
            .filter(|&o| self.octet_owner[o as usize] as usize == country_idx)
            .collect();
        let first = if blocks.is_empty() {
            1
        } else {
            blocks[rng.random_range(0..blocks.len())]
        };
        Ipv4::new(
            first,
            rng.random_range(0..=255),
            rng.random_range(0..=255),
            rng.random_range(1..=254),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_sum_to_1000() {
        let total: u32 = COUNTRIES.iter().map(|c| c.weight).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn lookup_is_total() {
        let db = GeoDb::new();
        for o in 0..=255u8 {
            let c = db.lookup(Ipv4::new(o, 1, 2, 3));
            assert!(!c.code.is_empty());
        }
    }

    #[test]
    fn sampled_ips_map_back_to_weighted_countries() {
        let db = GeoDb::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut us = 0u32;
        let mut za = 0u32;
        let n = 5_000;
        for _ in 0..n {
            let ip = db.sample_client_ip(&mut rng);
            match db.lookup(ip).code {
                "US" => us += 1,
                "ZA" => za += 1,
                _ => {}
            }
        }
        // US ≈ 17.5 %, ZA ≈ 0.2 %.
        assert!(
            (0.13..0.23).contains(&(us as f64 / n as f64)),
            "US share {us}"
        );
        assert!(za < us / 10, "ZA must be rare");
    }

    #[test]
    fn every_sampled_ip_is_unicast() {
        let db = GeoDb::new();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..500 {
            let ip = db.sample_client_ip(&mut rng);
            let o = ip.octets()[0];
            assert!((1..=223).contains(&o));
        }
    }

    #[test]
    fn big_countries_get_more_blocks() {
        let db = GeoDb::new();
        let count = |code: &str| {
            (1..=223u8)
                .filter(|&o| db.lookup(Ipv4::new(o, 0, 0, 1)).code == code)
                .count()
        };
        assert!(count("US") > count("SE"));
        assert!(count("DE") > count("NO"));
    }
}

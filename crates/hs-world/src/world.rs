//! The world generator: a synthetic hidden-service population
//! calibrated to every marginal the paper reports, pluggable into
//! `tor-sim` as a [`ServiceBackend`].

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use onion_crypto::onion::OnionAddress;
use onion_crypto::sha1::Sha1;
use tor_sim::clock::SimTime;
use tor_sim::network::Network;
use tor_sim::service::{PortReply, ServiceBackend};

use crate::calib::{self, scaled};
use crate::entities::{self, EntityKind, PlantedEntity};
use crate::service::{CertKind, Role, Service, WebProfile, SKYNET_PORT};
use crate::taxonomy::{Language, Topic};

/// Configuration of a generated world.
#[derive(Clone, Copy, Debug)]
pub struct WorldConfig {
    /// Deterministic seed.
    pub seed: u64,
    /// Population scale relative to the paper (1.0 = 39,824 addresses).
    pub scale: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0x2013_0204,
            scale: 1.0,
        }
    }
}

impl WorldConfig {
    /// Full paper-scale world.
    pub fn paper_scale() -> Self {
        Self::default()
    }

    /// A small world for tests (~2 % of paper scale).
    pub fn test_scale() -> Self {
        WorldConfig {
            seed: 0x2013_0204,
            scale: 0.02,
        }
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scale.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < scale <= 1.0`.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        self.scale = scale;
        self
    }
}

/// The synthetic hidden-service world.
///
/// # Examples
///
/// ```
/// use hs_world::world::{World, WorldConfig};
///
/// let world = World::generate(WorldConfig::test_scale());
/// assert!(world.services().len() > 500);
/// let skynet = world.services().iter().filter(|s| s.is_skynet_bot()).count();
/// // Skynet bots are the majority of port-bearing services, as in Fig. 1.
/// assert!(skynet > world.services().len() / 5);
/// ```
#[derive(Clone, Debug)]
pub struct World {
    config: WorldConfig,
    services: Vec<Service>,
    by_onion: HashMap<OnionAddress, u32>,
}

impl World {
    /// A world with no services at all. `generate` floors every
    /// population at one, so this is the only way to express the
    /// degenerate every-publish-gone scenario — used to pin
    /// divide-by-zero guards in downstream statistics.
    pub fn empty() -> Self {
        World {
            config: WorldConfig {
                seed: 0,
                scale: 1.0,
            },
            services: Vec::new(),
            by_onion: HashMap::new(),
        }
    }

    /// Generates a world from `config`.
    pub fn generate(config: WorldConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let sc = config.scale;
        let mut services: Vec<Service> = Vec::new();
        let mut used: HashMap<OnionAddress, ()> = HashMap::new();

        // --- 1. Planted Table II entities -------------------------------
        // Request rates scale with the world so measured counts are
        // `paper x scale` while ranks and ratios are preserved.
        let plant = |e: &PlantedEntity,
                     services: &mut Vec<Service>,
                     used: &mut HashMap<OnionAddress, ()>| {
            let onion: OnionAddress = e
                .onion_label
                .parse()
                .expect("planted labels are valid base32");
            used.insert(onion, ());
            let (role, web) = match e.kind {
                EntityKind::Goldnet { group } => (Role::GoldnetCc { group }, WebProfile::default()),
                EntityKind::SkynetCc | EntityKind::BitcoinMiner => {
                    (Role::SkynetCc, WebProfile::default())
                }
                EntityKind::Unknown => (
                    Role::Web,
                    WebProfile {
                        short_page: true,
                        ..WebProfile::default()
                    },
                ),
                EntityKind::Web(topic) => (
                    Role::Web,
                    WebProfile {
                        topic,
                        ..WebProfile::default()
                    },
                ),
            };
            services.push(Service {
                index: services.len() as u32,
                onion,
                role,
                web,
                popularity: f64::from(e.requests_2h) * sc,
                planted: Some(e.name),
                daily_availability: 0.995,
                alive_at_crawl: true,
                connects_at_crawl: true,
            });
        };
        for e in entities::PLANTED {
            plant(e, &mut services, &mut used);
        }
        plant(&entities::PUBLIC_POOL_SLUSH, &mut services, &mut used);
        plant(&entities::PUBLIC_POOL_ELIGIUS, &mut services, &mut used);

        let planted_goldnet = services
            .iter()
            .filter(|s| matches!(s.role, Role::GoldnetCc { .. }))
            .count() as u32;
        let planted_web = services
            .iter()
            .filter(|s| matches!(s.role, Role::Web))
            .count() as u32;

        // --- 2. Population quotas ---------------------------------------
        let n_skynet = scaled(calib::SKYNET_BOTS, sc);
        let n_web80 = scaled(calib::PORT_80, sc).saturating_sub(planted_goldnet + planted_web);
        let n_https_only = scaled(calib::PORT_443 - calib::HTTPS_MIRRORS, sc);
        let n_ssh = scaled(calib::PORT_22, sc);
        let n_torchat = scaled(calib::PORT_TORCHAT, sc);
        let n_4050 = scaled(calib::PORT_4050, sc);
        let n_irc = scaled(calib::PORT_IRC, sc);
        let n_other = scaled(calib::PORT_OTHER, sc);
        let n_noports = scaled(
            calib::WITH_DESCRIPTORS
                - calib::SKYNET_BOTS
                - calib::PORT_80
                - (calib::PORT_443 - calib::HTTPS_MIRRORS)
                - calib::PORT_22
                - calib::PORT_TORCHAT
                - calib::PORT_4050
                - calib::PORT_IRC
                - calib::PORT_OTHER,
            sc,
        );
        let n_dark = scaled(calib::TOTAL_ADDRESSES - calib::WITH_DESCRIPTORS, sc);

        let fresh_onion = |rng: &mut StdRng, used: &mut HashMap<OnionAddress, ()>| loop {
            let mut key = [0u8; 32];
            rng.fill(&mut key[..]);
            let onion = OnionAddress::from_pubkey(&key);
            if used.insert(onion, ()).is_none() {
                return onion;
            }
        };

        let push = |role: Role,
                    web: WebProfile,
                    rng: &mut StdRng,
                    used: &mut HashMap<OnionAddress, ()>,
                    services: &mut Vec<Service>| {
            let onion = fresh_onion(rng, used);
            // Mixture tuned so the multi-day scan concludes ~87 % of its
            // port probes, the coverage the paper reports.
            let avail = if rng.random::<f64>() < 0.80 {
                0.97
            } else {
                0.60
            };
            services.push(Service {
                index: services.len() as u32,
                onion,
                role,
                web,
                popularity: 0.0,
                planted: None,
                daily_availability: avail,
                alive_at_crawl: false,
                connects_at_crawl: false,
            });
        };

        for _ in 0..n_skynet {
            push(
                Role::SkynetBot,
                WebProfile::default(),
                &mut rng,
                &mut used,
                &mut services,
            );
        }
        let web_start = services.len();
        for _ in 0..n_web80 {
            push(
                Role::Web,
                WebProfile::default(),
                &mut rng,
                &mut used,
                &mut services,
            );
        }
        let https_only_start = services.len();
        for _ in 0..n_https_only {
            push(
                Role::Web,
                WebProfile {
                    https_only: true,
                    ..WebProfile::default()
                },
                &mut rng,
                &mut used,
                &mut services,
            );
        }
        let web_end = services.len();
        for _ in 0..n_ssh {
            push(
                Role::SshHost,
                WebProfile::default(),
                &mut rng,
                &mut used,
                &mut services,
            );
        }
        for _ in 0..n_torchat {
            push(
                Role::TorChat,
                WebProfile::default(),
                &mut rng,
                &mut used,
                &mut services,
            );
        }
        for _ in 0..n_4050 {
            push(
                Role::CustomPort(crate::service::PORT_4050),
                WebProfile::default(),
                &mut rng,
                &mut used,
                &mut services,
            );
        }
        for _ in 0..n_irc {
            push(
                Role::Irc,
                WebProfile::default(),
                &mut rng,
                &mut used,
                &mut services,
            );
        }
        // The long tail of unusual ports: ~488 distinct port numbers so
        // the scan sees `UNIQUE_PORTS` unique ports in total.
        let unique_other = scaled(calib::UNIQUE_PORTS - 7, sc).max(1);
        for i in 0..n_other {
            let slot = i % unique_other;
            // Spread over 1024..49151 avoiding the named ports.
            let port = 1024 + ((u64::from(slot) * 47 + 11) % 48_000) as u16;
            let port = match port {
                4050 | 6667 | 8080 | 11009 => port + 1,
                _ => port,
            };
            push(
                Role::CustomPort(port),
                WebProfile::default(),
                &mut rng,
                &mut used,
                &mut services,
            );
        }
        for _ in 0..n_noports {
            push(
                Role::NoOpenPorts,
                WebProfile::default(),
                &mut rng,
                &mut used,
                &mut services,
            );
        }
        for _ in 0..n_dark {
            push(
                Role::Dark,
                WebProfile::default(),
                &mut rng,
                &mut used,
                &mut services,
            );
        }

        // --- 3. Web attribute quotas ------------------------------------
        Self::assign_web_attributes(
            &mut services,
            web_start..https_only_start,
            https_only_start..web_end,
            sc,
            &mut rng,
        );

        // --- 4. Crawl-time survival -------------------------------------
        Self::assign_crawl_survival(&mut services, &mut rng);

        // --- 5. Popularity tail & phantom pool --------------------------
        Self::assign_popularity(&mut services, sc, &mut rng);

        let by_onion = services.iter().map(|s| (s.onion, s.index)).collect();
        World {
            config,
            services,
            by_onion,
        }
    }

    /// Assigns TorHost defaults, short/error pages, languages, topics,
    /// mirrors and certificates within the web population.
    fn assign_web_attributes(
        services: &mut [Service],
        web80: std::ops::Range<usize>,
        https_only: std::ops::Range<usize>,
        sc: f64,
        rng: &mut StdRng,
    ) {
        let mut idx: Vec<usize> = web80.clone().collect();
        idx.shuffle(rng);

        let q_torhost = scaled(calib::TORHOST_DEFAULT_PAGES, sc) as usize;
        let q_short = scaled(820, sc) as usize; // ≈ the 799 short HTML pages + slack
        let q_error = scaled(calib::EXCLUDED_ERROR_PAGES - calib::GOLDNET_FRONTENDS, sc) as usize;
        let q_8080 = scaled(calib::TABLE1_PORT_8080, sc) as usize;
        let q_mirror = scaled(calib::HTTPS_MIRRORS, sc) as usize;

        let mut cursor = 0usize;
        let take = |n: usize, cursor: &mut usize, idx: &Vec<usize>| {
            let s = *cursor;
            let e = (s + n).min(idx.len());
            *cursor = e;
            idx[s..e].to_vec()
        };

        for i in take(q_torhost, &mut cursor, &idx) {
            services[i].web.torhost_default = true;
        }
        for i in take(q_short, &mut cursor, &idx) {
            services[i].web.short_page = true;
        }
        for i in take(q_error, &mut cursor, &idx) {
            services[i].web.error_page = true;
        }
        for i in take(q_8080, &mut cursor, &idx) {
            services[i].web.on_8080 = true;
        }

        // Mirrors can overlap with any attribute except 8080: assign on
        // a fresh shuffle of the web80 population.
        let mut mirror_idx: Vec<usize> = web80
            .clone()
            .filter(|&i| !services[i].web.on_8080)
            .collect();
        mirror_idx.shuffle(rng);
        for &i in mirror_idx.iter().take(q_mirror) {
            services[i].web.https = true;
            services[i].web.https_mirror = true;
        }

        // Languages and topics for every topical (non-default) page,
        // including HTTPS-only services. Shuffled so language/topic
        // assignment does not correlate with per-role crawl survival.
        let mut topical: Vec<usize> = web80
            .clone()
            .chain(https_only.clone())
            .filter(|&i| {
                let w = &services[i].web;
                !(w.torhost_default || w.short_page || w.error_page)
            })
            .collect();
        topical.shuffle(rng);
        // The paper's 84 % English is measured over *all* classified
        // pages — including the TorHost default pages, which are
        // English boilerplate. The topical population therefore carries
        // proportionally more non-English pages.
        let non_en_permille = 1_000 - Language::English.paper_permille();
        let non_en_target = (((topical.len() + q_torhost) as f64) * f64::from(non_en_permille)
            / 1_000.0)
            .round() as usize;
        let non_en_target = non_en_target.min(topical.len());
        let non_en_weights: Vec<(Language, u32)> = Language::ALL
            .iter()
            .filter(|&&l| l != Language::English)
            .map(|&l| (l, l.paper_permille()))
            .collect();
        let non_en_labels = quota_list(non_en_target, &non_en_weights);
        for (k, &i) in topical.iter().enumerate() {
            services[i].web.language = if k < non_en_target {
                non_en_labels[k]
            } else {
                Language::English
            };
        }
        // Topics are assigned over an independently shuffled order so
        // topic blocks do not line up with the language blocks (which
        // would, e.g., make every Adult page non-English).
        let mut topical_for_topics = topical.clone();
        topical_for_topics.shuffle(rng);
        let topic_quota = quota_list(
            topical_for_topics.len(),
            &Topic::ALL.map(|t| (t, t.paper_percent())),
        );
        for (k, &i) in topical_for_topics.iter().enumerate() {
            services[i].web.topic = topic_quota[k];
        }

        // Certificates over everything serving 443.
        let mut cert_idx: Vec<usize> = web80
            .chain(https_only)
            .filter(|&i| services[i].web.https || services[i].web.https_only)
            .collect();
        cert_idx.shuffle(rng);
        let q_torhost_cn = scaled(calib::CERT_TORHOST_CN, sc) as usize;
        let q_mismatch = scaled(
            calib::CERT_SELF_SIGNED_MISMATCH - calib::CERT_TORHOST_CN,
            sc,
        ) as usize;
        // At minuscule scales the clearnet-CN population would round
        // down to a single service, whose one scheduled 443 probe can
        // miss through churn; floor it so the cert survey measures a
        // population rather than one Bernoulli trial. Assigned first in
        // the shuffled order so the quota is never truncated when few
        // services serve HTTPS (positions carry no meaning after the
        // shuffle).
        let q_clearnet = (scaled(calib::CERT_CLEARNET_DNS, sc) as usize).max(3);
        for (k, &i) in cert_idx.iter().enumerate() {
            services[i].web.cert = if k < q_clearnet {
                CertKind::ClearnetDns
            } else if k < q_clearnet + q_torhost_cn {
                CertKind::TorHostCn
            } else if k < q_clearnet + q_torhost_cn + q_mismatch {
                CertKind::SelfSignedMismatch
            } else {
                CertKind::MatchingOnion
            };
        }
    }

    /// Samples per-role crawl survival: whether the destination is still
    /// open two months later and whether the connection completes.
    fn assign_crawl_survival(services: &mut [Service], rng: &mut StdRng) {
        for s in services.iter_mut() {
            if s.planted.is_some() {
                continue; // planted entities stay reachable
            }
            let (p_open, p_connect) = match s.role {
                Role::Web if s.web.https_only => (0.75, 0.935),
                Role::Web => (0.97, 0.958),
                Role::SshHost => (0.93, 0.95),
                Role::TorChat | Role::Irc | Role::CustomPort(_) => (0.35, 0.855),
                Role::GoldnetCc { .. } | Role::SkynetCc => (1.0, 1.0),
                Role::SkynetBot | Role::NoOpenPorts | Role::Dark => (0.0, 0.0),
            };
            s.alive_at_crawl = rng.random::<f64>() < p_open;
            s.connects_at_crawl = s.alive_at_crawl && rng.random::<f64>() < p_connect;
        }
    }

    /// Gives the popularity tail to non-dark services and phantom
    /// request weights to dark addresses.
    fn assign_popularity(services: &mut [Service], sc: f64, rng: &mut StdRng) {
        // Tail: after the ~40 planted ranks, weight = 57000 / rank^1.37,
        // the power law fitted through Table II's anchor rows
        // (rank 34 → 453, 157 → 55, 250 → 30, 547 → 10).
        let n_requested = scaled(calib::RESOLVED_ONIONS, sc) as usize;
        let mut candidates: Vec<usize> = services
            .iter()
            .enumerate()
            .filter(|(_, s)| s.planted.is_none() && s.publishes_descriptors())
            .map(|(i, _)| i)
            .collect();
        candidates.shuffle(rng);
        let planted_count = services.iter().filter(|s| s.planted.is_some()).count();
        for (k, &i) in candidates
            .iter()
            .take(n_requested.saturating_sub(planted_count))
            .enumerate()
        {
            let rank = (planted_count + k + 1) as f64;
            services[i].popularity = 57_000.0 * sc / rank.powf(1.37);
        }

        // Phantom pool: dead C&C addresses polled heavily by orphaned
        // bots, plus a light tail of stale addresses recrawled by search
        // engines. Rates are calibrated so the share of requests
        // *observed at the harvesting HSDirs* is ≈ 80 %: a fetch for a
        // never-published descriptor probes all six responsible dirs
        // before giving up, while a successful fetch stops at the first
        // hit, so phantom fetches are over-represented in the logs by
        // roughly 6–10×, exactly as in the live measurement.
        let mut dark: Vec<usize> = services
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.role, Role::Dark))
            .map(|(i, _)| i)
            .collect();
        dark.shuffle(rng);
        let n_heavy = scaled(250, sc) as usize;
        let n_light = scaled(11_250, sc) as usize;
        for (k, &i) in dark.iter().enumerate() {
            services[i].popularity = if k < n_heavy {
                150.0 + rng.random::<f64>() * 60.0
            } else if k < n_heavy + n_light {
                // Exponential with mean 1.5 fetches per window.
                -1.5 * rng.random::<f64>().max(1e-12).ln()
            } else {
                0.0
            };
        }
    }

    /// The configuration the world was generated from.
    pub fn config(&self) -> WorldConfig {
        self.config
    }

    /// All services.
    pub fn services(&self) -> &[Service] {
        &self.services
    }

    /// Looks up a service by onion address.
    pub fn get(&self, onion: OnionAddress) -> Option<&Service> {
        self.by_onion
            .get(&onion)
            .map(|&i| &self.services[i as usize])
    }

    /// The most popular Goldnet command-and-control front end — the
    /// paper's Sec. VI client-deanonymisation target. Resolved from the
    /// generated world rather than hard-coded so an attack stage can
    /// never silently target a service this world does not contain.
    pub fn primary_goldnet_frontend(&self) -> Option<&Service> {
        self.services
            .iter()
            .filter(|s| matches!(s.role, Role::GoldnetCc { .. }))
            .max_by(|a, b| {
                a.popularity
                    .partial_cmp(&b.popularity)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Deterministic tie-break on the stable index.
                    .then(b.index.cmp(&a.index))
            })
    }

    /// Registers every descriptor-publishing service with the network.
    pub fn register_all(&self, net: &mut Network) {
        for s in &self.services {
            if s.publishes_descriptors() {
                net.register_service(s.onion, true);
            }
        }
    }

    /// Applies daily liveness churn to registered services.
    pub fn apply_churn(&self, net: &mut Network, now: SimTime) {
        for s in &self.services {
            if s.publishes_descriptors() {
                net.set_service_online(s.onion, self.service_online(s, now));
            }
        }
    }

    fn service_online(&self, s: &Service, now: SimTime) -> bool {
        if !s.publishes_descriptors() {
            return false;
        }
        let u = stable_unit(self.config.seed, s.onion, now.days());
        u < s.daily_availability
    }
}

impl ServiceBackend for World {
    fn connect(&self, onion: OnionAddress, port: u16, now: SimTime) -> PortReply {
        let Some(s) = self.get(onion) else {
            return PortReply::Timeout;
        };
        if !self.service_online(s, now) {
            return PortReply::Timeout;
        }
        // Persistent per-destination timeouts (~3 % of destinations), as
        // the paper reports.
        if stable_unit(self.config.seed ^ 0x7107, onion, u64::from(port)) < 0.03 {
            return PortReply::Timeout;
        }
        if port == SKYNET_PORT && s.is_skynet_bot() {
            return PortReply::AbnormalClose;
        }
        if s.open_ports().contains(&port) {
            PortReply::Open
        } else {
            PortReply::Closed
        }
    }

    fn is_online(&self, onion: OnionAddress, now: SimTime) -> bool {
        self.get(onion)
            .map(|s| self.service_online(s, now))
            .unwrap_or(false)
    }
}

/// Splits `n` slots among weighted labels, largest-remainder style,
/// returning a label per slot.
fn quota_list<T: Copy>(n: usize, weights: &[(T, u32)]) -> Vec<T> {
    let total: u64 = weights.iter().map(|(_, w)| u64::from(*w)).sum();
    let mut out = Vec::with_capacity(n);
    if total == 0 || n == 0 {
        return out;
    }
    let mut acc = 0u64;
    let mut filled = 0usize;
    for (label, w) in weights {
        acc += u64::from(*w);
        let target = (acc * n as u64 / total) as usize;
        while filled < target {
            out.push(*label);
            filled += 1;
        }
    }
    while out.len() < n {
        out.push(weights[0].0);
    }
    out
}

/// Deterministic hash of (seed, onion, salt) to a unit float.
fn stable_unit(seed: u64, onion: OnionAddress, salt: u64) -> f64 {
    let mut h = Sha1::new();
    h.update(seed.to_be_bytes());
    h.update(onion.permanent_id().as_bytes());
    h.update(salt.to_be_bytes());
    let d = h.finalize();
    let b = d.as_bytes();
    let v = u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
    (v >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        World::generate(WorldConfig {
            seed: 99,
            scale: 0.05,
        })
    }

    #[test]
    fn population_counts_scale() {
        let w = small_world();
        let total = w.services().len() as f64;
        assert!((1_800.0..2_300.0).contains(&total), "total {total}");
        let skynet = w.services().iter().filter(|s| s.is_skynet_bot()).count();
        let expected = scaled(calib::SKYNET_BOTS, 0.05) as usize;
        assert_eq!(skynet, expected);
    }

    #[test]
    fn planted_entities_present() {
        let w = small_world();
        let silkroad: OnionAddress = "silkroadvb5piz3r".parse().unwrap();
        let s = w.get(silkroad).expect("silk road planted");
        assert_eq!(s.planted, Some("SilkRoad"));
        assert!((s.popularity - 1_175.0 * 0.05).abs() < 1e-9);
        let goldnet = w
            .services()
            .iter()
            .filter(|s| matches!(s.role, Role::GoldnetCc { .. }))
            .count();
        assert_eq!(goldnet as u32, calib::GOLDNET_FRONTENDS);
    }

    #[test]
    fn onions_unique() {
        let w = small_world();
        let mut onions: Vec<_> = w.services().iter().map(|s| s.onion).collect();
        let n = onions.len();
        onions.sort();
        onions.dedup();
        assert_eq!(onions.len(), n);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(WorldConfig {
            seed: 7,
            scale: 0.02,
        });
        let b = World::generate(WorldConfig {
            seed: 7,
            scale: 0.02,
        });
        assert_eq!(a.services().len(), b.services().len());
        for (x, y) in a.services().iter().zip(b.services()) {
            assert_eq!(x.onion, y.onion);
            assert_eq!(x.role, y.role);
            assert!((x.popularity - y.popularity).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn language_split_is_mostly_english() {
        let w = World::generate(WorldConfig {
            seed: 7,
            scale: 0.2,
        });
        let topical: Vec<_> = w
            .services()
            .iter()
            .filter(|s| {
                matches!(s.role, Role::Web)
                    && !(s.web.torhost_default || s.web.short_page || s.web.error_page)
            })
            .collect();
        let english = topical
            .iter()
            .filter(|s| s.web.language == Language::English)
            .count();
        // Topical pages are ~79 % English; together with the all-English
        // TorHost defaults the *classified* population lands at the
        // paper's 84 %.
        let share = english as f64 / topical.len() as f64;
        assert!((0.74..0.84).contains(&share), "english share {share}");
    }

    #[test]
    fn backend_port_semantics() {
        let w = small_world();
        let now = SimTime::from_ymd(2013, 2, 14);
        let bot = w.services().iter().find(|s| s.is_skynet_bot()).unwrap();
        // A bot answers 55080 abnormally (unless this one is in the 3 %
        // persistent-timeout set or offline today — pick one that is not).
        let bot = w
            .services()
            .iter()
            .filter(|s| s.is_skynet_bot())
            .find(|s| w.connect(s.onion, SKYNET_PORT, now) == PortReply::AbnormalClose)
            .unwrap_or(bot);
        assert_eq!(
            w.connect(bot.onion, SKYNET_PORT, now),
            PortReply::AbnormalClose
        );

        let ghost = OnionAddress::from_pubkey(b"not in world");
        assert_eq!(w.connect(ghost, 80, now), PortReply::Timeout);
    }

    #[test]
    fn web_service_serves_http() {
        let w = small_world();
        let now = SimTime::from_ymd(2013, 2, 14);
        let ok = w
            .services()
            .iter()
            .filter(|s| matches!(s.role, Role::Web) && !s.web.https_only && !s.web.on_8080)
            .filter(|s| w.connect(s.onion, 80, now) == PortReply::Open)
            .count();
        assert!(ok > 50, "most web services answer on port 80 ({ok})");
    }

    #[test]
    fn phantom_pool_exists() {
        let w = small_world();
        let heavy = w
            .services()
            .iter()
            .filter(|s| matches!(s.role, Role::Dark) && s.popularity > 100.0)
            .count();
        assert_eq!(heavy, scaled(250, 0.05) as usize);
        let requested_dark = w
            .services()
            .iter()
            .filter(|s| matches!(s.role, Role::Dark) && s.popularity > 0.0)
            .count();
        assert!(requested_dark > heavy);
    }

    #[test]
    fn quota_list_respects_weights() {
        let q = quota_list(100, &[("a", 80), ("b", 15), ("c", 5)]);
        assert_eq!(q.len(), 100);
        assert_eq!(q.iter().filter(|&&x| x == "a").count(), 80);
        assert_eq!(q.iter().filter(|&&x| x == "b").count(), 15);
        assert_eq!(q.iter().filter(|&&x| x == "c").count(), 5);
    }

    #[test]
    fn churn_keeps_most_services_online() {
        let w = small_world();
        let now = SimTime::from_ymd(2013, 2, 15);
        let publishing: Vec<_> = w
            .services()
            .iter()
            .filter(|s| s.publishes_descriptors())
            .collect();
        let online = publishing
            .iter()
            .filter(|s| w.is_online(s.onion, now))
            .count();
        let share = online as f64 / publishing.len() as f64;
        assert!((0.84..0.95).contains(&share), "online share {share}");
    }
}

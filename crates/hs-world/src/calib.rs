//! Calibration constants: every population count the paper reports,
//! collected in one place so the generator, the pipelines and the
//! EXPERIMENTS.md cross-checks all agree on the targets.
//!
//! All counts are at paper scale (`scale = 1.0`); the generator rounds
//! them down proportionally at smaller scales.

/// Onion addresses harvested on 2013-02-04.
pub const TOTAL_ADDRESSES: u32 = 39_824;

/// Addresses whose descriptors were still available during the
/// 14–21 Feb scan week.
pub const WITH_DESCRIPTORS: u32 = 24_511;

/// Open ports found in total (Fig. 1 sums to exactly this).
pub const TOTAL_OPEN_PORTS: u32 = 22_007;

/// Fig. 1: services answering abnormally on Skynet's port 55080.
pub const SKYNET_BOTS: u32 = 13_854;

/// Fig. 1: port 80 (includes the Goldnet command-and-control front
/// ends, which also listen on 80).
pub const PORT_80: u32 = 4_027;

/// Fig. 1: port 443.
pub const PORT_443: u32 = 1_366;

/// Fig. 1: port 22.
pub const PORT_22: u32 = 1_238;

/// Fig. 1: port 11009 (TorChat).
pub const PORT_TORCHAT: u32 = 385;

/// Fig. 1: port 4050.
pub const PORT_4050: u32 = 138;

/// Fig. 1: port 6667 (IRC).
pub const PORT_IRC: u32 = 113;

/// Fig. 1: all ports with fewer than 50 hits, grouped.
pub const PORT_OTHER: u32 = 886;

/// Unique port numbers seen across the whole scan.
pub const UNIQUE_PORTS: u32 = 495;

/// Goldnet command-and-control front ends (5 in the top-5 plus 4 more
/// discovered via server-status fingerprinting).
pub const GOLDNET_FRONTENDS: u32 = 9;

/// Skynet command-and-control / bitcoin-pool onions ranked 9–28 in
/// Table II.
pub const SKYNET_CC: u32 = 11;

/// Port-443 destinations whose content mirrors port 80 (excluded from
/// classification as duplicates).
pub const HTTPS_MIRRORS: u32 = 1_108;

/// Sec. III: self-signed certificates whose common name does not match
/// the requested host name.
pub const CERT_SELF_SIGNED_MISMATCH: u32 = 1_225;

/// Sec. III: certificates with the TorHost common name
/// `esjqyk2khizsy43i.onion` (a subset of the mismatching ones).
pub const CERT_TORHOST_CN: u32 = 1_168;

/// Sec. III: certificates carrying the service's *public DNS* name —
/// deanonymising the operator.
pub const CERT_CLEARNET_DNS: u32 = 34;

/// Sec. IV: destinations attempted in the crawl (everything except
/// port 55080): `TOTAL_OPEN_PORTS - SKYNET_BOTS`.
pub const CRAWL_DESTINATIONS: u32 = 8_153;

/// Sec. IV: destinations still open at crawl time (two months later).
pub const CRAWL_STILL_OPEN: u32 = 7_114;

/// Sec. IV: destinations that completed an HTTP(S) connection.
pub const CRAWL_CONNECTED: u32 = 6_579;

/// Table I: connected destinations on port 80.
pub const TABLE1_PORT_80: u32 = 3_741;

/// Table I: connected destinations on port 443.
pub const TABLE1_PORT_443: u32 = 1_289;

/// Table I: connected destinations on port 22.
pub const TABLE1_PORT_22: u32 = 1_094;

/// Table I: connected destinations on port 8080.
pub const TABLE1_PORT_8080: u32 = 4;

/// Table I: connected destinations on other ports.
pub const TABLE1_OTHER: u32 = 451;

/// Sec. IV: destinations excluded for having fewer than 20 words.
pub const EXCLUDED_SHORT: u32 = 2_348;

/// Sec. IV: SSH banners within the short-page exclusions.
pub const EXCLUDED_SSH_BANNERS: u32 = 1_092;

/// Sec. IV: destinations excluded as HTML-wrapped error messages.
pub const EXCLUDED_ERROR_PAGES: u32 = 73;

/// Sec. IV: destinations that survived the funnel and were classified.
pub const CLASSIFIED: u32 = 3_050;

/// Sec. IV: classified pages that were English (84 %).
pub const CLASSIFIED_ENGLISH: u32 = 2_618;

/// Sec. IV: English pages showing the TorHost default page.
pub const TORHOST_DEFAULT_PAGES: u32 = 805;

/// Sec. IV: English pages classified into the 18 topics of Fig. 2.
pub const TOPIC_CLASSIFIED: u32 = 1_813;

/// Sec. V: total descriptor requests received.
pub const TOTAL_REQUESTS: u32 = 1_031_176;

/// Sec. V: unique descriptor IDs requested.
pub const UNIQUE_DESC_IDS: u32 = 29_123;

/// Sec. V: descriptor IDs resolved to onion addresses.
pub const RESOLVED_DESC_IDS: u32 = 6_113;

/// Sec. V: distinct onion addresses resolved.
pub const RESOLVED_ONIONS: u32 = 3_140;

/// Sec. V: share of client requests targeting never-published
/// descriptors, in percent.
pub const PHANTOM_REQUEST_PERCENT: u32 = 80;

/// Sec. V: share of published descriptors ever requested, in percent.
pub const REQUESTED_PUBLISHED_PERCENT: u32 = 10;

/// Sec. II: IP addresses the paper's harvesting fleet used.
pub const HARVEST_IPS: u32 = 58;

/// Sec. II: IP addresses a naïve (non-shadowing) attacker would need.
pub const NAIVE_ATTACK_IPS: u32 = 300;

/// Sec. VII: relays with the HSDir flag on 2011-02-01.
pub const HSDIR_COUNT_2011: u32 = 757;

/// Sec. VII: relays with the HSDir flag on 2013-10-31.
pub const HSDIR_COUNT_2013: u32 = 1_862;

/// Scales a paper-scale count down; never returns 0 for a nonzero
/// input so tiny test worlds keep one exemplar of every population.
pub fn scaled(count: u32, scale: f64) -> u32 {
    if count == 0 {
        return 0;
    }
    (((count as f64) * scale).round() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_sums_to_total_open_ports() {
        assert_eq!(
            SKYNET_BOTS
                + PORT_80
                + PORT_443
                + PORT_22
                + PORT_TORCHAT
                + PORT_4050
                + PORT_IRC
                + PORT_OTHER,
            TOTAL_OPEN_PORTS
        );
    }

    #[test]
    fn crawl_destinations_exclude_skynet() {
        assert_eq!(CRAWL_DESTINATIONS, TOTAL_OPEN_PORTS - SKYNET_BOTS);
    }

    #[test]
    fn funnel_is_consistent() {
        assert_eq!(
            CRAWL_CONNECTED - EXCLUDED_SHORT - HTTPS_MIRRORS - EXCLUDED_ERROR_PAGES,
            CLASSIFIED
        );
        assert_eq!(
            TABLE1_PORT_80 + TABLE1_PORT_443 + TABLE1_PORT_22 + TABLE1_PORT_8080 + TABLE1_OTHER,
            CRAWL_CONNECTED
        );
    }

    #[test]
    fn english_funnel() {
        // 84 % of 3050 ≈ 2618; after removing TorHost defaults, 1813.
        assert_eq!(CLASSIFIED_ENGLISH - TORHOST_DEFAULT_PAGES, TOPIC_CLASSIFIED);
        let pct = CLASSIFIED_ENGLISH as f64 / CLASSIFIED as f64;
        assert!((0.83..=0.87).contains(&pct));
    }

    #[test]
    fn certs_nest() {
        assert!(CERT_TORHOST_CN < CERT_SELF_SIGNED_MISMATCH);
        assert!(CERT_SELF_SIGNED_MISMATCH + CERT_CLEARNET_DNS < PORT_443);
    }

    #[test]
    fn scaled_rounds_and_floors() {
        assert_eq!(scaled(1000, 0.1), 100);
        assert_eq!(scaled(9, 0.01), 1, "nonzero counts never vanish");
        assert_eq!(scaled(0, 0.5), 0);
        assert_eq!(scaled(1000, 1.0), 1000);
    }
}

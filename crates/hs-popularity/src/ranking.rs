//! The popularity ranking (Table II) and the botnet forensics the
//! paper performed on its most popular entries.

use std::collections::HashMap;

use onion_crypto::onion::OnionAddress;

use hs_world::{Role, World};

use crate::resolver::ResolutionReport;

/// One row of the reproduced Table II.
#[derive(Clone, Debug)]
pub struct RankedService {
    /// Rank by measured request count (1 = most popular).
    pub rank: u64,
    /// The onion address.
    pub onion: OnionAddress,
    /// Requests per 2-hour window (normalised estimate when built via
    /// [`Ranking::build_normalized`], raw observed count otherwise).
    pub requests: u64,
    /// Identification, combining the paper's manual labelling with the
    /// server-status forensics (e.g. `Goldnet`, `Skynet`, `SilkRoad`).
    pub label: String,
}

/// The full ranking.
#[derive(Clone, Debug, Default)]
pub struct Ranking {
    rows: Vec<RankedService>,
    unnormalized: usize,
}

impl Ranking {
    /// Builds the ranking from a resolution report, labelling entries
    /// with world ground truth where planted and with forensic
    /// fingerprinting for the botnet front ends.
    pub fn build(report: &ResolutionReport, world: &World) -> Self {
        Self::build_inner(report, world, None)
    }

    /// Builds the ranking with coverage normalisation: observed counts
    /// are converted into estimated requests per 2-hour window using
    /// the attacker's per-service slot-hours (a client picks one of
    /// the six responsible dirs uniformly, so a service whose slots
    /// were manned for `s` slot-hours yields `rate × s / 12` logged
    /// requests — invert that).
    ///
    /// `slot_hours` is the sorted-by-onion table the harvest produces
    /// ([`tor_sim`]'s `slot_hours_sorted` view); lookups binary-search
    /// it.
    pub fn build_normalized(
        report: &ResolutionReport,
        world: &World,
        slot_hours: &[(OnionAddress, u64)],
    ) -> Self {
        Self::build_inner(report, world, Some(slot_hours))
    }

    fn build_inner(
        report: &ResolutionReport,
        world: &World,
        slot_hours: Option<&[(OnionAddress, u64)]>,
    ) -> Self {
        let mut unnormalized = 0usize;
        let mut rows: Vec<RankedService> = report
            .requests_per_onion
            .iter()
            .map(|(&onion, &observed)| {
                let looked_up = slot_hours.map(|table| {
                    table
                        .binary_search_by_key(&onion, |&(o, _)| o)
                        .ok()
                        .map(|i| table[i].1)
                });
                let requests = match looked_up {
                    Some(Some(s)) if s > 0 => {
                        ((observed as f64) * 12.0 / (s as f64)).round() as u64
                    }
                    Some(_) => {
                        // Normalisation was requested but the attacker
                        // has no slot-hour window for this service
                        // (e.g. its HSDirs were down whenever the fleet
                        // manned its slots) — tolerate the gap and fall
                        // back to the raw observed count.
                        unnormalized += 1;
                        observed
                    }
                    None => observed,
                };
                RankedService {
                    rank: 0,
                    onion,
                    requests,
                    label: label_for(world, onion),
                }
            })
            .collect();
        rows.sort_by(|a, b| b.requests.cmp(&a.requests).then(a.onion.cmp(&b.onion)));
        for (i, row) in rows.iter_mut().enumerate() {
            row.rank = i as u64 + 1;
        }
        Ranking { rows, unnormalized }
    }

    /// All rows, most popular first.
    pub fn rows(&self) -> &[RankedService] {
        &self.rows
    }

    /// The top `n` rows.
    pub fn top(&self, n: usize) -> &[RankedService] {
        &self.rows[..n.min(self.rows.len())]
    }

    /// The rank of a given label's best entry, if present.
    pub fn rank_of_label(&self, label: &str) -> Option<u64> {
        self.rows.iter().find(|r| r.label == label).map(|r| r.rank)
    }

    /// The rank of a specific onion address.
    pub fn rank_of(&self, onion: OnionAddress) -> Option<u64> {
        self.rows.iter().find(|r| r.onion == onion).map(|r| r.rank)
    }

    /// Rows that requested normalisation but had no slot-hour coverage
    /// window and fell back to raw counts. Always zero for
    /// [`Ranking::build`]; nonzero under fault injection when relay
    /// churn holes the attacker's coverage record.
    pub fn unnormalized(&self) -> usize {
        self.unnormalized
    }
}

fn label_for(world: &World, onion: OnionAddress) -> String {
    match world.get(onion) {
        Some(s) => match (s.planted, &s.role) {
            (Some(name), _) => name.to_owned(),
            (None, Role::GoldnetCc { .. }) => "Goldnet".to_owned(),
            (None, Role::SkynetCc) => "Skynet".to_owned(),
            (None, Role::Web) => s.web.topic.label().to_owned(),
            (None, _) => "<n/a>".to_owned(),
        },
        None => "<n/a>".to_owned(),
    }
}

/// Sec. V forensics: probing the most popular addresses on port 80 and
/// grouping the 503-with-`server-status` responders by their Apache
/// uptime, which reveals how many *physical servers* stand behind the
/// front-end onions.
#[derive(Clone, Debug, Default)]
pub struct BotnetForensics {
    /// Front ends confirmed 503 + server-status, keyed by uptime group.
    pub groups: HashMap<u64, Vec<OnionAddress>>,
}

impl BotnetForensics {
    /// Probes `candidates` (typically the ranking's head) against the
    /// world.
    pub fn probe(world: &World, candidates: impl IntoIterator<Item = OnionAddress>) -> Self {
        let mut groups: HashMap<u64, Vec<OnionAddress>> = HashMap::new();
        for onion in candidates {
            let Some(s) = world.get(onion) else { continue };
            let Some(page) = s.render_page(80) else {
                continue;
            };
            if page.status != 503 {
                continue;
            }
            if let Some(uptime) = parse_server_status_uptime(&page.body) {
                groups.entry(uptime).or_default().push(onion);
            }
        }
        BotnetForensics { groups }
    }

    /// Number of distinct physical servers inferred.
    pub fn physical_servers(&self) -> usize {
        self.groups.len()
    }

    /// Total front-end onions fingerprinted.
    pub fn frontends(&self) -> usize {
        self.groups.values().map(Vec::len).sum()
    }
}

/// Extracts the Apache uptime from an exposed `server-status` page.
pub fn parse_server_status_uptime(body: &str) -> Option<u64> {
    let marker = "Apache uptime ";
    let start = body.find(marker)? + marker.len();
    let rest = &body[start..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// The "10 % of published descriptors were ever requested" statistic:
/// the share of live services that received at least one resolved
/// request.
pub fn requested_published_share(report: &ResolutionReport, world: &World) -> f64 {
    let published = world
        .services()
        .iter()
        .filter(|s| s.publishes_descriptors())
        .count();
    if published == 0 {
        return 0.0;
    }
    let requested = world
        .services()
        .iter()
        .filter(|s| s.publishes_descriptors() && report.requests_per_onion.contains_key(&s.onion))
        .count();
    requested as f64 / published as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_world::WorldConfig;

    fn fake_report(world: &World) -> ResolutionReport {
        // Requests exactly proportional to planted popularity.
        let mut report = ResolutionReport::default();
        for s in world.services() {
            if s.publishes_descriptors() && s.popularity > 0.0 {
                let req = s.popularity.round() as u64;
                if req > 0 {
                    report.requests_per_onion.insert(s.onion, req);
                    report.total_requests += req;
                }
            }
        }
        report.resolved_onions = report.requests_per_onion.len();
        report
    }

    #[test]
    fn goldnet_tops_ranking() {
        let world = World::generate(WorldConfig {
            seed: 2,
            scale: 0.02,
        });
        let ranking = Ranking::build(&fake_report(&world), &world);
        let top5 = ranking.top(5);
        assert!(top5.iter().all(|r| r.label == "Goldnet"), "{top5:?}");
        // Rates are scaled by the world scale (0.02 here).
        assert_eq!(top5[0].requests, (13_714.0f64 * 0.02).round() as u64);
    }

    #[test]
    fn silkroad_in_top_20() {
        let world = World::generate(WorldConfig {
            seed: 2,
            scale: 0.02,
        });
        let ranking = Ranking::build(&fake_report(&world), &world);
        let rank = ranking.rank_of_label("SilkRoad").unwrap();
        assert!((14..=22).contains(&rank), "rank {rank}");
    }

    #[test]
    fn ranks_are_dense_and_ordered() {
        let world = World::generate(WorldConfig {
            seed: 2,
            scale: 0.02,
        });
        let ranking = Ranking::build(&fake_report(&world), &world);
        for (i, row) in ranking.rows().iter().enumerate() {
            assert_eq!(row.rank, i as u64 + 1);
        }
        for pair in ranking.rows().windows(2) {
            assert!(pair[0].requests >= pair[1].requests);
        }
    }

    #[test]
    fn forensics_groups_goldnet_by_physical_server() {
        let world = World::generate(WorldConfig {
            seed: 2,
            scale: 0.02,
        });
        let goldnet: Vec<OnionAddress> = world
            .services()
            .iter()
            .filter(|s| matches!(s.role, Role::GoldnetCc { .. }))
            .map(|s| s.onion)
            .collect();
        let forensics = BotnetForensics::probe(&world, goldnet.iter().copied());
        assert_eq!(forensics.physical_servers(), 2, "two uptime groups");
        assert_eq!(forensics.frontends(), goldnet.len());
    }

    #[test]
    fn forensics_ignores_normal_services() {
        let world = World::generate(WorldConfig {
            seed: 2,
            scale: 0.02,
        });
        let web: Vec<OnionAddress> = world
            .services()
            .iter()
            .filter(|s| matches!(s.role, Role::Web))
            .take(20)
            .map(|s| s.onion)
            .collect();
        let forensics = BotnetForensics::probe(&world, web);
        assert_eq!(forensics.frontends(), 0);
    }

    #[test]
    fn missing_slot_hour_windows_fall_back_to_raw_counts() {
        let world = World::generate(WorldConfig {
            seed: 2,
            scale: 0.02,
        });
        let report = fake_report(&world);
        // Slot-hour coverage for only half the resolved onions; one
        // entry present but zero (relay crashed before manning any
        // slot) must also fall back.
        let mut slot_hours: Vec<(OnionAddress, u64)> = Vec::new();
        let onions: Vec<OnionAddress> = report.requests_per_onion.keys().copied().collect();
        for (i, &onion) in onions.iter().enumerate() {
            if i % 2 == 0 {
                slot_hours.push((onion, if i == 0 { 0 } else { 6 }));
            }
        }
        slot_hours.sort_unstable_by_key(|&(o, _)| o);
        let ranking = Ranking::build_normalized(&report, &world, &slot_hours);
        let covered = onions.len().div_ceil(2).saturating_sub(1);
        assert_eq!(ranking.unnormalized(), onions.len() - covered);
        assert_eq!(ranking.rows().len(), onions.len());
        // Fault-free path stays at zero.
        assert_eq!(Ranking::build(&report, &world).unnormalized(), 0);
    }

    #[test]
    fn zero_slot_hours_fall_back_instead_of_catapulting_to_rank_one() {
        // Regression pin for the s == 0 normalisation guard: a
        // division by zero here would produce inf, and the `as u64`
        // cast would saturate to u64::MAX — silently catapulting an
        // unmanned-slot service to rank 1. The guard must fall back to
        // the raw observed count and bump `unnormalized`.
        let world = World::generate(WorldConfig {
            seed: 2,
            scale: 0.02,
        });
        let mut report = ResolutionReport::default();
        let mut iter = world
            .services()
            .iter()
            .filter(|s| s.publishes_descriptors());
        let quiet = iter.next().expect("world has services").onion;
        let busy = iter.next().expect("world has two services").onion;
        report.requests_per_onion.insert(quiet, 3);
        report.requests_per_onion.insert(busy, 500);
        report.total_requests = 503;

        let mut slot_hours = vec![(quiet, 0u64), (busy, 12u64)];
        slot_hours.sort_unstable_by_key(|&(o, _)| o);
        let ranking = Ranking::build_normalized(&report, &world, &slot_hours);

        assert_eq!(ranking.unnormalized(), 1);
        let quiet_row = ranking
            .rows()
            .iter()
            .find(|r| r.onion == quiet)
            .expect("quiet service ranked");
        assert_eq!(quiet_row.requests, 3, "raw fallback, not inf-saturated");
        assert_eq!(ranking.rank_of(busy), Some(1), "busy service stays on top");
        assert_eq!(ranking.rank_of(quiet), Some(2));
    }

    #[test]
    fn requested_share_returns_zero_when_nothing_is_published() {
        // Regression pin for the published == 0 guard: an empty world
        // (every-publish-dropped degenerate of the adversarial fault
        // profile) must yield 0.0, not NaN — NaN would poison report
        // formatting and sort order downstream.
        let world = World::empty();
        let report = ResolutionReport {
            total_requests: 17,
            unresolved_requests: 17,
            ..ResolutionReport::default()
        };
        let share = requested_published_share(&report, &world);
        assert_eq!(share, 0.0);
        assert!(share.is_finite());
    }

    #[test]
    fn coverage_split_boundary_semantics_at_tiny_lengths() {
        // Pins the small-`len` boundary semantics of the coverage
        // split used by `missing_slot_hour_windows_fall_back_to_raw_
        // counts` (covered = ceil(len/2) − 1: even indices get a
        // window, index 0 gets a zero window that must also fall
        // back). At len == 1 and len == 2 nothing is covered.
        let world = World::generate(WorldConfig {
            seed: 2,
            scale: 0.02,
        });
        let onions: Vec<OnionAddress> = world
            .services()
            .iter()
            .filter(|s| s.publishes_descriptors())
            .take(3)
            .map(|s| s.onion)
            .collect();
        for len in 1..=3usize {
            let mut report = ResolutionReport::default();
            for &onion in &onions[..len] {
                report.requests_per_onion.insert(onion, 24);
                report.total_requests += 24;
            }
            let mut slot_hours: Vec<(OnionAddress, u64)> = Vec::new();
            for (i, &onion) in onions[..len].iter().enumerate() {
                if i % 2 == 0 {
                    slot_hours.push((onion, if i == 0 { 0 } else { 6 }));
                }
            }
            slot_hours.sort_unstable_by_key(|&(o, _)| o);
            let ranking = Ranking::build_normalized(&report, &world, &slot_hours);
            let covered = len.div_ceil(2).saturating_sub(1);
            assert_eq!(
                ranking.unnormalized(),
                len - covered,
                "len {len}: expected {} unnormalized rows",
                len - covered
            );
            // len 1 → 1 unnormalized, len 2 → 2, len 3 → 2: only
            // index 2 onward ever gets a usable window.
            assert_eq!(ranking.rows().len(), len);
        }
    }

    #[test]
    fn server_status_parser() {
        assert_eq!(
            parse_server_status_uptime("... Apache uptime 3777777 seconds ..."),
            Some(3_777_777)
        );
        assert_eq!(parse_server_status_uptime("no status here"), None);
    }

    #[test]
    fn requested_share_close_to_paper() {
        let world = World::generate(WorldConfig {
            seed: 2,
            scale: 0.1,
        });
        let share = requested_published_share(&fake_report(&world), &world);
        // Paper: ~10 % of published descriptors ever requested; our
        // calibration yields 3140/24511 ≈ 12.8 %.
        assert!((0.08..0.18).contains(&share), "share {share}");
    }
}

//! Popularity measurement of Tor hidden services (Sec. V of Biryukov
//! et al., ICDCS 2014).
//!
//! While the harvesting fleet mans the HSDir ring it also logs every
//! client descriptor request it receives. Resolving the logged
//! descriptor IDs back to onion addresses (by recomputing the forward
//! map over a window of days) yields the request rate per service —
//! the paper's popularity estimate, Table II.
//!
//! - [`traffic`] — the Poisson client-request generator (including the
//!   80 % phantom stream aimed at never-published descriptors);
//! - [`resolver`] — descriptor-ID → onion resolution over a date
//!   window;
//! - [`ranking`] — Table II, the Goldnet `server-status` forensics and
//!   the requested-vs-published share;
//! - [`streaming`] — bounded-memory sketch aggregation of the request
//!   stream (count-min + space-saving top-k + HyperLogLog) feeding the
//!   same ranking without materializing the event vector.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod ranking;
pub mod resolver;
pub mod streaming;
pub mod traffic;

pub use ranking::{BotnetForensics, RankedService, Ranking};
pub use resolver::{ResolutionReport, Resolver};
pub use sketch::SketchConfig;
pub use streaming::{SketchSummary, StreamingPopularity};
pub use traffic::{poisson, poisson_traced, PoissonStats, TrafficConfig, TrafficDriver};

//! Resolving logged descriptor IDs back to onion addresses (Sec. V).
//!
//! The harvest logs raw descriptor IDs. Because the descriptor ID is a
//! one-way function of (permanent id, time period, replica), the
//! attacker recomputes the forward map for every harvested onion
//! address over a window of days (the paper used 28 Jan – 8 Feb, to be
//! robust to clients with wrong clocks) and joins it against the log.

use std::collections::{HashMap, HashSet};

use onion_crypto::descriptor::{DescriptorId, Replica, TimePeriod};
use onion_crypto::onion::OnionAddress;
use tor_sim::clock::{SimTime, DAY};

use hs_harvest::LoggedRequest;

/// The outcome of descriptor-ID resolution.
#[derive(Clone, Debug, Default)]
pub struct ResolutionReport {
    /// Total requests in the log (paper: 1,031,176).
    pub total_requests: u64,
    /// Unique descriptor IDs requested (paper: 29,123).
    pub unique_desc_ids: usize,
    /// Descriptor IDs that resolved to a known onion (paper: 6,113).
    pub resolved_desc_ids: usize,
    /// Distinct onion addresses resolved (paper: 3,140).
    pub resolved_onions: usize,
    /// Requests per resolved onion address.
    pub requests_per_onion: HashMap<OnionAddress, u64>,
    /// Requests whose descriptor ID resolved to nothing (the phantom
    /// stream; paper: ~80 %).
    pub unresolved_requests: u64,
}

impl ResolutionReport {
    /// Share of requests that targeted unresolvable descriptor IDs.
    pub fn phantom_share(&self) -> f64 {
        if self.total_requests == 0 {
            return 0.0;
        }
        self.unresolved_requests as f64 / self.total_requests as f64
    }

    /// The popularity distribution itself: requests per resolved onion
    /// as a log2 histogram. Built on demand from the per-onion map;
    /// histogram contents are insensitive to map iteration order, so
    /// the result is deterministic.
    pub fn requests_histogram(&self) -> obs::Histogram {
        let mut h = obs::Histogram::new();
        for &n in self.requests_per_onion.values() {
            h.record(n);
        }
        h
    }
}

/// The resolver: a precomputed desc-ID → onion table over a date
/// window.
#[derive(Clone, Debug)]
pub struct Resolver {
    table: HashMap<DescriptorId, OnionAddress>,
}

impl Resolver {
    /// Builds the forward table for `onions` over `[start, end]`
    /// (inclusive, stepped daily; both replicas).
    pub fn build(onions: &[OnionAddress], start: SimTime, end: SimTime) -> Self {
        let mut table = HashMap::new();
        for &onion in onions {
            let id = onion.permanent_id();
            let mut t = start;
            // Step by day; the per-service stagger means consecutive
            // days always hit consecutive periods.
            while t <= end + DAY {
                let period = TimePeriod::at(t.unix(), id);
                for replica in Replica::ALL {
                    table.insert(DescriptorId::compute(id, period, replica), onion);
                }
                t += DAY;
            }
        }
        Resolver { table }
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Looks up one descriptor ID.
    pub fn resolve(&self, id: DescriptorId) -> Option<OnionAddress> {
        self.table.get(&id).copied()
    }

    /// Resolves a harvest request log.
    pub fn resolve_log(&self, requests: &[LoggedRequest]) -> ResolutionReport {
        let mut report = ResolutionReport::default();
        let mut seen: HashSet<DescriptorId> = HashSet::new();
        let mut resolved_ids: HashSet<DescriptorId> = HashSet::new();
        for req in requests {
            report.total_requests += 1;
            let id = req.record.descriptor_id;
            seen.insert(id);
            match self.resolve(id) {
                Some(onion) => {
                    resolved_ids.insert(id);
                    *report.requests_per_onion.entry(onion).or_insert(0) += 1;
                }
                None => report.unresolved_requests += 1,
            }
        }
        report.unique_desc_ids = seen.len();
        report.resolved_desc_ids = resolved_ids.len();
        report.resolved_onions = report.requests_per_onion.len();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tor_sim::relay::RelayId;
    use tor_sim::store::RequestRecord;

    fn onion(n: u8) -> OnionAddress {
        OnionAddress::from_pubkey(&[n; 16])
    }

    fn request(id: DescriptorId, t: SimTime) -> LoggedRequest {
        LoggedRequest {
            relay: RelayId(0),
            record: RequestRecord {
                time: t,
                descriptor_id: id,
                found: true,
            },
        }
    }

    #[test]
    fn resolves_current_descriptor_ids() {
        let start = SimTime::from_ymd(2013, 1, 28);
        let end = SimTime::from_ymd(2013, 2, 8);
        let onions = [onion(1), onion(2)];
        let resolver = Resolver::build(&onions, start, end);

        let mid = SimTime::from_ymd(2013, 2, 4) + 7 * 3600;
        let [a, b] = DescriptorId::pair_at(onion(1), mid.unix());
        assert_eq!(resolver.resolve(a), Some(onion(1)));
        assert_eq!(resolver.resolve(b), Some(onion(1)));
    }

    #[test]
    fn window_edges_covered() {
        let start = SimTime::from_ymd(2013, 1, 28);
        let end = SimTime::from_ymd(2013, 2, 8);
        let resolver = Resolver::build(&[onion(3)], start, end);
        for t in [start, end, end + DAY - 1] {
            let [a, _] = DescriptorId::pair_at(onion(3), t.unix());
            assert!(resolver.resolve(a).is_some(), "time {t}");
        }
        // Far outside the window: unresolvable.
        let [x, _] = DescriptorId::pair_at(onion(3), SimTime::from_ymd(2013, 6, 1).unix());
        assert!(resolver.resolve(x).is_none());
    }

    #[test]
    fn table_size_is_days_times_replicas() {
        let start = SimTime::from_ymd(2013, 2, 1);
        let end = SimTime::from_ymd(2013, 2, 5);
        let resolver = Resolver::build(&[onion(4)], start, end);
        // 2013-02-01 .. 2013-02-06 inclusive (end + 1 day of slack),
        // i.e. 6 periods × 2 replicas.
        assert_eq!(resolver.len(), 12);
        assert!(!resolver.is_empty());
    }

    #[test]
    fn log_resolution_counts() {
        let start = SimTime::from_ymd(2013, 2, 1);
        let end = SimTime::from_ymd(2013, 2, 8);
        let resolver = Resolver::build(&[onion(5)], start, end);
        let t = SimTime::from_ymd(2013, 2, 4);
        let [known, _] = DescriptorId::pair_at(onion(5), t.unix());
        let [phantom, _] = DescriptorId::pair_at(onion(99), t.unix());

        let log = vec![
            request(known, t),
            request(known, t + 60),
            request(phantom, t),
            request(phantom, t + 120),
            request(phantom, t + 180),
        ];
        let report = resolver.resolve_log(&log);
        assert_eq!(report.total_requests, 5);
        assert_eq!(report.unique_desc_ids, 2);
        assert_eq!(report.resolved_desc_ids, 1);
        assert_eq!(report.resolved_onions, 1);
        assert_eq!(report.requests_per_onion[&onion(5)], 2);
        assert_eq!(report.unresolved_requests, 3);
        assert!((report.phantom_share() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_log() {
        let resolver = Resolver::build(&[], SimTime::EPOCH, SimTime::EPOCH);
        let report = resolver.resolve_log(&[]);
        assert_eq!(report.total_requests, 0);
        assert_eq!(report.phantom_share(), 0.0);
    }
}

//! Streaming popularity aggregation (bounded-memory Sec. V).
//!
//! The exact popularity path materializes every logged request —
//! O(requests) memory, over a million events per window at paper
//! scale. This module replaces the event vector with three sketches
//! (count-min, space-saving top-k, HyperLogLog from the `sketch`
//! crate): the harvester's hourly request-log drain feeds
//! [`StreamingPopularity::absorb`], and [`StreamingPopularity::finalize`]
//! reconstitutes a [`ResolutionReport`] for the unchanged
//! `Ranking::build_normalized` — peak resident event storage becomes
//! one hour of traffic plus O(sketch size).
//!
//! # Determinism
//!
//! Per-relay batches are pre-aggregated into sorted per-batch deltas
//! on a measurement wave (any thread count), then folded into the
//! single global sketch set **in canonical batch order**. Conservative
//! count-min updates and space-saving evictions are order-sensitive,
//! so the fold order — not the shard boundaries — defines the state;
//! under this discipline the aggregate is byte-identical at 1, 2 or 8
//! threads, matching the workspace-wide wave contract.
//!
//! # Exactness window
//!
//! While distinct descriptor IDs fit in the space-saving capacity (no
//! evictions), tracked counts are exact and the derived Table II ranks
//! equal the exact path's — the differential suite pins this at scale
//! 0.03. Past that window the classic guarantees take over: counts
//! never underestimate and any ID with true count above the eviction
//! floor stays tracked.

use std::collections::BTreeMap;

use onion_crypto::descriptor::DescriptorId;
use onion_crypto::u160::U160;
use tor_sim::relay::RelayId;
use tor_sim::store::RequestRecord;
use wave::{WavePool, WaveStats};

use sketch::{CountMinSketch, HyperLogLog, SketchConfig, SpaceSaving};

use crate::resolver::{ResolutionReport, Resolver};

/// Folds a descriptor ID's 160 SHA-1 bits into the sketches' 64-bit
/// key domain.
fn desc_key64(id: DescriptorId) -> u64 {
    let bytes = U160::from(id).to_bytes();
    let mut k = 0u64;
    for chunk in bytes.chunks(4) {
        let mut limb = [0u8; 4];
        limb.copy_from_slice(chunk);
        k = sketch::mix2(k, u64::from(u32::from_be_bytes(limb)));
    }
    k
}

/// Flat snapshot of the sketch state for metrics and reporting.
#[derive(Clone, Debug)]
pub struct SketchSummary {
    /// Count-min width (power of two).
    pub cms_width: usize,
    /// Count-min depth.
    pub cms_depth: usize,
    /// Space-saving capacity.
    pub topk_capacity: usize,
    /// Keys currently tracked by the space-saving summary.
    pub topk_tracked: usize,
    /// Space-saving evictions (top-k churn). Zero means every tracked
    /// count is exact.
    pub topk_churn: u64,
    /// HyperLogLog precision.
    pub hll_precision: u8,
    /// HyperLogLog distinct-descriptor-ID estimate.
    pub hll_estimate: f64,
    /// Bytes held by the three sketches.
    pub memory_bytes: usize,
    /// Total requests absorbed.
    pub total_requests: u64,
    /// Hourly batches absorbed.
    pub batches: u64,
}

/// The streaming aggregator: the three sketches plus the wave pool
/// that pre-aggregates each hour's relay batches.
#[derive(Clone, Debug)]
pub struct StreamingPopularity {
    pool: WavePool,
    seed: u64,
    cms: CountMinSketch,
    topk: SpaceSaving<DescriptorId>,
    hll: HyperLogLog,
    total_requests: u64,
    batches: u64,
    wave_stats: Vec<WaveStats>,
}

impl StreamingPopularity {
    /// An empty aggregator hashing with `seed`, pre-aggregating on up
    /// to `threads` workers.
    pub fn new(cfg: SketchConfig, seed: u64, threads: usize) -> Self {
        StreamingPopularity {
            pool: WavePool::new(threads),
            seed,
            cms: CountMinSketch::new(cfg.cms_width, cfg.cms_depth, seed),
            topk: SpaceSaving::new(cfg.topk_capacity),
            hll: HyperLogLog::new(cfg.hll_precision, seed),
            total_requests: 0,
            batches: 0,
            wave_stats: Vec::new(),
        }
    }

    /// Absorbs one hour of per-relay request-log batches: a wave maps
    /// each batch to a sorted per-descriptor delta, then the deltas
    /// fold into the global sketches in canonical batch order.
    pub fn absorb(&mut self, batches: &[(RelayId, Vec<RequestRecord>)]) {
        if batches.is_empty() {
            return;
        }
        let (deltas, stats) = self.pool.map(batches, |_, (_, records)| {
            let mut delta: BTreeMap<DescriptorId, u64> = BTreeMap::new();
            for r in records {
                *delta.entry(r.descriptor_id).or_insert(0) += 1;
            }
            (records.len() as u64, delta)
        });
        self.wave_stats.push(stats);
        for (n, delta) in deltas {
            self.total_requests += n;
            self.batches += 1;
            for (id, count) in delta {
                let key = desc_key64(id);
                self.cms.add(key, count);
                self.hll.insert(key);
                self.topk.offer(id, count);
            }
        }
    }

    /// Reconstitutes a [`ResolutionReport`] from the sketches: tracked
    /// descriptor IDs are resolved through the same forward table the
    /// exact path uses, per-onion counts summed in canonical top-k
    /// order, distinct IDs estimated by the HLL. While the top-k has
    /// seen no evictions the per-onion counts — and therefore the
    /// Table II ranks — are exact.
    pub fn finalize(&self, resolver: &Resolver) -> ResolutionReport {
        let mut report = ResolutionReport {
            total_requests: self.total_requests,
            unique_desc_ids: self.hll.estimate().round() as usize,
            ..ResolutionReport::default()
        };
        let mut resolved_requests = 0u64;
        for entry in self.topk.entries() {
            if let Some(onion) = resolver.resolve(entry.key) {
                report.resolved_desc_ids += 1;
                *report.requests_per_onion.entry(onion).or_insert(0) += entry.count;
                resolved_requests += entry.count;
            }
        }
        report.resolved_onions = report.requests_per_onion.len();
        report.unresolved_requests = self.total_requests.saturating_sub(resolved_requests);
        report
    }

    /// Current sketch state snapshot for metrics.
    pub fn summary(&self) -> SketchSummary {
        SketchSummary {
            cms_width: self.cms.width(),
            cms_depth: self.cms.depth(),
            topk_capacity: self.topk.capacity(),
            topk_tracked: self.topk.len(),
            topk_churn: self.topk.evictions(),
            hll_precision: self.hll.precision(),
            hll_estimate: self.hll.estimate(),
            memory_bytes: self.cms.memory_bytes()
                + self.topk.memory_bytes()
                + self.hll.memory_bytes(),
            total_requests: self.total_requests,
            batches: self.batches,
        }
    }

    /// The hashing seed this aggregator was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drains the accumulated per-hour wave accounting.
    pub fn take_wave_stats(&mut self) -> Vec<WaveStats> {
        std::mem::take(&mut self.wave_stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_crypto::onion::OnionAddress;
    use tor_sim::clock::SimTime;

    fn record(id: DescriptorId, t: SimTime) -> RequestRecord {
        RequestRecord {
            time: t,
            descriptor_id: id,
            found: true,
        }
    }

    /// Hourly waves of per-relay request batches, as the harvester
    /// hands them to the streaming sink.
    type Waves = Vec<Vec<(RelayId, Vec<RequestRecord>)>>;

    /// A synthetic skewed stream over `n` onions plus a phantom tail,
    /// chunked into per-relay hourly batches.
    fn stream(n: u64, t: SimTime) -> (Vec<OnionAddress>, Waves) {
        let onions: Vec<OnionAddress> = (0..n)
            .map(|i| OnionAddress::from_pubkey(format!("svc {i}").as_bytes()))
            .collect();
        let mut hours = Vec::new();
        for hour in 0..6u64 {
            let mut batches = Vec::new();
            for relay in 0..4u64 {
                let mut records = Vec::new();
                for (rank, &onion) in onions.iter().enumerate() {
                    let [id, _] = DescriptorId::pair_at(onion, t.unix());
                    let reps = (n as usize) / (rank + 1);
                    for _ in 0..reps {
                        records.push(record(id, t));
                    }
                }
                // Phantom stream: unresolvable IDs.
                let phantom = OnionAddress::from_pubkey(format!("ghost {hour} {relay}").as_bytes());
                let [pid, _] = DescriptorId::pair_at(phantom, t.unix());
                records.push(record(pid, t));
                batches.push((RelayId(relay as usize), records));
            }
            hours.push(batches);
        }
        (onions, hours)
    }

    #[test]
    fn streaming_report_matches_exact_resolution_without_evictions() {
        let t = SimTime::from_ymd(2013, 2, 4);
        let (onions, hours) = stream(12, t);
        let resolver = Resolver::build(&onions, t, t);

        let mut agg = StreamingPopularity::new(SketchConfig::default(), 7, 1);
        let mut exact_log = Vec::new();
        for batches in &hours {
            agg.absorb(batches);
            for (relay, records) in batches {
                for &r in records {
                    exact_log.push(hs_harvest::LoggedRequest {
                        relay: *relay,
                        record: r,
                    });
                }
            }
        }
        let exact = resolver.resolve_log(&exact_log);
        let streamed = agg.finalize(&resolver);

        assert_eq!(streamed.total_requests, exact.total_requests);
        assert_eq!(streamed.resolved_desc_ids, exact.resolved_desc_ids);
        assert_eq!(streamed.resolved_onions, exact.resolved_onions);
        assert_eq!(streamed.requests_per_onion, exact.requests_per_onion);
        assert_eq!(streamed.unresolved_requests, exact.unresolved_requests);
        // HLL is an estimate; at these cardinalities it is near-exact.
        let diff = streamed.unique_desc_ids.abs_diff(exact.unique_desc_ids);
        assert!(diff <= exact.unique_desc_ids / 20 + 2, "hll off by {diff}");
        assert_eq!(agg.summary().topk_churn, 0);
    }

    #[test]
    fn absorb_is_thread_invariant() {
        let t = SimTime::from_ymd(2013, 2, 4);
        let (_, hours) = stream(20, t);
        let run = |threads: usize| {
            let mut agg = StreamingPopularity::new(SketchConfig::default(), 3, threads);
            for batches in &hours {
                agg.absorb(batches);
            }
            agg.take_wave_stats();
            agg
        };
        let one = run(1);
        for threads in [2usize, 8] {
            let many = run(threads);
            assert_eq!(many.cms, one.cms, "cms diverged at {threads} threads");
            assert_eq!(many.topk, one.topk, "topk diverged at {threads} threads");
            assert_eq!(many.hll, one.hll, "hll diverged at {threads} threads");
            assert_eq!(many.total_requests, one.total_requests);
        }
    }

    #[test]
    fn summary_reports_bounded_memory() {
        let cfg = SketchConfig::default();
        let agg = StreamingPopularity::new(cfg, 1, 1);
        let s = agg.summary();
        assert_eq!(s.cms_width, 16_384);
        assert_eq!(s.cms_depth, 4);
        assert_eq!(s.topk_capacity, 8_192);
        assert_eq!(s.hll_precision, 12);
        // O(sketch size), independent of how many events get absorbed.
        assert!(s.memory_bytes < 2 << 20, "{}", s.memory_bytes);
        assert_eq!(s.total_requests, 0);
    }
}

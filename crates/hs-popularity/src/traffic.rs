//! Client descriptor-request traffic.
//!
//! Drives the simulated client population: every hour each service
//! (live *or* dead) receives a Poisson-distributed number of descriptor
//! fetches according to its popularity weight. Fetches for dead
//! services target descriptor IDs that were never published — the 80 %
//! "phantom" request stream the paper observed and could not fully
//! explain.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use onion_crypto::onion::OnionAddress;
use tor_sim::network::{onion_unit_key, ClientId, Network, WaveEffects};
use wave::{mix2, WavePool, WaveStats};

use hs_world::{GeoDb, World};

/// Traffic configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrafficConfig {
    /// Size of the client pool issuing requests.
    pub clients: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the hourly measurement wave (1 = inline).
    pub threads: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            clients: 400,
            seed: 0x007a_ff1c,
            threads: 1,
        }
    }
}

/// Sampler health counters: how often [`poisson`] hit its numeric
/// guards. Both stay zero under any realistic λ; non-zero values flag a
/// mis-scaled popularity model rather than expected behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoissonStats {
    /// Knuth-loop iterations exceeded the λ-aware valve.
    pub valve_trips: u64,
    /// Normal approximation produced a negative variate, clamped to 0.
    pub clamp_trips: u64,
}

impl PoissonStats {
    fn absorb(&mut self, other: PoissonStats) {
        self.valve_trips += other.valve_trips;
        self.clamp_trips += other.clamp_trips;
    }
}

/// The request generator.
///
/// `Clone` snapshots the full driver state (client pool, rates, tick
/// position) so a pipeline stage can branch deterministic traffic off
/// a network snapshot.
///
/// Each [`tick_hour`](TrafficDriver::tick_hour) is a read-only
/// measurement wave: one work unit per `(service, rate)` pair, sharded
/// across [`TrafficConfig::threads`] workers. A unit's RNG stream is
/// keyed by `(seed, tick, onion)` — never by shard index — and its
/// network side effects are merged back in rate-table order, so the
/// traffic is byte-identical at any thread count.
#[derive(Clone, Debug)]
pub struct TrafficDriver {
    clients: Vec<ClientId>,
    /// (address, expected requests per hour).
    rates: Vec<(OnionAddress, f64)>,
    seed: u64,
    threads: usize,
    ticks: u64,
    poisson_stats: PoissonStats,
    wave_stats: Vec<WaveStats>,
    /// Total requests issued so far.
    pub issued: u64,
}

impl TrafficDriver {
    /// Builds the driver: registers `config.clients` clients at
    /// geo-weighted IPs and derives hourly rates from the world's
    /// popularity weights (which are per 2-hour window).
    pub fn new(net: &mut Network, world: &World, geo: &GeoDb, config: TrafficConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let clients = (0..config.clients.max(1))
            .map(|_| net.add_client(geo.sample_client_ip(&mut rng)))
            .collect();
        let rates = world
            .services()
            .iter()
            .filter(|s| s.popularity > 0.0)
            .map(|s| (s.onion, s.popularity / 2.0))
            .collect();
        TrafficDriver {
            clients,
            rates,
            seed: config.seed,
            threads: config.threads.max(1),
            ticks: 0,
            poisson_stats: PoissonStats::default(),
            wave_stats: Vec::new(),
            issued: 0,
        }
    }

    /// Issues one hour of traffic as a sharded measurement wave.
    pub fn tick_hour(&mut self, net: &mut Network) {
        net.prepare_wave();
        self.ticks += 1;
        let tick_seed = mix2(self.seed, self.ticks);
        let pool = WavePool::new(self.threads);
        let clients = &self.clients;
        let net_ref: &Network = net;
        let (units, stats) = pool.map(&self.rates, |_, &(onion, rate)| {
            let unit_key = mix2(tick_seed, onion_unit_key(onion));
            let mut rng = StdRng::seed_from_u64(unit_key);
            let mut fx = WaveEffects::new(unit_key);
            let (n, pstats) = poisson_traced(rate, &mut rng);
            for _ in 0..n {
                let client = clients[rng.random_range(0..clients.len())];
                let _ = net_ref.client_fetch_readonly(client, onion, &mut rng, &mut fx);
            }
            (n, pstats, fx)
        });
        self.wave_stats.push(stats);
        // Merge in canonical rate-table order.
        for (n, pstats, fx) in units {
            net.apply_wave_effects(fx);
            self.issued += n;
            self.poisson_stats.absorb(pstats);
        }
    }

    /// The client pool.
    pub fn clients(&self) -> &[ClientId] {
        &self.clients
    }

    /// Expected requests per hour across all services.
    pub fn expected_hourly(&self) -> f64 {
        self.rates.iter().map(|(_, r)| r).sum()
    }

    /// Accumulated sampler health counters.
    pub fn poisson_stats(&self) -> PoissonStats {
        self.poisson_stats
    }

    /// Drains the per-tick wave accounting collected so far.
    pub fn take_wave_stats(&mut self) -> Vec<WaveStats> {
        std::mem::take(&mut self.wave_stats)
    }
}

/// Samples a Poisson variate: Knuth's method for small λ, a rounded
/// normal approximation for large λ.
pub fn poisson(lambda: f64, rng: &mut impl Rng) -> u64 {
    poisson_traced(lambda, rng).0
}

/// [`poisson`], also reporting which numeric guards fired.
///
/// The Knuth loop's safety valve scales with λ (`max(10 000, 20λ)`), so
/// a λ just under the normal-approximation cutoff can never be silently
/// truncated the way the old fixed `k > 10 000` valve allowed; the
/// normal branch counts negative variates clamped to zero.
pub fn poisson_traced(lambda: f64, rng: &mut impl Rng) -> (u64, PoissonStats) {
    let mut stats = PoissonStats::default();
    if lambda <= 0.0 {
        return (0, stats);
    }
    let n = if lambda < 30.0 {
        let limit = (-lambda).exp();
        let valve = 10_000u64.max((20.0 * lambda).ceil() as u64);
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.random::<f64>();
            if p <= limit {
                break k;
            }
            k += 1;
            if k > valve {
                stats.valve_trips += 1;
                break k; // numeric safety valve
            }
        }
    } else {
        // Box–Muller normal approximation N(λ, λ).
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = lambda + lambda.sqrt() * z;
        if v < 0.0 {
            stats.clamp_trips += 1;
            0
        } else {
            v.round() as u64
        }
    };
    (n, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_world::WorldConfig;
    use tor_sim::clock::SimTime;
    use tor_sim::network::NetworkBuilder;

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        for lambda in [0.5f64, 4.0, 25.0, 200.0] {
            let n = 3_000;
            let total: u64 = (0..n).map(|_| poisson(lambda, &mut rng)).sum();
            let mean = total as f64 / f64::from(n);
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.2 + 0.1,
                "λ={lambda}, mean={mean}"
            );
        }
        assert_eq!(poisson(0.0, &mut rng), 0);
        assert_eq!(poisson(-3.0, &mut rng), 0);
    }

    #[test]
    fn driver_issues_traffic() {
        let world = World::generate(WorldConfig {
            seed: 4,
            scale: 0.01,
        });
        let mut net = NetworkBuilder::new()
            .relays(60)
            .seed(4)
            .start(SimTime::from_ymd(2013, 2, 1))
            .build();
        world.register_all(&mut net);
        net.advance_hours(1);
        let geo = GeoDb::new();
        let mut driver = TrafficDriver::new(
            &mut net,
            &world,
            &geo,
            TrafficConfig {
                clients: 30,
                seed: 9,
                threads: 1,
            },
        );
        assert!(driver.expected_hourly() > 0.0);
        driver.tick_hour(&mut net);
        driver.tick_hour(&mut net);
        assert!(driver.issued > 0, "requests issued");
        assert_eq!(driver.poisson_stats(), PoissonStats::default());
        assert_eq!(driver.take_wave_stats().len(), 2);
        assert!(driver.take_wave_stats().is_empty(), "drained");
    }

    #[test]
    fn tick_hour_is_thread_invariant() {
        // The same world ticked at 1 and 4 wave threads must issue the
        // same requests and leave the network byte-identical.
        let run = |threads: usize| {
            let world = World::generate(WorldConfig {
                seed: 4,
                scale: 0.01,
            });
            let mut net = NetworkBuilder::new()
                .relays(60)
                .seed(4)
                .start(SimTime::from_ymd(2013, 2, 1))
                .build();
            world.register_all(&mut net);
            net.advance_hours(1);
            let geo = GeoDb::new();
            let mut driver = TrafficDriver::new(
                &mut net,
                &world,
                &geo,
                TrafficConfig {
                    clients: 30,
                    seed: 9,
                    threads,
                },
            );
            driver.tick_hour(&mut net);
            driver.tick_hour(&mut net);
            (driver.issued, format!("{:?}", net.hot_counters()))
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn large_knuth_lambda_is_not_truncated() {
        // λ = 29.9 sits just under the normal-approximation cutoff; the
        // old fixed valve could not truncate it either, but the λ-aware
        // valve must leave the mean intact and never trip.
        let mut rng = StdRng::seed_from_u64(7);
        let mut stats = PoissonStats::default();
        let n = 2_000;
        let total: u64 = (0..n)
            .map(|_| {
                let (k, s) = poisson_traced(29.9, &mut rng);
                stats.absorb(s);
                k
            })
            .sum();
        let mean = total as f64 / f64::from(n);
        assert!((mean - 29.9).abs() < 0.5, "mean={mean}");
        assert_eq!(stats.valve_trips, 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Sample mean and variance track λ and the numeric guards
            /// stay silent, on both sides of the λ = 30 branch cutoff.
            #[test]
            fn poisson_moments_match_lambda(
                lambda_tenths in 1u64..2_000,
                seed in any::<u64>(),
            ) {
                let lambda = lambda_tenths as f64 / 10.0;
                let mut rng = StdRng::seed_from_u64(seed);
                let n = 2_000u32;
                let mut stats = PoissonStats::default();
                let samples: Vec<u64> = (0..n)
                    .map(|_| {
                        let (k, s) = poisson_traced(lambda, &mut rng);
                        stats.absorb(s);
                        k
                    })
                    .collect();
                let mean =
                    samples.iter().sum::<u64>() as f64 / f64::from(n);
                let var = samples
                    .iter()
                    .map(|&k| (k as f64 - mean).powi(2))
                    .sum::<f64>()
                    / f64::from(n - 1);
                // Mean of n samples has sd sqrt(λ/n); allow 6 sigma
                // plus rounding slack from the normal approximation.
                let mean_tol = 6.0 * (lambda / f64::from(n)).sqrt() + 0.51;
                prop_assert!(
                    (mean - lambda).abs() < mean_tol,
                    "λ={} mean={} tol={}", lambda, mean, mean_tol
                );
                // Variance is λ; allow a generous multiplicative band.
                prop_assert!(
                    var > 0.6 * lambda - 0.3 && var < 1.5 * lambda + 0.5,
                    "λ={} var={}", lambda, var
                );
                prop_assert_eq!(stats, PoissonStats::default());
            }
        }
    }

    #[test]
    fn dead_services_also_requested() {
        // The phantom stream: dark services carry positive weights.
        let world = World::generate(WorldConfig {
            seed: 4,
            scale: 0.02,
        });
        let phantom_rate: f64 = world
            .services()
            .iter()
            .filter(|s| matches!(s.role, hs_world::Role::Dark))
            .map(|s| s.popularity)
            .sum();
        let real_rate: f64 = world
            .services()
            .iter()
            .filter(|s| s.publishes_descriptors())
            .map(|s| s.popularity)
            .sum();
        // Generated phantom share is ~30 %; the *observed* share at the
        // attacker's HSDirs is ~80 % because phantom fetches probe all
        // six responsible dirs (see `hs_world::world`).
        let share = phantom_rate / (phantom_rate + real_rate);
        assert!((0.15..0.55).contains(&share), "phantom share {share}");
    }
}

//! Client descriptor-request traffic.
//!
//! Drives the simulated client population: every hour each service
//! (live *or* dead) receives a Poisson-distributed number of descriptor
//! fetches according to its popularity weight. Fetches for dead
//! services target descriptor IDs that were never published — the 80 %
//! "phantom" request stream the paper observed and could not fully
//! explain.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use onion_crypto::onion::OnionAddress;
use tor_sim::network::{ClientId, Network};

use hs_world::{GeoDb, World};

/// Traffic configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrafficConfig {
    /// Size of the client pool issuing requests.
    pub clients: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            clients: 400,
            seed: 0x007a_ff1c,
        }
    }
}

/// The request generator.
///
/// `Clone` snapshots the full driver state (client pool, rates, RNG
/// position) so a pipeline stage can branch deterministic traffic off
/// a network snapshot.
#[derive(Clone, Debug)]
pub struct TrafficDriver {
    clients: Vec<ClientId>,
    /// (address, expected requests per hour).
    rates: Vec<(OnionAddress, f64)>,
    rng: StdRng,
    /// Total requests issued so far.
    pub issued: u64,
}

impl TrafficDriver {
    /// Builds the driver: registers `config.clients` clients at
    /// geo-weighted IPs and derives hourly rates from the world's
    /// popularity weights (which are per 2-hour window).
    pub fn new(net: &mut Network, world: &World, geo: &GeoDb, config: TrafficConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let clients = (0..config.clients.max(1))
            .map(|_| net.add_client(geo.sample_client_ip(&mut rng)))
            .collect();
        let rates = world
            .services()
            .iter()
            .filter(|s| s.popularity > 0.0)
            .map(|s| (s.onion, s.popularity / 2.0))
            .collect();
        TrafficDriver {
            clients,
            rates,
            rng,
            issued: 0,
        }
    }

    /// Issues one hour of traffic.
    pub fn tick_hour(&mut self, net: &mut Network) {
        for i in 0..self.rates.len() {
            let (onion, rate) = self.rates[i];
            let n = poisson(rate, &mut self.rng);
            for _ in 0..n {
                let client = self.clients[self.rng.random_range(0..self.clients.len())];
                let _ = net.client_fetch(client, onion);
                self.issued += 1;
            }
        }
    }

    /// The client pool.
    pub fn clients(&self) -> &[ClientId] {
        &self.clients
    }

    /// Expected requests per hour across all services.
    pub fn expected_hourly(&self) -> f64 {
        self.rates.iter().map(|(_, r)| r).sum()
    }
}

/// Samples a Poisson variate: Knuth's method for small λ, a rounded
/// normal approximation for large λ.
pub fn poisson(lambda: f64, rng: &mut impl Rng) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.random::<f64>();
            if p <= limit {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // numeric safety valve
            }
        }
    } else {
        // Box–Muller normal approximation N(λ, λ).
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = lambda + lambda.sqrt() * z;
        if v < 0.0 {
            0
        } else {
            v.round() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_world::WorldConfig;
    use tor_sim::clock::SimTime;
    use tor_sim::network::NetworkBuilder;

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        for lambda in [0.5f64, 4.0, 25.0, 200.0] {
            let n = 3_000;
            let total: u64 = (0..n).map(|_| poisson(lambda, &mut rng)).sum();
            let mean = total as f64 / f64::from(n);
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.2 + 0.1,
                "λ={lambda}, mean={mean}"
            );
        }
        assert_eq!(poisson(0.0, &mut rng), 0);
        assert_eq!(poisson(-3.0, &mut rng), 0);
    }

    #[test]
    fn driver_issues_traffic() {
        let world = World::generate(WorldConfig {
            seed: 4,
            scale: 0.01,
        });
        let mut net = NetworkBuilder::new()
            .relays(60)
            .seed(4)
            .start(SimTime::from_ymd(2013, 2, 1))
            .build();
        world.register_all(&mut net);
        net.advance_hours(1);
        let geo = GeoDb::new();
        let mut driver = TrafficDriver::new(
            &mut net,
            &world,
            &geo,
            TrafficConfig {
                clients: 30,
                seed: 9,
            },
        );
        assert!(driver.expected_hourly() > 0.0);
        driver.tick_hour(&mut net);
        driver.tick_hour(&mut net);
        assert!(driver.issued > 0, "requests issued");
    }

    #[test]
    fn dead_services_also_requested() {
        // The phantom stream: dark services carry positive weights.
        let world = World::generate(WorldConfig {
            seed: 4,
            scale: 0.02,
        });
        let phantom_rate: f64 = world
            .services()
            .iter()
            .filter(|s| matches!(s.role, hs_world::Role::Dark))
            .map(|s| s.popularity)
            .sum();
        let real_rate: f64 = world
            .services()
            .iter()
            .filter(|s| s.publishes_descriptors())
            .map(|s| s.popularity)
            .sum();
        // Generated phantom share is ~30 %; the *observed* share at the
        // attacker's HSDirs is ~80 % because phantom fetches probe all
        // six responsible dirs (see `hs_world::world`).
        let share = phantom_rate / (phantom_rate + real_rate);
        assert!((0.15..0.55).contains(&share), "phantom share {share}");
    }
}

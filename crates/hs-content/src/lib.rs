//! Content analysis of Tor hidden services (Sec. III–IV of Biryukov et
//! al., ICDCS 2014): crawling, the exclusion funnel, language
//! detection, topic classification and the HTTPS certificate survey.
//!
//! - [`html`] — tag stripping, tokenisation, word counting;
//! - [`langdetect`] — character-trigram naive Bayes over 17 languages
//!   (substituting the paper's Langdetect);
//! - [`topics`] — multinomial naive Bayes over the 18 Fig. 2 topics
//!   (substituting Mallet / uClassify);
//! - [`certs`] — the Sec. III certificate survey;
//! - [`crawl`] — the Sec. IV funnel producing Table I, the language
//!   histogram and Fig. 2.
//!
//! # Examples
//!
//! ```
//! use hs_content::{Crawler, LanguageDetector, TopicClassifier};
//! use hs_world::taxonomy::{Language, Topic};
//!
//! let det = LanguageDetector::train_default();
//! assert_eq!(det.detect("het is een pagina in het nederlands"), Language::Dutch);
//!
//! let clf = TopicClassifier::train_default();
//! assert_eq!(clf.classify("escrow bitcoin mixer tumbler fee"), Topic::Services);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod certs;
pub mod crawl;
pub mod html;
pub mod langdetect;
pub mod topics;

pub use certs::CertSurvey;
pub use crawl::{ClassifiedPage, CrawlConfig, CrawlReport, Crawler};
pub use langdetect::LanguageDetector;
pub use topics::TopicClassifier;

//! Character n-gram language detection, standing in for the paper's
//! "Langdetect" Java library.
//!
//! The detector is a multinomial naive-Bayes model over character
//! trigrams, with profiles trained on documents synthesised from the
//! per-language seed lexicons of [`hs_world::lexicon`]. Pages generated
//! by the world share those lexicons but are sampled independently
//! (and English pages are mostly topic keywords the profiles have never
//! seen), so detection is realistic rather than tautological.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use hs_world::lexicon;
use hs_world::taxonomy::Language;

/// A trigram frequency profile for one language.
#[derive(Clone, Debug, Default)]
struct Profile {
    counts: HashMap<[char; 3], u32>,
    total: u64,
}

impl Profile {
    fn train(&mut self, text: &str) {
        for tri in trigrams(text) {
            *self.counts.entry(tri).or_insert(0) += 1;
            self.total += 1;
        }
    }

    /// Log-likelihood of `text` under this profile (Laplace-smoothed).
    fn log_likelihood(&self, text: &str, vocab_size: f64) -> f64 {
        let mut ll = 0.0;
        for tri in trigrams(text) {
            let c = f64::from(*self.counts.get(&tri).unwrap_or(&0));
            ll += ((c + 1.0) / (self.total as f64 + vocab_size)).ln();
        }
        ll
    }
}

/// Iterates the character trigrams of space-padded, lowercased text.
fn trigrams(text: &str) -> Vec<[char; 3]> {
    let chars: Vec<char> = std::iter::once(' ')
        .chain(text.chars().flat_map(|c| c.to_lowercase()))
        .chain(std::iter::once(' '))
        .collect();
    chars.windows(3).map(|w| [w[0], w[1], w[2]]).collect()
}

/// The trained language detector.
///
/// # Examples
///
/// ```
/// use hs_content::langdetect::LanguageDetector;
/// use hs_world::taxonomy::Language;
///
/// let det = LanguageDetector::train_default();
/// assert_eq!(det.detect("der hund und die katze sind nicht hier"), Language::German);
/// assert_eq!(det.detect("the quick brown fox jumps over the lazy dog"), Language::English);
/// ```
#[derive(Clone, Debug)]
pub struct LanguageDetector {
    profiles: Vec<(Language, Profile)>,
    vocab_size: f64,
}

impl LanguageDetector {
    /// Trains profiles for all 17 languages from the seed lexicons.
    pub fn train_default() -> Self {
        let mut rng = StdRng::seed_from_u64(0x1a9d_e7ec);
        let mut profiles = Vec::with_capacity(Language::ALL.len());
        for lang in Language::ALL {
            let words = lexicon::language_words(lang);
            let mut profile = Profile::default();
            // Several shuffled passes so trigram statistics include
            // cross-word transitions in varied orders.
            for _ in 0..6 {
                let mut doc: Vec<&str> = Vec::with_capacity(words.len() * 2);
                for _ in 0..words.len() * 2 {
                    doc.push(words[rng.random_range(0..words.len())]);
                }
                profile.train(&doc.join(" "));
            }
            // English profiles additionally see generic web vocabulary —
            // Langdetect's profiles were built from Wikipedia, which
            // covers topical English far better than stop-words alone.
            if lang == Language::English {
                for topic in hs_world::taxonomy::Topic::ALL {
                    profile.train(&lexicon::topic_keywords(topic).join(" "));
                }
            }
            profiles.push((lang, profile));
        }
        let vocab: std::collections::HashSet<[char; 3]> = profiles
            .iter()
            .flat_map(|(_, p)| p.counts.keys().copied())
            .collect();
        LanguageDetector {
            profiles,
            vocab_size: vocab.len() as f64,
        }
    }

    /// Detects the most likely language of `text`. Ties (including
    /// empty input) resolve to English, the most common language.
    pub fn detect(&self, text: &str) -> Language {
        let mut best = (Language::English, f64::NEG_INFINITY);
        for (lang, score) in self.scores(text) {
            if score > best.1 {
                best = (lang, score);
            }
        }
        best.0
    }

    /// Log-likelihood scores per language (higher = more likely).
    pub fn scores(&self, text: &str) -> Vec<(Language, f64)> {
        self.profiles
            .iter()
            .map(|(lang, p)| (*lang, p.log_likelihood(text, self.vocab_size)))
            .collect()
    }
}

impl Default for LanguageDetector {
    fn default() -> Self {
        Self::train_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_world::service::sample_words;
    use hs_world::taxonomy::Topic;

    #[test]
    fn detects_seed_languages() {
        let det = LanguageDetector::train_default();
        let cases = [
            (
                Language::French,
                "les deux autres sont dans la maison avec nous",
            ),
            (
                Language::Spanish,
                "la página de los servicios está en español para todos",
            ),
            (
                Language::Russian,
                "это страница на русском языке для всех людей",
            ),
            (
                Language::Swedish,
                "det finns många andra sidor på svenska här",
            ),
        ];
        for (expected, text) in cases {
            assert_eq!(det.detect(text), expected, "{text}");
        }
    }

    #[test]
    fn detects_generated_pages() {
        // The real integration path: pages sampled by the world
        // generator (independent RNG, mixed topic keywords).
        let det = LanguageDetector::train_default();
        let mut rng = StdRng::seed_from_u64(42);
        let mut correct = 0u32;
        let mut total = 0u32;
        for lang in Language::ALL {
            for _ in 0..10 {
                let words = sample_words(lang, Topic::Drugs, 120, &mut rng);
                if det.detect(&words.join(" ")) == lang {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = f64::from(correct) / f64::from(total);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn english_topical_text_detected_as_english() {
        let det = LanguageDetector::train_default();
        let mut rng = StdRng::seed_from_u64(7);
        for topic in [Topic::Adult, Topic::Weapons, Topic::Science] {
            let words = sample_words(Language::English, topic, 100, &mut rng);
            assert_eq!(det.detect(&words.join(" ")), Language::English, "{topic}");
        }
    }

    #[test]
    fn empty_text_defaults_to_english() {
        let det = LanguageDetector::train_default();
        assert_eq!(det.detect(""), Language::English);
    }

    #[test]
    fn scores_cover_all_languages() {
        let det = LanguageDetector::train_default();
        assert_eq!(det.scores("hello world").len(), Language::ALL.len());
    }

    #[test]
    fn trigram_padding() {
        let t = trigrams("ab");
        assert_eq!(t, vec![[' ', 'a', 'b'], ['a', 'b', ' ']]);
        assert!(trigrams("").is_empty());
    }
}

//! Multinomial naive-Bayes topic classification over the 18 categories
//! of Fig. 2, standing in for the paper's Mallet / uClassify setup.
//!
//! Training documents are synthesised from the per-topic seed
//! vocabularies (70 % topic keywords, 30 % common English filler) with
//! a dedicated RNG; world-generated pages mix keywords and filler with
//! different proportions and an independent stream, so classification
//! has honest errors at realistic rates.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use hs_world::lexicon;
use hs_world::taxonomy::Topic;

use crate::html::tokenize;

/// A trained topic classifier.
///
/// # Examples
///
/// ```
/// use hs_content::topics::TopicClassifier;
/// use hs_world::taxonomy::Topic;
///
/// let clf = TopicClassifier::train_default();
/// let page = "cannabis vendor escrow shipping stealth mdma marketplace";
/// assert_eq!(clf.classify(page), Topic::Drugs);
/// ```
#[derive(Clone, Debug)]
pub struct TopicClassifier {
    vocab: HashMap<String, usize>,
    /// `log_lik[topic_idx][word_idx]`.
    log_lik: Vec<Vec<f64>>,
    log_prior: Vec<f64>,
    /// Smoothed log-probability of an unseen word, per topic.
    log_unseen: Vec<f64>,
}

impl TopicClassifier {
    /// Trains on documents synthesised from the seed lexicons.
    pub fn train_default() -> Self {
        let mut rng = StdRng::seed_from_u64(0x70b1_c0de);
        let docs = synth_training_docs(&mut rng, 40, 90);
        Self::train(&docs)
    }

    /// Trains from labelled documents (token lists).
    ///
    /// # Panics
    ///
    /// Panics if `docs` is empty.
    pub fn train(docs: &[(Topic, Vec<String>)]) -> Self {
        assert!(!docs.is_empty(), "training set must be nonempty");
        let mut vocab: HashMap<String, usize> = HashMap::new();
        for (_, words) in docs {
            for w in words {
                let next = vocab.len();
                vocab.entry(w.clone()).or_insert(next);
            }
        }
        let v = vocab.len();
        let k = Topic::ALL.len();
        let mut word_counts = vec![vec![0u32; v]; k];
        let mut topic_words = vec![0u64; k];
        let mut topic_docs = vec![0u32; k];
        for (topic, words) in docs {
            let t = topic_index(*topic);
            topic_docs[t] += 1;
            for w in words {
                let wi = vocab[w];
                word_counts[t][wi] += 1;
                topic_words[t] += 1;
            }
        }
        let total_docs: u32 = topic_docs.iter().sum();
        // Topics with no training documents are impossible, not merely
        // unlikely — otherwise their flat unseen-word likelihood can
        // out-score every trained topic on partially-novel text.
        let log_prior = topic_docs
            .iter()
            .map(|&d| {
                if d == 0 {
                    f64::NEG_INFINITY
                } else {
                    (f64::from(d) / f64::from(total_docs)).ln()
                }
            })
            .collect();
        let mut log_lik = vec![vec![0.0f64; v]; k];
        let mut log_unseen = vec![0.0f64; k];
        for t in 0..k {
            let denom = topic_words[t] as f64 + v as f64;
            for wi in 0..v {
                log_lik[t][wi] = ((f64::from(word_counts[t][wi]) + 1.0) / denom).ln();
            }
            log_unseen[t] = (1.0 / denom).ln();
        }
        TopicClassifier {
            vocab,
            log_lik,
            log_prior,
            log_unseen,
        }
    }

    /// Classifies text into its most likely topic.
    pub fn classify(&self, text: &str) -> Topic {
        let scores = self.scores(text);
        let mut best = 0usize;
        for (i, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = i;
            }
        }
        Topic::ALL[best]
    }

    /// Per-topic log scores, indexed like [`Topic::ALL`].
    pub fn scores(&self, text: &str) -> Vec<f64> {
        let tokens = tokenize(text);
        Topic::ALL
            .iter()
            .enumerate()
            .map(|(t, _)| {
                let mut s = self.log_prior[t];
                for w in &tokens {
                    s += match self.vocab.get(w) {
                        Some(&wi) => self.log_lik[t][wi],
                        None => self.log_unseen[t],
                    };
                }
                s
            })
            .collect()
    }

    /// Vocabulary size (diagnostic).
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }
}

impl Default for TopicClassifier {
    fn default() -> Self {
        Self::train_default()
    }
}

fn topic_index(topic: Topic) -> usize {
    Topic::ALL
        .iter()
        .position(|&t| t == topic)
        .expect("topic in ALL")
}

/// Synthesises `docs_per_topic` training documents of `words_per_doc`
/// words for every topic.
pub fn synth_training_docs(
    rng: &mut StdRng,
    docs_per_topic: usize,
    words_per_doc: usize,
) -> Vec<(Topic, Vec<String>)> {
    let filler = lexicon::ENGLISH_FILLER;
    let mut docs = Vec::with_capacity(Topic::ALL.len() * docs_per_topic);
    for topic in Topic::ALL {
        let kw = lexicon::topic_keywords(topic);
        for _ in 0..docs_per_topic {
            let words = (0..words_per_doc)
                .map(|_| {
                    let pool = if rng.random::<f64>() < 0.7 {
                        kw
                    } else {
                        filler
                    };
                    pool[rng.random_range(0..pool.len())].to_owned()
                })
                .collect();
            docs.push((topic, words));
        }
    }
    docs
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_world::service::sample_words;
    use hs_world::taxonomy::Language;

    #[test]
    fn classifies_obvious_pages() {
        let clf = TopicClassifier::train_default();
        assert_eq!(
            clf.classify("pistol rifle ammunition caliber rounds tactical"),
            Topic::Weapons
        );
        assert_eq!(
            clf.classify("chess poker lottery tournament player jackpot dice"),
            Topic::Games
        );
        assert_eq!(
            clf.classify("freedom speech corruption censorship human rights leak"),
            Topic::Politics
        );
    }

    #[test]
    fn accuracy_on_generated_pages() {
        let clf = TopicClassifier::train_default();
        let mut rng = StdRng::seed_from_u64(99);
        let mut correct = 0u32;
        let mut total = 0u32;
        for topic in Topic::ALL {
            for _ in 0..15 {
                let words = sample_words(Language::English, topic, 150, &mut rng);
                if clf.classify(&words.join(" ")) == topic {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = f64::from(correct) / f64::from(total);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn unseen_words_do_not_panic() {
        let clf = TopicClassifier::train_default();
        let _ = clf.classify("zzyzx quux flibbertigibbet");
    }

    #[test]
    fn train_on_custom_corpus() {
        let docs = vec![
            (Topic::Art, vec!["painting".to_owned(), "canvas".to_owned()]),
            (
                Topic::Science,
                vec!["quantum".to_owned(), "theorem".to_owned()],
            ),
        ];
        let clf = TopicClassifier::train(&docs);
        assert_eq!(clf.classify("a beautiful painting on canvas"), Topic::Art);
        assert_eq!(clf.classify("a quantum theorem"), Topic::Science);
        assert!(clf.vocab_len() >= 4);
    }

    #[test]
    #[should_panic(expected = "training set must be nonempty")]
    fn empty_training_panics() {
        let _ = TopicClassifier::train(&[]);
    }
}

//! HTTPS certificate survey (Sec. III).
//!
//! During the port scan the paper collected TLS certificates from every
//! port-443 destination and found: 1,225 self-signed certificates whose
//! common name did not match the requested host; 1,168 of those carried
//! the TorHost shared name `esjqyk2khizsy43i.onion`; and 34 certificates
//! carried the operator's *public DNS* name — deanonymising the service.

use onion_crypto::onion::OnionAddress;

use hs_world::{CertKind, Certificate, World};

/// Survey results over all HTTPS destinations.
#[derive(Clone, Debug, Default)]
pub struct CertSurvey {
    /// Destinations that presented a certificate.
    pub https_destinations: u64,
    /// Self-signed with mismatching common name (includes TorHost).
    pub self_signed_mismatch: u64,
    /// The TorHost shared certificate.
    pub torhost_cn: u64,
    /// Certificates carrying a clearnet DNS name (deanonymising).
    pub clearnet_dns: u64,
    /// Common name matches the onion address.
    pub matching_onion: u64,
    /// The deanonymised services and the DNS names that expose them.
    pub deanonymised: Vec<(OnionAddress, String)>,
}

impl CertSurvey {
    /// Runs the survey over the port-443 destinations found by the
    /// scan.
    pub fn run(world: &World, https_onions: impl IntoIterator<Item = OnionAddress>) -> Self {
        let mut survey = CertSurvey::default();
        for onion in https_onions {
            let Some(service) = world.get(onion) else {
                continue;
            };
            let Some(cert) = service.certificate() else {
                continue;
            };
            survey.https_destinations += 1;
            survey.tally(onion, &cert);
        }
        survey
    }

    fn tally(&mut self, onion: OnionAddress, cert: &Certificate) {
        let requested_host = format!("{onion}");
        let mismatch = cert.common_name != requested_host;
        match cert.kind {
            CertKind::TorHostCn => {
                self.torhost_cn += 1;
                self.self_signed_mismatch += 1;
            }
            CertKind::SelfSignedMismatch => {
                debug_assert!(cert.self_signed && mismatch);
                self.self_signed_mismatch += 1;
            }
            CertKind::ClearnetDns => {
                self.clearnet_dns += 1;
                self.deanonymised.push((onion, cert.common_name.clone()));
            }
            CertKind::MatchingOnion => {
                debug_assert!(!mismatch);
                self.matching_onion += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_world::{Role, WorldConfig};

    fn survey_at(scale: f64) -> (CertSurvey, u64) {
        let world = World::generate(WorldConfig { seed: 3, scale });
        let https: Vec<OnionAddress> = world
            .services()
            .iter()
            .filter(|s| matches!(s.role, Role::Web) && (s.web.https || s.web.https_only))
            .map(|s| s.onion)
            .collect();
        let n = https.len() as u64;
        (CertSurvey::run(&world, https), n)
    }

    #[test]
    fn counts_sum_to_destinations() {
        let (s, n) = survey_at(0.1);
        assert_eq!(s.https_destinations, n);
        assert_eq!(
            s.self_signed_mismatch + s.clearnet_dns + s.matching_onion,
            n
        );
    }

    #[test]
    fn torhost_is_subset_of_mismatch() {
        let (s, _) = survey_at(0.1);
        assert!(s.torhost_cn <= s.self_signed_mismatch);
        assert!(s.torhost_cn > 0);
    }

    #[test]
    fn shape_matches_paper() {
        let (s, _) = survey_at(0.25);
        // TorHost dominates the mismatching population (1168 of 1225).
        assert!(s.torhost_cn as f64 / s.self_signed_mismatch as f64 > 0.9);
        // Deanonymising certs are rare but present.
        assert!(s.clearnet_dns > 0);
        assert!(s.clearnet_dns < s.https_destinations / 10);
        assert_eq!(s.deanonymised.len() as u64, s.clearnet_dns);
    }

    #[test]
    fn deanonymised_names_are_clearnet() {
        let (s, _) = survey_at(0.1);
        for (_, name) in &s.deanonymised {
            assert!(!name.ends_with(".onion"), "{name}");
        }
    }

    #[test]
    fn unknown_onions_skipped() {
        let world = World::generate(WorldConfig {
            seed: 3,
            scale: 0.01,
        });
        let ghost = OnionAddress::from_pubkey(b"ghost https");
        let s = CertSurvey::run(&world, [ghost]);
        assert_eq!(s.https_destinations, 0);
    }
}

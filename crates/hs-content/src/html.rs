//! Minimal HTML handling: tag stripping, tokenisation and word
//! counting — what the paper's crawler needed before feeding text to
//! Langdetect and Mallet.

/// Strips HTML tags and comments, returning the visible text.
///
/// This is a deliberately small state machine, not a spec-compliant
/// parser: crawled hidden-service pages are fed through it only to
/// recover word streams for classification.
///
/// # Examples
///
/// ```
/// use hs_content::html::strip_tags;
///
/// assert_eq!(strip_tags("<p>hello <b>world</b></p>"), "hello world");
/// assert_eq!(strip_tags("a<!-- comment -->b"), "ab");
/// ```
pub fn strip_tags(html: &str) -> String {
    let mut out = String::with_capacity(html.len());
    let mut chars = html.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if c == '<' {
            if html[i..].starts_with("<!--") {
                // Skip until the end of the comment.
                if let Some(end) = html[i..].find("-->") {
                    let stop = i + end + 3;
                    while chars.peek().is_some_and(|&(j, _)| j < stop) {
                        chars.next();
                    }
                } else {
                    break; // unterminated comment swallows the rest
                }
            } else {
                for (_, c2) in chars.by_ref() {
                    if c2 == '>' {
                        break;
                    }
                }
            }
        } else {
            out.push(c);
        }
    }
    collapse_whitespace(&out)
}

fn collapse_whitespace(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c);
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Splits text into lowercase word tokens (alphabetic runs; CJK and
/// other non-alphabetic scripts fall out as single characters, which is
/// adequate for the n-gram language detector).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            if c.is_ascii() {
                cur.push(c.to_ascii_lowercase());
            } else {
                cur.extend(c.to_lowercase());
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Counts natural-language words in stripped text — the statistic the
/// paper's 20-word exclusion rule is based on.
pub fn word_count(text: &str) -> usize {
    tokenize(text).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_nested_tags() {
        assert_eq!(
            strip_tags("<html><body><h1>Title</h1><p>one two</p></body></html>"),
            "Titleone two"
        );
    }

    #[test]
    fn strips_comments() {
        assert_eq!(strip_tags("x <!-- <b>hidden</b> --> y"), "x y");
        // Unterminated comment drops the remainder rather than leaking it.
        assert_eq!(strip_tags("x <!-- open"), "x");
    }

    #[test]
    fn collapses_whitespace() {
        assert_eq!(strip_tags("a\n\n   b\t c  "), "a b c");
    }

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(tokenize("Hello, WORLD! x2"), vec!["hello", "world", "x2"]);
        assert!(tokenize("...").is_empty());
    }

    #[test]
    fn tokenize_handles_unicode() {
        assert_eq!(tokenize("Füße über"), vec!["füße", "über"]);
        assert_eq!(tokenize("русский язык"), vec!["русский", "язык"]);
    }

    #[test]
    fn word_count_matches_rule() {
        let page = "<html><body>one two three four five</body></html>";
        assert_eq!(word_count(&strip_tags(page)), 5);
    }

    #[test]
    fn empty_input() {
        assert_eq!(strip_tags(""), "");
        assert_eq!(word_count(""), 0);
    }
}

//! The HTTP(S) crawl and exclusion funnel of Sec. IV.
//!
//! Two months after the port scan the paper tried every non-55080
//! destination (8,153), found 7,114 still open, connected to 6,579
//! (Table I), and then excluded: error pages wrapped in HTML (73),
//! pages with fewer than 20 words of text (2,348, of which 1,092 were
//! SSH banners) and port-443 copies of port-80 content (1,108) —
//! leaving 3,050 destinations for language detection and topic
//! classification.

use std::collections::{BTreeMap, HashMap};

use onion_crypto::onion::OnionAddress;
use wave::{WavePool, WaveStats};

use hs_world::taxonomy::{Language, Topic};
use hs_world::World;

use crate::html::{strip_tags, word_count};
use crate::langdetect::LanguageDetector;
use crate::topics::TopicClassifier;

/// Crawl adversity model: transient connection failures with a bounded
/// retry budget. The default injects nothing.
///
/// Failures are pure hashes of `(seed, destination, attempt)` — fully
/// deterministic, and a zero-rate config is byte-identical to not
/// modelling failures at all (mirroring `tor_sim::fault`, without
/// coupling the content crates to the simulator).
#[derive(Clone, Debug)]
pub struct CrawlConfig {
    /// Per-attempt probability that a destination's connection fails
    /// transiently (circuit collapse, intro-point churn).
    pub transient_failure_rate: f64,
    /// Seed for the failure hashes.
    pub seed: u64,
    /// Connection attempts per destination (including the first).
    /// Values below 1 behave as 1.
    pub retry_attempts: u32,
    /// Worker threads for the fetch and classify waves (1 = inline).
    pub threads: usize,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            transient_failure_rate: 0.0,
            seed: 0,
            retry_attempts: 3,
            threads: 1,
        }
    }
}

/// SplitMix64 finalizer over `(seed, onion, port, attempt)` compared
/// against the failure rate.
fn connection_flakes(config: &CrawlConfig, onion: OnionAddress, port: u16, attempt: u32) -> bool {
    if config.transient_failure_rate <= 0.0 {
        return false;
    }
    let onion_bits = {
        let perm = onion.permanent_id();
        let bytes = perm.as_bytes();
        let mut k = [0u8; 8];
        k[..bytes.len().min(8)].copy_from_slice(&bytes[..bytes.len().min(8)]);
        u64::from_be_bytes(k)
    };
    let mut x =
        config.seed ^ 0x0c_4a_37 ^ onion_bits ^ (u64::from(port) << 32) ^ u64::from(attempt);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    let unit = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit < config.transient_failure_rate
}

/// One page that survived the funnel and was classified.
#[derive(Clone, Debug)]
pub struct ClassifiedPage {
    /// The destination.
    pub onion: OnionAddress,
    /// The destination port.
    pub port: u16,
    /// Detected language.
    pub language: Language,
    /// Detected topic (only for English, non-TorHost pages).
    pub topic: Option<Topic>,
    /// Whether the page is the TorHost hosting default.
    pub torhost_default: bool,
    /// Word count of the stripped text.
    pub words: usize,
}

/// Everything the crawl measured.
#[derive(Clone, Debug, Default)]
pub struct CrawlReport {
    /// Destinations attempted (paper: 8,153).
    pub attempted: usize,
    /// Destinations still open (paper: 7,114).
    pub still_open: usize,
    /// Destinations connected via HTTP(S) (paper: 6,579).
    pub connected: usize,
    /// Connected destinations per port (Table I).
    pub connected_by_port: BTreeMap<u16, u32>,
    /// Excluded: HTML-wrapped error messages (paper: 73).
    pub excluded_errors: usize,
    /// Excluded: fewer than 20 words (paper: 2,348).
    pub excluded_short: usize,
    /// SSH banners within the short exclusions (paper: 1,092).
    pub ssh_banners: usize,
    /// Excluded: port-443 copies of port-80 content (paper: 1,108).
    pub excluded_mirrors: usize,
    /// Pages that survived and were classified (paper: 3,050).
    pub classified: Vec<ClassifiedPage>,
    /// Connection attempts that failed transiently. Zero under the
    /// default (fault-free) [`CrawlConfig`].
    pub transient_failures: u64,
    /// Re-attempts made after a transient failure.
    pub retries: u64,
    /// Destinations abandoned after exhausting the retry budget.
    pub gave_ups: u64,
    /// Distribution of connection attempts per connecting destination
    /// (1 everywhere under the fault-free default config).
    pub connect_attempts: obs::Histogram,
    /// Distribution of stripped-text word counts over non-error pages
    /// (the funnel's "fewer than 20 words" cut, as a distribution).
    pub words_per_page: obs::Histogram,
}

impl CrawlReport {
    /// Table I rows: connected destinations for ports 80, 443, 22,
    /// 8080, and everything else aggregated.
    pub fn table1_rows(&self) -> Vec<(String, u32)> {
        let named = [80u16, 443, 22, 8080];
        let mut rows: Vec<(String, u32)> = named
            .iter()
            .map(|p| (p.to_string(), *self.connected_by_port.get(p).unwrap_or(&0)))
            .collect();
        let other: u32 = self
            .connected_by_port
            .iter()
            .filter(|(p, _)| !named.contains(p))
            .map(|(_, c)| *c)
            .sum();
        rows.push(("Other".to_owned(), other));
        rows
    }

    /// Language histogram over classified pages, descending (ties in
    /// declaration order, so same-seed runs render identically — the
    /// counts come out of a `HashMap` whose iteration order is not).
    pub fn language_histogram(&self) -> Vec<(Language, u32)> {
        let mut counts: HashMap<Language, u32> = HashMap::new();
        for p in &self.classified {
            *counts.entry(p.language).or_insert(0) += 1;
        }
        let mut rows: Vec<_> = counts.into_iter().collect();
        rows.sort_by_key(|&(lang, count)| (std::cmp::Reverse(count), lang));
        rows
    }

    /// Number of classified pages detected as English.
    pub fn english_count(&self) -> usize {
        self.classified
            .iter()
            .filter(|p| p.language == Language::English)
            .count()
    }

    /// English pages showing the TorHost default (paper: 805).
    pub fn torhost_count(&self) -> usize {
        self.classified.iter().filter(|p| p.torhost_default).count()
    }

    /// Fig. 2: topic histogram over English, non-TorHost pages, as
    /// (topic, count, percent) in [`Topic::ALL`] order.
    pub fn fig2_rows(&self) -> Vec<(Topic, u32, f64)> {
        let mut counts: HashMap<Topic, u32> = HashMap::new();
        let mut total = 0u32;
        for p in &self.classified {
            if let Some(t) = p.topic {
                *counts.entry(t).or_insert(0) += 1;
                total += 1;
            }
        }
        Topic::ALL
            .iter()
            .map(|&t| {
                let c = *counts.get(&t).unwrap_or(&0);
                let pct = if total == 0 {
                    0.0
                } else {
                    100.0 * f64::from(c) / f64::from(total)
                };
                (t, c, pct)
            })
            .collect()
    }

    /// Number of pages that entered topic classification (paper: 1,813).
    pub fn topic_classified_count(&self) -> usize {
        self.classified.iter().filter(|p| p.topic.is_some()).count()
    }
}

/// The crawler: fetches every destination, applies the funnel, runs
/// the classifiers.
#[derive(Debug, Default)]
pub struct Crawler {
    detector: LanguageDetector,
    classifier: TopicClassifier,
    config: CrawlConfig,
}

impl Crawler {
    /// Creates a crawler with freshly trained classifiers and the
    /// fault-free default config.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a crawler with an explicit adversity config.
    pub fn with_config(config: CrawlConfig) -> Self {
        Crawler {
            config,
            ..Crawler::default()
        }
    }

    /// Runs the crawl over the scan's destinations.
    pub fn run(&self, world: &World, destinations: &[(OnionAddress, u16)]) -> CrawlReport {
        self.run_traced(world, destinations).0
    }

    /// Runs the crawl and additionally returns wave accounting (one
    /// [`WaveStats`] each for the fetch and classify waves).
    ///
    /// The crawl has no RNG — flakes are pure hashes of the
    /// destination — so both phases parallelise as plain read-only
    /// waves over [`CrawlConfig::threads`] workers: fetch every
    /// destination, sequentially index port-80/8080 bodies (the mirror
    /// check needs the full fetch set), then funnel and classify every
    /// page. Results merge in destination order, so the report is
    /// byte-identical at any thread count.
    pub fn run_traced(
        &self,
        world: &World,
        destinations: &[(OnionAddress, u16)],
    ) -> (CrawlReport, Vec<WaveStats>) {
        let mut report = CrawlReport {
            attempted: destinations.len(),
            ..CrawlReport::default()
        };
        let pool = WavePool::new(self.config.threads);

        // Fetch wave: which destinations are still open and connect.
        struct Fetched {
            onion: OnionAddress,
            port: u16,
            status: u16,
            body: String,
        }
        enum FetchUnit {
            Unreachable,
            OpenOnly,
            GaveUp { failures: u32 },
            NoPage { attempt: u32 },
            Page { attempt: u32, page: Fetched },
        }
        let (units, fetch_stats) = pool.map(destinations, |_, &(onion, port)| {
            let Some(service) = world.get(onion) else {
                return FetchUnit::Unreachable;
            };
            if !service.alive_at_crawl {
                return FetchUnit::Unreachable;
            }
            if !service.connects_at_crawl {
                return FetchUnit::OpenOnly;
            }
            // Transient connection failures: retry up to the budget,
            // then abandon the destination (the paper's crawl simply
            // lost such pages).
            let budget = self.config.retry_attempts.max(1);
            let mut attempt = 0u32;
            let connected = loop {
                attempt += 1;
                if !connection_flakes(&self.config, onion, port, attempt) {
                    break true;
                }
                if attempt >= budget {
                    break false;
                }
            };
            if !connected {
                return FetchUnit::GaveUp { failures: budget };
            }
            match service.render_page(port) {
                Some(page) => FetchUnit::Page {
                    attempt,
                    page: Fetched {
                        onion,
                        port,
                        status: page.status,
                        body: page.body,
                    },
                },
                None => FetchUnit::NoPage { attempt },
            }
        });

        // Merge in destination order.
        let mut fetched: Vec<Fetched> = Vec::new();
        for unit in units {
            match unit {
                FetchUnit::Unreachable => {}
                FetchUnit::OpenOnly => report.still_open += 1,
                FetchUnit::GaveUp { failures } => {
                    report.still_open += 1;
                    report.transient_failures += u64::from(failures);
                    report.retries += u64::from(failures - 1);
                    report.gave_ups += 1;
                }
                FetchUnit::NoPage { attempt } => {
                    report.still_open += 1;
                    report.transient_failures += u64::from(attempt - 1);
                    report.retries += u64::from(attempt - 1);
                    report.connect_attempts.record(u64::from(attempt));
                }
                FetchUnit::Page { attempt, page } => {
                    report.still_open += 1;
                    report.transient_failures += u64::from(attempt - 1);
                    report.retries += u64::from(attempt - 1);
                    report.connect_attempts.record(u64::from(attempt));
                    report.connected += 1;
                    *report.connected_by_port.entry(page.port).or_insert(0) += 1;
                    fetched.push(page);
                }
            }
        }

        // Index port-80/8080 bodies to detect 443 mirrors — needs the
        // full fetch set, so this stays sequential between the waves.
        let mut http_bodies: HashMap<OnionAddress, &str> = HashMap::new();
        for f in &fetched {
            if f.port == 80 || f.port == 8080 {
                http_bodies.insert(f.onion, &f.body);
            }
        }

        // Funnel + classification wave.
        enum Funnel {
            Error,
            Short { words: usize, ssh: bool },
            Mirror { words: usize },
            Classified { words: usize, page: ClassifiedPage },
        }
        let http_bodies = &http_bodies;
        let (units, classify_stats) = pool.map(&fetched, |_, f| {
            let text = strip_tags(&f.body);
            // 1. HTML-wrapped error messages (and HTTP error statuses).
            if (f.status != 200 && f.status != 0) || text.starts_with("Error") {
                return Funnel::Error;
            }
            // 2. Fewer than 20 words (SSH banners fall in here).
            let words = word_count(&text);
            if words < 20 {
                return Funnel::Short {
                    words,
                    ssh: f.body.starts_with("SSH-"),
                };
            }
            // 3. Port-443 copies of port-80 content.
            if f.port == 443 {
                if let Some(http_body) = http_bodies.get(&f.onion) {
                    if *http_body == f.body {
                        return Funnel::Mirror { words };
                    }
                }
            }
            // Classification.
            let language = self.detector.detect(&text);
            let torhost_default = f.body.contains("TorHost free anonymous hosting");
            let topic = (language == Language::English && !torhost_default)
                .then(|| self.classifier.classify(&text));
            Funnel::Classified {
                words,
                page: ClassifiedPage {
                    onion: f.onion,
                    port: f.port,
                    language,
                    topic,
                    torhost_default,
                    words,
                },
            }
        });

        // Merge in fetch order.
        for unit in units {
            match unit {
                Funnel::Error => report.excluded_errors += 1,
                Funnel::Short { words, ssh } => {
                    report.words_per_page.record(words as u64);
                    report.excluded_short += 1;
                    report.ssh_banners += usize::from(ssh);
                }
                Funnel::Mirror { words } => {
                    report.words_per_page.record(words as u64);
                    report.excluded_mirrors += 1;
                }
                Funnel::Classified { words, page } => {
                    report.words_per_page.record(words as u64);
                    report.classified.push(page);
                }
            }
        }
        (report, vec![fetch_stats, classify_stats])
    }

    /// Classification accuracy against the world's ground truth —
    /// a diagnostic the paper could not compute on live data.
    pub fn evaluate_against_truth(&self, world: &World, report: &CrawlReport) -> (f64, f64) {
        let mut lang_ok = 0u32;
        let mut lang_n = 0u32;
        let mut topic_ok = 0u32;
        let mut topic_n = 0u32;
        for p in &report.classified {
            let Some(s) = world.get(p.onion) else {
                continue;
            };
            if !matches!(s.role, hs_world::Role::Web) {
                continue;
            }
            if !(s.web.torhost_default || s.web.short_page || s.web.error_page) {
                lang_n += 1;
                if s.web.language == p.language {
                    lang_ok += 1;
                }
                if let Some(t) = p.topic {
                    topic_n += 1;
                    if s.web.topic == t {
                        topic_ok += 1;
                    }
                }
            }
        }
        (
            if lang_n == 0 {
                0.0
            } else {
                f64::from(lang_ok) / f64::from(lang_n)
            },
            if topic_n == 0 {
                0.0
            } else {
                f64::from(topic_ok) / f64::from(topic_n)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_world::WorldConfig;

    fn crawl_world(scale: f64) -> (World, CrawlReport, Crawler) {
        let world = World::generate(WorldConfig { seed: 11, scale });
        // Destinations: every open non-55080 port of every service (a
        // perfect-coverage scan, adequate for funnel testing).
        let destinations: Vec<(OnionAddress, u16)> = world
            .services()
            .iter()
            .flat_map(|s| s.open_ports().into_iter().map(move |p| (s.onion, p)))
            .filter(|&(_, p)| p != hs_world::service::SKYNET_PORT)
            .collect();
        let crawler = Crawler::new();
        let report = crawler.run(&world, &destinations);
        (world, report, crawler)
    }

    #[test]
    fn funnel_accounting_is_exact() {
        let (_, r, _) = crawl_world(0.05);
        assert_eq!(
            r.connected,
            r.excluded_errors + r.excluded_short + r.excluded_mirrors + r.classified.len()
        );
        assert!(r.still_open <= r.attempted);
        assert!(r.connected <= r.still_open);
    }

    #[test]
    fn table1_is_dominated_by_port_80() {
        let (_, r, _) = crawl_world(0.05);
        let rows = r.table1_rows();
        assert_eq!(rows[0].0, "80");
        assert!(rows[0].1 > rows[1].1, "{rows:?}");
    }

    #[test]
    fn ssh_banners_inside_short_exclusions() {
        let (_, r, _) = crawl_world(0.05);
        assert!(r.ssh_banners > 0);
        assert!(r.ssh_banners <= r.excluded_short);
    }

    #[test]
    fn mirrors_excluded() {
        let (_, r, _) = crawl_world(0.05);
        assert!(r.excluded_mirrors > 0);
        // No classified page is a 443 copy of its port-80 twin.
        for p in r.classified.iter().filter(|p| p.port == 443) {
            assert!(!r
                .classified
                .iter()
                .any(|q| q.port == 80 && q.onion == p.onion && q.words == p.words));
        }
    }

    #[test]
    fn english_share_near_84_percent() {
        let (_, r, _) = crawl_world(0.1);
        let share = r.english_count() as f64 / r.classified.len() as f64;
        assert!((0.78..0.92).contains(&share), "share {share}");
    }

    #[test]
    fn torhost_defaults_detected() {
        let (world, r, _) = crawl_world(0.1);
        let truth = world
            .services()
            .iter()
            .filter(|s| s.web.torhost_default && s.alive_at_crawl && s.connects_at_crawl)
            .count();
        let measured = r.torhost_count();
        assert!(measured > 0);
        let diff = (measured as i64 - truth as i64).abs();
        assert!(
            diff <= truth as i64 / 10 + 2,
            "measured {measured}, truth {truth}"
        );
    }

    #[test]
    fn fig2_shape_adult_and_drugs_lead() {
        let (_, r, _) = crawl_world(0.15);
        let rows = r.fig2_rows();
        let pct = |t: Topic| rows.iter().find(|(x, _, _)| *x == t).unwrap().2;
        assert!(pct(Topic::Adult) > 10.0, "adult {}", pct(Topic::Adult));
        assert!(pct(Topic::Drugs) > 8.0, "drugs {}", pct(Topic::Drugs));
        assert!(pct(Topic::Sports) < pct(Topic::Adult));
        let total: f64 = rows.iter().map(|(_, _, p)| p).sum();
        assert!((99.0..101.0).contains(&total));
    }

    #[test]
    fn classifier_accuracy_reasonable() {
        let (world, r, crawler) = crawl_world(0.1);
        let (lang_acc, topic_acc) = crawler.evaluate_against_truth(&world, &r);
        assert!(lang_acc > 0.85, "language accuracy {lang_acc}");
        assert!(topic_acc > 0.75, "topic accuracy {topic_acc}");
    }

    fn destinations_of(world: &World) -> Vec<(OnionAddress, u16)> {
        world
            .services()
            .iter()
            .flat_map(|s| s.open_ports().into_iter().map(move |p| (s.onion, p)))
            .filter(|&(_, p)| p != hs_world::service::SKYNET_PORT)
            .collect()
    }

    #[test]
    fn zero_rate_config_is_byte_identical() {
        let world = World::generate(WorldConfig {
            seed: 11,
            scale: 0.05,
        });
        let destinations = destinations_of(&world);
        let plain = Crawler::new().run(&world, &destinations);
        let zero = Crawler::with_config(CrawlConfig {
            transient_failure_rate: 0.0,
            seed: 0xfeed,
            retry_attempts: 5,
            threads: 1,
        })
        .run(&world, &destinations);
        assert_eq!(format!("{plain:?}"), format!("{zero:?}"));
        assert_eq!(plain.transient_failures, 0);
        assert_eq!(plain.gave_ups, 0);
    }

    #[test]
    fn total_flake_rate_abandons_every_destination() {
        let world = World::generate(WorldConfig {
            seed: 11,
            scale: 0.05,
        });
        let destinations = destinations_of(&world);
        let r = Crawler::with_config(CrawlConfig {
            transient_failure_rate: 1.0,
            seed: 3,
            retry_attempts: 3,
            threads: 1,
        })
        .run(&world, &destinations);
        assert_eq!(r.connected, 0);
        assert!(r.gave_ups > 0);
        assert_eq!(r.transient_failures, r.gave_ups * 3);
        assert_eq!(r.retries, r.gave_ups * 2);
        assert!(r.classified.is_empty());
    }

    #[test]
    fn moderate_flake_rate_recovers_and_accounts() {
        let world = World::generate(WorldConfig {
            seed: 11,
            scale: 0.05,
        });
        let destinations = destinations_of(&world);
        let r = Crawler::with_config(CrawlConfig {
            transient_failure_rate: 0.2,
            seed: 3,
            retry_attempts: 3,
            threads: 1,
        })
        .run(&world, &destinations);
        assert!(r.transient_failures > 0);
        assert!(r.retries > 0, "first-attempt failures must be retried");
        assert!(
            !r.classified.is_empty(),
            "the crawl still classifies through 20% flake"
        );
        // Funnel accounting still exact: gave-ups never reach connect.
        assert_eq!(
            r.connected,
            r.excluded_errors + r.excluded_short + r.excluded_mirrors + r.classified.len()
        );
        // Determinism: same config, same report.
        let again = Crawler::with_config(CrawlConfig {
            transient_failure_rate: 0.2,
            seed: 3,
            retry_attempts: 3,
            threads: 1,
        })
        .run(&world, &destinations);
        assert_eq!(format!("{r:?}"), format!("{again:?}"));
    }

    #[test]
    fn crawl_is_thread_invariant() {
        // Reports (including the flaky-retry accounting) must be
        // byte-identical at any wave width.
        let world = World::generate(WorldConfig {
            seed: 11,
            scale: 0.05,
        });
        let destinations = destinations_of(&world);
        let at = |threads: usize| {
            let (report, waves) = Crawler::with_config(CrawlConfig {
                transient_failure_rate: 0.2,
                seed: 3,
                retry_attempts: 3,
                threads,
            })
            .run_traced(&world, &destinations);
            assert_eq!(waves.len(), 2, "fetch + classify waves");
            assert_eq!(waves[0].items(), destinations.len());
            format!("{report:?}")
        };
        let one = at(1);
        assert_eq!(one, at(2));
        assert_eq!(one, at(8));
    }
}

//! Property tests for the `landscaped` request parser and framing
//! layer: arbitrary byte soup, truncated frames, oversized lines, and
//! interleaved valid/malformed requests must never panic, must map to
//! typed errors, and must leave the connection stream usable.

use std::io::BufReader;

use hs_serve::protocol::{parse_request, LineReader, ProtocolError, Request, MAX_LINE};
use proptest::prelude::*;

/// Renders a reply the way the daemon would and checks the contract
/// every error shares: one sanitized `ERR <code>: …` line.
fn assert_well_formed_error(err: &ProtocolError) {
    let reply = err.reply();
    assert!(reply.starts_with("ERR "), "reply {reply:?}");
    assert!(
        reply.starts_with(&format!("ERR {}", err.code())),
        "code mismatch: {reply:?} vs {}",
        err.code()
    );
    assert!(!reply.contains('\n'), "multi-line error reply: {reply:?}");
    assert!(
        reply.chars().all(|c| c == ' ' || c.is_ascii_graphic()),
        "unsanitized error reply: {reply:?}"
    );
    assert!(reply.len() <= 200, "oversized error reply: {reply:?}");
}

/// A printable token soup built from a byte vector, to explore the
/// parser's argument handling more densely than raw bytes would.
fn token_soup(bytes: &[u8]) -> String {
    const WORDS: [&str; 16] = [
        "PING",
        "RUN_UNTIL",
        "GET",
        "CANCEL",
        "TICK",
        "all",
        "setup",
        "harvest",
        "port_scan",
        "WALL_MS",
        "SIM_HOURS",
        "0",
        "17",
        "99999999999999999999",
        "-3",
        "\u{1b}[31m",
    ];
    bytes
        .iter()
        .map(|&b| WORDS[usize::from(b) % WORDS.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_utf8(bytes in collection::vec(any::<u8>(), 0..200)) {
        let line = String::from_utf8_lossy(&bytes);
        match parse_request(&line) {
            Ok(_) => {}
            Err(err) => assert_well_formed_error(&err),
        }
    }

    #[test]
    fn parser_never_panics_on_token_soup(bytes in collection::vec(any::<u8>(), 0..24)) {
        let line = token_soup(&bytes);
        match parse_request(&line) {
            Ok(_) => {}
            Err(err) => assert_well_formed_error(&err),
        }
    }

    #[test]
    fn framing_survives_arbitrary_streams(bytes in collection::vec(any::<u8>(), 0..4096)) {
        let mut reader = LineReader::new(BufReader::new(&bytes[..]));
        // Drain the whole stream: every frame is either a line or a
        // typed framing error, and EOF always arrives.
        let mut frames = 0usize;
        loop {
            match reader.next_line().expect("in-memory reads cannot fail") {
                None => break,
                Some(Ok(line)) => {
                    prop_assert!(line.len() <= MAX_LINE);
                    let _ = parse_request(&line);
                }
                Some(Err(err)) => assert_well_formed_error(&err),
            }
            frames += 1;
            prop_assert!(frames <= bytes.len() + 1, "framing loop failed to make progress");
        }
    }

    #[test]
    fn stream_stays_usable_after_malformed_frames(
        garbage in collection::vec(any::<u8>(), 0..300),
        pad in 0usize..3000,
    ) {
        // malformed frame, oversized frame, then a valid request: the
        // reader must resync and parse the PING.
        let mut stream: Vec<u8> = garbage.iter().copied().filter(|&b| b != b'\n').collect();
        stream.push(b'\n');
        stream.extend(std::iter::repeat_n(b'x', MAX_LINE + 1 + pad));
        stream.push(b'\n');
        stream.extend_from_slice(b"PING\n");
        let mut reader = LineReader::new(BufReader::new(&stream[..]));

        match reader.next_line().expect("read") {
            Some(Ok(line)) => {
                if let Err(err) = parse_request(&line) {
                    assert_well_formed_error(&err);
                }
            }
            Some(Err(err)) => assert_well_formed_error(&err),
            None => panic!("stream ended before the garbage frame"),
        }
        prop_assert_eq!(
            reader.next_line().expect("read"),
            Some(Err(ProtocolError::Oversized))
        );
        prop_assert_eq!(
            reader.next_line().expect("read"),
            Some(Ok("PING".to_owned()))
        );
        prop_assert_eq!(
            parse_request("PING").expect("valid request"),
            Request::Ping
        );
        prop_assert_eq!(reader.next_line().expect("read"), None);
    }

    #[test]
    fn truncated_valid_requests_fail_closed(cut in 0usize..22) {
        let full = "RUN_UNTIL port_scan WALL_MS 250";
        let truncated: String = full.chars().take(cut).collect();
        // Any strict prefix shorter than a complete verb+args either
        // parses to a *different* valid request (e.g. bare RUN_UNTIL
        // never does) or yields a typed error — never a panic.
        if let Err(err) = parse_request(&truncated) {
            assert_well_formed_error(&err);
        }
    }
}

#[test]
fn interleaved_frames_parse_independently() {
    let mut stream = Vec::new();
    stream.extend_from_slice(b"PING\nBOGUS VERB\nGET setup\n");
    stream.extend(std::iter::repeat_n(b'y', MAX_LINE * 2));
    stream.extend_from_slice(b"\nMETRICS\nCANCEL not_a_number\nSTATUS\n");
    let mut reader = LineReader::new(BufReader::new(&stream[..]));
    let mut outcomes = Vec::new();
    while let Some(frame) = reader.next_line().expect("read") {
        outcomes.push(match frame {
            Ok(line) => parse_request(&line).is_ok(),
            Err(err) => {
                assert_well_formed_error(&err);
                false
            }
        });
    }
    assert_eq!(
        outcomes,
        vec![true, false, true, false, true, false, true],
        "each frame must be judged on its own"
    );
}

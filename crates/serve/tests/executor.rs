//! Integration tests for the worker-pool daemon: connection-level
//! `BUSY` shedding, graceful drain on shutdown, panic-injection slot
//! release (the `reply_run` leak regression), tick/readers
//! concurrency (the epoch-mutex stall regression), epoch-pin
//! survival under byte-budget churn, the background ticker, and
//! `GET <stage> FULL` projections.

use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use hs_landscape::StudyConfig;
use hs_serve::{Client, Daemon, DaemonConfig, DaemonHandle, TickEvery};

/// A daemon provisioned for tests: tiny study, OS-assigned port.
fn spawn(mutate: impl FnOnce(&mut DaemonConfig)) -> (DaemonHandle, Client) {
    let mut cfg = DaemonConfig {
        study: StudyConfig::test_scale(),
        ..DaemonConfig::default()
    };
    mutate(&mut cfg);
    let daemon = Daemon::bind(cfg).expect("bind");
    let handle = daemon.spawn().expect("spawn");
    let client = Client::connect_retry(handle.addr(), Duration::from_secs(10)).expect("connect");
    (handle, client)
}

#[test]
fn saturated_pool_sheds_typed_connection_busy() {
    let (handle, mut held) = spawn(|cfg| {
        cfg.workers = 1;
        cfg.pool_queue = 0;
    });
    // A round trip proves the held connection's job occupies the only
    // worker (not just the queue).
    assert_eq!(held.request("PING").unwrap(), vec!["OK PONG"]);
    // Queue bound 0, worker busy: the next connection must get the
    // connection-level BUSY (typed, distinct from the admission shed)
    // and a close.
    let mut shed = Client::connect_retry(handle.addr(), Duration::from_secs(10)).expect("connect");
    assert_eq!(shed.read_line().unwrap(), "BUSY pool workers=1 queue=0");
    assert!(shed.read_line().is_err(), "shed connection stays open");
    // The held connection is unaffected.
    assert_eq!(held.request("PING").unwrap(), vec!["OK PONG"]);
}

#[test]
fn shutdown_drains_promptly_with_parked_connections() {
    let (handle, mut parked) = spawn(|cfg| cfg.workers = 2);
    assert_eq!(parked.request("PING").unwrap(), vec!["OK PONG"]);
    // `parked` now sits idle on a worker; SHUTDOWN from a second
    // connection must still drain the pool quickly: the parked worker
    // notices the stop flag at its next read tick.
    let mut closer = Client::connect_retry(handle.addr(), Duration::from_secs(10)).expect("conn");
    assert_eq!(closer.request("SHUTDOWN").unwrap(), vec!["OK BYE"]);
    let started = Instant::now();
    handle.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "drain took {:?}",
        started.elapsed()
    );
    // The parked connection was closed by the drain.
    assert!(parked.request("PING").is_err());
}

#[test]
fn panicking_query_frees_its_slot_and_token() {
    // max_inflight=1: if the panicked query leaked its slot, the next
    // RUN_UNTIL would shed BUSY forever — the exact bug this pins.
    let (handle, mut first) = spawn(|cfg| {
        cfg.max_inflight = 1;
        cfg.chaos_panic_once = true;
    });
    first.send("RUN_UNTIL setup").unwrap();
    assert_eq!(first.read_line().unwrap(), "RUNNING id=1");
    // The injected panic kills the connection after the announce.
    assert!(first.read_line().is_err(), "connection survived the panic");

    let mut second = Client::connect_retry(handle.addr(), Duration::from_secs(10)).expect("conn");
    let reply = second.request("RUN_UNTIL setup").unwrap();
    assert_eq!(reply[0], "RUNNING id=2", "slot leaked: {reply:?}");
    assert!(reply[1].starts_with("OK RUN id=2"), "{reply:?}");
    // The queries-map entry died with the slot.
    assert_eq!(
        second.request("CANCEL 1").unwrap(),
        vec!["ERR unknown_query: id=1"]
    );
    // The pool left evidence of the killed connection.
    let errors = second.request("TRACE ERRORS").unwrap();
    assert!(
        errors
            .iter()
            .any(|l| l.contains("id=0 outcome=err request=<connection panicked>")),
        "{errors:?}"
    );
}

#[test]
fn status_completes_while_a_tick_is_in_flight() {
    // The chaos hold stretches the tick's build section (outside the
    // epoch mutex). Before the fix the whole tick ran under the epoch
    // mutex, so this STATUS would block for the full second.
    let (handle, mut ticker) = spawn(|cfg| cfg.chaos_tick_hold_ms = 1000);
    let (tx, rx) = mpsc::channel();
    let tick_thread = thread::spawn(move || {
        let reply = ticker.request("TICK 24").unwrap();
        let _ = tx.send(());
        reply
    });
    // Let the tick enter its hold.
    thread::sleep(Duration::from_millis(200));
    assert!(
        rx.try_recv().is_err(),
        "tick finished before STATUS could race it"
    );
    let mut reader = Client::connect_retry(handle.addr(), Duration::from_secs(10)).expect("conn");
    let started = Instant::now();
    let status = reader.request("STATUS").unwrap();
    let elapsed = started.elapsed();
    assert_eq!(status[0], "OK STATUS");
    // Still the old epoch: the swap has not landed yet.
    assert!(status.contains(&"epoch=0".to_owned()), "{status:?}");
    assert!(
        elapsed < Duration::from_millis(500),
        "STATUS stalled behind the tick: {elapsed:?}"
    );
    let tick_reply = tick_thread.join().unwrap();
    assert!(tick_reply[0].starts_with("OK TICK hours=24 epoch=1"));
    drop(handle);
}

#[test]
fn epoch_pin_survives_byte_budget_churn() {
    // A 1-byte budget squeezes out every unpinned payload on each
    // insert. Before the pin, the first post-churn TICK answered
    // `ERR epoch_evicted` and the daemon could never advance again.
    let (_handle, mut client) = spawn(|cfg| cfg.cache_budget_bytes = Some(1));
    for round in 1..=3u64 {
        let run = client.request("RUN_UNTIL all").unwrap();
        assert!(run[1].starts_with("OK RUN"), "round {round}: {run:?}");
        let tick = client.request("TICK 24").unwrap();
        assert!(
            tick[0].starts_with(&format!("OK TICK hours=24 epoch={round}")),
            "round {round}: {tick:?}"
        );
    }
}

#[test]
fn background_ticker_matches_manual_ticks() {
    let (_handle, mut auto_client) = spawn(|cfg| {
        cfg.tick_every = Some(TickEvery {
            sim_hours: 6,
            wall_ms: 50,
        });
    });
    // Wait for the ticker to publish a few epochs, then capture one
    // consistent snapshot.
    let deadline = Instant::now() + Duration::from_secs(30);
    let (epoch, sim_time, world) = loop {
        let status = auto_client.request("STATUS").unwrap();
        let get = |key: &str| -> String {
            status
                .iter()
                .find_map(|l| l.strip_prefix(&format!("{key}=")))
                .unwrap_or_else(|| panic!("no {key} in {status:?}"))
                .to_owned()
        };
        let epoch: u64 = get("epoch").parse().unwrap();
        if epoch >= 2 {
            break (epoch, get("sim_time"), get("world"));
        }
        assert!(Instant::now() < deadline, "ticker never reached epoch 2");
        thread::sleep(Duration::from_millis(10));
    };

    // A ticker-driven daemon reuses the TICK path exactly, so a
    // manually ticked daemon must reach the identical epoch state.
    let (_manual_handle, mut manual) = spawn(|_| {});
    let mut last = Vec::new();
    for _ in 0..epoch {
        last = manual.request("TICK 6").unwrap();
    }
    assert_eq!(
        last,
        vec![format!(
            "OK TICK hours=6 epoch={epoch} sim_time={sim_time} world={world}"
        )]
    );
}

#[test]
fn get_full_streams_batch_renders() {
    let (_handle, mut client) = spawn(|_| {});
    // FULL on an unbuilt artifact is still the typed miss.
    let miss = client.request("GET port_scan FULL").unwrap();
    assert!(
        miss[0].starts_with("NOT_BUILT port_scan needs="),
        "{miss:?}"
    );

    let run = client.request("RUN_UNTIL port_scan").unwrap();
    assert!(run[1].starts_with("OK RUN"), "{run:?}");
    let full = client.request("GET port_scan FULL").unwrap();
    assert_eq!(full[0], "OK GET port_scan");
    assert!(
        full.contains(&"Fig. 1 — Open ports distribution".to_owned()),
        "{full:?}"
    );
    assert_eq!(full.last().unwrap(), ".");
    // The plain GET stays the frozen key=value summary.
    let summary = client.request("GET port_scan").unwrap();
    assert!(summary.iter().any(|l| l.starts_with("targets=")));
    assert!(!summary.iter().any(|l| l.starts_with("Fig. 1")));

    let run = client.request("RUN_UNTIL popularity").unwrap();
    assert!(run[1].starts_with("OK RUN"), "{run:?}");
    let full = client.request("GET popularity FULL").unwrap();
    assert!(
        full.contains(&"Table II — Ranking of most popular hidden services".to_owned()),
        "{full:?}"
    );
    assert!(full.contains(&"Sec. V — Popularity measurement".to_owned()));

    // Stages without a batch render fall back to the summary.
    let setup_full = client.request("GET setup FULL").unwrap();
    assert!(setup_full.iter().any(|l| l.starts_with("services=")));
}

//! Integration tests for the daemon's telemetry plane: `METRICS PROM`
//! exposition validity, torn-read resistance under concurrent
//! scrapes, the flight recorder's `TRACE` verbs, the extended
//! `STATUS FULL`, byte-budget cache eviction, and the protocol-error
//! counter on resync paths.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hs_landscape::StudyConfig;
use hs_serve::{Client, Daemon, DaemonConfig, DaemonHandle};
use obs::prom::{parse_exposition, Exposition, FamilyKind};

/// A daemon provisioned for tests: tiny study, OS-assigned port.
fn spawn(mutate: impl FnOnce(&mut DaemonConfig)) -> (DaemonHandle, Client) {
    let mut cfg = DaemonConfig {
        study: StudyConfig::test_scale(),
        ..DaemonConfig::default()
    };
    mutate(&mut cfg);
    let daemon = Daemon::bind(cfg).expect("bind");
    let handle = daemon.spawn().expect("spawn");
    let client = Client::connect_retry(handle.addr(), Duration::from_secs(10)).expect("connect");
    (handle, client)
}

/// Sends `METRICS PROM` and parses the body as Prometheus exposition.
fn scrape(client: &mut Client) -> Exposition {
    let reply = client.request("METRICS PROM").expect("scrape");
    assert_eq!(reply[0], "OK METRICS");
    assert_eq!(reply.last().map(String::as_str), Some("."));
    let body: String = reply[1..reply.len() - 1]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect();
    parse_exposition(&body).expect("valid exposition")
}

/// The `id=<n>` announced by a two-phase RUN reply.
fn run_id(reply: &[String]) -> u64 {
    reply[0]
        .strip_prefix("RUNNING id=")
        .expect("RUNNING line")
        .parse()
        .expect("numeric id")
}

#[test]
fn prom_scrape_has_expected_families_and_matches_legacy_metrics() {
    let (_handle, mut client) = spawn(|_| {});
    let reply = client.request("RUN_UNTIL all").expect("run");
    assert!(reply[1].starts_with("OK RUN"), "{reply:?}");

    let exposition = scrape(&mut client);
    let started = exposition
        .value("landscaped_queries_started_total", &[])
        .expect("started counter");
    assert_eq!(started, 1.0);
    assert_eq!(
        exposition.value("landscaped_queries_completed_total", &[]),
        Some(1.0)
    );
    assert_eq!(exposition.value("landscaped_inflight", &[]), Some(0.0));
    assert_eq!(exposition.value("landscaped_epoch", &[]), Some(0.0));

    // Wall-latency histograms exist with the query observed.
    assert_eq!(
        exposition.value("landscaped_query_wall_us_count", &[]),
        Some(1.0)
    );
    let stage_hist = exposition.series("landscaped_stage_wall_us_count");
    assert!(
        stage_hist
            .iter()
            .any(|(labels, _)| labels.iter().any(|(k, v)| k == "stage" && v == "setup")),
        "stage label missing: {stage_hist:?}"
    );
    let family = exposition
        .families
        .iter()
        .find(|f| f.name == "landscaped_query_wall_us")
        .expect("histogram family");
    assert_eq!(family.kind, FamilyKind::Histogram);

    // The legacy key=value METRICS reply reads the same handles, so
    // the two views agree.
    let legacy = client.request("METRICS").expect("metrics");
    assert!(
        legacy.contains(&"queries.started=1".to_owned()),
        "{legacy:?}"
    );
    assert!(
        legacy.contains(&"queries.completed=1".to_owned()),
        "{legacy:?}"
    );
    let legacy_hits: f64 = legacy
        .iter()
        .find_map(|l| l.strip_prefix("cache.hits="))
        .expect("cache.hits")
        .parse()
        .expect("numeric");
    // PROM re-mirrors the cache counters at its own scrape time, so
    // hits can only have grown since.
    assert!(
        exposition
            .value("landscaped_cache_hits_total", &[])
            .expect("cache hits")
            <= legacy_hits
    );
}

#[test]
fn concurrent_prom_scrapes_parse_and_stay_monotonic() {
    // Satellite (b): the torn-read audit. Queries run at 8 wave
    // threads while scrapers hammer METRICS PROM; every scrape must
    // parse, and monotonic counters must never step backwards across
    // consecutive scrapes on the same connection.
    let (handle, mut client) = spawn(|cfg| {
        cfg.wave_threads = 8;
        cfg.max_inflight = 2;
    });
    let stop = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = (0..4)
        .map(|_| {
            let stop = stop.clone();
            let addr = handle.addr();
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_retry(addr, Duration::from_secs(10)).expect("connect");
                let monitored = [
                    "landscaped_queries_started_total",
                    "landscaped_queries_completed_total",
                    "landscaped_cache_insertions_total",
                    "landscaped_query_wall_us_count",
                ];
                let mut last = [0f64; 4];
                let mut scrapes = 0u32;
                while !stop.load(Ordering::Acquire) || scrapes == 0 {
                    let exposition = scrape(&mut client);
                    for (slot, name) in last.iter_mut().zip(monitored) {
                        let value = exposition
                            .value(name, &[])
                            .unwrap_or_else(|| panic!("{name} missing from scrape {scrapes}"));
                        assert!(value >= *slot, "{name} went backwards: {value} < {slot}");
                        *slot = value;
                    }
                    scrapes += 1;
                }
                scrapes
            })
        })
        .collect();

    for _ in 0..3 {
        let reply = client.request("RUN_UNTIL all").expect("run");
        assert!(
            reply[1].starts_with("OK RUN") || reply[1].starts_with("PARTIAL RUN"),
            "{reply:?}"
        );
    }
    stop.store(true, Ordering::Release);
    let total: u32 = scrapers
        .into_iter()
        .map(|j| j.join().expect("scraper panicked"))
        .sum();
    assert!(total >= 4, "scrapers barely ran: {total}");
}

#[test]
fn trace_renders_span_tree_for_completed_query() {
    let (_handle, mut client) = spawn(|_| {});
    let reply = client.request("RUN_UNTIL all").expect("run");
    let id = run_id(&reply);
    let trace = client.request(&format!("TRACE {id}")).expect("trace");
    assert_eq!(trace[0], "OK TRACE");
    assert!(
        trace[1].starts_with(&format!("query id={id} outcome=ok")),
        "{trace:?}"
    );
    let body = trace.join("\n");
    for span in ["parse", "admission", "run", "stage:setup", "render"] {
        assert!(body.contains(span), "missing {span} in {body}");
    }
    // The cached bootstrap setup shows up as a cache event.
    assert!(body.contains("!cache"), "{body}");
}

#[test]
fn trace_dump_is_valid_chrome_json() {
    let (_handle, mut client) = spawn(|_| {});
    client.request("RUN_UNTIL setup").expect("run 1");
    client.request("RUN_UNTIL port_scan").expect("run 2");
    let reply = client.request("TRACE DUMP").expect("dump");
    assert_eq!(reply[0], "OK TRACE");
    let json: String = reply[1..reply.len() - 1]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect();
    obs::validate_json(&json).expect("chrome trace json");
    assert!(json.contains("[ok] RUN_UNTIL setup"), "{json}");
    assert!(json.contains("[ok] RUN_UNTIL port_scan"), "{json}");
}

#[test]
fn trace_errors_pins_partial_queries_after_ring_churn() {
    let (_handle, mut client) = spawn(|cfg| {
        cfg.flight_capacity = 2;
        cfg.flight_errors = 4;
    });
    // An exhausted wall budget produces PARTIAL, which pins the record.
    let partial = client.request("RUN_UNTIL all WALL_MS 0").expect("partial");
    let partial_id = run_id(&partial);
    assert!(partial[1].starts_with("PARTIAL RUN"), "{partial:?}");
    // Churn the tiny main ring with healthy traffic.
    for _ in 0..3 {
        client.request("RUN_UNTIL setup").expect("ok run");
    }
    let errors = client.request("TRACE ERRORS").expect("errors");
    assert!(
        errors
            .iter()
            .any(|l| l.starts_with(&format!("id={partial_id} outcome=partial"))),
        "{errors:?}"
    );
    // The pinned record stays addressable even off the main ring.
    let trace = client
        .request(&format!("TRACE {partial_id}"))
        .expect("trace");
    assert!(trace[1].contains("outcome=partial"), "{trace:?}");
    assert!(trace.join("\n").contains("!halt"), "{trace:?}");
}

#[test]
fn unknown_trace_id_is_a_typed_error() {
    let (_handle, mut client) = spawn(|_| {});
    assert_eq!(
        client.request("TRACE 999").expect("reply"),
        vec!["ERR unknown_trace: id=999".to_owned()]
    );
}

#[test]
fn status_full_extends_the_frozen_status_reply() {
    let (_handle, mut client) = spawn(|cfg| cfg.cache_budget_bytes = Some(1 << 20));
    let plain = client.request("STATUS").expect("status");
    assert!(
        !plain.iter().any(|l| l.starts_with("uptime_ms=")),
        "plain STATUS must stay frozen: {plain:?}"
    );
    let full = client.request("STATUS FULL").expect("status full");
    assert_eq!(full[0], "OK STATUS");
    // The frozen prefix is identical...
    assert_eq!(&full[..plain.len() - 1], &plain[..plain.len() - 1]);
    // ...and the telemetry extension follows.
    for key in [
        "epoch_age_ms=",
        "uptime_ms=",
        "cache.entries=",
        "cache.resident_bytes=",
        "flight.recent=",
        "flight.errors=",
        "wave_threads=",
    ] {
        assert!(
            full.iter().any(|l| l.starts_with(key)),
            "missing {key} in {full:?}"
        );
    }
    assert!(
        full.contains(&format!("cache.budget_bytes={}", 1 << 20)),
        "{full:?}"
    );
}

#[test]
fn byte_budget_eviction_shows_in_prom_but_not_legacy_metrics() {
    // A 1-byte budget forces every insert to evict down to the single
    // newest payload.
    let (_handle, mut client) = spawn(|cfg| cfg.cache_budget_bytes = Some(1));
    let reply = client.request("RUN_UNTIL all").expect("run");
    assert!(reply[1].contains("RUN id="), "{reply:?}");
    let exposition = scrape(&mut client);
    assert!(
        exposition
            .value("landscaped_cache_evicted_bytes_total", &[])
            .expect("evicted bytes")
            > 0.0
    );
    assert_eq!(exposition.value("landscaped_cache_entries", &[]), Some(1.0));
    assert!(
        exposition
            .value("landscaped_cache_resident_bytes", &[])
            .expect("resident bytes")
            > 0.0
    );
    // The frozen legacy reply gained no new keys.
    let legacy = client.request("METRICS").expect("metrics");
    assert_eq!(legacy.len(), 14, "{legacy:?}");
    assert!(
        !legacy.iter().any(|l| l.contains("bytes")),
        "legacy METRICS must stay frozen: {legacy:?}"
    );
}

#[test]
fn pool_families_are_exported_by_default_and_gated_off() {
    let (_handle, mut client) = spawn(|_| {});
    let exposition = scrape(&mut client);
    // The scraping connection itself occupies a worker.
    assert_eq!(exposition.value("landscaped_pool_workers", &[]), Some(4.0));
    assert_eq!(exposition.value("landscaped_pool_busy", &[]), Some(1.0));
    assert_eq!(exposition.value("landscaped_pool_queued", &[]), Some(0.0));
    assert_eq!(
        exposition.value("landscaped_pool_submitted_total", &[]),
        Some(1.0)
    );
    assert_eq!(
        exposition.value("landscaped_pool_rejected_total", &[]),
        Some(0.0)
    );
    assert!(
        exposition
            .value("landscaped_pool_queue_wait_us_count", &[])
            .is_some(),
        "queue-wait histogram missing"
    );

    // `--pool-metrics off` keeps the exposition byte-compatible with
    // the pre-pool telemetry baseline: no pool family at all.
    let (_handle, mut legacy) = spawn(|cfg| cfg.pool_metrics = false);
    let exposition = scrape(&mut legacy);
    assert!(
        !exposition
            .families
            .iter()
            .any(|f| f.name.starts_with("landscaped_pool_")),
        "pool families leaked into the gated-off exposition"
    );
}

#[test]
fn resync_paths_increment_protocol_errors() {
    let (handle, mut client) = spawn(|_| {});
    // Raw socket: one non-UTF-8 line, then one unparseable line.
    let mut raw = TcpStream::connect(handle.addr()).expect("raw connect");
    raw.write_all(b"\xff\xfe garbage\nNONSENSE VERB\n")
        .expect("write");
    raw.flush().expect("flush");
    let mut buf = [0u8; 512];
    let mut seen = String::new();
    while !seen.contains("ERR unknown_command") {
        let n = raw.read(&mut buf).expect("read");
        assert!(n > 0, "daemon closed before replying: {seen:?}");
        seen.push_str(&String::from_utf8_lossy(&buf[..n]));
    }
    assert!(seen.contains("ERR"), "{seen:?}");
    let metrics = client.request("METRICS").expect("metrics");
    let errors: u64 = metrics
        .iter()
        .find_map(|l| l.strip_prefix("protocol.errors="))
        .expect("protocol.errors")
        .parse()
        .expect("numeric");
    assert_eq!(errors, 2, "{metrics:?}");
}

//! Integration tests for the resident `landscaped` daemon: lifecycle,
//! budgets, shedding, cancellation, epoch snapshots, crash
//! containment (the resident world stays byte-identical through
//! failed queries), and a chaos soak under the adversarial fault
//! profile.

use std::time::Duration;

use hs_landscape::StudyConfig;
use hs_serve::{Client, Daemon, DaemonConfig, DaemonHandle};

/// A daemon provisioned for tests: tiny study, OS-assigned port.
fn spawn(mutate: impl FnOnce(&mut DaemonConfig)) -> (DaemonHandle, Client) {
    let mut cfg = DaemonConfig {
        study: StudyConfig::test_scale(),
        ..DaemonConfig::default()
    };
    mutate(&mut cfg);
    let daemon = Daemon::bind(cfg).expect("bind");
    let handle = daemon.spawn().expect("spawn");
    let client = Client::connect_retry(handle.addr(), Duration::from_secs(10)).expect("connect");
    (handle, client)
}

/// Extracts `key=value` from a reply line.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let prefix = format!("{key}=");
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(prefix.as_str()))
        .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
}

/// The `world=<hex>` hash from a STATUS reply.
fn status_world(client: &mut Client) -> String {
    let reply = client.request("STATUS").expect("status");
    assert_eq!(reply[0], "OK STATUS");
    reply
        .iter()
        .find_map(|l| l.strip_prefix("world="))
        .expect("world line")
        .to_owned()
}

#[test]
fn lifecycle_ping_status_metrics_get() {
    let (_handle, mut client) = spawn(|_| {});
    assert_eq!(client.request("PING").unwrap(), vec!["OK PONG"]);

    let status = client.request("STATUS").unwrap();
    assert_eq!(status[0], "OK STATUS");
    assert!(status.contains(&"epoch=0".to_owned()));
    assert_eq!(status.last().unwrap(), ".");

    let metrics = client.request("METRICS").unwrap();
    assert_eq!(metrics[0], "OK METRICS");
    assert!(metrics.iter().any(|l| l.starts_with("cache.hits=")));
    assert!(metrics.iter().any(|l| l == "queries.started=0"));

    // Bootstrap deposited the resident world: GET setup is a hit and
    // its summary carries the same world hash STATUS reports.
    let world = status_world(&mut client);
    let get = client.request("GET setup").unwrap();
    assert_eq!(get[0], "OK GET setup");
    assert!(get.iter().any(|l| l == &format!("world={world}")));
}

#[test]
fn get_never_built_reports_dependency_chain() {
    let (_handle, mut client) = spawn(|_| {});
    let before: Vec<String> = client
        .request("METRICS")
        .unwrap()
        .into_iter()
        .filter(|l| l.starts_with("cache."))
        .collect();
    // No query ran popularity: the daemon must answer with the typed
    // miss and its dependency closure instead of silently recomputing.
    let reply = client.request("GET popularity").unwrap();
    assert_eq!(
        reply,
        vec!["NOT_BUILT popularity needs=setup,harvest,popularity".to_owned()]
    );
    // Read-only queries (hit or miss) must not skew the recompute
    // cache's statistics.
    let hit = client.request("GET setup").unwrap();
    assert_eq!(hit[0], "OK GET setup");
    let after: Vec<String> = client
        .request("METRICS")
        .unwrap()
        .into_iter()
        .filter(|l| l.starts_with("cache."))
        .collect();
    assert_eq!(before, after, "GET must leave cache counters untouched");
}

#[test]
fn run_setup_is_a_cache_hit_and_preserves_world() {
    let (_handle, mut client) = spawn(|_| {});
    let world = status_world(&mut client);
    let reply = client.request("RUN_UNTIL setup").unwrap();
    assert_eq!(reply[0], "RUNNING id=1");
    let terminal = &reply[1];
    assert!(terminal.starts_with("OK RUN id=1 "), "{terminal}");
    assert_eq!(field(terminal, "ran"), "1");
    assert_eq!(field(terminal, "cached"), "1");
    assert_eq!(field(terminal, "world"), world);
    assert_eq!(status_world(&mut client), world);
}

#[test]
fn expired_wall_deadline_sheds_all_stages_and_world_is_stable() {
    let (_handle, mut client) = spawn(|_| {});
    let world = status_world(&mut client);
    let reply = client.request("RUN_UNTIL all WALL_MS 0").unwrap();
    let terminal = &reply[1];
    assert!(terminal.starts_with("PARTIAL RUN "), "{terminal}");
    assert_eq!(field(terminal, "halt"), "wall_deadline");
    assert_eq!(field(terminal, "ran"), "0");
    assert_eq!(field(terminal, "halted"), "9");
    assert_eq!(field(terminal, "world"), world);
    assert_eq!(
        status_world(&mut client),
        world,
        "halted query mutated the world"
    );

    let metrics = client.request("METRICS").unwrap();
    assert!(metrics.iter().any(|l| l == "queries.partial=1"));
    assert!(metrics.iter().any(|l| l == "queries.completed=0"));
}

#[test]
fn sim_budget_halts_between_stages() {
    let (_handle, mut client) = spawn(|_| {});
    let world = status_world(&mut client);
    // Setup is cached (0 sim-hours); harvest advances far past one
    // hour, so the budget trips at the next stage boundary and
    // port_scan is abandoned — but harvest's artifact is kept.
    let reply = client.request("RUN_UNTIL port_scan SIM_HOURS 1").unwrap();
    let terminal = &reply[1];
    assert!(terminal.starts_with("PARTIAL RUN "), "{terminal}");
    assert_eq!(field(terminal, "halt"), "sim_budget");
    assert_eq!(field(terminal, "world"), world);

    let get = client.request("GET harvest").unwrap();
    assert_eq!(get[0], "OK GET harvest", "{get:?}");
    assert_eq!(
        client.request("GET port_scan").unwrap(),
        vec!["NOT_BUILT port_scan needs=setup,harvest,port_scan".to_owned()]
    );
}

#[test]
fn zero_capacity_admission_sheds_deterministically() {
    let (_handle, mut client) = spawn(|cfg| cfg.max_inflight = 0);
    assert_eq!(
        client.request("RUN_UNTIL setup").unwrap(),
        vec!["BUSY inflight=0 max=0".to_owned()]
    );
    let metrics = client.request("METRICS").unwrap();
    assert!(metrics.iter().any(|l| l == "queries.busy=1"));
    assert!(metrics.iter().any(|l| l == "queries.started=0"));
}

#[test]
fn cancel_unknown_query_is_a_typed_error() {
    let (_handle, mut client) = spawn(|_| {});
    assert_eq!(
        client.request("CANCEL 42").unwrap(),
        vec!["ERR unknown_query: id=42".to_owned()]
    );
}

#[test]
fn cancel_from_second_connection_halts_query_and_world_is_stable() {
    let (handle, mut control) = spawn(|_| {});
    let world = status_world(&mut control);
    let addr = handle.addr();

    let runner = std::thread::spawn(move || {
        let mut client = Client::connect_retry(addr, Duration::from_secs(10)).expect("connect");
        client.request("RUN_UNTIL all").expect("run")
    });

    // The query announced its id before starting work; cancel it from
    // this connection. If it finishes first the cancel just misses —
    // both interleavings must leave the world untouched.
    std::thread::sleep(Duration::from_millis(150));
    let cancel = control.request("CANCEL 1").unwrap();
    let reply = runner.join().expect("runner thread");
    assert_eq!(reply[0], "RUNNING id=1");
    let terminal = &reply[1];
    if cancel == vec!["OK CANCEL id=1".to_owned()] && terminal.starts_with("PARTIAL") {
        assert_eq!(field(terminal, "halt"), "cancelled");
    } else {
        assert!(terminal.starts_with("OK RUN id=1 "), "{terminal}");
    }
    assert_eq!(field(terminal, "world"), world);
    assert_eq!(status_world(&mut control), world);
}

#[test]
fn tick_opens_a_new_epoch_with_a_new_world() {
    let (_handle, mut client) = spawn(|_| {});
    let w0 = status_world(&mut client);
    let tick = client.request("TICK 24").unwrap();
    assert_eq!(tick.len(), 1);
    let line = &tick[0];
    assert!(line.starts_with("OK TICK hours=24 "), "{line}");
    assert_eq!(field(line, "epoch"), "1");
    let w1 = field(line, "world").to_owned();
    assert_ne!(w1, w0, "advancing time must change the world hash");

    let status = client.request("STATUS").unwrap();
    assert!(status.contains(&"epoch=1".to_owned()));
    assert_eq!(status_world(&mut client), w1);

    // The new epoch's resident world is immediately readable.
    let get = client.request("GET setup").unwrap();
    assert!(get.iter().any(|l| l == &format!("world={w1}")));

    // Ticking is deterministic in (seed, hours): a second daemon with
    // the same study reaches the same epoch-1 world hash.
    let (_h2, mut c2) = spawn(|_| {});
    let tick2 = c2.request("TICK 24").unwrap();
    assert_eq!(field(&tick2[0], "world"), w1);
}

#[test]
fn degraded_stage_fails_its_query_only() {
    let (_handle, mut client) = spawn(|cfg| {
        cfg.study
            .apply_fault_profile("adversarial")
            .expect("profile");
    });
    let world = status_world(&mut client);
    // certs is wired to fail permanently under the adversarial
    // profile: the query degrades, the daemon survives, the world is
    // untouched, and the next query works.
    let reply = client.request("RUN_UNTIL certs").unwrap();
    let terminal = &reply[1];
    assert!(terminal.starts_with("PARTIAL RUN "), "{terminal}");
    assert_eq!(field(terminal, "degraded"), "certs");
    assert_eq!(field(terminal, "world"), world);

    let again = client.request("RUN_UNTIL setup").unwrap();
    assert!(again[1].starts_with("OK RUN "), "{:?}", again);
    assert_eq!(status_world(&mut client), world);
}

#[test]
fn concurrent_same_epoch_reads_are_byte_identical() {
    let (handle, mut warm) = spawn(|cfg| cfg.max_inflight = 8);
    // Warm the cache so every thread reads the same artifacts.
    let warmup = warm.request("RUN_UNTIL port_scan").unwrap();
    assert!(warmup[1].starts_with("OK RUN "), "{warmup:?}");

    let addr = handle.addr();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_retry(addr, Duration::from_secs(10)).expect("connect");
                let mut out = Vec::new();
                for req in ["GET setup", "GET harvest", "GET port_scan", "STATUS"] {
                    out.push(client.request(req).expect("request"));
                }
                out
            })
        })
        .collect();
    let replies: Vec<_> = readers
        .into_iter()
        .map(|t| t.join().expect("join"))
        .collect();
    for other in &replies[1..] {
        assert_eq!(
            &replies[0], other,
            "same-epoch reads diverged across connections"
        );
    }
}

/// Chaos soak (robustness tentpole): adversarial fault profile crossed
/// with {1, 2, 8} analysis-wave threads, three concurrent scripted
/// clients each — queries that degrade, shed, miss, and cancel — while
/// the daemon must keep answering, keep the degraded cascade
/// deterministic, and keep the resident world hash byte-stable.
#[test]
fn chaos_soak_under_adversarial_faults() {
    let mut degraded_per_threads: Vec<String> = Vec::new();
    for threads in [1usize, 2, 8] {
        let (handle, mut control) = spawn(|cfg| {
            cfg.study
                .apply_fault_profile("adversarial")
                .expect("profile");
            cfg.wave_threads = threads;
            cfg.max_inflight = 2;
        });
        let world = status_world(&mut control);
        let addr = handle.addr();

        let clients: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client =
                        Client::connect_retry(addr, Duration::from_secs(10)).expect("connect");
                    let script: &[&str] = match i {
                        0 => &["RUN_UNTIL all WALL_MS 0", "GET tracking", "METRICS"],
                        1 => &["RUN_UNTIL certs", "CANCEL 999", "GET certs", "STATUS"],
                        _ => &["RUN_UNTIL port_scan", "GET port_scan", "RUN_UNTIL geomap"],
                    };
                    script
                        .iter()
                        .map(|req| client.request(req).expect("request"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<_> = clients
            .into_iter()
            .map(|t| t.join().expect("join"))
            .collect();

        // Every reply is well-formed: a known verb, never a panic'd
        // connection, and every RUN terminal names this epoch's world.
        for replies in &all {
            for reply in replies {
                let head = &reply[0];
                assert!(
                    head.starts_with("OK ")
                        || head.starts_with("PARTIAL ")
                        || head.starts_with("RUNNING ")
                        || head.starts_with("BUSY ")
                        || head.starts_with("NOT_BUILT ")
                        || head.starts_with("ERR "),
                    "unexpected reply head: {head:?}"
                );
                if head.starts_with("RUNNING ") {
                    assert_eq!(field(&reply[1], "world"), world, "query leaked world state");
                }
            }
        }

        // Degraded cascades are deterministic per thread count: rerun
        // the certs closure on a quiet daemon and compare.
        let rerun = control.request("RUN_UNTIL certs").unwrap();
        let terminal = &rerun[1];
        assert!(terminal.starts_with("PARTIAL RUN "), "{terminal}");
        degraded_per_threads.push(field(terminal, "degraded").to_owned());
        assert_eq!(field(terminal, "world"), world);
        assert_eq!(
            status_world(&mut control),
            world,
            "soak mutated the resident world"
        );
    }
    // The cascade is a property of the fault profile, not of the wave
    // width: all three thread counts must agree.
    assert_eq!(degraded_per_threads[0], degraded_per_threads[1]);
    assert_eq!(degraded_per_threads[1], degraded_per_threads[2]);
}

#[test]
fn malformed_lines_keep_the_connection_usable() {
    let (_handle, mut client) = spawn(|_| {});
    assert_eq!(
        client.request("FLURB").unwrap(),
        vec!["ERR unknown_command: FLURB".to_owned()]
    );
    let oversized = "X".repeat(hs_serve::MAX_LINE + 10);
    let reply = client.request(&oversized).unwrap();
    assert!(reply[0].starts_with("ERR oversized:"), "{reply:?}");
    assert_eq!(client.request("PING").unwrap(), vec!["OK PONG"]);
    let metrics = client.request("METRICS").unwrap();
    assert!(
        metrics.iter().any(|l| l == "protocol.errors=2"),
        "{metrics:?}"
    );
}

#[test]
fn shutdown_stops_the_daemon() {
    let (handle, mut client) = spawn(|_| {});
    assert_eq!(client.request("SHUTDOWN").unwrap(), vec!["OK BYE"]);
    // The serve loop exits; join must complete promptly.
    handle.shutdown();
}

//! Thread-bound soak: the worker pool must keep daemon thread count a
//! function of configuration, not of offered load. Runs in its own
//! test binary so `/proc/self/status` counts only this daemon's
//! threads plus the harness.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use hs_landscape::StudyConfig;
use hs_serve::{Client, Daemon, DaemonConfig};

/// Current thread count of this process, from `/proc/self/status`.
/// `None` when the platform does not expose it (test then skips).
fn thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn concurrent_clients_never_grow_the_pool() {
    let Some(_) = thread_count() else {
        eprintln!("skipping: /proc/self/status not available");
        return;
    };

    const WORKERS: usize = 3;
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 3;

    let cfg = DaemonConfig {
        study: StudyConfig::test_scale(),
        workers: WORKERS,
        pool_queue: 64,
        ..DaemonConfig::default()
    };
    let daemon = Daemon::bind(cfg).expect("bind");
    let handle = daemon.spawn().expect("spawn");
    let addr = handle.addr();

    // Baseline after the daemon (accept loop + workers + any runtime
    // helpers) is up but before any client traffic.
    let baseline = thread_count().expect("baseline threads");

    // Sample the peak thread count while the clients hammer the pool.
    let peak = Arc::new(AtomicU64::new(baseline));
    let stop = Arc::new(AtomicBool::new(false));
    let monitor = {
        let (peak, stop) = (Arc::clone(&peak), Arc::clone(&stop));
        thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                if let Some(n) = thread_count() {
                    peak.fetch_max(n, Ordering::AcqRel);
                }
                thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            thread::spawn(move || {
                for _ in 0..ROUNDS {
                    let mut client =
                        Client::connect_retry(addr, Duration::from_secs(30)).expect("connect");
                    assert_eq!(client.request("PING").unwrap(), vec!["OK PONG"]);
                    let status = client.request("STATUS").unwrap();
                    assert_eq!(status[0], "OK STATUS");
                    let get = client.request("GET setup").unwrap();
                    assert_eq!(get[0], "OK GET setup");
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    stop.store(true, Ordering::Release);
    monitor.join().expect("monitor thread");

    // Every client thread above plus a small scheduling margin. The
    // old thread-per-connection daemon would add ~CLIENTS extra daemon
    // threads on top of the client threads themselves; the pool adds
    // zero (workers are already in the baseline).
    let peak = peak.load(Ordering::Acquire);
    let allowed = baseline + CLIENTS as u64 + 2;
    assert!(
        peak <= allowed,
        "thread count grew with load: baseline={baseline} peak={peak} allowed={allowed}"
    );

    handle.shutdown();
}

//! A small blocking client for the `landscaped` protocol.
//!
//! Knows the reply shapes: single-line commands, multi-line replies
//! terminated by a lone `.`, and `RUN_UNTIL`'s two-phase
//! `RUNNING id=<n>` + terminal line. `GET <stage> FULL` streams the
//! batch CLI's Table/Fig renders under the same `OK GET <stage>` head,
//! so the framing below covers it unchanged. A daemon whose worker
//! pool is saturated answers a single connection-level
//! `BUSY pool workers=<n> queue=<n>` line and closes; callers retry or
//! back off.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// One protocol connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects once.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Connects with retries, for racing a daemon that is still
    /// binding its socket.
    pub fn connect_retry<A: ToSocketAddrs + Copy>(addr: A, budget: Duration) -> io::Result<Self> {
        let deadline = Instant::now() + budget;
        loop {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// Sends one raw request line (no newline).
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads one reply line, newline stripped.
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends a request and collects its complete reply according to
    /// the protocol's framing:
    ///
    /// * `OK STATUS` / `OK METRICS` / `OK TRACE` / `OK GET …` — read
    ///   until `.` (terminator included in the returned lines);
    /// * `RUNNING id=<n>` — one more (terminal) line follows;
    /// * anything else — single line.
    pub fn request(&mut self, line: &str) -> io::Result<Vec<String>> {
        self.send(line)?;
        let first = self.read_line()?;
        let mut reply = vec![first];
        let head = reply[0].clone();
        if head == "OK STATUS"
            || head == "OK METRICS"
            || head == "OK TRACE"
            || head.starts_with("OK GET ")
        {
            loop {
                let line = self.read_line()?;
                let done = line == ".";
                reply.push(line);
                if done {
                    break;
                }
            }
        } else if head.starts_with("RUNNING id=") {
            reply.push(self.read_line()?);
        }
        Ok(reply)
    }
}

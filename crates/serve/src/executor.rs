//! Bounded worker-pool executor for daemon connections.
//!
//! The daemon used to spawn one detached thread per accepted
//! connection: unbounded thread growth under a connection flood, no
//! backpressure signal, and nothing to join on shutdown. This module
//! replaces that with a fixed pool:
//!
//! * **fixed workers** — `workers` threads created up front, so the
//!   daemon's thread count is bounded by configuration, not by load;
//! * **bounded queue** — at most `queue_cap` jobs may wait beyond the
//!   busy workers; [`Executor::submit`] refuses (and drops) the job
//!   once both the pool and the queue are full, so the accept loop can
//!   answer a typed `BUSY` instead of stacking latent work;
//! * **panic isolation** — each job runs under `catch_unwind`, so a
//!   panicking connection kills only that connection (the same
//!   isolation the old thread-per-connection model gave for free) and
//!   is counted in the `pool.panics` family;
//! * **graceful drain** — [`Executor::drain`] closes the queue,
//!   lets workers finish every already-accepted job, and joins them.
//!
//! The pool knows nothing about sockets or the protocol: jobs are
//! plain `FnOnce()` closures. Telemetry flows through [`PoolMetrics`]
//! handles so the daemon can either register the families in its wall
//! registry (default) or keep them detached when a frozen exposition
//! baseline predates the pool plane.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::Instant;

use obs::{WallCounter, WallHistogram, WallRegistry};

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Cloneable handles for the pool's wall-clock telemetry families.
///
/// [`PoolMetrics::registered`] wires them into a [`WallRegistry`] so
/// they appear in `METRICS PROM`; [`PoolMetrics::detached`] keeps
/// them as free-standing atomics (recorded but never rendered), which
/// is how a daemon preserves a pre-pool exposition baseline.
#[derive(Clone, Debug, Default)]
pub struct PoolMetrics {
    /// Jobs accepted into the pool (served or still queued).
    pub submitted: WallCounter,
    /// Jobs whose closure returned (including panicked ones).
    pub completed: WallCounter,
    /// Jobs refused because workers and queue were both full.
    pub rejected: WallCounter,
    /// Jobs whose closure panicked (isolated, worker survived).
    pub panics: WallCounter,
    /// Wall microseconds a job waited between submit and dequeue.
    pub queue_wait_us: WallHistogram,
    /// Busy-worker count observed as each job starts.
    pub depth: WallHistogram,
}

impl PoolMetrics {
    /// Handles registered in `reg`, so every family shows up in the
    /// registry's snapshot (and therefore in the Prometheus render).
    pub fn registered(reg: &WallRegistry) -> Self {
        PoolMetrics {
            submitted: reg.counter("pool.submitted", &[]),
            completed: reg.counter("pool.completed", &[]),
            rejected: reg.counter("pool.rejected", &[]),
            panics: reg.counter("pool.panics", &[]),
            queue_wait_us: reg.histogram("pool.queue_wait_us", &[]),
            depth: reg.histogram("pool.depth", &[]),
        }
    }

    /// Free-standing handles: still recorded, never rendered.
    pub fn detached() -> Self {
        PoolMetrics::default()
    }
}

/// Queue state behind the pool mutex.
struct PoolState {
    queue: VecDeque<(Job, Instant)>,
    busy: usize,
    open: bool,
}

impl std::fmt::Debug for PoolState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolState")
            .field("queued", &self.queue.len())
            .field("busy", &self.busy)
            .field("open", &self.open)
            .finish()
    }
}

#[derive(Debug)]
struct PoolInner {
    state: Mutex<PoolState>,
    work: Condvar,
    metrics: PoolMetrics,
    workers: usize,
    queue_cap: usize,
}

/// Poison-tolerant lock: a panic while holding the pool mutex (jobs
/// run *outside* it, so only a bug in this module could poison it)
/// must not wedge the accept loop.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The fixed worker pool. See the module docs for semantics.
#[derive(Debug)]
pub struct Executor {
    inner: Arc<PoolInner>,
    joins: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Executor {
    /// A pool of `workers` threads (minimum 1) admitting at most
    /// `queue_cap` waiting jobs beyond the busy workers.
    pub fn new(workers: usize, queue_cap: usize, metrics: PoolMetrics) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                busy: 0,
                open: true,
            }),
            work: Condvar::new(),
            metrics,
            workers,
            queue_cap,
        });
        let joins = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("pool-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
            })
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_default();
        Executor {
            inner,
            joins: Mutex::new(joins),
        }
    }

    /// Offers a job. Returns `false` — dropping the job and counting
    /// a rejection — when the pool is closed, or when every worker is
    /// busy and the queue already holds `queue_cap` jobs.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        let mut st = locked(&self.inner.state);
        let full = st.busy >= self.inner.workers && st.queue.len() >= self.inner.queue_cap;
        if !st.open || full {
            drop(st);
            self.inner.metrics.rejected.inc();
            return false;
        }
        st.queue.push_back((Box::new(job), Instant::now()));
        drop(st);
        self.inner.metrics.submitted.inc();
        self.inner.work.notify_one();
        true
    }

    /// Workers currently running a job.
    pub fn busy(&self) -> usize {
        locked(&self.inner.state).busy
    }

    /// Jobs waiting in the queue.
    pub fn queued(&self) -> usize {
        locked(&self.inner.state).queue.len()
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Configured queue bound.
    pub fn queue_cap(&self) -> usize {
        self.inner.queue_cap
    }

    /// Closes the queue, lets workers finish every already-accepted
    /// job, and joins them. Idempotent; later `submit`s are refused.
    pub fn drain(&self) {
        locked(&self.inner.state).open = false;
        self.inner.work.notify_all();
        let joins: Vec<_> = locked(&self.joins).drain(..).collect();
        for join in joins {
            let _ = join.join();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let (job, enqueued_at, depth) = {
            let mut st = locked(&inner.state);
            loop {
                if let Some((job, at)) = st.queue.pop_front() {
                    st.busy += 1;
                    break (job, at, st.busy);
                }
                if !st.open {
                    return;
                }
                st = match inner.work.wait(st) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        inner.metrics.queue_wait_us.observe_since(enqueued_at);
        inner.metrics.depth.observe(depth as u64);
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            inner.metrics.panics.inc();
        }
        locked(&inner.state).busy -= 1;
        inner.metrics.completed.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs_on_fixed_workers() {
        let pool = Executor::new(2, 8, PoolMetrics::detached());
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let ran = Arc::clone(&ran);
            assert!(pool.submit(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.drain();
        assert_eq!(ran.load(Ordering::SeqCst), 10);
        assert_eq!(pool.inner.metrics.submitted.value(), 10);
        assert_eq!(pool.inner.metrics.completed.value(), 10);
        assert_eq!(pool.inner.metrics.rejected.value(), 0);
    }

    #[test]
    fn rejects_when_workers_and_queue_are_full() {
        let pool = Executor::new(1, 0, PoolMetrics::detached());
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        assert!(pool.submit(move || {
            let _ = started_tx.send(());
            let _ = release_rx.recv();
        }));
        started_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("blocker starts");
        // Worker busy, queue bound 0: the next offer must be refused.
        assert!(!pool.submit(|| {}));
        assert_eq!(pool.inner.metrics.rejected.value(), 1);
        drop(release_tx);
        pool.drain();
    }

    #[test]
    fn a_panicking_job_is_isolated_and_counted() {
        let pool = Executor::new(1, 8, PoolMetrics::detached());
        let ran = Arc::new(AtomicUsize::new(0));
        assert!(pool.submit(|| panic!("injected executor test panic")));
        let after = Arc::clone(&ran);
        assert!(pool.submit(move || {
            after.fetch_add(1, Ordering::SeqCst);
        }));
        pool.drain();
        // The single worker survived the panic and served the next job.
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(pool.inner.metrics.panics.value(), 1);
        assert_eq!(pool.inner.metrics.completed.value(), 2);
    }

    #[test]
    fn drain_finishes_queued_jobs_before_exit() {
        let pool = Executor::new(1, 16, PoolMetrics::detached());
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            assert!(pool.submit(move || {
                thread::sleep(Duration::from_millis(2));
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.drain();
        assert_eq!(ran.load(Ordering::SeqCst), 8);
        // The closed pool refuses further work.
        assert!(!pool.submit(|| {}));
    }

    #[test]
    fn depth_and_queue_wait_are_recorded() {
        let pool = Executor::new(2, 8, PoolMetrics::detached());
        for _ in 0..4 {
            assert!(pool.submit(|| thread::sleep(Duration::from_millis(1))));
        }
        pool.drain();
        assert_eq!(pool.inner.metrics.depth.snapshot().count(), 4);
        assert_eq!(pool.inner.metrics.queue_wait_us.snapshot().count(), 4);
    }
}

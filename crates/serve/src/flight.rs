//! Flight recorder: a fixed-size ring of recently completed query
//! records, plus a separate ring pinning the last errors.
//!
//! Every `RUN_UNTIL` query assembles a [`QueryRecord`] — its request
//! line, outcome, and the wall-clock span tree the daemon recorded
//! around parse, admission, the stage attempts and the reply render —
//! and deposits it here. The main ring keeps the most recent
//! [`FlightRecorder::capacity`] records; queries that ended in `ERR`
//! or `PARTIAL` are *also* pinned in a last-errors ring so a burst of
//! healthy traffic cannot flush the evidence of the last failure out
//! of the window. Records are `Arc`-shared between the rings, so
//! pinning costs a pointer.
//!
//! `TRACE <id>` renders one record's span tree as indented text;
//! `TRACE DUMP` exports the whole main ring as one Chrome
//! `trace_event` JSON document (wall clock, one lane per query, lane
//! `tid` = query id) for `chrome://tracing` or Perfetto.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use obs::trace::{Span, TraceEvent};
use obs::{Trace, TraceClock};

/// How a recorded query ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryOutcome {
    /// Full `OK` reply.
    Ok,
    /// `PARTIAL` reply (halted or degraded).
    Partial,
    /// `ERR` reply or internal failure.
    Err,
}

impl QueryOutcome {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            QueryOutcome::Ok => "ok",
            QueryOutcome::Partial => "partial",
            QueryOutcome::Err => "err",
        }
    }

    /// Whether this outcome pins the record in the last-errors ring.
    pub fn is_error(self) -> bool {
        matches!(self, QueryOutcome::Partial | QueryOutcome::Err)
    }
}

/// One completed query's flight record. Spans carry wall-clock
/// intervals in microseconds since the query started; the sim fields
/// are unused (zero) because nothing here may feed a deterministic
/// export.
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// The id announced in the `RUNNING` reply.
    pub id: u64,
    /// The request, re-rendered canonically.
    pub request: String,
    /// How the query ended.
    pub outcome: QueryOutcome,
    /// Completed spans in recording order (parse, admission, stage
    /// attempts, render).
    pub spans: Vec<Span>,
    /// Instant events (cache hits, degradations, halts).
    pub events: Vec<TraceEvent>,
}

impl QueryRecord {
    /// Renders the span tree as indented text for `TRACE <id>`:
    /// one span per line (`name start_us..end_us [args]`), events
    /// appended with an `!` marker. Spans are indented by containment
    /// (a span nests under the most recent span that covers it).
    pub fn render_tree(&self) -> Vec<String> {
        let mut lines = vec![format!(
            "query id={} outcome={} request={:?}",
            self.id,
            self.outcome.name(),
            self.request
        )];
        let mut open: Vec<(u64, u64)> = Vec::new();
        for span in &self.spans {
            let (start, end) = span.wall_us.unwrap_or((0, 0));
            while let Some(&(_, parent_end)) = open.last() {
                if start >= parent_end {
                    open.pop();
                } else {
                    break;
                }
            }
            let indent = "  ".repeat(open.len() + 1);
            let args = if span.args.is_empty() {
                String::new()
            } else {
                let rendered: Vec<String> =
                    span.args.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!(" [{}]", rendered.join(" "))
            };
            lines.push(format!(
                "{indent}{} {}us..{}us{args}",
                span.name, start, end
            ));
            open.push((start, end));
        }
        for event in &self.events {
            let at = event.wall_us.unwrap_or(0);
            let args = if event.args.is_empty() {
                String::new()
            } else {
                let rendered: Vec<String> =
                    event.args.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!(" [{}]", rendered.join(" "))
            };
            lines.push(format!("  !{} {at}us{args}", event.kind.name()));
        }
        lines
    }
}

/// The two rings. Shared across connection threads behind one mutex;
/// record/get/dump are all short critical sections (clone-out, no I/O
/// under the lock).
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<Rings>,
    capacity: usize,
    error_capacity: usize,
}

#[derive(Debug, Default)]
struct Rings {
    recent: VecDeque<Arc<QueryRecord>>,
    errors: VecDeque<Arc<QueryRecord>>,
}

fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` queries and the last
    /// `error_capacity` error/partial queries (each minimum 1).
    pub fn new(capacity: usize, error_capacity: usize) -> Self {
        FlightRecorder {
            inner: Mutex::new(Rings::default()),
            capacity: capacity.max(1),
            error_capacity: error_capacity.max(1),
        }
    }

    /// Deposits one completed query, pinning errors and partials in
    /// the last-errors ring.
    pub fn record(&self, record: QueryRecord) {
        let record = Arc::new(record);
        let mut rings = locked(&self.inner);
        rings.recent.push_back(record.clone());
        while rings.recent.len() > self.capacity {
            rings.recent.pop_front();
        }
        if record.outcome.is_error() {
            rings.errors.push_back(record);
            while rings.errors.len() > self.error_capacity {
                rings.errors.pop_front();
            }
        }
    }

    /// Deposits a synthetic error record for a connection whose pool
    /// job panicked outside any query (query-level panics record
    /// themselves). Uses id 0, which real queries never get, so the
    /// evidence is addressable via `TRACE 0` / `TRACE ERRORS`.
    pub fn record_connection_panic(&self, wall_us: u64) {
        self.record(QueryRecord {
            id: 0,
            request: "<connection panicked>".to_owned(),
            outcome: QueryOutcome::Err,
            spans: vec![Span {
                name: "connection".to_owned(),
                cat: "query",
                sim_start: 0,
                sim_end: 0,
                wall_us: Some((0, wall_us)),
                args: Vec::new(),
            }],
            events: Vec::new(),
        });
    }

    /// The record for a query id, searching the main ring first and
    /// the pinned errors second (so an error stays addressable after
    /// the main ring has moved on).
    pub fn get(&self, id: u64) -> Option<Arc<QueryRecord>> {
        let rings = locked(&self.inner);
        rings
            .recent
            .iter()
            .rev()
            .find(|r| r.id == id)
            .or_else(|| rings.errors.iter().rev().find(|r| r.id == id))
            .cloned()
    }

    /// `(id, outcome, request)` for the pinned error ring, oldest
    /// first.
    pub fn error_summaries(&self) -> Vec<(u64, &'static str, String)> {
        locked(&self.inner)
            .errors
            .iter()
            .map(|r| (r.id, r.outcome.name(), r.request.clone()))
            .collect()
    }

    /// `(main ring occupancy, error ring occupancy)`.
    pub fn occupancy(&self) -> (usize, usize) {
        let rings = locked(&self.inner);
        (rings.recent.len(), rings.errors.len())
    }

    /// Exports the main ring as one wall-clock Chrome trace: a lane
    /// per query, lane `tid` = query id (truncated), lane name carrying
    /// id, outcome and request.
    pub fn dump(&self) -> String {
        let records: Vec<Arc<QueryRecord>> = locked(&self.inner).recent.iter().cloned().collect();
        let mut trace = Trace::new();
        for record in records {
            let mut recorder = obs::SpanRecorder::new();
            for span in &record.spans {
                recorder.span(span.clone());
            }
            for event in &record.events {
                recorder.event(event.clone());
            }
            trace.push_lane(
                record.id as u32,
                &format!(
                    "query {} [{}] {}",
                    record.id,
                    record.outcome.name(),
                    record.request
                ),
                recorder,
            );
        }
        trace.to_chrome_json(TraceClock::Wall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::trace::EventKind;

    fn record(id: u64, outcome: QueryOutcome) -> QueryRecord {
        QueryRecord {
            id,
            request: format!("RUN_UNTIL all ({id})"),
            outcome,
            spans: vec![
                Span {
                    name: "query".to_owned(),
                    cat: "pipeline",
                    sim_start: 0,
                    sim_end: 0,
                    wall_us: Some((0, 100)),
                    args: vec![("id", id)],
                },
                Span {
                    name: "stage:setup".to_owned(),
                    cat: "stage",
                    sim_start: 0,
                    sim_end: 0,
                    wall_us: Some((10, 60)),
                    args: Vec::new(),
                },
            ],
            events: vec![TraceEvent {
                kind: EventKind::Cache,
                sim_at: 0,
                wall_us: Some(12),
                args: vec![("hits", 1)],
            }],
        }
    }

    #[test]
    fn rings_bound_occupancy_and_pin_errors() {
        let fr = FlightRecorder::new(3, 2);
        for id in 0..6 {
            let outcome = if id % 2 == 0 {
                QueryOutcome::Ok
            } else {
                QueryOutcome::Partial
            };
            fr.record(record(id, outcome));
        }
        assert_eq!(fr.occupancy(), (3, 2));
        // Main ring holds 3, 4, 5; errors pin 3 and 5.
        assert!(fr.get(4).is_some());
        assert!(fr.get(0).is_none());
        let errors = fr.error_summaries();
        assert_eq!(
            errors.iter().map(|(id, _, _)| *id).collect::<Vec<_>>(),
            vec![3, 5]
        );
        assert!(errors.iter().all(|(_, outcome, _)| *outcome == "partial"));
    }

    #[test]
    fn pinned_errors_survive_main_ring_churn() {
        let fr = FlightRecorder::new(2, 4);
        fr.record(record(1, QueryOutcome::Err));
        for id in 2..8 {
            fr.record(record(id, QueryOutcome::Ok));
        }
        // Query 1 left the main ring long ago but stays addressable.
        let pinned = fr.get(1).expect("error stays pinned");
        assert_eq!(pinned.outcome, QueryOutcome::Err);
    }

    #[test]
    fn tree_rendering_indents_by_containment() {
        let lines = record(9, QueryOutcome::Ok).render_tree();
        assert!(lines[0].starts_with("query id=9 outcome=ok"));
        assert!(lines[1].starts_with("  query 0us..100us"), "{:?}", lines[1]);
        assert!(
            lines[2].starts_with("    stage:setup 10us..60us"),
            "{:?}",
            lines[2]
        );
        assert!(lines[3].contains("!cache 12us [hits=1]"), "{:?}", lines[3]);
    }

    #[test]
    fn dump_is_valid_wall_clock_chrome_trace() {
        let fr = FlightRecorder::new(4, 2);
        fr.record(record(1, QueryOutcome::Ok));
        fr.record(record(2, QueryOutcome::Partial));
        let json = fr.dump();
        obs::validate_json(&json).expect("dump parses");
        assert!(json.contains("\"query 1 [ok]"), "{json}");
        assert!(json.contains("\"query 2 [partial]"), "{json}");
        // Wall-clock view: spans carry measured timestamps.
        assert!(json.contains("\"ts\": 10, \"dur\": 50"), "{json}");
    }

    #[test]
    fn connection_panics_are_pinned_as_id_zero_errors() {
        let fr = FlightRecorder::new(4, 2);
        fr.record_connection_panic(1234);
        let pinned = fr.get(0).expect("panic record addressable");
        assert_eq!(pinned.outcome, QueryOutcome::Err);
        assert_eq!(pinned.request, "<connection panicked>");
        let errors = fr.error_summaries();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, 0);
    }

    #[test]
    fn empty_dump_still_validates() {
        let fr = FlightRecorder::new(4, 2);
        obs::validate_json(&fr.dump()).expect("empty dump parses");
    }
}

//! `hs-serve` — the resident `landscaped` daemon.
//!
//! Keeps one simulated Tor network ([`tor_sim::network::Network`])
//! resident in memory and serves concurrent *study queries* against it
//! over a newline-delimited TCP protocol: `RUN_UNTIL` executes a
//! pipeline closure with per-query wall-clock and sim-hour budgets,
//! `GET` reads a finished artifact without computing anything, `TICK`
//! advances the world into a new epoch, and `CANCEL` cooperatively
//! aborts a running query from another connection.
//!
//! Robustness properties the daemon guarantees (and the test suite
//! pins):
//!
//! * **Admission control** — at most `max_inflight` queries run at
//!   once; the rest are shed immediately with a typed `BUSY` reply
//!   instead of queueing unboundedly.
//! * **Bounded execution** — connections are served by a fixed
//!   [`executor::Executor`] worker pool with a bounded queue; when
//!   both are full the accept loop sheds a connection-level `BUSY`,
//!   so daemon thread count is a function of configuration, never of
//!   load. `SHUTDOWN` drains the pool gracefully.
//! * **Deadlines and cancellation** — budgets are enforced at stage
//!   boundaries through [`hs_landscape::RunControl`]; an exhausted
//!   query answers `PARTIAL` with the halt reason and keeps every
//!   artifact it finished.
//! * **Crash containment** — a degraded or halted query fails alone.
//!   The resident world lives in immutable [`std::sync::Arc`]'d cache
//!   payloads, so every reply carries the epoch's world state-hash as
//!   proof the query left it byte-identical.
//! * **Snapshot isolation** — each query captures the epoch (world
//!   salt) at admission; a concurrent `TICK` opens a *new* epoch and
//!   never mutates the one in-flight readers see.
//! * **Observability** — a wall-clock telemetry plane (`METRICS PROM`
//!   Prometheus exposition, `STATUS FULL` extensions) and a
//!   [`flight::FlightRecorder`] of per-query span trees (`TRACE <id>`,
//!   `TRACE DUMP` Chrome-trace export, `TRACE ERRORS`), kept strictly
//!   apart from the deterministic sim-clock metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod client;
pub mod daemon;
pub mod executor;
pub mod flight;
pub mod protocol;

pub use client::Client;
pub use daemon::{Daemon, DaemonConfig, DaemonHandle, TickEvery};
pub use executor::{Executor, PoolMetrics};
pub use flight::{FlightRecorder, QueryOutcome, QueryRecord};
pub use protocol::{parse_request, LineReader, ProtocolError, Request, Target, MAX_LINE};

//! The resident daemon: one simulated world, many concurrent queries.
//!
//! # Query lifecycle
//!
//! ```text
//!            RUN_UNTIL line
//!                 │
//!         admission control ──────────────▶ BUSY (shed, typed)
//!                 │ inflight < max
//!            RUNNING id=<n>          (flushed before work starts)
//!                 │
//!        run_controlled(closure)     cancel / deadline checked at
//!                 │                  every stage-attempt boundary
//!     ┌───────────┼───────────────┐
//!     ▼           ▼               ▼
//!  OK RUN     PARTIAL RUN      PARTIAL RUN
//!             halt=<reason>    degraded=<stages>
//! ```
//!
//! Every terminal reply carries `world=<hex>`: the state-hash of the
//! epoch's resident network, recomputed *after* the query. Because
//! queries only read the world through immutable cached payloads, the
//! hash is identical before and after any query — including one that
//! was cancelled, shed, timed out, or whose stage panicked — and the
//! test suite pins exactly that.
//!
//! # Epochs
//!
//! The resident world is the `Setup` payload in the recompute cache,
//! keyed by an epoch salt. `TICK` clones the network, advances
//! simulated time, and publishes the result under the *next* epoch's
//! salt; in-flight queries admitted under the old epoch keep reading
//! the old payload untouched (snapshot isolation by construction).
//!
//! # Telemetry plane
//!
//! All daemon counters live in a wall-clock [`WallRegistry`]
//! ([`Telemetry`]), strictly separate from the deterministic sim-clock
//! metrics inside stage timings. Plain `METRICS` renders the frozen
//! legacy `key=value` lines from the same handles (byte-identical to
//! the pre-telemetry daemon); `METRICS PROM` renders the whole
//! registry — including admission-wait / query-latency / per-stage
//! histograms and scrape-time gauges — as Prometheus text exposition.
//! Each `RUN_UNTIL` additionally records a wall-clock span tree
//! (parse → admission → stage attempts → render) into the
//! [`FlightRecorder`], queryable via `TRACE <id>` / `TRACE DUMP` /
//! `TRACE ERRORS`.

use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hs_landscape::pipeline::{derive_keys, CacheKey};
use hs_landscape::{
    CancelToken, ExecMode, MemoryCache, PipelineRun, RunControl, RunOptions, StageCache, StageId,
    StagePayload, StudyConfig,
};
use obs::trace::{EventKind, Span, TraceEvent};
use obs::{Logger, WallCounter, WallGauge, WallHistogram, WallRegistry};
use wave::mix2;

use crate::flight::{FlightRecorder, QueryOutcome, QueryRecord};
use crate::protocol::{parse_request, LineReader, Request, Target, TraceQuery};

/// Seed-domain tag for epoch salts: `mix2(EPOCH_TAG, epoch_id)`.
const EPOCH_TAG: u64 = 0x6570_6f63_6873_616c;

/// How the daemon is provisioned.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bind address; port 0 asks the OS for a free port.
    pub addr: String,
    /// The study every query runs against (seed, scale, faults).
    pub study: StudyConfig,
    /// Threads for each query's analysis wave.
    pub wave_threads: usize,
    /// Queries allowed to run concurrently before shedding `BUSY`.
    pub max_inflight: usize,
    /// Default wall-clock budget applied when a query names none.
    pub default_wall_ms: Option<u64>,
    /// Default sim-hours budget applied when a query names none.
    pub default_sim_hours: Option<u64>,
    /// Recompute-cache capacity, in payloads.
    pub cache_capacity: usize,
    /// Optional recompute-cache byte budget; evicts oldest payloads by
    /// approximate weight once exceeded.
    pub cache_budget_bytes: Option<u64>,
    /// Flight-recorder main ring capacity (recent queries).
    pub flight_capacity: usize,
    /// Flight-recorder pinned-error ring capacity.
    pub flight_errors: usize,
    /// Stderr logger; `debug` adds one line per connection event.
    pub log: Logger,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_owned(),
            study: StudyConfig::test_scale(),
            wave_threads: 2,
            max_inflight: 4,
            default_wall_ms: None,
            default_sim_hours: None,
            cache_capacity: 32,
            cache_budget_bytes: None,
            flight_capacity: 64,
            flight_errors: 16,
            log: Logger::off(),
        }
    }
}

/// One published world version. Immutable once installed; `TICK`
/// replaces the whole struct.
#[derive(Clone, Copy, Debug)]
struct Epoch {
    id: u64,
    salt: u64,
    sim_time_unix: u64,
    world_hash: u64,
    /// When this epoch was installed (wall clock, telemetry only).
    opened_at: Instant,
}

/// The daemon's wall-clock telemetry plane: one [`WallRegistry`] plus
/// cached handles for the hot-path counters. The legacy `METRICS`
/// reply and the `METRICS PROM` exposition read the *same* handles, so
/// the two views can never disagree.
///
/// Nothing in here may feed a deterministic artifact or baseline —
/// wall values are masked by the telemetry experiment script.
#[derive(Debug)]
struct Telemetry {
    registry: WallRegistry,
    started: WallCounter,
    completed: WallCounter,
    partial: WallCounter,
    busy: WallCounter,
    cancelled: WallCounter,
    ticks: WallCounter,
    protocol_errors: WallCounter,
    inflight: WallGauge,
    admission_wait_us: WallHistogram,
    query_wall_us: WallHistogram,
}

impl Telemetry {
    fn new() -> Self {
        let registry = WallRegistry::new();
        Telemetry {
            started: registry.counter("queries.started", &[]),
            completed: registry.counter("queries.completed", &[]),
            partial: registry.counter("queries.partial", &[]),
            busy: registry.counter("queries.busy", &[]),
            cancelled: registry.counter("queries.cancelled", &[]),
            ticks: registry.counter("ticks", &[]),
            protocol_errors: registry.counter("protocol.errors", &[]),
            inflight: registry.gauge("inflight", &[]),
            admission_wait_us: registry.histogram("admission.wait_us", &[]),
            query_wall_us: registry.histogram("query.wall_us", &[]),
            registry,
        }
    }

    /// Records one executed stage's wall latency under a `stage` label.
    fn observe_stage(&self, stage: StageId, wall_us: u64) {
        self.registry
            .observe("stage.wall_us", &[("stage", stage.name())], wall_us);
    }
}

/// State shared by every connection thread.
#[derive(Debug)]
struct Shared {
    cfg: DaemonConfig,
    pipeline: hs_landscape::pipeline::Pipeline,
    cache: Arc<MemoryCache>,
    epoch: Mutex<Epoch>,
    inflight: AtomicUsize,
    next_id: AtomicU64,
    queries: Mutex<HashMap<u64, CancelToken>>,
    telemetry: Telemetry,
    flight: FlightRecorder,
    started_at: Instant,
    stop: AtomicBool,
}

/// A bound, bootstrapped daemon ready to serve.
#[derive(Debug)]
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Handle to a daemon running on a background thread.
#[derive(Debug)]
pub struct DaemonHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    join: Option<thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Asks the serve loop to stop and joins it.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Poison-tolerant lock: the daemon's shared maps stay usable even if
/// a connection thread panicked while holding one.
fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Microseconds elapsed since `t`, saturated into `u64`.
fn micros_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

impl Daemon {
    /// Binds the listener and bootstraps epoch 0: one controlled
    /// `Setup` run deposits the resident world into the cache.
    pub fn bind(cfg: DaemonConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let pipeline = hs_landscape::pipeline::Pipeline::new(cfg.study.clone());
        let cache = Arc::new(match cfg.cache_budget_bytes {
            Some(budget) => MemoryCache::with_byte_budget(cfg.cache_capacity, budget),
            None => MemoryCache::new(cfg.cache_capacity),
        });
        let salt = mix2(EPOCH_TAG, 0);
        let ctl = RunControl {
            cache: Some(cache.clone() as Arc<dyn StageCache>),
            epoch_salt: salt,
            ..RunControl::default()
        };
        let run = pipeline.run_controlled(
            &[StageId::Setup],
            ExecMode::sequential(),
            RunOptions::default(),
            &ctl,
        );
        let (sim_time_unix, world_hash) = match run.artifacts.extract(StageId::Setup) {
            Some(StagePayload::Setup(bundle)) => {
                (bundle.net.time().unix(), bundle.net.state_hash())
            }
            _ => {
                return Err(io::Error::other(
                    "bootstrap failed: setup produced no artifact",
                ))
            }
        };
        let shared = Arc::new(Shared {
            pipeline,
            cache,
            epoch: Mutex::new(Epoch {
                id: 0,
                salt,
                sim_time_unix,
                world_hash,
                opened_at: Instant::now(),
            }),
            inflight: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            queries: Mutex::new(HashMap::new()),
            telemetry: Telemetry::new(),
            flight: FlightRecorder::new(cfg.flight_capacity, cfg.flight_errors),
            started_at: Instant::now(),
            stop: AtomicBool::new(false),
            cfg,
        });
        Ok(Daemon { listener, shared })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `SHUTDOWN` arrives. Each connection gets its own
    /// thread; a connection thread that panics takes down only its
    /// connection.
    pub fn run(self) -> io::Result<()> {
        let Daemon { listener, shared } = self;
        loop {
            if shared.stop.load(Ordering::Acquire) {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = shared.clone();
                    thread::spawn(move || serve_connection(stream, &shared));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Runs the serve loop on a background thread and returns a handle
    /// that shuts it down on drop.
    pub fn spawn(self) -> io::Result<DaemonHandle> {
        let addr = self.local_addr()?;
        let shared = self.shared.clone();
        let join = thread::spawn(move || {
            let _ = self.run();
        });
        Ok(DaemonHandle {
            addr,
            shared,
            join: Some(join),
        })
    }
}

/// Drives one client connection to EOF or `SHUTDOWN`.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_owned());
    let log = shared.cfg.log;
    log.debug(format_args!("conn {peer}: open"));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader::new(BufReader::new(read_half));
    let mut writer = stream;
    loop {
        let line = match reader.next_line() {
            Ok(Some(Ok(line))) => line,
            Ok(Some(Err(err))) => {
                shared.telemetry.protocol_errors.inc();
                log.debug(format_args!("conn {peer}: framing error ({})", err.reply()));
                if writeln!(writer, "{}", err.reply()).is_err() {
                    return;
                }
                continue;
            }
            Ok(None) | Err(_) => {
                log.debug(format_args!("conn {peer}: close"));
                return;
            }
        };
        let parse_started = Instant::now();
        let request = match parse_request(&line) {
            Ok(req) => req,
            Err(err) => {
                shared.telemetry.protocol_errors.inc();
                log.debug(format_args!("conn {peer}: parse error ({})", err.reply()));
                if writeln!(writer, "{}", err.reply()).is_err() {
                    return;
                }
                continue;
            }
        };
        let parse_us = micros_since(parse_started);
        log.debug(format_args!("conn {peer}: {line}"));
        let done = matches!(request, Request::Shutdown);
        if handle_request(request, parse_us, &peer, shared, &mut writer).is_err() {
            return;
        }
        if done {
            shared.stop.store(true, Ordering::Release);
            log.debug(format_args!("conn {peer}: shutdown"));
            return;
        }
    }
}

/// Executes one parsed request and writes its reply. `parse_us` is the
/// wall time the protocol parser spent on this line; it seeds the
/// flight-recorder span tree for `RUN_UNTIL` queries.
fn handle_request(
    request: Request,
    parse_us: u64,
    peer: &str,
    shared: &Shared,
    w: &mut TcpStream,
) -> io::Result<()> {
    match request {
        Request::Ping => writeln!(w, "OK PONG"),
        Request::Shutdown => writeln!(w, "OK BYE"),
        Request::Status { full } => reply_status(full, shared, w),
        Request::Metrics { prom: false } => reply_metrics(shared, w),
        Request::Metrics { prom: true } => reply_metrics_prom(shared, w),
        Request::Trace(query) => reply_trace(query, shared, w),
        Request::Get { stage } => reply_get(stage, shared, w),
        Request::Cancel { id } => reply_cancel(id, shared, w),
        Request::Tick { hours } => reply_tick(hours, shared, w),
        Request::RunUntil {
            target,
            wall_ms,
            sim_hours,
        } => reply_run(target, wall_ms, sim_hours, parse_us, peer, shared, w),
    }
}

fn reply_status(full: bool, shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    let epoch = *locked(&shared.epoch);
    writeln!(w, "OK STATUS")?;
    writeln!(w, "epoch={}", epoch.id)?;
    writeln!(w, "world={:016x}", epoch.world_hash)?;
    writeln!(w, "sim_time={}", epoch.sim_time_unix)?;
    writeln!(w, "inflight={}", shared.inflight.load(Ordering::Acquire))?;
    writeln!(w, "max_inflight={}", shared.cfg.max_inflight)?;
    writeln!(w, "fingerprint={:016x}", shared.cfg.study.fingerprint())?;
    if full {
        // Telemetry extension: wall-clock ages and occupancy figures.
        // Values with a `_ms` suffix are masked by the experiment
        // script's normalizer; the line *set* is deterministic.
        let cache = shared.cache.counters();
        let (recent, errors) = shared.flight.occupancy();
        writeln!(w, "epoch_age_ms={}", epoch.opened_at.elapsed().as_millis())?;
        writeln!(w, "uptime_ms={}", shared.started_at.elapsed().as_millis())?;
        writeln!(w, "cache.entries={}", cache.entries)?;
        writeln!(w, "cache.resident_bytes={}", cache.resident_bytes)?;
        writeln!(
            w,
            "cache.budget_bytes={}",
            shared
                .cfg
                .cache_budget_bytes
                .map(|b| b.to_string())
                .unwrap_or_else(|| "none".to_owned())
        )?;
        writeln!(w, "flight.recent={recent}")?;
        writeln!(w, "flight.errors={errors}")?;
        writeln!(w, "wave_threads={}", shared.cfg.wave_threads)?;
    }
    writeln!(w, ".")
}

fn reply_metrics(shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    let cache = shared.cache.counters();
    let t = &shared.telemetry;
    writeln!(w, "OK METRICS")?;
    writeln!(w, "cache.hits={}", cache.hits)?;
    writeln!(w, "cache.misses={}", cache.misses)?;
    writeln!(w, "cache.insertions={}", cache.insertions)?;
    writeln!(w, "cache.evictions={}", cache.evictions)?;
    writeln!(w, "cache.entries={}", cache.entries)?;
    writeln!(w, "queries.started={}", t.started.value())?;
    writeln!(w, "queries.completed={}", t.completed.value())?;
    writeln!(w, "queries.partial={}", t.partial.value())?;
    writeln!(w, "queries.busy={}", t.busy.value())?;
    writeln!(w, "queries.cancelled={}", t.cancelled.value())?;
    writeln!(w, "ticks={}", t.ticks.value())?;
    writeln!(w, "protocol.errors={}", t.protocol_errors.value())?;
    writeln!(w, ".")
}

/// `METRICS PROM`: mirrors the scrape-time state (cache counters,
/// inflight, epoch age, ring occupancy) into the registry, then
/// renders the whole thing as Prometheus text exposition.
fn reply_metrics_prom(shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    let t = &shared.telemetry;
    let reg = &t.registry;
    let cache = shared.cache.counters();
    // Cache counters are owned by the cache itself; `store` mirrors
    // the monotonic values into the registry at scrape time so one
    // snapshot covers every family.
    reg.counter("cache.hits", &[]).store(cache.hits);
    reg.counter("cache.misses", &[]).store(cache.misses);
    reg.counter("cache.insertions", &[]).store(cache.insertions);
    reg.counter("cache.evictions", &[]).store(cache.evictions);
    reg.counter("cache.evicted_bytes", &[])
        .store(cache.evicted_bytes);
    reg.gauge("cache.entries", &[]).set(cache.entries as f64);
    reg.gauge("cache.resident_bytes", &[])
        .set(cache.resident_bytes as f64);
    t.inflight
        .set(shared.inflight.load(Ordering::Acquire) as f64);
    reg.gauge("max_inflight", &[])
        .set(shared.cfg.max_inflight as f64);
    let epoch = *locked(&shared.epoch);
    reg.gauge("epoch", &[]).set(epoch.id as f64);
    reg.gauge("epoch.age_seconds", &[])
        .set(epoch.opened_at.elapsed().as_secs_f64());
    reg.gauge("uptime_seconds", &[])
        .set(shared.started_at.elapsed().as_secs_f64());
    let (recent, errors) = shared.flight.occupancy();
    reg.gauge("flight.recent", &[]).set(recent as f64);
    reg.gauge("flight.errors", &[]).set(errors as f64);
    let body = obs::prom::render(&reg.snapshot(), "landscaped");
    writeln!(w, "OK METRICS")?;
    for line in body.lines() {
        writeln!(w, "{line}")?;
    }
    writeln!(w, ".")
}

fn reply_trace(query: TraceQuery, shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    match query {
        TraceQuery::Query(id) => match shared.flight.get(id) {
            Some(record) => {
                writeln!(w, "OK TRACE")?;
                for line in record.render_tree() {
                    writeln!(w, "{line}")?;
                }
                writeln!(w, ".")
            }
            None => writeln!(w, "ERR unknown_trace: id={id}"),
        },
        TraceQuery::Dump => {
            let json = shared.flight.dump();
            writeln!(w, "OK TRACE")?;
            for line in json.lines() {
                writeln!(w, "{line}")?;
            }
            writeln!(w, ".")
        }
        TraceQuery::Errors => {
            writeln!(w, "OK TRACE")?;
            for (id, outcome, request) in shared.flight.error_summaries() {
                writeln!(w, "id={id} outcome={outcome} request={request}")?;
            }
            writeln!(w, ".")
        }
    }
}

/// The current epoch's cache keys, one per stage.
fn epoch_keys(shared: &Shared, salt: u64) -> [CacheKey; 9] {
    derive_keys(shared.cfg.study.seed, shared.cfg.study.fingerprint(), salt)
}

fn reply_get(stage: StageId, shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    let epoch = *locked(&shared.epoch);
    let keys = epoch_keys(shared, epoch.salt);
    // `fetch_uncounted`: a read-only artifact query must not skew the
    // recompute cache's hit/miss statistics.
    match shared.cache.fetch_uncounted(keys[stage as usize]) {
        Some(payload) => {
            writeln!(w, "OK GET {stage}")?;
            for line in summarize(&payload) {
                writeln!(w, "{line}")?;
            }
            writeln!(w, ".")
        }
        None => {
            // Typed miss instead of an implicit (expensive) recompute:
            // name the dependency chain the client would have to run.
            let needs: Vec<&str> = StageId::closure(&[stage])
                .into_iter()
                .map(StageId::name)
                .collect();
            writeln!(w, "NOT_BUILT {stage} needs={}", needs.join(","))
        }
    }
}

/// Deterministic one-per-line key=value summary of a cached artifact.
fn summarize(payload: &StagePayload) -> Vec<String> {
    match payload {
        StagePayload::Setup(b) => vec![
            format!("services={}", b.world.services().len()),
            format!("attacker_guards={}", b.attacker_guards.len()),
            format!("world={:016x}", b.net.state_hash()),
        ],
        StagePayload::Harvest(b) => vec![
            format!("onions={}", b.harvest.onions.len()),
            format!("requests={}", b.harvest.requests.len()),
            format!("waves={}", b.harvest.waves),
        ],
        StagePayload::DeanonWindow(o) => {
            vec![format!("observations={}", o.observations.len())]
        }
        StagePayload::PortScan(r) => vec![
            format!("targets={}", r.targets),
            format!("with_descriptors={}", r.with_descriptors),
            format!(
                "open_ports={}",
                r.open_by_port.values().map(|&n| u64::from(n)).sum::<u64>()
            ),
        ],
        StagePayload::Geomap(r) => vec![
            format!("unique_clients={}", r.unique_clients),
            format!("countries={}", r.geomap.rows().len()),
        ],
        StagePayload::Certs(s) => vec![
            format!("https={}", s.https_destinations),
            format!("self_signed={}", s.self_signed_mismatch),
            format!("clearnet_dns={}", s.clearnet_dns),
        ],
        StagePayload::Crawl(r) => vec![
            format!("attempted={}", r.attempted),
            format!("connected={}", r.connected),
        ],
        StagePayload::Popularity(p) => vec![
            format!("resolved_onions={}", p.resolution.resolved_onions),
            format!("ranked={}", p.ranking.rows().len()),
        ],
        StagePayload::Tracking(t) => vec![format!("years={}", t.years.len())],
    }
}

fn reply_cancel(id: u64, shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    let token = locked(&shared.queries).get(&id).cloned();
    match token {
        Some(token) => {
            token.cancel();
            writeln!(w, "OK CANCEL id={id}")
        }
        None => writeln!(w, "ERR unknown_query: id={id}"),
    }
}

fn reply_tick(hours: u64, shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    // Hold the epoch lock across the whole tick so concurrent ticks
    // serialize; queries admitted meanwhile read the old epoch's
    // immutable payload, which this never touches.
    let mut epoch = locked(&shared.epoch);
    let keys = epoch_keys(shared, epoch.salt);
    let Some(StagePayload::Setup(bundle)) =
        shared.cache.fetch_uncounted(keys[StageId::Setup as usize])
    else {
        return writeln!(
            w,
            "ERR epoch_evicted: epoch {} setup payload no longer cached",
            epoch.id
        );
    };
    let mut net = bundle.net.clone();
    net.advance_hours(hours);
    let next = Epoch {
        id: epoch.id + 1,
        salt: mix2(EPOCH_TAG, epoch.id + 1),
        sim_time_unix: net.time().unix(),
        world_hash: net.state_hash(),
        opened_at: Instant::now(),
    };
    let next_bundle = hs_landscape::pipeline::SetupBundle {
        world: bundle.world.clone(),
        geo: bundle.geo.clone(),
        attacker_guards: bundle.attacker_guards.clone(),
        traffic: bundle.traffic.clone(),
        net,
    };
    let next_keys = epoch_keys(shared, next.salt);
    shared.cache.insert(
        next_keys[StageId::Setup as usize],
        StagePayload::Setup(Arc::new(next_bundle)),
    );
    *epoch = next;
    shared.telemetry.ticks.inc();
    writeln!(
        w,
        "OK TICK hours={hours} epoch={} sim_time={} world={:016x}",
        next.id, next.sim_time_unix, next.world_hash
    )
}

/// Admission, execution, and the terminal reply for `RUN_UNTIL`.
/// Besides the reply, every admitted query leaves a wall-clock span
/// tree (parse → admission → run → stage attempts → render) in the
/// flight recorder.
fn reply_run(
    target: Target,
    wall_ms: Option<u64>,
    sim_hours: Option<u64>,
    parse_us: u64,
    peer: &str,
    shared: &Shared,
    w: &mut TcpStream,
) -> io::Result<()> {
    let t = &shared.telemetry;
    let query_started = Instant::now();
    // Admission control: reserve a slot or shed immediately.
    let mut inflight = shared.inflight.load(Ordering::Acquire);
    loop {
        if inflight >= shared.cfg.max_inflight {
            t.busy.inc();
            t.admission_wait_us.observe(micros_since(query_started));
            return writeln!(
                w,
                "BUSY inflight={inflight} max={}",
                shared.cfg.max_inflight
            );
        }
        match shared.inflight.compare_exchange_weak(
            inflight,
            inflight + 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => break,
            Err(actual) => inflight = actual,
        }
    }
    // All span offsets are micros since parse start; admission and
    // everything after it happened `parse_us` into the query.
    let admitted_at = parse_us + micros_since(query_started);
    t.admission_wait_us.observe(admitted_at - parse_us);

    let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    let token = CancelToken::new();
    locked(&shared.queries).insert(id, token.clone());
    t.started.inc();
    shared.cfg.log.debug(format_args!(
        "conn {peer}: query id={id} target={target} admitted"
    ));

    // Announce the id before doing any work, so a second connection
    // can CANCEL this query while it runs.
    let announced = writeln!(w, "RUNNING id={id}").and_then(|()| w.flush());

    let epoch = *locked(&shared.epoch);
    let wall = wall_ms.or(shared.cfg.default_wall_ms);
    let ctl = RunControl {
        cancel: token.clone(),
        wall_deadline: wall.map(|ms| Instant::now() + Duration::from_millis(ms)),
        sim_budget_hours: sim_hours.or(shared.cfg.default_sim_hours),
        cache: Some(shared.cache.clone() as Arc<dyn StageCache>),
        epoch_salt: epoch.salt,
    };
    let mode = ExecMode::sequential().with_wave_threads(shared.cfg.wave_threads);
    let run_started_at = parse_us + micros_since(query_started);
    let run = shared
        .pipeline
        .run_controlled(&target.stages(), mode, RunOptions::default(), &ctl);
    let run_ended_at = parse_us + micros_since(query_started);

    locked(&shared.queries).remove(&id);
    shared.inflight.fetch_sub(1, Ordering::AcqRel);
    for timing in &run.timings.executed {
        t.observe_stage(
            timing.stage,
            u64::try_from(timing.wall.as_micros()).unwrap_or(u64::MAX),
        );
    }
    announced?;

    // Containment proof: the epoch's resident world, re-hashed after
    // the query. Immutable payloads make this equal to the pre-query
    // hash no matter how the query ended.
    let world_after = match shared
        .cache
        .fetch_uncounted(epoch_keys(shared, epoch.salt)[StageId::Setup as usize])
    {
        Some(StagePayload::Setup(bundle)) => bundle.net.state_hash(),
        _ => epoch.world_hash,
    };
    let render_started_at = parse_us + micros_since(query_started);
    let written = write_run_reply(id, &epoch, world_after, &run, shared, w);
    let total_us = parse_us + micros_since(query_started);
    let outcome = match &written {
        Ok(outcome) => *outcome,
        Err(_) => QueryOutcome::Err,
    };
    t.query_wall_us.observe(total_us);
    shared.flight.record(flight_record(
        id,
        target,
        outcome,
        parse_us,
        admitted_at,
        run_started_at,
        run_ended_at,
        render_started_at,
        total_us,
        &run,
    ));
    shared.cfg.log.debug(format_args!(
        "conn {peer}: query id={id} outcome={} wall_us={total_us}",
        outcome.name()
    ));
    written.map(|_| ())
}

/// Assembles the wall-clock span tree for one completed query. Stage
/// spans are laid out cumulatively inside the `run` span in execution
/// order — an approximation when the analysis wave overlaps stages,
/// exact under sequential execution.
#[allow(clippy::too_many_arguments)]
fn flight_record(
    id: u64,
    target: Target,
    outcome: QueryOutcome,
    parse_us: u64,
    admitted_at: u64,
    run_started_at: u64,
    run_ended_at: u64,
    render_started_at: u64,
    total_us: u64,
    run: &PipelineRun,
) -> QueryRecord {
    let mut spans = Vec::new();
    let mut events = Vec::new();
    let wall_span = |name: String, cat: &'static str, start: u64, end: u64| Span {
        name,
        cat,
        sim_start: 0,
        sim_end: 0,
        wall_us: Some((start, end)),
        args: Vec::new(),
    };
    let mut query_span = wall_span("query".to_owned(), "query", 0, total_us);
    query_span.args.push(("id", id));
    spans.push(query_span);
    spans.push(wall_span("parse".to_owned(), "query", 0, parse_us));
    spans.push(wall_span(
        "admission".to_owned(),
        "query",
        parse_us,
        admitted_at,
    ));
    let mut run_span = wall_span("run".to_owned(), "query", run_started_at, run_ended_at);
    run_span
        .args
        .push(("ran", run.timings.executed.len() as u64));
    spans.push(run_span);
    let mut cursor = run_started_at;
    for timing in &run.timings.executed {
        let wall_us = u64::try_from(timing.wall.as_micros()).unwrap_or(u64::MAX);
        let cached = timing.counter("stage_cache_hit").is_some();
        let mut span = wall_span(
            format!("stage:{}", timing.stage.name()),
            "stage",
            cursor,
            cursor.saturating_add(wall_us),
        );
        if cached {
            span.args.push(("cached", 1));
            events.push(TraceEvent {
                kind: EventKind::Cache,
                sim_at: 0,
                wall_us: Some(cursor),
                args: vec![("stage", timing.stage as u64)],
            });
        }
        spans.push(span);
        cursor = cursor.saturating_add(wall_us);
    }
    for degraded in &run.timings.degraded {
        events.push(TraceEvent {
            kind: EventKind::Degraded,
            sim_at: 0,
            wall_us: Some(run_ended_at),
            args: vec![
                ("stage", degraded.stage as u64),
                ("attempts", u64::from(degraded.attempts)),
            ],
        });
    }
    if run.halt.is_some() {
        events.push(TraceEvent {
            kind: EventKind::Halt,
            sim_at: 0,
            wall_us: Some(run_ended_at),
            args: vec![("halted", run.timings.halted.len() as u64)],
        });
    }
    spans.push(wall_span(
        "render".to_owned(),
        "query",
        render_started_at,
        total_us,
    ));
    QueryRecord {
        id,
        request: format!("RUN_UNTIL {target}"),
        outcome,
        spans,
        events,
    }
}

fn write_run_reply(
    id: u64,
    epoch: &Epoch,
    world_after: u64,
    run: &PipelineRun,
    shared: &Shared,
    w: &mut TcpStream,
) -> io::Result<QueryOutcome> {
    let t = &shared.telemetry;
    let ran = run.timings.executed.len();
    let cached = run
        .timings
        .executed
        .iter()
        .filter(|t| t.counters.iter().any(|&(k, _)| k == "stage_cache_hit"))
        .count();
    let tail = format!(
        "ran={ran} cached={cached} epoch={} world={world_after:016x}",
        epoch.id
    );
    if let Some(halt) = &run.halt {
        if matches!(halt, hs_landscape::Halt::Cancelled) {
            t.cancelled.inc();
        }
        t.partial.inc();
        return writeln!(
            w,
            "PARTIAL RUN id={id} halt={} halted={} {tail}",
            halt.name(),
            run.timings.halted.len()
        )
        .map(|()| QueryOutcome::Partial);
    }
    if !run.timings.degraded.is_empty() {
        let names: Vec<&str> = run
            .timings
            .degraded
            .iter()
            .map(|d| d.stage.name())
            .collect();
        t.partial.inc();
        return writeln!(w, "PARTIAL RUN id={id} degraded={} {tail}", names.join(","))
            .map(|()| QueryOutcome::Partial);
    }
    t.completed.inc();
    writeln!(w, "OK RUN id={id} {tail}").map(|()| QueryOutcome::Ok)
}

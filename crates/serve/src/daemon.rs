//! The resident daemon: one simulated world, many concurrent queries.
//!
//! # Query lifecycle
//!
//! ```text
//!            RUN_UNTIL line
//!                 │
//!         admission control ──────────────▶ BUSY (shed, typed)
//!                 │ inflight < max
//!            RUNNING id=<n>          (flushed before work starts)
//!                 │
//!        run_controlled(closure)     cancel / deadline checked at
//!                 │                  every stage-attempt boundary
//!     ┌───────────┼───────────────┐
//!     ▼           ▼               ▼
//!  OK RUN     PARTIAL RUN      PARTIAL RUN
//!             halt=<reason>    degraded=<stages>
//! ```
//!
//! Every terminal reply carries `world=<hex>`: the state-hash of the
//! epoch's resident network, recomputed *after* the query. Because
//! queries only read the world through immutable cached payloads, the
//! hash is identical before and after any query — including one that
//! was cancelled, shed, timed out, or whose stage panicked — and the
//! test suite pins exactly that.
//!
//! # Epochs
//!
//! The resident world is the `Setup` payload in the recompute cache,
//! keyed by an epoch salt. `TICK` clones the network, advances
//! simulated time, and publishes the result under the *next* epoch's
//! salt; in-flight queries admitted under the old epoch keep reading
//! the old payload untouched (snapshot isolation by construction).

use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hs_landscape::pipeline::{derive_keys, CacheKey};
use hs_landscape::{
    CancelToken, ExecMode, MemoryCache, PipelineRun, RunControl, RunOptions, StageCache, StageId,
    StagePayload, StudyConfig,
};
use wave::mix2;

use crate::protocol::{parse_request, LineReader, Request, Target};

/// Seed-domain tag for epoch salts: `mix2(EPOCH_TAG, epoch_id)`.
const EPOCH_TAG: u64 = 0x6570_6f63_6873_616c;

/// How the daemon is provisioned.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bind address; port 0 asks the OS for a free port.
    pub addr: String,
    /// The study every query runs against (seed, scale, faults).
    pub study: StudyConfig,
    /// Threads for each query's analysis wave.
    pub wave_threads: usize,
    /// Queries allowed to run concurrently before shedding `BUSY`.
    pub max_inflight: usize,
    /// Default wall-clock budget applied when a query names none.
    pub default_wall_ms: Option<u64>,
    /// Default sim-hours budget applied when a query names none.
    pub default_sim_hours: Option<u64>,
    /// Recompute-cache capacity, in payloads.
    pub cache_capacity: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_owned(),
            study: StudyConfig::test_scale(),
            wave_threads: 2,
            max_inflight: 4,
            default_wall_ms: None,
            default_sim_hours: None,
            cache_capacity: 32,
        }
    }
}

/// One published world version. Immutable once installed; `TICK`
/// replaces the whole struct.
#[derive(Clone, Copy, Debug)]
struct Epoch {
    id: u64,
    salt: u64,
    sim_time_unix: u64,
    world_hash: u64,
}

/// Monotonic daemon counters, exported through `METRICS`.
#[derive(Debug, Default)]
struct Counters {
    started: AtomicU64,
    completed: AtomicU64,
    partial: AtomicU64,
    busy: AtomicU64,
    cancelled: AtomicU64,
    ticks: AtomicU64,
    protocol_errors: AtomicU64,
}

/// State shared by every connection thread.
#[derive(Debug)]
struct Shared {
    cfg: DaemonConfig,
    pipeline: hs_landscape::pipeline::Pipeline,
    cache: Arc<MemoryCache>,
    epoch: Mutex<Epoch>,
    inflight: AtomicUsize,
    next_id: AtomicU64,
    queries: Mutex<HashMap<u64, CancelToken>>,
    counters: Counters,
    stop: AtomicBool,
}

/// A bound, bootstrapped daemon ready to serve.
#[derive(Debug)]
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Handle to a daemon running on a background thread.
#[derive(Debug)]
pub struct DaemonHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    join: Option<thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Asks the serve loop to stop and joins it.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Poison-tolerant lock: the daemon's shared maps stay usable even if
/// a connection thread panicked while holding one.
fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Daemon {
    /// Binds the listener and bootstraps epoch 0: one controlled
    /// `Setup` run deposits the resident world into the cache.
    pub fn bind(cfg: DaemonConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let pipeline = hs_landscape::pipeline::Pipeline::new(cfg.study.clone());
        let cache = Arc::new(MemoryCache::new(cfg.cache_capacity));
        let salt = mix2(EPOCH_TAG, 0);
        let ctl = RunControl {
            cache: Some(cache.clone() as Arc<dyn StageCache>),
            epoch_salt: salt,
            ..RunControl::default()
        };
        let run = pipeline.run_controlled(
            &[StageId::Setup],
            ExecMode::sequential(),
            RunOptions::default(),
            &ctl,
        );
        let (sim_time_unix, world_hash) = match run.artifacts.extract(StageId::Setup) {
            Some(StagePayload::Setup(bundle)) => {
                (bundle.net.time().unix(), bundle.net.state_hash())
            }
            _ => {
                return Err(io::Error::other(
                    "bootstrap failed: setup produced no artifact",
                ))
            }
        };
        let shared = Arc::new(Shared {
            pipeline,
            cache,
            epoch: Mutex::new(Epoch {
                id: 0,
                salt,
                sim_time_unix,
                world_hash,
            }),
            inflight: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            queries: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            stop: AtomicBool::new(false),
            cfg,
        });
        Ok(Daemon { listener, shared })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `SHUTDOWN` arrives. Each connection gets its own
    /// thread; a connection thread that panics takes down only its
    /// connection.
    pub fn run(self) -> io::Result<()> {
        let Daemon { listener, shared } = self;
        loop {
            if shared.stop.load(Ordering::Acquire) {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = shared.clone();
                    thread::spawn(move || serve_connection(stream, &shared));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Runs the serve loop on a background thread and returns a handle
    /// that shuts it down on drop.
    pub fn spawn(self) -> io::Result<DaemonHandle> {
        let addr = self.local_addr()?;
        let shared = self.shared.clone();
        let join = thread::spawn(move || {
            let _ = self.run();
        });
        Ok(DaemonHandle {
            addr,
            shared,
            join: Some(join),
        })
    }
}

/// Drives one client connection to EOF or `SHUTDOWN`.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader::new(BufReader::new(read_half));
    let mut writer = stream;
    loop {
        let line = match reader.next_line() {
            Ok(Some(Ok(line))) => line,
            Ok(Some(Err(err))) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                if writeln!(writer, "{}", err.reply()).is_err() {
                    return;
                }
                continue;
            }
            Ok(None) | Err(_) => return,
        };
        let request = match parse_request(&line) {
            Ok(req) => req,
            Err(err) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                if writeln!(writer, "{}", err.reply()).is_err() {
                    return;
                }
                continue;
            }
        };
        let done = matches!(request, Request::Shutdown);
        if handle_request(request, shared, &mut writer).is_err() {
            return;
        }
        if done {
            shared.stop.store(true, Ordering::Release);
            return;
        }
    }
}

/// Executes one parsed request and writes its reply.
fn handle_request(request: Request, shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    match request {
        Request::Ping => writeln!(w, "OK PONG"),
        Request::Shutdown => writeln!(w, "OK BYE"),
        Request::Status => reply_status(shared, w),
        Request::Metrics => reply_metrics(shared, w),
        Request::Get { stage } => reply_get(stage, shared, w),
        Request::Cancel { id } => reply_cancel(id, shared, w),
        Request::Tick { hours } => reply_tick(hours, shared, w),
        Request::RunUntil {
            target,
            wall_ms,
            sim_hours,
        } => reply_run(target, wall_ms, sim_hours, shared, w),
    }
}

fn reply_status(shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    let epoch = *locked(&shared.epoch);
    writeln!(w, "OK STATUS")?;
    writeln!(w, "epoch={}", epoch.id)?;
    writeln!(w, "world={:016x}", epoch.world_hash)?;
    writeln!(w, "sim_time={}", epoch.sim_time_unix)?;
    writeln!(w, "inflight={}", shared.inflight.load(Ordering::Acquire))?;
    writeln!(w, "max_inflight={}", shared.cfg.max_inflight)?;
    writeln!(w, "fingerprint={:016x}", shared.cfg.study.fingerprint())?;
    writeln!(w, ".")
}

fn reply_metrics(shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    let cache = shared.cache.counters();
    let c = &shared.counters;
    writeln!(w, "OK METRICS")?;
    writeln!(w, "cache.hits={}", cache.hits)?;
    writeln!(w, "cache.misses={}", cache.misses)?;
    writeln!(w, "cache.insertions={}", cache.insertions)?;
    writeln!(w, "cache.evictions={}", cache.evictions)?;
    writeln!(w, "cache.entries={}", cache.entries)?;
    writeln!(w, "queries.started={}", c.started.load(Ordering::Relaxed))?;
    writeln!(
        w,
        "queries.completed={}",
        c.completed.load(Ordering::Relaxed)
    )?;
    writeln!(w, "queries.partial={}", c.partial.load(Ordering::Relaxed))?;
    writeln!(w, "queries.busy={}", c.busy.load(Ordering::Relaxed))?;
    writeln!(
        w,
        "queries.cancelled={}",
        c.cancelled.load(Ordering::Relaxed)
    )?;
    writeln!(w, "ticks={}", c.ticks.load(Ordering::Relaxed))?;
    writeln!(
        w,
        "protocol.errors={}",
        c.protocol_errors.load(Ordering::Relaxed)
    )?;
    writeln!(w, ".")
}

/// The current epoch's cache keys, one per stage.
fn epoch_keys(shared: &Shared, salt: u64) -> [CacheKey; 9] {
    derive_keys(shared.cfg.study.seed, shared.cfg.study.fingerprint(), salt)
}

fn reply_get(stage: StageId, shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    let epoch = *locked(&shared.epoch);
    let keys = epoch_keys(shared, epoch.salt);
    // `fetch_uncounted`: a read-only artifact query must not skew the
    // recompute cache's hit/miss statistics.
    match shared.cache.fetch_uncounted(keys[stage as usize]) {
        Some(payload) => {
            writeln!(w, "OK GET {stage}")?;
            for line in summarize(&payload) {
                writeln!(w, "{line}")?;
            }
            writeln!(w, ".")
        }
        None => {
            // Typed miss instead of an implicit (expensive) recompute:
            // name the dependency chain the client would have to run.
            let needs: Vec<&str> = StageId::closure(&[stage])
                .into_iter()
                .map(StageId::name)
                .collect();
            writeln!(w, "NOT_BUILT {stage} needs={}", needs.join(","))
        }
    }
}

/// Deterministic one-per-line key=value summary of a cached artifact.
fn summarize(payload: &StagePayload) -> Vec<String> {
    match payload {
        StagePayload::Setup(b) => vec![
            format!("services={}", b.world.services().len()),
            format!("attacker_guards={}", b.attacker_guards.len()),
            format!("world={:016x}", b.net.state_hash()),
        ],
        StagePayload::Harvest(b) => vec![
            format!("onions={}", b.harvest.onions.len()),
            format!("requests={}", b.harvest.requests.len()),
            format!("waves={}", b.harvest.waves),
        ],
        StagePayload::DeanonWindow(o) => {
            vec![format!("observations={}", o.observations.len())]
        }
        StagePayload::PortScan(r) => vec![
            format!("targets={}", r.targets),
            format!("with_descriptors={}", r.with_descriptors),
            format!(
                "open_ports={}",
                r.open_by_port.values().map(|&n| u64::from(n)).sum::<u64>()
            ),
        ],
        StagePayload::Geomap(r) => vec![
            format!("unique_clients={}", r.unique_clients),
            format!("countries={}", r.geomap.rows().len()),
        ],
        StagePayload::Certs(s) => vec![
            format!("https={}", s.https_destinations),
            format!("self_signed={}", s.self_signed_mismatch),
            format!("clearnet_dns={}", s.clearnet_dns),
        ],
        StagePayload::Crawl(r) => vec![
            format!("attempted={}", r.attempted),
            format!("connected={}", r.connected),
        ],
        StagePayload::Popularity(p) => vec![
            format!("resolved_onions={}", p.resolution.resolved_onions),
            format!("ranked={}", p.ranking.rows().len()),
        ],
        StagePayload::Tracking(t) => vec![format!("years={}", t.years.len())],
    }
}

fn reply_cancel(id: u64, shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    let token = locked(&shared.queries).get(&id).cloned();
    match token {
        Some(token) => {
            token.cancel();
            writeln!(w, "OK CANCEL id={id}")
        }
        None => writeln!(w, "ERR unknown_query: id={id}"),
    }
}

fn reply_tick(hours: u64, shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    // Hold the epoch lock across the whole tick so concurrent ticks
    // serialize; queries admitted meanwhile read the old epoch's
    // immutable payload, which this never touches.
    let mut epoch = locked(&shared.epoch);
    let keys = epoch_keys(shared, epoch.salt);
    let Some(StagePayload::Setup(bundle)) =
        shared.cache.fetch_uncounted(keys[StageId::Setup as usize])
    else {
        return writeln!(
            w,
            "ERR epoch_evicted: epoch {} setup payload no longer cached",
            epoch.id
        );
    };
    let mut net = bundle.net.clone();
    net.advance_hours(hours);
    let next = Epoch {
        id: epoch.id + 1,
        salt: mix2(EPOCH_TAG, epoch.id + 1),
        sim_time_unix: net.time().unix(),
        world_hash: net.state_hash(),
    };
    let next_bundle = hs_landscape::pipeline::SetupBundle {
        world: bundle.world.clone(),
        geo: bundle.geo.clone(),
        attacker_guards: bundle.attacker_guards.clone(),
        traffic: bundle.traffic.clone(),
        net,
    };
    let next_keys = epoch_keys(shared, next.salt);
    shared.cache.insert(
        next_keys[StageId::Setup as usize],
        StagePayload::Setup(Arc::new(next_bundle)),
    );
    *epoch = next;
    shared.counters.ticks.fetch_add(1, Ordering::Relaxed);
    writeln!(
        w,
        "OK TICK hours={hours} epoch={} sim_time={} world={:016x}",
        next.id, next.sim_time_unix, next.world_hash
    )
}

/// Admission, execution, and the terminal reply for `RUN_UNTIL`.
fn reply_run(
    target: Target,
    wall_ms: Option<u64>,
    sim_hours: Option<u64>,
    shared: &Shared,
    w: &mut TcpStream,
) -> io::Result<()> {
    // Admission control: reserve a slot or shed immediately.
    let mut inflight = shared.inflight.load(Ordering::Acquire);
    loop {
        if inflight >= shared.cfg.max_inflight {
            shared.counters.busy.fetch_add(1, Ordering::Relaxed);
            return writeln!(
                w,
                "BUSY inflight={inflight} max={}",
                shared.cfg.max_inflight
            );
        }
        match shared.inflight.compare_exchange_weak(
            inflight,
            inflight + 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => break,
            Err(actual) => inflight = actual,
        }
    }

    let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    let token = CancelToken::new();
    locked(&shared.queries).insert(id, token.clone());
    shared.counters.started.fetch_add(1, Ordering::Relaxed);

    // Announce the id before doing any work, so a second connection
    // can CANCEL this query while it runs.
    let announced = writeln!(w, "RUNNING id={id}").and_then(|()| w.flush());

    let epoch = *locked(&shared.epoch);
    let wall = wall_ms.or(shared.cfg.default_wall_ms);
    let ctl = RunControl {
        cancel: token.clone(),
        wall_deadline: wall.map(|ms| Instant::now() + Duration::from_millis(ms)),
        sim_budget_hours: sim_hours.or(shared.cfg.default_sim_hours),
        cache: Some(shared.cache.clone() as Arc<dyn StageCache>),
        epoch_salt: epoch.salt,
    };
    let mode = ExecMode::sequential().with_wave_threads(shared.cfg.wave_threads);
    let run = shared
        .pipeline
        .run_controlled(&target.stages(), mode, RunOptions::default(), &ctl);

    locked(&shared.queries).remove(&id);
    shared.inflight.fetch_sub(1, Ordering::AcqRel);
    announced?;

    // Containment proof: the epoch's resident world, re-hashed after
    // the query. Immutable payloads make this equal to the pre-query
    // hash no matter how the query ended.
    let world_after = match shared
        .cache
        .fetch_uncounted(epoch_keys(shared, epoch.salt)[StageId::Setup as usize])
    {
        Some(StagePayload::Setup(bundle)) => bundle.net.state_hash(),
        _ => epoch.world_hash,
    };
    write_run_reply(id, &epoch, world_after, &run, shared, w)
}

fn write_run_reply(
    id: u64,
    epoch: &Epoch,
    world_after: u64,
    run: &PipelineRun,
    shared: &Shared,
    w: &mut TcpStream,
) -> io::Result<()> {
    let ran = run.timings.executed.len();
    let cached = run
        .timings
        .executed
        .iter()
        .filter(|t| t.counters.iter().any(|&(k, _)| k == "stage_cache_hit"))
        .count();
    let tail = format!(
        "ran={ran} cached={cached} epoch={} world={world_after:016x}",
        epoch.id
    );
    if let Some(halt) = &run.halt {
        if matches!(halt, hs_landscape::Halt::Cancelled) {
            shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        shared.counters.partial.fetch_add(1, Ordering::Relaxed);
        return writeln!(
            w,
            "PARTIAL RUN id={id} halt={} halted={} {tail}",
            halt.name(),
            run.timings.halted.len()
        );
    }
    if !run.timings.degraded.is_empty() {
        let names: Vec<&str> = run
            .timings
            .degraded
            .iter()
            .map(|d| d.stage.name())
            .collect();
        shared.counters.partial.fetch_add(1, Ordering::Relaxed);
        return writeln!(w, "PARTIAL RUN id={id} degraded={} {tail}", names.join(","));
    }
    shared.counters.completed.fetch_add(1, Ordering::Relaxed);
    writeln!(w, "OK RUN id={id} {tail}")
}

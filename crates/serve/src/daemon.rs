//! The resident daemon: one simulated world, many concurrent queries.
//!
//! # Query lifecycle
//!
//! ```text
//!            RUN_UNTIL line
//!                 │
//!         admission control ──────────────▶ BUSY (shed, typed)
//!                 │ inflight < max
//!            RUNNING id=<n>          (flushed before work starts)
//!                 │
//!        run_controlled(closure)     cancel / deadline checked at
//!                 │                  every stage-attempt boundary
//!     ┌───────────┼───────────────┐
//!     ▼           ▼               ▼
//!  OK RUN     PARTIAL RUN      PARTIAL RUN
//!             halt=<reason>    degraded=<stages>
//! ```
//!
//! Every terminal reply carries `world=<hex>`: the state-hash of the
//! epoch's resident network, recomputed *after* the query. Because
//! queries only read the world through immutable cached payloads, the
//! hash is identical before and after any query — including one that
//! was cancelled, shed, timed out, or whose stage panicked — and the
//! test suite pins exactly that.
//!
//! # Epochs
//!
//! The resident world is the `Setup` payload in the recompute cache,
//! keyed by an epoch salt. `TICK` clones the network, advances
//! simulated time, and publishes the result under the *next* epoch's
//! salt; in-flight queries admitted under the old epoch keep reading
//! the old payload untouched (snapshot isolation by construction).
//!
//! # Telemetry plane
//!
//! All daemon counters live in a wall-clock [`WallRegistry`]
//! ([`Telemetry`]), strictly separate from the deterministic sim-clock
//! metrics inside stage timings. Plain `METRICS` renders the frozen
//! legacy `key=value` lines from the same handles (byte-identical to
//! the pre-telemetry daemon); `METRICS PROM` renders the whole
//! registry — including admission-wait / query-latency / per-stage
//! histograms and scrape-time gauges — as Prometheus text exposition.
//! Each `RUN_UNTIL` additionally records a wall-clock span tree
//! (parse → admission → stage attempts → render) into the
//! [`FlightRecorder`], queryable via `TRACE <id>` / `TRACE DUMP` /
//! `TRACE ERRORS`.

use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hs_landscape::pipeline::{derive_keys, CacheKey};
use hs_landscape::{
    CancelToken, ExecMode, MemoryCache, PipelineRun, RunControl, RunOptions, StageCache, StageId,
    StagePayload, StudyConfig,
};
use obs::trace::{EventKind, Span, TraceEvent};
use obs::{Logger, WallCounter, WallGauge, WallHistogram, WallRegistry};
use wave::mix2;

use crate::executor::{Executor, PoolMetrics};
use crate::flight::{FlightRecorder, QueryOutcome, QueryRecord};
use crate::protocol::{parse_request, LineReader, Request, Target, TraceQuery};

/// Seed-domain tag for epoch salts: `mix2(EPOCH_TAG, epoch_id)`.
const EPOCH_TAG: u64 = 0x6570_6f63_6873_616c;

/// How long an idle connection read blocks before the worker rechecks
/// the stop flag — the upper bound on how long a parked connection can
/// delay a graceful drain.
const READ_TICK: Duration = Duration::from_millis(100);

/// Background epoch-ticker cadence: advance the resident world by
/// `sim_hours` every `wall_ms` of wall time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TickEvery {
    /// Simulated hours each tick advances (same range as `TICK`).
    pub sim_hours: u64,
    /// Wall milliseconds between ticks.
    pub wall_ms: u64,
}

/// How the daemon is provisioned.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bind address; port 0 asks the OS for a free port.
    pub addr: String,
    /// The study every query runs against (seed, scale, faults).
    pub study: StudyConfig,
    /// Threads for each query's analysis wave.
    pub wave_threads: usize,
    /// Queries allowed to run concurrently before shedding `BUSY`.
    pub max_inflight: usize,
    /// Default wall-clock budget applied when a query names none.
    pub default_wall_ms: Option<u64>,
    /// Default sim-hours budget applied when a query names none.
    pub default_sim_hours: Option<u64>,
    /// Recompute-cache capacity, in payloads.
    pub cache_capacity: usize,
    /// Optional recompute-cache byte budget; evicts oldest payloads by
    /// approximate weight once exceeded.
    pub cache_budget_bytes: Option<u64>,
    /// Flight-recorder main ring capacity (recent queries).
    pub flight_capacity: usize,
    /// Flight-recorder pinned-error ring capacity.
    pub flight_errors: usize,
    /// Worker threads in the connection pool (minimum 1).
    pub workers: usize,
    /// Connections allowed to wait beyond the busy workers before the
    /// accept loop sheds a connection-level `BUSY`.
    pub pool_queue: usize,
    /// Whether the pool's telemetry families are registered in the
    /// wall registry (and therefore rendered by `METRICS PROM`).
    /// Disable to reproduce a pre-pool exposition byte-for-byte.
    pub pool_metrics: bool,
    /// Optional background ticker publishing a new epoch on a cadence.
    pub tick_every: Option<TickEvery>,
    /// Test-only chaos hook: the first admitted `RUN_UNTIL` panics
    /// after announcing `RUNNING`, exercising slot-release on unwind.
    pub chaos_panic_once: bool,
    /// Test-only chaos hook: every tick holds the epoch-build section
    /// (serialized on the tick mutex, *outside* the epoch mutex) for
    /// this many wall milliseconds, widening the window concurrency
    /// tests probe.
    pub chaos_tick_hold_ms: u64,
    /// Stderr logger; `debug` adds one line per connection event.
    pub log: Logger,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_owned(),
            study: StudyConfig::test_scale(),
            wave_threads: 2,
            max_inflight: 4,
            default_wall_ms: None,
            default_sim_hours: None,
            cache_capacity: 32,
            cache_budget_bytes: None,
            flight_capacity: 64,
            flight_errors: 16,
            workers: 4,
            pool_queue: 16,
            pool_metrics: true,
            tick_every: None,
            chaos_panic_once: false,
            chaos_tick_hold_ms: 0,
            log: Logger::off(),
        }
    }
}

/// One published world version. Immutable once installed; `TICK`
/// replaces the whole struct.
#[derive(Clone, Copy, Debug)]
struct Epoch {
    id: u64,
    salt: u64,
    sim_time_unix: u64,
    world_hash: u64,
    /// When this epoch was installed (wall clock, telemetry only).
    opened_at: Instant,
}

/// The daemon's wall-clock telemetry plane: one [`WallRegistry`] plus
/// cached handles for the hot-path counters. The legacy `METRICS`
/// reply and the `METRICS PROM` exposition read the *same* handles, so
/// the two views can never disagree.
///
/// Nothing in here may feed a deterministic artifact or baseline —
/// wall values are masked by the telemetry experiment script.
#[derive(Debug)]
struct Telemetry {
    registry: WallRegistry,
    started: WallCounter,
    completed: WallCounter,
    partial: WallCounter,
    busy: WallCounter,
    cancelled: WallCounter,
    ticks: WallCounter,
    protocol_errors: WallCounter,
    inflight: WallGauge,
    admission_wait_us: WallHistogram,
    query_wall_us: WallHistogram,
}

impl Telemetry {
    fn new() -> Self {
        let registry = WallRegistry::new();
        Telemetry {
            started: registry.counter("queries.started", &[]),
            completed: registry.counter("queries.completed", &[]),
            partial: registry.counter("queries.partial", &[]),
            busy: registry.counter("queries.busy", &[]),
            cancelled: registry.counter("queries.cancelled", &[]),
            ticks: registry.counter("ticks", &[]),
            protocol_errors: registry.counter("protocol.errors", &[]),
            inflight: registry.gauge("inflight", &[]),
            admission_wait_us: registry.histogram("admission.wait_us", &[]),
            query_wall_us: registry.histogram("query.wall_us", &[]),
            registry,
        }
    }

    /// Records one executed stage's wall latency under a `stage` label.
    fn observe_stage(&self, stage: StageId, wall_us: u64) {
        self.registry
            .observe("stage.wall_us", &[("stage", stage.name())], wall_us);
    }
}

/// State shared by every pool worker.
#[derive(Debug)]
struct Shared {
    cfg: DaemonConfig,
    pipeline: hs_landscape::pipeline::Pipeline,
    cache: Arc<MemoryCache>,
    epoch: Mutex<Epoch>,
    /// Serializes epoch advances (manual `TICK` and the background
    /// ticker) without ever blocking epoch *readers*: the expensive
    /// next-epoch build happens under this mutex only, and the `epoch`
    /// mutex above is taken just for the brief read and final swap.
    tick: Mutex<()>,
    pool: Arc<Executor>,
    /// The bound address, used to self-connect and wake a blocking
    /// `accept` when the stop flag flips.
    addr: SocketAddr,
    inflight: AtomicUsize,
    next_id: AtomicU64,
    queries: Mutex<HashMap<u64, CancelToken>>,
    telemetry: Telemetry,
    flight: FlightRecorder,
    started_at: Instant,
    stop: AtomicBool,
    /// Armed copy of [`DaemonConfig::chaos_panic_once`]; the first
    /// admitted query consumes it.
    chaos_panic_run: AtomicBool,
}

/// Unblocks a listener parked in `accept` by completing one throwaway
/// connection to it. Best-effort: if the listener is already gone the
/// connect simply fails.
fn wake_accept(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
}

/// A bound, bootstrapped daemon ready to serve.
#[derive(Debug)]
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Handle to a daemon running on a background thread.
#[derive(Debug)]
pub struct DaemonHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    join: Option<thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Asks the serve loop to stop, wakes the blocking accept, and
    /// joins the drained serve thread.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        wake_accept(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        wake_accept(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Poison-tolerant lock: the daemon's shared maps stay usable even if
/// a connection thread panicked while holding one.
fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Microseconds elapsed since `t`, saturated into `u64`.
fn micros_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

impl Daemon {
    /// Binds the listener and bootstraps epoch 0: one controlled
    /// `Setup` run deposits the resident world into the cache.
    pub fn bind(cfg: DaemonConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let pipeline = hs_landscape::pipeline::Pipeline::new(cfg.study.clone());
        let cache = Arc::new(match cfg.cache_budget_bytes {
            Some(budget) => MemoryCache::with_byte_budget(cfg.cache_capacity, budget),
            None => MemoryCache::new(cfg.cache_capacity),
        });
        let salt = mix2(EPOCH_TAG, 0);
        // Pin epoch 0's Setup key before the bootstrap run deposits
        // it: the resident world must never be byte-budget-evicted, or
        // every later TICK would answer `ERR epoch_evicted`.
        let keys = derive_keys(cfg.study.seed, cfg.study.fingerprint(), salt);
        cache.pin(keys[StageId::Setup as usize]);
        let ctl = RunControl {
            cache: Some(cache.clone() as Arc<dyn StageCache>),
            epoch_salt: salt,
            ..RunControl::default()
        };
        let run = pipeline.run_controlled(
            &[StageId::Setup],
            ExecMode::sequential(),
            RunOptions::default(),
            &ctl,
        );
        let (sim_time_unix, world_hash) = match run.artifacts.extract(StageId::Setup) {
            Some(StagePayload::Setup(bundle)) => {
                (bundle.net.time().unix(), bundle.net.state_hash())
            }
            _ => {
                return Err(io::Error::other(
                    "bootstrap failed: setup produced no artifact",
                ))
            }
        };
        let telemetry = Telemetry::new();
        let pool_metrics = if cfg.pool_metrics {
            PoolMetrics::registered(&telemetry.registry)
        } else {
            PoolMetrics::detached()
        };
        let pool = Arc::new(Executor::new(cfg.workers, cfg.pool_queue, pool_metrics));
        let shared = Arc::new(Shared {
            pipeline,
            cache,
            epoch: Mutex::new(Epoch {
                id: 0,
                salt,
                sim_time_unix,
                world_hash,
                opened_at: Instant::now(),
            }),
            tick: Mutex::new(()),
            pool,
            addr,
            inflight: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            queries: Mutex::new(HashMap::new()),
            telemetry,
            flight: FlightRecorder::new(cfg.flight_capacity, cfg.flight_errors),
            started_at: Instant::now(),
            stop: AtomicBool::new(false),
            chaos_panic_run: AtomicBool::new(cfg.chaos_panic_once),
            cfg,
        });
        Ok(Daemon { listener, shared })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `SHUTDOWN` arrives. Connections are dispatched to
    /// the bounded worker pool; when both the pool and its queue are
    /// full the accept loop answers a typed connection-level `BUSY`
    /// and closes. A connection job that panics takes down only its
    /// connection (the pool's `catch_unwind` wrapper isolates it).
    ///
    /// On stop the loop cancels in-flight queries, drains the pool
    /// (every accepted connection finishes its current request), and
    /// joins the background ticker, so returning means quiescent.
    pub fn run(self) -> io::Result<()> {
        let Daemon { listener, shared } = self;
        let ticker = shared.cfg.tick_every.map(|every| {
            let shared = shared.clone();
            thread::spawn(move || ticker_loop(&shared, every))
        });
        let served = loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if shared.stop.load(Ordering::Acquire) {
                        break Ok(());
                    }
                    dispatch_connection(stream, &shared);
                }
                Err(e) => {
                    if shared.stop.load(Ordering::Acquire) {
                        break Ok(());
                    }
                    break Err(e);
                }
            }
        };
        drop(listener);
        // Graceful drain: wake parked queries so workers can observe
        // the stop flag at the next stage boundary, then let every
        // already-accepted connection finish its current request.
        for token in locked(&shared.queries).values() {
            token.cancel();
        }
        shared.pool.drain();
        if let Some(join) = ticker {
            let _ = join.join();
        }
        served
    }

    /// Runs the serve loop on a background thread and returns a handle
    /// that shuts it down on drop.
    pub fn spawn(self) -> io::Result<DaemonHandle> {
        let addr = self.local_addr()?;
        let shared = self.shared.clone();
        let join = thread::spawn(move || {
            let _ = self.run();
        });
        Ok(DaemonHandle {
            addr,
            shared,
            join: Some(join),
        })
    }
}

/// Offers one accepted connection to the worker pool, shedding a typed
/// connection-level `BUSY` (distinct from the query-level admission
/// `BUSY`) when the pool and its queue are both full.
fn dispatch_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // Kept outside the job closure so a refusal can still answer.
    let Ok(mut reject_handle) = stream.try_clone() else {
        return;
    };
    let job_shared = shared.clone();
    let accepted = shared.pool.submit(move || {
        let opened = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| serve_connection(stream, &job_shared)));
        if let Err(payload) = outcome {
            // Leave evidence: the pool isolates the panic, but a
            // silently vanished connection is undebuggable.
            job_shared
                .flight
                .record_connection_panic(micros_since(opened));
            job_shared
                .cfg
                .log
                .debug(format_args!("conn: worker job panicked"));
            // Re-raise so the pool's wrapper counts it in pool.panics.
            resume_unwind(payload);
        }
    });
    if !accepted {
        let pool = &shared.pool;
        let _ = writeln!(
            reject_handle,
            "BUSY pool workers={} queue={}",
            pool.workers(),
            pool.queue_cap()
        );
        shared.telemetry.busy.inc();
        shared.cfg.log.debug(format_args!("conn: shed (pool full)"));
    }
}

/// Background epoch ticker: advances the resident world by
/// `every.sim_hours` each `every.wall_ms`, reusing the exact `TICK`
/// path (same salts, same snapshot isolation) so manually ticked and
/// ticker-driven daemons publish identical epoch sequences.
fn ticker_loop(shared: &Shared, every: TickEvery) {
    let period = Duration::from_millis(every.wall_ms.max(1));
    let mut next = Instant::now() + period;
    while !shared.stop.load(Ordering::Acquire) {
        let now = Instant::now();
        if now < next {
            // Sleep in short slices so shutdown never waits a period.
            thread::sleep((next - now).min(Duration::from_millis(20)));
            continue;
        }
        match advance_epoch(shared, every.sim_hours) {
            Ok(epoch) => shared.cfg.log.debug(format_args!(
                "ticker: epoch {} sim_time={} world={:016x}",
                epoch.id, epoch.sim_time_unix, epoch.world_hash
            )),
            Err(TickError::Evicted { epoch }) => shared.cfg.log.debug(format_args!(
                "ticker: epoch {epoch} setup payload evicted, tick skipped"
            )),
        }
        next = Instant::now() + period;
    }
}

/// Drives one client connection to EOF or `SHUTDOWN`.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    // Bounded reads so a parked worker can observe the stop flag and
    // release itself during a drain.
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_owned());
    let log = shared.cfg.log;
    log.debug(format_args!("conn {peer}: open"));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader::new(BufReader::new(read_half));
    let mut writer = stream;
    loop {
        let line = match reader.next_line_until(&mut || shared.stop.load(Ordering::Acquire)) {
            Ok(Some(Ok(line))) => line,
            Ok(Some(Err(err))) => {
                shared.telemetry.protocol_errors.inc();
                log.debug(format_args!("conn {peer}: framing error ({})", err.reply()));
                if writeln!(writer, "{}", err.reply()).is_err() {
                    return;
                }
                continue;
            }
            Ok(None) | Err(_) => {
                log.debug(format_args!("conn {peer}: close"));
                return;
            }
        };
        let parse_started = Instant::now();
        let request = match parse_request(&line) {
            Ok(req) => req,
            Err(err) => {
                shared.telemetry.protocol_errors.inc();
                log.debug(format_args!("conn {peer}: parse error ({})", err.reply()));
                if writeln!(writer, "{}", err.reply()).is_err() {
                    return;
                }
                continue;
            }
        };
        let parse_us = micros_since(parse_started);
        log.debug(format_args!("conn {peer}: {line}"));
        let done = matches!(request, Request::Shutdown);
        if handle_request(request, parse_us, &peer, shared, &mut writer).is_err() {
            return;
        }
        if done {
            shared.stop.store(true, Ordering::Release);
            wake_accept(shared.addr);
            log.debug(format_args!("conn {peer}: shutdown"));
            return;
        }
        if shared.stop.load(Ordering::Acquire) {
            // Draining: finish the request just served, then close so
            // the worker can retire.
            log.debug(format_args!("conn {peer}: close (drain)"));
            return;
        }
    }
}

/// Executes one parsed request and writes its reply. `parse_us` is the
/// wall time the protocol parser spent on this line; it seeds the
/// flight-recorder span tree for `RUN_UNTIL` queries.
fn handle_request(
    request: Request,
    parse_us: u64,
    peer: &str,
    shared: &Shared,
    w: &mut TcpStream,
) -> io::Result<()> {
    match request {
        Request::Ping => writeln!(w, "OK PONG"),
        Request::Shutdown => writeln!(w, "OK BYE"),
        Request::Status { full } => reply_status(full, shared, w),
        Request::Metrics { prom: false } => reply_metrics(shared, w),
        Request::Metrics { prom: true } => reply_metrics_prom(shared, w),
        Request::Trace(query) => reply_trace(query, shared, w),
        Request::Get { stage, full } => reply_get(stage, full, shared, w),
        Request::Cancel { id } => reply_cancel(id, shared, w),
        Request::Tick { hours } => reply_tick(hours, shared, w),
        Request::RunUntil {
            target,
            wall_ms,
            sim_hours,
        } => reply_run(target, wall_ms, sim_hours, parse_us, peer, shared, w),
    }
}

fn reply_status(full: bool, shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    let epoch = *locked(&shared.epoch);
    writeln!(w, "OK STATUS")?;
    writeln!(w, "epoch={}", epoch.id)?;
    writeln!(w, "world={:016x}", epoch.world_hash)?;
    writeln!(w, "sim_time={}", epoch.sim_time_unix)?;
    writeln!(w, "inflight={}", shared.inflight.load(Ordering::Acquire))?;
    writeln!(w, "max_inflight={}", shared.cfg.max_inflight)?;
    writeln!(w, "fingerprint={:016x}", shared.cfg.study.fingerprint())?;
    if full {
        // Telemetry extension: wall-clock ages and occupancy figures.
        // Values with a `_ms` suffix are masked by the experiment
        // script's normalizer; the line *set* is deterministic.
        let cache = shared.cache.counters();
        let (recent, errors) = shared.flight.occupancy();
        writeln!(w, "epoch_age_ms={}", epoch.opened_at.elapsed().as_millis())?;
        writeln!(w, "uptime_ms={}", shared.started_at.elapsed().as_millis())?;
        writeln!(w, "cache.entries={}", cache.entries)?;
        writeln!(w, "cache.resident_bytes={}", cache.resident_bytes)?;
        writeln!(
            w,
            "cache.budget_bytes={}",
            shared
                .cfg
                .cache_budget_bytes
                .map(|b| b.to_string())
                .unwrap_or_else(|| "none".to_owned())
        )?;
        writeln!(w, "flight.recent={recent}")?;
        writeln!(w, "flight.errors={errors}")?;
        writeln!(w, "wave_threads={}", shared.cfg.wave_threads)?;
    }
    writeln!(w, ".")
}

fn reply_metrics(shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    let cache = shared.cache.counters();
    let t = &shared.telemetry;
    writeln!(w, "OK METRICS")?;
    writeln!(w, "cache.hits={}", cache.hits)?;
    writeln!(w, "cache.misses={}", cache.misses)?;
    writeln!(w, "cache.insertions={}", cache.insertions)?;
    writeln!(w, "cache.evictions={}", cache.evictions)?;
    writeln!(w, "cache.entries={}", cache.entries)?;
    writeln!(w, "queries.started={}", t.started.value())?;
    writeln!(w, "queries.completed={}", t.completed.value())?;
    writeln!(w, "queries.partial={}", t.partial.value())?;
    writeln!(w, "queries.busy={}", t.busy.value())?;
    writeln!(w, "queries.cancelled={}", t.cancelled.value())?;
    writeln!(w, "ticks={}", t.ticks.value())?;
    writeln!(w, "protocol.errors={}", t.protocol_errors.value())?;
    writeln!(w, ".")
}

/// `METRICS PROM`: mirrors the scrape-time state (cache counters,
/// inflight, epoch age, ring occupancy) into the registry, then
/// renders the whole thing as Prometheus text exposition.
fn reply_metrics_prom(shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    let t = &shared.telemetry;
    let reg = &t.registry;
    let cache = shared.cache.counters();
    // Cache counters are owned by the cache itself; `store` mirrors
    // the monotonic values into the registry at scrape time so one
    // snapshot covers every family.
    reg.counter("cache.hits", &[]).store(cache.hits);
    reg.counter("cache.misses", &[]).store(cache.misses);
    reg.counter("cache.insertions", &[]).store(cache.insertions);
    reg.counter("cache.evictions", &[]).store(cache.evictions);
    reg.counter("cache.evicted_bytes", &[])
        .store(cache.evicted_bytes);
    reg.gauge("cache.entries", &[]).set(cache.entries as f64);
    reg.gauge("cache.resident_bytes", &[])
        .set(cache.resident_bytes as f64);
    t.inflight
        .set(shared.inflight.load(Ordering::Acquire) as f64);
    reg.gauge("max_inflight", &[])
        .set(shared.cfg.max_inflight as f64);
    let epoch = *locked(&shared.epoch);
    reg.gauge("epoch", &[]).set(epoch.id as f64);
    reg.gauge("epoch.age_seconds", &[])
        .set(epoch.opened_at.elapsed().as_secs_f64());
    reg.gauge("uptime_seconds", &[])
        .set(shared.started_at.elapsed().as_secs_f64());
    let (recent, errors) = shared.flight.occupancy();
    reg.gauge("flight.recent", &[]).set(recent as f64);
    reg.gauge("flight.errors", &[]).set(errors as f64);
    if shared.cfg.pool_metrics {
        // Pool occupancy gauges mirror the executor at scrape time;
        // the counter/histogram families are registered by the
        // executor itself. Gated so a pre-pool exposition baseline
        // stays reproducible with `pool_metrics` off.
        let pool = &shared.pool;
        reg.gauge("pool.workers", &[]).set(pool.workers() as f64);
        reg.gauge("pool.busy", &[]).set(pool.busy() as f64);
        reg.gauge("pool.queued", &[]).set(pool.queued() as f64);
        reg.gauge("pool.queue_cap", &[])
            .set(pool.queue_cap() as f64);
    }
    let body = obs::prom::render(&reg.snapshot(), "landscaped");
    writeln!(w, "OK METRICS")?;
    for line in body.lines() {
        writeln!(w, "{line}")?;
    }
    writeln!(w, ".")
}

fn reply_trace(query: TraceQuery, shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    match query {
        TraceQuery::Query(id) => match shared.flight.get(id) {
            Some(record) => {
                writeln!(w, "OK TRACE")?;
                for line in record.render_tree() {
                    writeln!(w, "{line}")?;
                }
                writeln!(w, ".")
            }
            None => writeln!(w, "ERR unknown_trace: id={id}"),
        },
        TraceQuery::Dump => {
            let json = shared.flight.dump();
            writeln!(w, "OK TRACE")?;
            for line in json.lines() {
                writeln!(w, "{line}")?;
            }
            writeln!(w, ".")
        }
        TraceQuery::Errors => {
            writeln!(w, "OK TRACE")?;
            for (id, outcome, request) in shared.flight.error_summaries() {
                writeln!(w, "id={id} outcome={outcome} request={request}")?;
            }
            writeln!(w, ".")
        }
    }
}

/// The current epoch's cache keys, one per stage.
fn epoch_keys(shared: &Shared, salt: u64) -> [CacheKey; 9] {
    derive_keys(shared.cfg.study.seed, shared.cfg.study.fingerprint(), salt)
}

fn reply_get(stage: StageId, full: bool, shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    let epoch = *locked(&shared.epoch);
    let keys = epoch_keys(shared, epoch.salt);
    // `fetch_uncounted`: a read-only artifact query must not skew the
    // recompute cache's hit/miss statistics.
    match shared.cache.fetch_uncounted(keys[stage as usize]) {
        Some(payload) => {
            writeln!(w, "OK GET {stage}")?;
            let lines = if full {
                render_full(&payload)
            } else {
                summarize(&payload)
            };
            for line in lines {
                writeln!(w, "{line}")?;
            }
            writeln!(w, ".")
        }
        None => {
            // Typed miss instead of an implicit (expensive) recompute:
            // name the dependency chain the client would have to run.
            let needs: Vec<&str> = StageId::closure(&[stage])
                .into_iter()
                .map(StageId::name)
                .collect();
            writeln!(w, "NOT_BUILT {stage} needs={}", needs.join(","))
        }
    }
}

/// Deterministic one-per-line key=value summary of a cached artifact.
fn summarize(payload: &StagePayload) -> Vec<String> {
    match payload {
        StagePayload::Setup(b) => vec![
            format!("services={}", b.world.services().len()),
            format!("attacker_guards={}", b.attacker_guards.len()),
            format!("world={:016x}", b.net.state_hash()),
        ],
        StagePayload::Harvest(b) => vec![
            format!("onions={}", b.harvest.onions.len()),
            format!("requests={}", b.harvest.requests.len()),
            format!("waves={}", b.harvest.waves),
        ],
        StagePayload::DeanonWindow(o) => {
            vec![format!("observations={}", o.observations.len())]
        }
        StagePayload::PortScan(r) => vec![
            format!("targets={}", r.targets),
            format!("with_descriptors={}", r.with_descriptors),
            format!(
                "open_ports={}",
                r.open_by_port.values().map(|&n| u64::from(n)).sum::<u64>()
            ),
        ],
        StagePayload::Geomap(r) => vec![
            format!("unique_clients={}", r.unique_clients),
            format!("countries={}", r.geomap.rows().len()),
        ],
        StagePayload::Certs(s) => vec![
            format!("https={}", s.https_destinations),
            format!("self_signed={}", s.self_signed_mismatch),
            format!("clearnet_dns={}", s.clearnet_dns),
        ],
        StagePayload::Crawl(r) => vec![
            format!("attempted={}", r.attempted),
            format!("connected={}", r.connected),
        ],
        StagePayload::Popularity(p) => vec![
            format!("resolved_onions={}", p.resolution.resolved_onions),
            format!("ranked={}", p.ranking.rows().len()),
        ],
        StagePayload::Tracking(t) => vec![format!("years={}", t.years.len())],
    }
}

/// `GET <stage> FULL`: the same Table/Fig renders the batch CLI
/// prints for this stage, streamed line by line. Stages with no batch
/// render (the sim-bundle payloads: setup, harvest, deanon window)
/// fall back to the deterministic summary. No render emits a lone `.`
/// line, so the multi-line framing is safe.
fn render_full(payload: &StagePayload) -> Vec<String> {
    use hs_landscape::report;
    let blocks = match payload {
        StagePayload::PortScan(r) => vec![report::render_fig1(r)],
        StagePayload::Crawl(r) => vec![
            report::render_table1(r),
            report::render_funnel_and_languages(r),
            report::render_fig2(r),
        ],
        StagePayload::Popularity(p) => {
            let mut blocks = vec![
                report::render_table2(&p.ranking, 30),
                report::render_sec5(&p.resolution, p.requested_published_share),
            ];
            if let Some(sketch) = &p.sketch {
                blocks.push(report::render_sketch(sketch));
            }
            blocks
        }
        StagePayload::Certs(s) => vec![report::render_certs(s)],
        StagePayload::Geomap(r) => vec![report::render_fig3(r)],
        StagePayload::Tracking(t) => vec![report::render_tracking(t)],
        other => return summarize(other),
    };
    blocks
        .iter()
        .flat_map(|block| block.lines().map(str::to_owned))
        .collect()
}

fn reply_cancel(id: u64, shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    let token = locked(&shared.queries).get(&id).cloned();
    match token {
        Some(token) => {
            token.cancel();
            writeln!(w, "OK CANCEL id={id}")
        }
        None => writeln!(w, "ERR unknown_query: id={id}"),
    }
}

/// Why an epoch advance could not happen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TickError {
    /// The resident epoch's Setup payload was not in the cache. With
    /// the pin installed at bind/swap this is unreachable, but the
    /// typed reply stays as a safety net.
    Evicted {
        /// The epoch whose payload was missing.
        epoch: u64,
    },
}

/// Advances the resident world by `hours` and publishes the next
/// epoch. Shared by `TICK` and the background ticker.
///
/// Locking: concurrent advances serialize on the dedicated `tick`
/// mutex. The `epoch` mutex — which `STATUS`, `METRICS PROM`, `GET`
/// and admission all take — is held only for the initial copy-out and
/// the final swap, never across the expensive clone, advance, and
/// rebuild, so readers proceed during a long tick. The tick mutex
/// makes the copy/swap pair atomic: nothing else mutates the epoch.
fn advance_epoch(shared: &Shared, hours: u64) -> Result<Epoch, TickError> {
    let _serialize = locked(&shared.tick);
    let epoch = *locked(&shared.epoch);
    let keys = epoch_keys(shared, epoch.salt);
    let Some(StagePayload::Setup(bundle)) =
        shared.cache.fetch_uncounted(keys[StageId::Setup as usize])
    else {
        return Err(TickError::Evicted { epoch: epoch.id });
    };
    if shared.cfg.chaos_tick_hold_ms > 0 {
        // Chaos hook: stretch the build section so concurrency tests
        // can prove readers are not blocked during it.
        thread::sleep(Duration::from_millis(shared.cfg.chaos_tick_hold_ms));
    }
    let mut net = bundle.net.clone();
    net.advance_hours(hours);
    let next = Epoch {
        id: epoch.id + 1,
        salt: mix2(EPOCH_TAG, epoch.id + 1),
        sim_time_unix: net.time().unix(),
        world_hash: net.state_hash(),
        opened_at: Instant::now(),
    };
    let next_bundle = hs_landscape::pipeline::SetupBundle {
        world: bundle.world.clone(),
        geo: bundle.geo.clone(),
        attacker_guards: bundle.attacker_guards.clone(),
        traffic: bundle.traffic.clone(),
        net,
    };
    let next_keys = epoch_keys(shared, next.salt);
    // Pin-before-insert so no concurrent insert can evict the next
    // epoch's payload in the gap; both epochs stay pinned until the
    // swap lands, then the old one becomes evictable again.
    shared.cache.pin(next_keys[StageId::Setup as usize]);
    shared.cache.insert(
        next_keys[StageId::Setup as usize],
        StagePayload::Setup(Arc::new(next_bundle)),
    );
    *locked(&shared.epoch) = next;
    shared.cache.unpin(keys[StageId::Setup as usize]);
    shared.telemetry.ticks.inc();
    Ok(next)
}

fn reply_tick(hours: u64, shared: &Shared, w: &mut TcpStream) -> io::Result<()> {
    match advance_epoch(shared, hours) {
        Ok(next) => writeln!(
            w,
            "OK TICK hours={hours} epoch={} sim_time={} world={:016x}",
            next.id, next.sim_time_unix, next.world_hash
        ),
        Err(TickError::Evicted { epoch }) => writeln!(
            w,
            "ERR epoch_evicted: epoch {epoch} setup payload no longer cached"
        ),
    }
}

/// RAII admission slot: releases the inflight reservation and the
/// `queries`-map cancel token when dropped — including on unwind, so
/// a stage panic escaping `run_controlled` can no longer leak its
/// slot and wedge the daemon into shedding `BUSY` forever.
#[derive(Debug)]
struct SlotGuard<'a> {
    shared: &'a Shared,
    id: u64,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        locked(&self.shared.queries).remove(&self.id);
        self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Admission, execution, and the terminal reply for `RUN_UNTIL`.
/// Besides the reply, every admitted query leaves a wall-clock span
/// tree (parse → admission → run → stage attempts → render) in the
/// flight recorder.
fn reply_run(
    target: Target,
    wall_ms: Option<u64>,
    sim_hours: Option<u64>,
    parse_us: u64,
    peer: &str,
    shared: &Shared,
    w: &mut TcpStream,
) -> io::Result<()> {
    let t = &shared.telemetry;
    let query_started = Instant::now();
    // Admission control: reserve a slot or shed immediately.
    let mut inflight = shared.inflight.load(Ordering::Acquire);
    loop {
        if inflight >= shared.cfg.max_inflight {
            t.busy.inc();
            t.admission_wait_us.observe(micros_since(query_started));
            return writeln!(
                w,
                "BUSY inflight={inflight} max={}",
                shared.cfg.max_inflight
            );
        }
        match shared.inflight.compare_exchange_weak(
            inflight,
            inflight + 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => break,
            Err(actual) => inflight = actual,
        }
    }
    // All span offsets are micros since parse start; admission and
    // everything after it happened `parse_us` into the query.
    let admitted_at = parse_us + micros_since(query_started);
    t.admission_wait_us.observe(admitted_at - parse_us);

    let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    let token = CancelToken::new();
    locked(&shared.queries).insert(id, token.clone());
    // From here the reserved slot and the queries entry are released
    // by the guard's Drop on *every* exit path, panics included.
    let slot = SlotGuard { shared, id };
    t.started.inc();
    shared.cfg.log.debug(format_args!(
        "conn {peer}: query id={id} target={target} admitted"
    ));

    // Announce the id before doing any work, so a second connection
    // can CANCEL this query while it runs.
    let announced = writeln!(w, "RUNNING id={id}").and_then(|()| w.flush());

    if shared.chaos_panic_run.swap(false, Ordering::AcqRel) {
        // Chaos hook: simulate a panic escaping the run path (e.g. a
        // poisoned analysis scope) after the slot is held.
        panic!("chaos: injected panic after admission (query id={id})");
    }

    let epoch = *locked(&shared.epoch);
    let wall = wall_ms.or(shared.cfg.default_wall_ms);
    let ctl = RunControl {
        cancel: token.clone(),
        wall_deadline: wall.map(|ms| Instant::now() + Duration::from_millis(ms)),
        sim_budget_hours: sim_hours.or(shared.cfg.default_sim_hours),
        cache: Some(shared.cache.clone() as Arc<dyn StageCache>),
        epoch_salt: epoch.salt,
    };
    let mode = ExecMode::sequential().with_wave_threads(shared.cfg.wave_threads);
    let run_started_at = parse_us + micros_since(query_started);
    let run = shared
        .pipeline
        .run_controlled(&target.stages(), mode, RunOptions::default(), &ctl);
    let run_ended_at = parse_us + micros_since(query_started);

    // Release the slot at the same point the pre-guard code did, so
    // admission capacity frees before the reply renders.
    drop(slot);
    for timing in &run.timings.executed {
        t.observe_stage(
            timing.stage,
            u64::try_from(timing.wall.as_micros()).unwrap_or(u64::MAX),
        );
    }
    announced?;

    // Containment proof: the epoch's resident world, re-hashed after
    // the query. Immutable payloads make this equal to the pre-query
    // hash no matter how the query ended.
    let world_after = match shared
        .cache
        .fetch_uncounted(epoch_keys(shared, epoch.salt)[StageId::Setup as usize])
    {
        Some(StagePayload::Setup(bundle)) => bundle.net.state_hash(),
        _ => epoch.world_hash,
    };
    let render_started_at = parse_us + micros_since(query_started);
    let written = write_run_reply(id, &epoch, world_after, &run, shared, w);
    let total_us = parse_us + micros_since(query_started);
    let outcome = match &written {
        Ok(outcome) => *outcome,
        Err(_) => QueryOutcome::Err,
    };
    t.query_wall_us.observe(total_us);
    shared.flight.record(flight_record(
        id,
        target,
        outcome,
        parse_us,
        admitted_at,
        run_started_at,
        run_ended_at,
        render_started_at,
        total_us,
        &run,
    ));
    shared.cfg.log.debug(format_args!(
        "conn {peer}: query id={id} outcome={} wall_us={total_us}",
        outcome.name()
    ));
    written.map(|_| ())
}

/// Assembles the wall-clock span tree for one completed query. Stage
/// spans are laid out cumulatively inside the `run` span in execution
/// order — an approximation when the analysis wave overlaps stages,
/// exact under sequential execution.
#[allow(clippy::too_many_arguments)]
fn flight_record(
    id: u64,
    target: Target,
    outcome: QueryOutcome,
    parse_us: u64,
    admitted_at: u64,
    run_started_at: u64,
    run_ended_at: u64,
    render_started_at: u64,
    total_us: u64,
    run: &PipelineRun,
) -> QueryRecord {
    let mut spans = Vec::new();
    let mut events = Vec::new();
    let wall_span = |name: String, cat: &'static str, start: u64, end: u64| Span {
        name,
        cat,
        sim_start: 0,
        sim_end: 0,
        wall_us: Some((start, end)),
        args: Vec::new(),
    };
    let mut query_span = wall_span("query".to_owned(), "query", 0, total_us);
    query_span.args.push(("id", id));
    spans.push(query_span);
    spans.push(wall_span("parse".to_owned(), "query", 0, parse_us));
    spans.push(wall_span(
        "admission".to_owned(),
        "query",
        parse_us,
        admitted_at,
    ));
    let mut run_span = wall_span("run".to_owned(), "query", run_started_at, run_ended_at);
    run_span
        .args
        .push(("ran", run.timings.executed.len() as u64));
    spans.push(run_span);
    let mut cursor = run_started_at;
    for timing in &run.timings.executed {
        let wall_us = u64::try_from(timing.wall.as_micros()).unwrap_or(u64::MAX);
        let cached = timing.counter("stage_cache_hit").is_some();
        let mut span = wall_span(
            format!("stage:{}", timing.stage.name()),
            "stage",
            cursor,
            cursor.saturating_add(wall_us),
        );
        if cached {
            span.args.push(("cached", 1));
            events.push(TraceEvent {
                kind: EventKind::Cache,
                sim_at: 0,
                wall_us: Some(cursor),
                args: vec![("stage", timing.stage as u64)],
            });
        }
        spans.push(span);
        cursor = cursor.saturating_add(wall_us);
    }
    for degraded in &run.timings.degraded {
        events.push(TraceEvent {
            kind: EventKind::Degraded,
            sim_at: 0,
            wall_us: Some(run_ended_at),
            args: vec![
                ("stage", degraded.stage as u64),
                ("attempts", u64::from(degraded.attempts)),
            ],
        });
    }
    if run.halt.is_some() {
        events.push(TraceEvent {
            kind: EventKind::Halt,
            sim_at: 0,
            wall_us: Some(run_ended_at),
            args: vec![("halted", run.timings.halted.len() as u64)],
        });
    }
    spans.push(wall_span(
        "render".to_owned(),
        "query",
        render_started_at,
        total_us,
    ));
    QueryRecord {
        id,
        request: format!("RUN_UNTIL {target}"),
        outcome,
        spans,
        events,
    }
}

fn write_run_reply(
    id: u64,
    epoch: &Epoch,
    world_after: u64,
    run: &PipelineRun,
    shared: &Shared,
    w: &mut TcpStream,
) -> io::Result<QueryOutcome> {
    let t = &shared.telemetry;
    let ran = run.timings.executed.len();
    let cached = run
        .timings
        .executed
        .iter()
        .filter(|t| t.counters.iter().any(|&(k, _)| k == "stage_cache_hit"))
        .count();
    let tail = format!(
        "ran={ran} cached={cached} epoch={} world={world_after:016x}",
        epoch.id
    );
    if let Some(halt) = &run.halt {
        if matches!(halt, hs_landscape::Halt::Cancelled) {
            t.cancelled.inc();
        }
        t.partial.inc();
        return writeln!(
            w,
            "PARTIAL RUN id={id} halt={} halted={} {tail}",
            halt.name(),
            run.timings.halted.len()
        )
        .map(|()| QueryOutcome::Partial);
    }
    if !run.timings.degraded.is_empty() {
        let names: Vec<&str> = run
            .timings
            .degraded
            .iter()
            .map(|d| d.stage.name())
            .collect();
        t.partial.inc();
        return writeln!(w, "PARTIAL RUN id={id} degraded={} {tail}", names.join(","))
            .map(|()| QueryOutcome::Partial);
    }
    t.completed.inc();
    writeln!(w, "OK RUN id={id} {tail}").map(|()| QueryOutcome::Ok)
}

//! The `landscaped` line protocol: request parsing and framing.
//!
//! One request per line, ASCII, space-separated, newline-terminated:
//!
//! ```text
//! PING
//! STATUS [FULL]
//! METRICS [PROM]
//! TRACE <id>|DUMP|ERRORS
//! RUN_UNTIL <stage|all> [WALL_MS <n>] [SIM_HOURS <n>]
//! GET <stage> [FULL]
//! CANCEL <id>
//! TICK <hours>
//! SHUTDOWN
//! ```
//!
//! Replies are single lines except `STATUS`, `METRICS`, `TRACE` and a
//! `GET` hit, which send a status line, payload lines, and a lone `.`
//! terminator. `RUN_UNTIL` replies twice: `RUNNING id=<n>` immediately
//! (so the client can `CANCEL` from another connection), then the
//! final `OK`/`PARTIAL`/`ERROR` line when the query settles.
//!
//! The plain `STATUS` and `METRICS` replies are frozen (the committed
//! daemon transcript pins them byte-for-byte); the telemetry plane
//! extends the protocol only through the new `STATUS FULL`,
//! `METRICS PROM` and `TRACE` forms.
//!
//! Malformed input never kills a connection: every parse failure maps
//! to a typed [`ProtocolError`] the daemon renders as a single `ERR
//! <code>: <detail>` line, after which the stream is back in sync at
//! the next newline. Lines over [`MAX_LINE`] bytes are drained and
//! rejected without buffering them; non-UTF-8 lines are rejected the
//! same way.

use std::fmt;
use std::io::{self, BufRead};

use hs_landscape::StageId;

/// Upper bound on an accepted request line, in bytes (newline
/// excluded). Longer lines are drained from the stream and answered
/// with a typed error, so an abusive client cannot make the daemon
/// buffer unbounded input.
pub const MAX_LINE: usize = 4096;

/// What a query should run: the full pipeline or one stage's closure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Target {
    /// Every stage (`RUN_UNTIL all`).
    All,
    /// One stage and its dependency closure.
    Stage(StageId),
}

impl Target {
    /// The stages handed to the engine.
    pub fn stages(self) -> Vec<StageId> {
        match self {
            Target::All => StageId::ALL.to_vec(),
            Target::Stage(s) => vec![s],
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::All => f.write_str("all"),
            Target::Stage(s) => write!(f, "{s}"),
        }
    }
}

/// What a `TRACE` request asks for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceQuery {
    /// One query's span tree, by the id from its `RUNNING` reply.
    Query(u64),
    /// The whole flight-recorder ring as Chrome `trace_event` JSON.
    Dump,
    /// The ids pinned in the last-errors ring.
    Errors,
}

/// A parsed request line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Epoch, world hash, sim clock, admission state. `FULL` adds the
    /// telemetry extensions (epoch age, uptime, cache occupancy).
    Status {
        /// True for `STATUS FULL`.
        full: bool,
    },
    /// Daemon and cache counters. `PROM` renders the wall-clock
    /// telemetry registry as Prometheus text exposition instead of the
    /// frozen legacy key=value lines.
    Metrics {
        /// True for `METRICS PROM`.
        prom: bool,
    },
    /// Flight-recorder queries.
    Trace(TraceQuery),
    /// Run a study query against the current epoch.
    RunUntil {
        /// What to run.
        target: Target,
        /// Wall-clock budget in milliseconds, if bounded.
        wall_ms: Option<u64>,
        /// Simulated-hours budget, if bounded.
        sim_hours: Option<u64>,
    },
    /// Read one stage's artifact without computing anything: a
    /// key=value summary, or (`FULL`) the same Table/Fig renders the
    /// batch CLI emits.
    Get {
        /// The artifact's producing stage.
        stage: StageId,
        /// True for `GET <stage> FULL`.
        full: bool,
    },
    /// Cooperatively cancel a running query.
    Cancel {
        /// The id from the query's `RUNNING` reply.
        id: u64,
    },
    /// Advance the resident world, opening a new epoch.
    Tick {
        /// Simulated hours to advance.
        hours: u64,
    },
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// Every way a request line can be rejected. Each maps to a stable
/// lowercase code used in the `ERR <code>: <detail>` reply.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtocolError {
    /// Blank line.
    Empty,
    /// The verb is not part of the protocol.
    UnknownCommand(String),
    /// A stage argument named no pipeline stage.
    UnknownStage(String),
    /// An argument did not parse (wrong type, out of range).
    BadArgument {
        /// The argument's name.
        arg: &'static str,
        /// The offending value, sanitized.
        value: String,
    },
    /// A required argument is missing.
    MissingArgument(&'static str),
    /// Trailing tokens after a complete request.
    UnexpectedArgument(String),
    /// Line longer than [`MAX_LINE`] bytes (already drained).
    Oversized,
    /// The line is not valid UTF-8.
    NotUtf8,
}

impl ProtocolError {
    /// The stable machine-readable code.
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::Empty => "empty",
            ProtocolError::UnknownCommand(_) => "unknown_command",
            ProtocolError::UnknownStage(_) => "unknown_stage",
            ProtocolError::BadArgument { .. } => "bad_argument",
            ProtocolError::MissingArgument(_) => "missing_argument",
            ProtocolError::UnexpectedArgument(_) => "unexpected_argument",
            ProtocolError::Oversized => "oversized",
            ProtocolError::NotUtf8 => "not_utf8",
        }
    }

    /// The full single-line reply for this error.
    pub fn reply(&self) -> String {
        match self {
            ProtocolError::Empty => "ERR empty: blank request line".to_owned(),
            ProtocolError::UnknownCommand(verb) => {
                format!("ERR unknown_command: {}", sanitize(verb))
            }
            ProtocolError::UnknownStage(name) => {
                format!(
                    "ERR unknown_stage: {} (expected all|{})",
                    sanitize(name),
                    stage_names().join("|")
                )
            }
            ProtocolError::BadArgument { arg, value } => {
                format!("ERR bad_argument: {arg}={}", sanitize(value))
            }
            ProtocolError::MissingArgument(arg) => {
                format!("ERR missing_argument: {arg}")
            }
            ProtocolError::UnexpectedArgument(tok) => {
                format!("ERR unexpected_argument: {}", sanitize(tok))
            }
            ProtocolError::Oversized => {
                format!("ERR oversized: line exceeds {MAX_LINE} bytes")
            }
            ProtocolError::NotUtf8 => "ERR not_utf8: request is not valid UTF-8".to_owned(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reply())
    }
}

/// Every stage name, for error messages and summaries.
fn stage_names() -> Vec<&'static str> {
    StageId::ALL.iter().map(|s| s.name()).collect()
}

/// Truncates and strips a client-provided token so it can be echoed
/// back safely: printable ASCII only, at most 32 bytes.
fn sanitize(token: &str) -> String {
    token
        .chars()
        .filter(|c| c.is_ascii_graphic())
        .take(32)
        .collect()
}

fn parse_stage(token: &str) -> Result<StageId, ProtocolError> {
    StageId::ALL
        .iter()
        .copied()
        .find(|s| s.name() == token)
        .ok_or_else(|| ProtocolError::UnknownStage(token.to_owned()))
}

fn parse_u64(arg: &'static str, token: &str) -> Result<u64, ProtocolError> {
    token.parse().map_err(|_| ProtocolError::BadArgument {
        arg,
        value: token.to_owned(),
    })
}

/// Parses one request line (newline already stripped).
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let mut tokens = line.split_ascii_whitespace();
    let verb = tokens.next().ok_or(ProtocolError::Empty)?;
    let req = match verb {
        "PING" => Request::Ping,
        "STATUS" => match tokens.next() {
            None => Request::Status { full: false },
            Some("FULL") => Request::Status { full: true },
            Some(other) => return Err(ProtocolError::UnexpectedArgument(other.to_owned())),
        },
        "METRICS" => match tokens.next() {
            None => Request::Metrics { prom: false },
            Some("PROM") => Request::Metrics { prom: true },
            Some(other) => return Err(ProtocolError::UnexpectedArgument(other.to_owned())),
        },
        "TRACE" => {
            let token = tokens.next().ok_or(ProtocolError::MissingArgument("id"))?;
            Request::Trace(match token {
                "DUMP" => TraceQuery::Dump,
                "ERRORS" => TraceQuery::Errors,
                other => TraceQuery::Query(parse_u64("id", other)?),
            })
        }
        "SHUTDOWN" => Request::Shutdown,
        "RUN_UNTIL" => {
            let token = tokens
                .next()
                .ok_or(ProtocolError::MissingArgument("stage"))?;
            let target = if token == "all" {
                Target::All
            } else {
                Target::Stage(parse_stage(token)?)
            };
            let mut wall_ms = None;
            let mut sim_hours = None;
            while let Some(key) = tokens.next() {
                match key {
                    "WALL_MS" => {
                        let v = tokens
                            .next()
                            .ok_or(ProtocolError::MissingArgument("WALL_MS"))?;
                        wall_ms = Some(parse_u64("WALL_MS", v)?);
                    }
                    "SIM_HOURS" => {
                        let v = tokens
                            .next()
                            .ok_or(ProtocolError::MissingArgument("SIM_HOURS"))?;
                        sim_hours = Some(parse_u64("SIM_HOURS", v)?);
                    }
                    other => return Err(ProtocolError::UnexpectedArgument(other.to_owned())),
                }
            }
            Request::RunUntil {
                target,
                wall_ms,
                sim_hours,
            }
        }
        "GET" => {
            let token = tokens
                .next()
                .ok_or(ProtocolError::MissingArgument("stage"))?;
            let stage = parse_stage(token)?;
            let full = match tokens.next() {
                None => false,
                Some("FULL") => true,
                Some(other) => return Err(ProtocolError::UnexpectedArgument(other.to_owned())),
            };
            Request::Get { stage, full }
        }
        "CANCEL" => {
            let token = tokens.next().ok_or(ProtocolError::MissingArgument("id"))?;
            Request::Cancel {
                id: parse_u64("id", token)?,
            }
        }
        "TICK" => {
            let token = tokens
                .next()
                .ok_or(ProtocolError::MissingArgument("hours"))?;
            let hours = parse_u64("hours", token)?;
            if hours == 0 || hours > 24 * 365 {
                return Err(ProtocolError::BadArgument {
                    arg: "hours",
                    value: token.to_owned(),
                });
            }
            Request::Tick { hours }
        }
        other => return Err(ProtocolError::UnknownCommand(other.to_owned())),
    };
    if let Some(extra) = tokens.next() {
        return Err(ProtocolError::UnexpectedArgument(extra.to_owned()));
    }
    Ok(req)
}

/// Reads newline-delimited request lines with the [`MAX_LINE`] bound
/// enforced *during* the read: an oversized line is drained (never
/// buffered whole) and reported as a typed error, leaving the stream
/// in sync at the next newline.
#[derive(Debug)]
pub struct LineReader<R> {
    inner: R,
}

impl<R: BufRead> LineReader<R> {
    /// Wraps a buffered reader.
    pub fn new(inner: R) -> Self {
        LineReader { inner }
    }

    /// The next line: `Ok(None)` at EOF, `Ok(Some(Err(..)))` for a
    /// line the framing layer rejected (oversized, not UTF-8), and
    /// `Err` only for a real transport error.
    #[allow(clippy::type_complexity)]
    pub fn next_line(&mut self) -> io::Result<Option<Result<String, ProtocolError>>> {
        self.next_line_until(&mut || false)
    }

    /// [`LineReader::next_line`], but interruptible: when the
    /// underlying read times out (`WouldBlock`/`TimedOut` from a
    /// socket read timeout), `give_up` decides whether to keep
    /// waiting or end the stream (`Ok(None)`). Any partially read
    /// line survives the retry, so a request split across timeouts
    /// still parses — essential for pool workers that must notice a
    /// stop flag without losing in-flight bytes.
    #[allow(clippy::type_complexity)]
    pub fn next_line_until(
        &mut self,
        give_up: &mut dyn FnMut() -> bool,
    ) -> io::Result<Option<Result<String, ProtocolError>>> {
        let mut buf: Vec<u8> = Vec::new();
        let mut oversized = false;
        loop {
            let chunk = match self.inner.fill_buf() {
                Ok(chunk) => chunk,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if give_up() {
                        return Ok(None);
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                // EOF: a final unterminated fragment still parses.
                if buf.is_empty() && !oversized {
                    return Ok(None);
                }
                break;
            }
            let newline = chunk.iter().position(|&b| b == b'\n');
            let take = newline.map_or(chunk.len(), |i| i + 1);
            if !oversized {
                let line_part = &chunk[..newline.map_or(chunk.len(), |i| i)];
                if buf.len() + line_part.len() > MAX_LINE {
                    oversized = true;
                    buf.clear();
                } else {
                    buf.extend_from_slice(line_part);
                }
            }
            self.inner.consume(take);
            if newline.is_some() {
                break;
            }
        }
        if oversized {
            return Ok(Some(Err(ProtocolError::Oversized)));
        }
        if let Some(&b'\r') = buf.last() {
            buf.pop();
        }
        match String::from_utf8(buf) {
            Ok(line) => Ok(Some(Ok(line))),
            Err(_) => Ok(Some(Err(ProtocolError::NotUtf8))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_every_verb() {
        assert_eq!(parse_request("PING"), Ok(Request::Ping));
        assert_eq!(parse_request("STATUS"), Ok(Request::Status { full: false }));
        assert_eq!(
            parse_request("STATUS FULL"),
            Ok(Request::Status { full: true })
        );
        assert_eq!(
            parse_request("METRICS"),
            Ok(Request::Metrics { prom: false })
        );
        assert_eq!(
            parse_request("METRICS PROM"),
            Ok(Request::Metrics { prom: true })
        );
        assert_eq!(
            parse_request("TRACE 12"),
            Ok(Request::Trace(TraceQuery::Query(12)))
        );
        assert_eq!(
            parse_request("TRACE DUMP"),
            Ok(Request::Trace(TraceQuery::Dump))
        );
        assert_eq!(
            parse_request("TRACE ERRORS"),
            Ok(Request::Trace(TraceQuery::Errors))
        );
        assert_eq!(parse_request("SHUTDOWN"), Ok(Request::Shutdown));
        assert_eq!(
            parse_request("RUN_UNTIL port_scan"),
            Ok(Request::RunUntil {
                target: Target::Stage(StageId::PortScan),
                wall_ms: None,
                sim_hours: None,
            })
        );
        assert_eq!(
            parse_request("RUN_UNTIL all WALL_MS 500 SIM_HOURS 300"),
            Ok(Request::RunUntil {
                target: Target::All,
                wall_ms: Some(500),
                sim_hours: Some(300),
            })
        );
        assert_eq!(
            parse_request("GET popularity"),
            Ok(Request::Get {
                stage: StageId::Popularity,
                full: false,
            })
        );
        assert_eq!(
            parse_request("GET crawl FULL"),
            Ok(Request::Get {
                stage: StageId::Crawl,
                full: true,
            })
        );
        assert_eq!(parse_request("CANCEL 7"), Ok(Request::Cancel { id: 7 }));
        assert_eq!(parse_request("TICK 24"), Ok(Request::Tick { hours: 24 }));
    }

    #[test]
    fn rejects_malformed_lines_with_typed_errors() {
        assert_eq!(parse_request(""), Err(ProtocolError::Empty));
        assert_eq!(parse_request("   "), Err(ProtocolError::Empty));
        assert!(matches!(
            parse_request("FROB"),
            Err(ProtocolError::UnknownCommand(_))
        ));
        assert!(matches!(
            parse_request("RUN_UNTIL warp_drive"),
            Err(ProtocolError::UnknownStage(_))
        ));
        assert_eq!(
            parse_request("RUN_UNTIL"),
            Err(ProtocolError::MissingArgument("stage"))
        );
        assert!(matches!(
            parse_request("CANCEL seven"),
            Err(ProtocolError::BadArgument { arg: "id", .. })
        ));
        assert!(matches!(
            parse_request("TICK 0"),
            Err(ProtocolError::BadArgument { arg: "hours", .. })
        ));
        assert!(matches!(
            parse_request("PING extra"),
            Err(ProtocolError::UnexpectedArgument(_))
        ));
        assert!(matches!(
            parse_request("RUN_UNTIL all BOGUS 3"),
            Err(ProtocolError::UnexpectedArgument(_))
        ));
        assert!(matches!(
            parse_request("STATUS PARTIAL"),
            Err(ProtocolError::UnexpectedArgument(_))
        ));
        assert!(matches!(
            parse_request("METRICS JSON"),
            Err(ProtocolError::UnexpectedArgument(_))
        ));
        assert_eq!(
            parse_request("TRACE"),
            Err(ProtocolError::MissingArgument("id"))
        );
        assert!(matches!(
            parse_request("TRACE nope"),
            Err(ProtocolError::BadArgument { arg: "id", .. })
        ));
        assert!(matches!(
            parse_request("TRACE DUMP extra"),
            Err(ProtocolError::UnexpectedArgument(_))
        ));
        assert!(matches!(
            parse_request("GET setup PARTIAL"),
            Err(ProtocolError::UnexpectedArgument(_))
        ));
        assert!(matches!(
            parse_request("GET setup FULL extra"),
            Err(ProtocolError::UnexpectedArgument(_))
        ));
    }

    /// A reader whose stream times out between byte chunks: the
    /// interruptible read must keep partial lines across retries and
    /// only end the stream when asked to give up.
    struct Intermittent {
        chunks: Vec<Vec<u8>>,
        timeouts_first: bool,
    }

    impl std::io::Read for Intermittent {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if self.timeouts_first {
                self.timeouts_first = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"));
            }
            match self.chunks.first_mut() {
                None => Ok(0),
                Some(chunk) => {
                    let n = chunk.len().min(out.len());
                    out[..n].copy_from_slice(&chunk[..n]);
                    chunk.drain(..n);
                    if chunk.is_empty() {
                        self.chunks.remove(0);
                        self.timeouts_first = true;
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn interruptible_read_keeps_partial_lines_across_timeouts() {
        let stream = Intermittent {
            chunks: vec![b"STA".to_vec(), b"TUS\nPI".to_vec(), b"NG\n".to_vec()],
            timeouts_first: true,
        };
        let mut reader = LineReader::new(BufReader::new(stream));
        let mut stop = || false;
        assert_eq!(
            reader.next_line_until(&mut stop).unwrap(),
            Some(Ok("STATUS".to_owned()))
        );
        assert_eq!(
            reader.next_line_until(&mut stop).unwrap(),
            Some(Ok("PING".to_owned()))
        );
    }

    #[test]
    fn interruptible_read_gives_up_when_asked() {
        let stream = Intermittent {
            chunks: vec![b"NEVER_FINISHED".to_vec()],
            timeouts_first: true,
        };
        let mut reader = LineReader::new(BufReader::new(stream));
        assert_eq!(reader.next_line_until(&mut || true).unwrap(), None);
    }

    #[test]
    fn error_replies_are_single_sanitized_lines() {
        let weird = "RUN_UNTIL \u{7}\u{1b}[31mevil\tstage\u{0}name_that_is_quite_long_indeed";
        let err = parse_request(weird).unwrap_err();
        let reply = err.reply();
        assert!(reply.starts_with("ERR "), "{reply}");
        assert!(!reply.contains('\n'));
        assert!(reply.chars().all(|c| c == ' ' || c.is_ascii_graphic()));
    }

    #[test]
    fn line_reader_resyncs_after_oversized_line() {
        let mut input = vec![b'A'; MAX_LINE + 100];
        input.push(b'\n');
        input.extend_from_slice(b"PING\n");
        let mut reader = LineReader::new(BufReader::new(&input[..]));
        assert_eq!(
            reader.next_line().unwrap(),
            Some(Err(ProtocolError::Oversized))
        );
        assert_eq!(reader.next_line().unwrap(), Some(Ok("PING".to_owned())));
        assert_eq!(reader.next_line().unwrap(), None);
    }

    #[test]
    fn line_reader_handles_crlf_and_unterminated_tail() {
        let input = b"STATUS\r\nMETRICS".to_vec();
        let mut reader = LineReader::new(BufReader::new(&input[..]));
        assert_eq!(reader.next_line().unwrap(), Some(Ok("STATUS".to_owned())));
        assert_eq!(reader.next_line().unwrap(), Some(Ok("METRICS".to_owned())));
        assert_eq!(reader.next_line().unwrap(), None);
    }

    #[test]
    fn line_reader_rejects_non_utf8_but_continues() {
        let mut input = vec![b'P', 0xff, 0xfe, b'\n'];
        input.extend_from_slice(b"PING\n");
        let mut reader = LineReader::new(BufReader::new(&input[..]));
        assert_eq!(
            reader.next_line().unwrap(),
            Some(Err(ProtocolError::NotUtf8))
        );
        assert_eq!(reader.next_line().unwrap(), Some(Ok("PING".to_owned())));
    }

    #[test]
    fn boundary_line_lengths() {
        let mut input = vec![b'A'; MAX_LINE];
        input.push(b'\n');
        let mut reader = LineReader::new(BufReader::new(&input[..]));
        let line = reader.next_line().unwrap().unwrap().unwrap();
        assert_eq!(line.len(), MAX_LINE);
        let mut input = vec![b'A'; MAX_LINE + 1];
        input.push(b'\n');
        let mut reader = LineReader::new(BufReader::new(&input[..]));
        assert_eq!(
            reader.next_line().unwrap(),
            Some(Err(ProtocolError::Oversized))
        );
    }
}

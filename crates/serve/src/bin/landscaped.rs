//! `landscaped` — the resident study daemon and its scripting client.
//!
//! ```text
//! landscaped serve [--addr A] [--scale F] [--seed N] [--threads N]
//!                  [--max-inflight N] [--wall-ms N] [--sim-hours N]
//!                  [--cache-cap N] [--cache-bytes N] [--faults PROFILE]
//!                  [--workers N] [--queue N] [--pool-metrics on|off]
//!                  [--tick-every H/MS]
//!                  [--port-file P] [--log off|progress|debug]
//! landscaped script <addr>       # drive a stdin transcript
//! landscaped dump-trace <addr> <file>   # TRACE DUMP → Chrome JSON
//! ```
//!
//! `serve` binds (port 0 supported; `--port-file` writes the resolved
//! port for scripts), bootstraps the resident world, and serves until
//! `SHUTDOWN`. `script` reads request lines from stdin, sends each,
//! and echoes `> request` followed by the verbatim reply — the golden
//! daemon transcript in `results/` is produced this way. `dump-trace`
//! fetches the flight recorder's `TRACE DUMP`, validates it as Chrome
//! `trace_event` JSON, and writes it to a file for `chrome://tracing`
//! or Perfetto.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Duration;

use hs_serve::{Client, Daemon, DaemonConfig, TickEvery};
use obs::{LogLevel, Logger};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("script") => script(&args[1..]),
        Some("dump-trace") => dump_trace(&args[1..]),
        _ => Err(USAGE.to_owned()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:\n  landscaped serve [--addr A] [--scale F] [--seed N] [--threads N] \
[--max-inflight N] [--wall-ms N] [--sim-hours N] [--cache-cap N] [--cache-bytes N] \
[--faults PROFILE] [--workers N] [--queue N] [--pool-metrics on|off] \
[--tick-every H/MS] [--port-file P] [--log off|progress|debug]\n  \
landscaped script <addr>\n  \
landscaped dump-trace <addr> <file>";

/// Parses `--tick-every H/MS`: advance `H` sim-hours every `MS` wall
/// milliseconds.
fn parse_tick_every(value: &str) -> Result<TickEvery, String> {
    let bad = || format!("bad value for --tick-every: {value} (expected <sim-hours>/<wall-ms>)");
    let (hours, ms) = value.split_once('/').ok_or_else(bad)?;
    let sim_hours: u64 = hours.parse().map_err(|_| bad())?;
    let wall_ms: u64 = ms.parse().map_err(|_| bad())?;
    if sim_hours == 0 || sim_hours > 24 * 365 || wall_ms == 0 {
        return Err(bad());
    }
    Ok(TickEvery { sim_hours, wall_ms })
}

/// One `--flag value` pair.
fn take_value<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a String>,
) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("bad value for {flag}: {value}"))
}

fn serve(args: &[String]) -> Result<(), String> {
    let mut cfg = DaemonConfig::default();
    let mut port_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => cfg.addr = take_value(flag, &mut it)?.clone(),
            "--scale" => cfg.study.scale = parse(flag, take_value(flag, &mut it)?)?,
            "--seed" => cfg.study.seed = parse(flag, take_value(flag, &mut it)?)?,
            "--threads" => cfg.wave_threads = parse(flag, take_value(flag, &mut it)?)?,
            "--max-inflight" => cfg.max_inflight = parse(flag, take_value(flag, &mut it)?)?,
            "--wall-ms" => cfg.default_wall_ms = Some(parse(flag, take_value(flag, &mut it)?)?),
            "--sim-hours" => cfg.default_sim_hours = Some(parse(flag, take_value(flag, &mut it)?)?),
            "--cache-cap" => cfg.cache_capacity = parse(flag, take_value(flag, &mut it)?)?,
            "--cache-bytes" => {
                cfg.cache_budget_bytes = Some(parse(flag, take_value(flag, &mut it)?)?)
            }
            "--faults" => cfg.study.apply_fault_profile(take_value(flag, &mut it)?)?,
            "--workers" => cfg.workers = parse(flag, take_value(flag, &mut it)?)?,
            "--queue" => cfg.pool_queue = parse(flag, take_value(flag, &mut it)?)?,
            "--pool-metrics" => {
                cfg.pool_metrics = match take_value(flag, &mut it)?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("bad value for --pool-metrics: {other}")),
                }
            }
            "--tick-every" => cfg.tick_every = Some(parse_tick_every(take_value(flag, &mut it)?)?),
            "--port-file" => port_file = Some(take_value(flag, &mut it)?.clone()),
            "--log" => {
                let value = take_value(flag, &mut it)?;
                let level = LogLevel::parse(value)
                    .ok_or_else(|| format!("bad value for --log: {value}"))?;
                cfg.log = Logger::new(level);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let daemon = Daemon::bind(cfg).map_err(|e| format!("bind failed: {e}"))?;
    let addr = daemon.local_addr().map_err(|e| format!("no addr: {e}"))?;
    if let Some(path) = port_file {
        std::fs::write(&path, format!("{}\n", addr.port()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    eprintln!("landscaped listening on {addr}");
    daemon.run().map_err(|e| format!("serve loop failed: {e}"))
}

fn script(args: &[String]) -> Result<(), String> {
    let [addr] = args else {
        return Err(USAGE.to_owned());
    };
    let mut client = Client::connect_retry(addr.as_str(), Duration::from_secs(10))
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let reply = client
            .request(line)
            .map_err(|e| format!("request `{line}` failed: {e}"))?;
        let mut render = || -> std::io::Result<()> {
            writeln!(out, "> {line}")?;
            for reply_line in &reply {
                writeln!(out, "{reply_line}")?;
            }
            Ok(())
        };
        render().map_err(|e| format!("stdout: {e}"))?;
        if line == "SHUTDOWN" {
            break;
        }
    }
    Ok(())
}

/// Fetches `TRACE DUMP`, validates the Chrome `trace_event` JSON, and
/// writes it to `file`. Exits nonzero when the daemon answers with an
/// error or the document fails structural validation.
fn dump_trace(args: &[String]) -> Result<(), String> {
    let [addr, file] = args else {
        return Err(USAGE.to_owned());
    };
    let mut client = Client::connect_retry(addr.as_str(), Duration::from_secs(10))
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let reply = client
        .request("TRACE DUMP")
        .map_err(|e| format!("TRACE DUMP failed: {e}"))?;
    let Some(("OK TRACE", body)) = reply
        .split_first()
        .map(|(head, rest)| (head.as_str(), rest))
    else {
        return Err(format!("unexpected reply: {reply:?}"));
    };
    // Strip the trailing `.` frame terminator; the rest is the JSON.
    let json: String = body
        .iter()
        .filter(|line| line.as_str() != ".")
        .map(|line| format!("{line}\n"))
        .collect();
    obs::validate_json(&json).map_err(|e| format!("invalid trace JSON: {e}"))?;
    std::fs::write(file, &json).map_err(|e| format!("cannot write {file}: {e}"))?;
    eprintln!("wrote {} bytes of trace to {file}", json.len());
    Ok(())
}

//! Deterministic sharded measurement waves.
//!
//! The measurement-heavy simulation stages split each simulated day
//! into a sequential *mutate* phase (consensus rounds, fault
//! application) and a read-only *measurement wave* over that day's work
//! units. This crate provides the wave half: a [`WavePool`] that shards
//! a slice of work units into balanced contiguous ranges, runs each
//! shard on a scoped worker thread, and concatenates the per-shard
//! results back **in input order**.
//!
//! Determinism contract: the worker closure receives the *global* item
//! index, never the shard index, so nothing a unit computes can depend
//! on how the work was sharded. Per-unit randomness must be derived
//! from stable unit keys (onion identifiers, simulated hours) — helpers
//! [`mix`] and [`mix2`] fold such keys into seed material. Under that
//! discipline, `map` output is byte-identical at any thread count,
//! including the inline `threads == 1` path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

use std::time::Instant;

/// Splits `len` items into at most `shards` balanced contiguous ranges:
/// every shard gets `len / shards` items and the first `len % shards`
/// shards get one extra, so shard sizes differ by at most one and no
/// shard is empty.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let shards = shards.max(1).min(len.max(1));
    if len == 0 {
        return Vec::new();
    }
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Splits `len` items into at most `shards` contiguous ranges whose cut
/// points are snapped forward to *key boundaries*: `boundary(i)` must
/// report whether item `i` starts a new key group (with `boundary(0)`
/// conventionally true). No range ever splits a group, so per-group
/// work stays shard-local and the concatenated output is byte-identical
/// at any shard count. Ranges start balanced and only grow toward the
/// next boundary, so skew is bounded by the largest group.
pub fn keyed_ranges(
    len: usize,
    shards: usize,
    boundary: impl Fn(usize) -> bool,
) -> Vec<std::ops::Range<usize>> {
    let mut cuts: Vec<usize> = shard_ranges(len, shards)
        .into_iter()
        .map(|r| r.start)
        .collect();
    for cut in cuts.iter_mut().skip(1) {
        while *cut < len && !boundary(*cut) {
            *cut += 1;
        }
    }
    cuts.dedup();
    let mut out = Vec::with_capacity(cuts.len());
    for (i, &start) in cuts.iter().enumerate() {
        let end = cuts.get(i + 1).copied().unwrap_or(len);
        if start < end {
            out.push(start..end);
        }
    }
    out
}

/// Wall-clock accounting for one shard of a wave.
#[derive(Clone, Copy, Debug)]
pub struct ShardStat {
    /// Shard index within the wave.
    pub shard: usize,
    /// Work units the shard processed.
    pub items: usize,
    /// When the shard started executing.
    pub start: Instant,
    /// When the shard finished.
    pub end: Instant,
}

/// Accounting for one wave: how it was sharded and how long each shard
/// ran. Purely observability — nothing here may feed back into results.
#[derive(Clone, Debug)]
pub struct WaveStats {
    /// Thread budget the wave ran under (as configured, not clamped).
    pub threads: usize,
    /// Per-shard timings, in shard order.
    pub shards: Vec<ShardStat>,
}

impl WaveStats {
    /// Total items processed across all shards.
    pub fn items(&self) -> usize {
        self.shards.iter().map(|s| s.items).sum()
    }
}

/// A fixed-width pool that runs measurement waves. Threads are scoped
/// per wave (the vendored crossbeam scope), so the pool itself is just
/// the configured width.
#[derive(Clone, Copy, Debug)]
pub struct WavePool {
    threads: usize,
}

impl WavePool {
    /// A pool that runs waves on up to `threads` workers. Zero behaves
    /// as one.
    pub fn new(threads: usize) -> Self {
        WavePool {
            threads: threads.max(1),
        }
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, sharded across the pool, returning the
    /// results in input order plus the wave's shard accounting. `f`
    /// receives the global item index; it must derive any randomness
    /// from stable per-unit keys so output is shard-free. Waves of at
    /// most one item — or a pool of width one — run inline on the
    /// caller's thread.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> (Vec<R>, WaveStats)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            let start = Instant::now();
            let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
            let end = Instant::now();
            let stats = WaveStats {
                threads: self.threads,
                shards: vec![ShardStat {
                    shard: 0,
                    items: items.len(),
                    start,
                    end,
                }],
            };
            return (out, stats);
        }
        let ranges = shard_ranges(items.len(), self.threads);
        let f = &f;
        let run = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .cloned()
                .map(|range| {
                    scope.spawn(move |_| {
                        let start = Instant::now();
                        let out: Vec<R> = items[range.clone()]
                            .iter()
                            .enumerate()
                            .map(|(off, t)| f(range.start + off, t))
                            .collect();
                        (out, start, Instant::now())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(part) => part,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect::<Vec<_>>()
        });
        let parts = match run {
            Ok(parts) => parts,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        let mut out = Vec::with_capacity(items.len());
        let mut shards = Vec::with_capacity(parts.len());
        for (shard, (part, start, end)) in parts.into_iter().enumerate() {
            shards.push(ShardStat {
                shard,
                items: part.len(),
                start,
                end,
            });
            out.extend(part);
        }
        (
            out,
            WaveStats {
                threads: self.threads,
                shards,
            },
        )
    }

    /// Runs `f` once per pre-cut range (one task per range, ranges
    /// assigned to workers in order), returning the per-range results
    /// in range order. Pair with [`keyed_ranges`] so no range splits a
    /// key group: each result then depends only on that range's items,
    /// and the concatenation is identical at any thread count. `f`
    /// receives the range's global start index and its subslice.
    pub fn map_slices<T, R, F>(
        &self,
        items: &[T],
        ranges: &[std::ops::Range<usize>],
        f: F,
    ) -> (Vec<R>, WaveStats)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        if self.threads == 1 || ranges.len() <= 1 {
            let start = Instant::now();
            let out: Vec<R> = ranges
                .iter()
                .map(|r| f(r.start, &items[r.clone()]))
                .collect();
            let end = Instant::now();
            let stats = WaveStats {
                threads: self.threads,
                shards: vec![ShardStat {
                    shard: 0,
                    items: ranges.iter().map(|r| r.len()).sum(),
                    start,
                    end,
                }],
            };
            return (out, stats);
        }
        let f = &f;
        let run = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .cloned()
                .map(|range| {
                    scope.spawn(move |_| {
                        let start = Instant::now();
                        let out = f(range.start, &items[range.clone()]);
                        (out, range.len(), start, Instant::now())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(part) => part,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect::<Vec<_>>()
        });
        let parts = match run {
            Ok(parts) => parts,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        let mut out = Vec::with_capacity(parts.len());
        let mut shards = Vec::with_capacity(parts.len());
        for (shard, (part, items, start, end)) in parts.into_iter().enumerate() {
            shards.push(ShardStat {
                shard,
                items,
                start,
                end,
            });
            out.push(part);
        }
        (
            out,
            WaveStats {
                threads: self.threads,
                shards,
            },
        )
    }

    /// Maps `f` over *mutable* items, sharded into balanced contiguous
    /// chunks carved with `split_at_mut` — each worker owns a disjoint
    /// chunk, so no locking and no unsafe. `f` receives the global item
    /// index; per-item results come back in input order. Used by the
    /// mutate-phase waves (store expiry/flush, per-relay fault
    /// application) where every unit mutates only its own element.
    pub fn map_mut<T, R, F>(&self, items: &mut [T], f: F) -> (Vec<R>, WaveStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            let start = Instant::now();
            let len = items.len();
            let out: Vec<R> = items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
            let end = Instant::now();
            let stats = WaveStats {
                threads: self.threads,
                shards: vec![ShardStat {
                    shard: 0,
                    items: len,
                    start,
                    end,
                }],
            };
            return (out, stats);
        }
        let ranges = shard_ranges(items.len(), self.threads);
        // Carve the slice into per-shard disjoint chunks up front.
        let mut chunks: Vec<(usize, &mut [T])> = Vec::with_capacity(ranges.len());
        let mut rest = items;
        for range in &ranges {
            let (chunk, tail) = rest.split_at_mut(range.len());
            chunks.push((range.start, chunk));
            rest = tail;
        }
        let f = &f;
        let run = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|(offset, chunk)| {
                    scope.spawn(move |_| {
                        let start = Instant::now();
                        let out: Vec<R> = chunk
                            .iter_mut()
                            .enumerate()
                            .map(|(off, t)| f(offset + off, t))
                            .collect();
                        (out, start, Instant::now())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(part) => part,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect::<Vec<_>>()
        });
        let parts = match run {
            Ok(parts) => parts,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        let mut out = Vec::new();
        let mut shards = Vec::with_capacity(parts.len());
        for (shard, (part, start, end)) in parts.into_iter().enumerate() {
            shards.push(ShardStat {
                shard,
                items: part.len(),
                start,
                end,
            });
            out.extend(part);
        }
        (
            out,
            WaveStats {
                threads: self.threads,
                shards,
            },
        )
    }
}

/// SplitMix64 finalizer: avalanches structured key material into
/// uniform seed bits.
pub fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Folds two keys into one seed: `mix(mix(a) ^ b)`. Order-sensitive by
/// design — `mix2(a, b) != mix2(b, a)` in general.
pub fn mix2(a: u64, b: u64) -> u64 {
    mix(mix(a) ^ b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_balanced_and_contiguous() {
        for len in 0..40usize {
            for shards in 1..10usize {
                let ranges = shard_ranges(len, shards);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, len);
                if len > 0 {
                    assert_eq!(ranges[0].start, 0);
                    assert_eq!(ranges[ranges.len() - 1].end, len);
                    for w in ranges.windows(2) {
                        assert_eq!(w[0].end, w[1].start, "contiguous");
                    }
                    let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let min = sizes.iter().min().copied().unwrap_or(0);
                    let max = sizes.iter().max().copied().unwrap_or(0);
                    assert!(max - min <= 1, "balanced: {sizes:?}");
                    assert!(min >= 1, "no empty shard: {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn map_matches_sequential_at_any_width() {
        let items: Vec<u64> = (0..101).collect();
        let (seq, seq_stats) = WavePool::new(1).map(&items, |i, v| mix2(i as u64, *v));
        assert_eq!(seq_stats.shards.len(), 1);
        assert_eq!(seq_stats.items(), items.len());
        for threads in [2, 3, 8, 64] {
            let (par, stats) = WavePool::new(threads).map(&items, |i, v| mix2(i as u64, *v));
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(stats.items(), items.len());
            assert!(stats.shards.len() <= threads);
        }
    }

    #[test]
    fn empty_and_single_item_waves_run_inline() {
        let none: Vec<u32> = Vec::new();
        let (out, stats) = WavePool::new(8).map(&none, |_, v| *v);
        assert!(out.is_empty());
        assert_eq!(stats.shards.len(), 1);
        let one = [42u32];
        let (out, stats) = WavePool::new(8).map(&one, |i, v| (i, *v));
        assert_eq!(out, vec![(0, 42)]);
        assert_eq!(stats.shards[0].items, 1);
    }

    #[test]
    fn mix_helpers_are_stable() {
        assert_eq!(mix(0x5ca7), mix(0x5ca7));
        assert_ne!(mix2(1, 2), mix2(2, 1));
    }

    #[test]
    fn keyed_ranges_never_split_groups() {
        // Keys: 30 items in uneven groups of 1..=4.
        let keys: Vec<u32> = (0..30u32).map(|i| i / 3).collect();
        for shards in 1..12usize {
            let ranges = keyed_ranges(keys.len(), shards, |i| i == 0 || keys[i] != keys[i - 1]);
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, keys.len());
            assert_eq!(ranges[0].start, 0);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
            }
            for r in &ranges {
                assert!(
                    r.start == 0 || keys[r.start] != keys[r.start - 1],
                    "range {r:?} splits key group {}",
                    keys[r.start]
                );
            }
        }
        assert!(keyed_ranges(0, 4, |_| true).is_empty());
        // One giant group collapses to a single range at any width.
        let one = keyed_ranges(17, 8, |i| i == 0);
        assert_eq!(one, vec![0..17]);
    }

    #[test]
    fn map_slices_concat_matches_sequential_at_any_width() {
        let items: Vec<u64> = (0..97).collect();
        let keys: Vec<u64> = items.iter().map(|v| v / 5).collect();
        let per_group = |start: usize, part: &[u64]| -> Vec<u64> {
            part.iter()
                .enumerate()
                .map(|(off, v)| mix2((start + off) as u64, *v))
                .collect()
        };
        let seq_ranges = keyed_ranges(items.len(), 1, |i| i == 0 || keys[i] != keys[i - 1]);
        let (seq, _) = WavePool::new(1).map_slices(&items, &seq_ranges, per_group);
        let seq: Vec<u64> = seq.into_iter().flatten().collect();
        for threads in [2, 3, 8] {
            let ranges = keyed_ranges(items.len(), threads, |i| i == 0 || keys[i] != keys[i - 1]);
            let (par, stats) = WavePool::new(threads).map_slices(&items, &ranges, per_group);
            let par: Vec<u64> = par.into_iter().flatten().collect();
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(stats.items(), items.len());
        }
    }

    #[test]
    fn map_mut_matches_sequential_at_any_width() {
        let seed: Vec<u64> = (0..83).collect();
        let mut seq = seed.clone();
        let (seq_out, _) = WavePool::new(1).map_mut(&mut seq, |i, v| {
            *v = mix2(i as u64, *v);
            *v & 1
        });
        for threads in [2, 3, 8, 64] {
            let mut par = seed.clone();
            let (par_out, stats) = WavePool::new(threads).map_mut(&mut par, |i, v| {
                *v = mix2(i as u64, *v);
                *v & 1
            });
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_out, seq_out, "threads={threads}");
            assert_eq!(stats.items(), seed.len());
            assert!(stats.shards.len() <= threads);
        }
        let mut empty: Vec<u64> = Vec::new();
        let (out, stats) = WavePool::new(8).map_mut(&mut empty, |_, v| *v);
        assert!(out.is_empty());
        assert_eq!(stats.shards.len(), 1);
    }
}

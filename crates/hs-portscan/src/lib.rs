//! Port scanning of Tor hidden services (Sec. III of Biryukov et al.,
//! ICDCS 2014).
//!
//! The paper scanned 39,824 harvested onion addresses between 14 and
//! 21 Feb 2013, probing different port ranges on different days, and
//! found 22,007 open ports on the 24,511 addresses whose descriptors
//! were still published — with port 55080 (the Skynet botnet's
//! connection-forwarder port, detectable through its abnormal error
//! reply) alone accounting for more than half.
//!
//! This crate reproduces the methodology against the simulated network:
//!
//! - [`schedule`] — per-day port ranges (the source of the 87 %
//!   coverage ceiling);
//! - [`scanner`] — the probe loop (descriptor fetch per target per day,
//!   then port probes through the service backend) and the
//!   [`scanner::ScanReport`] that regenerates Fig. 1.
//!
//! # Examples
//!
//! ```
//! use hs_portscan::{ScanConfig, Scanner};
//! use hs_world::{World, WorldConfig};
//! use tor_sim::clock::SimTime;
//! use tor_sim::network::NetworkBuilder;
//!
//! let world = World::generate(WorldConfig { seed: 1, scale: 0.005 });
//! let mut net = NetworkBuilder::new()
//!     .relays(80)
//!     .start(SimTime::from_ymd(2013, 2, 13))
//!     .build();
//! world.register_all(&mut net);
//! net.advance_hours(1);
//!
//! let targets: Vec<_> = world.services().iter().map(|s| s.onion).collect();
//! let report = Scanner::new(ScanConfig { days: 2, ..ScanConfig::default() })
//!     .run(&mut net, &world, &targets);
//! assert!(report.total_open() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod scanner;
pub mod schedule;

pub use scanner::{port_label, DayTrace, ProbeResult, ScanConfig, ScanReport, Scanner};
pub use schedule::ScanSchedule;

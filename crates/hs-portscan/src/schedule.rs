//! Multi-day scan scheduling.
//!
//! The paper scanned "different port ranges on different days" between
//! 14 and 21 Feb 2013 — which is why coverage topped out at 87 %: a
//! service that was offline on the day its port range came up was never
//! conclusively probed. The schedule reproduces that structure.

use std::collections::BTreeSet;

/// Assignment of candidate ports to scan days.
#[derive(Clone, Debug)]
pub struct ScanSchedule {
    /// `days[d]` = sorted ports probed on day `d`.
    days: Vec<Vec<u16>>,
}

impl ScanSchedule {
    /// Splits `ports` into `days` contiguous ranges whose sizes differ
    /// by at most one, mirroring the paper's per-day port ranges.
    ///
    /// The first `len % days` days carry one extra port. (The previous
    /// `div_ceil` packing front-loaded full days and could leave
    /// trailing days empty — 9 ports over 4 days came out 3/3/3/0, and
    /// the scanner still simulated the idle day.)
    ///
    /// # Panics
    ///
    /// Panics if `days` is zero.
    pub fn split(ports: impl IntoIterator<Item = u16>, days: usize) -> Self {
        assert!(days > 0, "schedule needs at least one day");
        let sorted: Vec<u16> = ports
            .into_iter()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let base = sorted.len() / days;
        let extra = sorted.len() % days;
        let mut out = vec![Vec::new(); days];
        let mut ports = sorted.into_iter();
        for (d, day) in out.iter_mut().enumerate() {
            let size = base + usize::from(d < extra);
            day.extend(ports.by_ref().take(size));
        }
        ScanSchedule { days: out }
    }

    /// Number of scan days.
    pub fn day_count(&self) -> usize {
        self.days.len()
    }

    /// The ports probed on day `d` (empty when `d` is past the end).
    pub fn ports_on(&self, d: usize) -> &[u16] {
        self.days.get(d).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of scheduled ports.
    pub fn port_count(&self) -> usize {
        self.days.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_all_ports_once() {
        let ports = [80u16, 443, 22, 55080, 11009, 6667, 4050, 8080, 9001];
        let sched = ScanSchedule::split(ports, 3);
        assert_eq!(sched.day_count(), 3);
        let mut all: Vec<u16> = (0..3).flat_map(|d| sched.ports_on(d).to_vec()).collect();
        all.sort_unstable();
        let mut expected = ports.to_vec();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn ranges_are_contiguous() {
        let sched = ScanSchedule::split(1u16..=100, 4);
        for d in 0..3 {
            let last = *sched.ports_on(d).last().unwrap();
            let first_next = *sched.ports_on(d + 1).first().unwrap();
            assert!(last < first_next, "day ranges ordered");
        }
    }

    #[test]
    fn duplicates_removed() {
        let sched = ScanSchedule::split([80u16, 80, 80, 443], 2);
        assert_eq!(sched.port_count(), 2);
    }

    #[test]
    fn more_days_than_ports() {
        let sched = ScanSchedule::split([80u16, 443], 7);
        assert_eq!(sched.port_count(), 2);
        assert_eq!(sched.day_count(), 7);
    }

    #[test]
    fn day_sizes_differ_by_at_most_one() {
        // The old div_ceil packing yielded 3/3/3/0 here.
        let sched = ScanSchedule::split(1u16..=9, 4);
        let sizes: Vec<usize> = (0..4).map(|d| sched.ports_on(d).len()).collect();
        assert_eq!(sizes, vec![3, 2, 2, 2]);
        for days in 1..12usize {
            for n in 0..40u16 {
                let sched = ScanSchedule::split(1..=n, days);
                let sizes: Vec<usize> = (0..days).map(|d| sched.ports_on(d).len()).collect();
                let min = sizes.iter().min().copied().unwrap_or(0);
                let max = sizes.iter().max().copied().unwrap_or(0);
                assert!(max - min <= 1, "n={n} days={days}: {sizes:?}");
                assert_eq!(sizes.iter().sum::<usize>(), usize::from(n));
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every scheduled port appears exactly once, in sorted
            /// contiguous day ranges whose sizes differ by at most one.
            #[test]
            fn split_is_a_balanced_sorted_partition(
                ports in collection::hash_set(any::<u16>(), 0..200),
                days in 1usize..15,
            ) {
                let sched = ScanSchedule::split(ports.iter().copied(), days);
                prop_assert_eq!(sched.day_count(), days);

                let flat: Vec<u16> = (0..days)
                    .flat_map(|d| sched.ports_on(d).to_vec())
                    .collect();
                let mut expected: Vec<u16> = ports.iter().copied().collect();
                expected.sort_unstable();
                // Concatenating the days in order reproduces the sorted
                // dedup'd input: full coverage, no duplicates, and the
                // day ranges are contiguous in port order.
                prop_assert_eq!(flat, expected);

                let sizes: Vec<usize> =
                    (0..days).map(|d| sched.ports_on(d).len()).collect();
                let min = sizes.iter().min().copied().unwrap_or(0);
                let max = sizes.iter().max().copied().unwrap_or(0);
                prop_assert!(max - min <= 1, "unbalanced days: {:?}", sizes);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn zero_days_panics() {
        let _ = ScanSchedule::split([80u16], 0);
    }
}

//! Multi-day scan scheduling.
//!
//! The paper scanned "different port ranges on different days" between
//! 14 and 21 Feb 2013 — which is why coverage topped out at 87 %: a
//! service that was offline on the day its port range came up was never
//! conclusively probed. The schedule reproduces that structure.

use std::collections::BTreeSet;

/// Assignment of candidate ports to scan days.
#[derive(Clone, Debug)]
pub struct ScanSchedule {
    /// `days[d]` = sorted ports probed on day `d`.
    days: Vec<Vec<u16>>,
}

impl ScanSchedule {
    /// Splits `ports` into `days` contiguous ranges of (nearly) equal
    /// size, mirroring the paper's per-day port ranges.
    ///
    /// # Panics
    ///
    /// Panics if `days` is zero.
    pub fn split(ports: impl IntoIterator<Item = u16>, days: usize) -> Self {
        assert!(days > 0, "schedule needs at least one day");
        let sorted: Vec<u16> = ports
            .into_iter()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut out = vec![Vec::new(); days];
        let per_day = sorted.len().div_ceil(days).max(1);
        for (i, port) in sorted.into_iter().enumerate() {
            out[(i / per_day).min(days - 1)].push(port);
        }
        ScanSchedule { days: out }
    }

    /// Number of scan days.
    pub fn day_count(&self) -> usize {
        self.days.len()
    }

    /// The ports probed on day `d` (empty when `d` is past the end).
    pub fn ports_on(&self, d: usize) -> &[u16] {
        self.days.get(d).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of scheduled ports.
    pub fn port_count(&self) -> usize {
        self.days.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_all_ports_once() {
        let ports = [80u16, 443, 22, 55080, 11009, 6667, 4050, 8080, 9001];
        let sched = ScanSchedule::split(ports, 3);
        assert_eq!(sched.day_count(), 3);
        let mut all: Vec<u16> = (0..3).flat_map(|d| sched.ports_on(d).to_vec()).collect();
        all.sort_unstable();
        let mut expected = ports.to_vec();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn ranges_are_contiguous() {
        let sched = ScanSchedule::split(1u16..=100, 4);
        for d in 0..3 {
            let last = *sched.ports_on(d).last().unwrap();
            let first_next = *sched.ports_on(d + 1).first().unwrap();
            assert!(last < first_next, "day ranges ordered");
        }
    }

    #[test]
    fn duplicates_removed() {
        let sched = ScanSchedule::split([80u16, 80, 80, 443], 2);
        assert_eq!(sched.port_count(), 2);
    }

    #[test]
    fn more_days_than_ports() {
        let sched = ScanSchedule::split([80u16, 443], 7);
        assert_eq!(sched.port_count(), 2);
        assert_eq!(sched.day_count(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn zero_days_panics() {
        let _ = ScanSchedule::split([80u16], 0);
    }
}

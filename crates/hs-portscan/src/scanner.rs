//! The port scanner: probes every harvested onion address over a
//! multi-day schedule, through the simulated Tor network.

use std::collections::BTreeMap;

use onion_crypto::onion::OnionAddress;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tor_sim::clock::{SimTime, DAY};
use tor_sim::fault::RetryPolicy;
use tor_sim::network::{onion_unit_key, FetchOutcome, Network, WaveEffects};
use tor_sim::relay::Ipv4;
use tor_sim::service::{PortReply, ServiceBackend};
use wave::{mix2, WavePool, WaveStats};

use hs_world::service::SKYNET_PORT;
use hs_world::World;

use crate::schedule::ScanSchedule;

/// Scanner configuration.
#[derive(Clone, Debug)]
pub struct ScanConfig {
    /// First scan day (the paper: 2013-02-14).
    pub start: SimTime,
    /// Number of scan days (the paper: 7, Feb 14–21).
    pub days: usize,
    /// Extra never-open decoy ports probed alongside the candidate set,
    /// to exercise closed/timeout paths like a real sweep.
    pub decoy_ports: Vec<u16>,
    /// Retry budget for descriptor fetches that time out. On a
    /// fault-free network no fetch ever times out, so the policy is
    /// never consulted.
    pub retry: RetryPolicy,
    /// Seed for the per-target probe RNG streams. Each (day, target)
    /// unit derives its stream from this seed plus stable unit keys,
    /// never from shard or thread identity.
    pub seed: u64,
    /// Worker threads for each day's measurement wave. `1` (the
    /// default) runs the wave inline; any value produces byte-identical
    /// reports.
    pub threads: usize,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            start: SimTime::from_ymd(2013, 2, 14),
            days: 7,
            decoy_ports: vec![21, 23, 25, 110, 143, 993, 3306, 5900, 8443],
            retry: RetryPolicy::standard(),
            seed: 0x5ca7,
            threads: 1,
        }
    }
}

/// One conclusive probe result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeResult {
    /// Target address.
    pub onion: OnionAddress,
    /// Probed port.
    pub port: u16,
    /// The reply.
    pub reply: PortReply,
}

/// Everything the scan learned (Sec. III).
#[derive(Clone, Debug, Default)]
pub struct ScanReport {
    /// Addresses whose descriptor was fetchable at least once during
    /// the scan week.
    pub with_descriptors: usize,
    /// Total addresses probed.
    pub targets: usize,
    /// Open-port counts per port number (abnormal 55080 replies counted
    /// as open, per the paper's methodology).
    pub open_by_port: BTreeMap<u16, u32>,
    /// Open ports per onion address.
    pub open_by_onion: BTreeMap<OnionAddress, Vec<u16>>,
    /// Probes scheduled vs probes that concluded (service reachable on
    /// the day) — the paper's 87 % coverage statistic.
    pub probes_scheduled: u64,
    /// Probes that reached the service and produced a definite reply.
    pub probes_concluded: u64,
    /// Number of 55080 abnormal-close replies (the Skynet census).
    pub skynet_count: u32,
    /// Extra descriptor-fetch attempts beyond the first (retries after
    /// a timeout). Zero on a fault-free network.
    pub fetch_retries: u64,
    /// Fetches that succeeded only after at least one retry.
    pub fetch_recovered: u64,
    /// Fetches still timing out after the whole retry budget — their
    /// scheduled probes are lost for the day.
    pub fetch_gave_ups: u64,
    /// Targets whose descriptor vanished after being fetchable on an
    /// earlier scan day (the service is gone, not merely lossy).
    pub fetch_gone: u64,
    /// Total capped-exponential backoff charged across retries, in
    /// (accounted, never slept) seconds.
    pub retry_backoff_secs: u64,
    /// Distribution of descriptor-fetch attempts per target-day (1 on
    /// a fault-free network; the retry tail under loss).
    pub fetch_attempts: obs::Histogram,
    /// Distribution of accounted backoff seconds per retried fetch
    /// (fetches that needed no retry are not sampled).
    pub retry_backoff: obs::Histogram,
    /// One record per scan day, for the pipeline's trace exporter.
    pub days_trace: Vec<DayTrace>,
}

/// Per-day scan accounting: how much work the day scheduled and
/// concluded, and where in simulated time it ran. The pipeline turns
/// each record into one client-ops span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DayTrace {
    /// The scan day's start in simulated time.
    pub day: SimTime,
    /// Probes scheduled on this day.
    pub scheduled: u64,
    /// Probes concluded on this day.
    pub concluded: u64,
    /// Descriptor fetches that exhausted the retry budget on this day.
    pub gave_ups: u64,
}

impl ScanReport {
    /// Total open ports found (the paper: 22,007).
    pub fn total_open(&self) -> u32 {
        self.open_by_port.values().sum()
    }

    /// Number of distinct open port numbers (the paper: 495).
    pub fn unique_ports(&self) -> usize {
        self.open_by_port.len()
    }

    /// Scan coverage: concluded / scheduled (the paper: 0.87).
    pub fn coverage(&self) -> f64 {
        if self.probes_scheduled == 0 {
            return 0.0;
        }
        self.probes_concluded as f64 / self.probes_scheduled as f64
    }

    /// Fig. 1 rows: named ports with ≥ `threshold` hits, descending,
    /// plus a final aggregated "other" row.
    pub fn fig1_rows(&self, threshold: u32) -> Vec<(String, u32)> {
        let mut named: Vec<(String, u32)> = Vec::new();
        let mut other = 0u32;
        for (&port, &count) in &self.open_by_port {
            if count >= threshold {
                named.push((port_label(port), count));
            } else {
                other += count;
            }
        }
        named.sort_by_key(|row| std::cmp::Reverse(row.1));
        if other > 0 {
            named.push(("other".to_owned(), other));
        }
        named
    }

    /// The destinations a crawler would try next (every open port except
    /// 55080) — Sec. IV starts here.
    pub fn crawl_destinations(&self) -> Vec<(OnionAddress, u16)> {
        self.open_by_onion
            .iter()
            .flat_map(|(&onion, ports)| {
                ports
                    .iter()
                    .filter(|&&p| p != SKYNET_PORT)
                    .map(move |&p| (onion, p))
            })
            .collect()
    }
}

/// Human label for a port, matching Fig. 1's axis.
pub fn port_label(port: u16) -> String {
    match port {
        22 => "22-ssh".to_owned(),
        80 => "80-http".to_owned(),
        443 => "443-https".to_owned(),
        4050 => "4050".to_owned(),
        6667 => "6667-irc".to_owned(),
        11009 => "11009-TorChat".to_owned(),
        55080 => "55080-Skynet".to_owned(),
        p => p.to_string(),
    }
}

/// The scanner.
#[derive(Debug)]
pub struct Scanner {
    config: ScanConfig,
}

impl Scanner {
    /// Creates a scanner with the paper's schedule.
    pub fn new(config: ScanConfig) -> Self {
        Scanner { config }
    }

    /// Runs the scan of `targets` against the world, through the
    /// network.
    pub fn run(&self, net: &mut Network, world: &World, targets: &[OnionAddress]) -> ScanReport {
        self.run_traced(net, world, targets).0
    }

    /// Runs the scan and additionally returns per-day wave accounting
    /// (one [`WaveStats`] per scan day) for the pipeline's shard spans.
    ///
    /// Each scan day is a sequential *mutate* phase — advance simulated
    /// time, apply churn, revote, maintain guard sets — followed by a
    /// read-only *measurement wave*: one work unit per target, sharded
    /// across [`ScanConfig::threads`] workers. A unit fetches the
    /// target's descriptor (unit-keyed RNG stream) and, on success,
    /// probes the day's scheduled ports; its side effects and probe
    /// replies are merged back in target order, so the report is
    /// byte-identical at any thread count. Unreachable services leave
    /// their scheduled probes unconcluded — the coverage gap.
    pub fn run_traced(
        &self,
        net: &mut Network,
        world: &World,
        targets: &[OnionAddress],
    ) -> (ScanReport, Vec<WaveStats>) {
        // Candidate ports: everything any service listens on, plus the
        // Skynet oracle port and the decoys.
        let mut candidates: Vec<u16> = world
            .services()
            .iter()
            .flat_map(|s| s.open_ports())
            .collect();
        candidates.push(SKYNET_PORT);
        candidates.extend_from_slice(&self.config.decoy_ports);
        let schedule = ScanSchedule::split(candidates, self.config.days);

        let scanner_client = net.add_client(Ipv4::new(198, 18, 0, 1));
        let mut report = ScanReport {
            targets: targets.len(),
            ..ScanReport::default()
        };
        let mut had_descriptor = vec![false; targets.len()];
        let pool = WavePool::new(self.config.threads);
        let mut waves = Vec::with_capacity(self.config.days);

        for day in 0..self.config.days {
            // Mutate phase: synchronise simulated time to the scan day,
            // let churn take services up/down, and refresh guard sets.
            let day_time = self.config.start + (day as u64) * DAY;
            while net.time() < day_time {
                net.advance_hours(1);
            }
            world.apply_churn(net, net.time());
            net.revote();
            net.prepare_wave();

            let ports = schedule.ports_on(day).to_vec();
            let (day_scheduled0, day_concluded0, day_gave_ups0) = (
                report.probes_scheduled,
                report.probes_concluded,
                report.fetch_gave_ups,
            );

            // Measurement wave: one read-only unit per target.
            let day_seed = mix2(self.config.seed, day as u64);
            let now = net.time();
            let retry = &self.config.retry;
            let ports_ref = &ports;
            let net_ref: &Network = net;
            let (units, stats) = pool.map(targets, |_, &onion| {
                let unit_key = mix2(day_seed, onion_unit_key(onion));
                let mut rng = StdRng::seed_from_u64(unit_key);
                let mut fx = WaveEffects::new(unit_key);
                let fetched = net_ref.client_fetch_with_retry_readonly(
                    scanner_client,
                    onion,
                    retry,
                    &mut rng,
                    &mut fx,
                );
                let replies: Vec<PortReply> = if fetched.outcome == FetchOutcome::Found {
                    ports_ref
                        .iter()
                        .map(|&port| world.connect(onion, port, now))
                        .collect()
                } else {
                    Vec::new()
                };
                (fetched, replies, fx)
            });
            waves.push(stats);

            // Merge in canonical target order.
            for ((ti, &onion), (fetched, replies, fx)) in targets.iter().enumerate().zip(units) {
                net.apply_wave_effects(fx);
                report.probes_scheduled += ports.len() as u64;
                report.fetch_retries += u64::from(fetched.attempts - 1);
                report.retry_backoff_secs += fetched.backoff_secs;
                report.fetch_attempts.record(u64::from(fetched.attempts));
                if fetched.attempts > 1 {
                    report.retry_backoff.record(fetched.backoff_secs);
                }
                match fetched.outcome {
                    FetchOutcome::Found => {
                        if fetched.attempts > 1 {
                            report.fetch_recovered += 1;
                        }
                    }
                    FetchOutcome::Timeout => {
                        report.fetch_gave_ups += 1;
                        continue;
                    }
                    FetchOutcome::NotFound if had_descriptor[ti] => {
                        report.fetch_gone += 1;
                        continue;
                    }
                    _ => continue,
                }
                had_descriptor[ti] = true;
                for (&port, &reply) in ports.iter().zip(&replies) {
                    match reply {
                        PortReply::Timeout => {}
                        PortReply::Closed => report.probes_concluded += 1,
                        PortReply::Open | PortReply::AbnormalClose => {
                            report.probes_concluded += 1;
                            *report.open_by_port.entry(port).or_insert(0) += 1;
                            report.open_by_onion.entry(onion).or_default().push(port);
                            if reply == PortReply::AbnormalClose && port == SKYNET_PORT {
                                report.skynet_count += 1;
                            }
                        }
                    }
                }
            }
            report.days_trace.push(DayTrace {
                day: day_time,
                scheduled: report.probes_scheduled - day_scheduled0,
                concluded: report.probes_concluded - day_concluded0,
                gave_ups: report.fetch_gave_ups - day_gave_ups0,
            });
        }

        report.with_descriptors = had_descriptor.iter().filter(|&&b| b).count();
        for ports in report.open_by_onion.values_mut() {
            ports.sort_unstable();
            ports.dedup();
        }
        (report, waves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_world::WorldConfig;
    use tor_sim::network::NetworkBuilder;

    fn scan_small() -> (ScanReport, World) {
        let world = World::generate(WorldConfig {
            seed: 5,
            scale: 0.01,
        });
        let mut net = NetworkBuilder::new()
            .relays(120)
            .seed(5)
            .start(SimTime::from_ymd(2013, 2, 13))
            .build();
        world.register_all(&mut net);
        net.advance_hours(1);
        let targets: Vec<OnionAddress> = world.services().iter().map(|s| s.onion).collect();
        let config = ScanConfig {
            days: 3,
            ..ScanConfig::default()
        };
        let report = Scanner::new(config).run(&mut net, &world, &targets);
        (report, world)
    }

    #[test]
    fn skynet_dominates_open_ports() {
        let (report, _) = scan_small();
        let rows = report.fig1_rows(1);
        assert_eq!(rows[0].0, "55080-Skynet", "rows: {rows:?}");
        // Port 80 among the top rows.
        assert!(rows.iter().take(4).any(|(l, _)| l == "80-http"));
    }

    #[test]
    fn coverage_in_plausible_band() {
        let (report, _) = scan_small();
        let cov = report.coverage();
        assert!((0.55..0.999).contains(&cov), "coverage {cov}");
    }

    #[test]
    fn descriptors_found_for_most_live_services() {
        let (report, world) = scan_small();
        let publishing = world
            .services()
            .iter()
            .filter(|s| s.publishes_descriptors())
            .count();
        assert!(report.with_descriptors > publishing * 8 / 10);
        assert!(report.with_descriptors <= publishing);
    }

    #[test]
    fn crawl_destinations_exclude_skynet_port() {
        let (report, _) = scan_small();
        assert!(report
            .crawl_destinations()
            .iter()
            .all(|&(_, p)| p != SKYNET_PORT));
        assert!(!report.crawl_destinations().is_empty());
    }

    #[test]
    fn decoy_ports_never_open() {
        let (report, _) = scan_small();
        for decoy in [21u16, 23, 25] {
            assert!(!report.open_by_port.contains_key(&decoy), "port {decoy}");
        }
    }

    #[test]
    fn open_lists_deduplicated() {
        let (report, _) = scan_small();
        for ports in report.open_by_onion.values() {
            let mut sorted = ports.clone();
            sorted.dedup();
            assert_eq!(&sorted, ports);
        }
    }

    #[test]
    fn fault_free_scan_never_retries() {
        let (report, _) = scan_small();
        assert_eq!(report.fetch_retries, 0);
        assert_eq!(report.fetch_recovered, 0);
        assert_eq!(report.fetch_gave_ups, 0);
        assert_eq!(report.retry_backoff_secs, 0);
        // Histograms agree: one single-attempt sample per target-day,
        // no backoff samples at all.
        assert_eq!(report.fetch_attempts.count(), 3 * report.targets as u64);
        assert_eq!(report.fetch_attempts.max(), 1);
        assert_eq!(report.fetch_attempts.p99(), 1);
        assert_eq!(report.retry_backoff.count(), 0);
    }

    #[test]
    fn day_traces_partition_the_scan() {
        let (report, _) = scan_small();
        assert_eq!(report.days_trace.len(), 3);
        let scheduled: u64 = report.days_trace.iter().map(|d| d.scheduled).sum();
        let concluded: u64 = report.days_trace.iter().map(|d| d.concluded).sum();
        assert_eq!(scheduled, report.probes_scheduled);
        assert_eq!(concluded, report.probes_concluded);
        for pair in report.days_trace.windows(2) {
            assert!(pair[0].day < pair[1].day, "days are ordered");
        }
    }

    fn scan_with_faults(plan: tor_sim::FaultPlan) -> ScanReport {
        let world = World::generate(WorldConfig {
            seed: 5,
            scale: 0.01,
        });
        let mut net = NetworkBuilder::new()
            .relays(120)
            .seed(5)
            .start(SimTime::from_ymd(2013, 2, 13))
            .faults(plan)
            .build();
        world.register_all(&mut net);
        net.advance_hours(1);
        let targets: Vec<OnionAddress> = world.services().iter().map(|s| s.onion).collect();
        let config = ScanConfig {
            days: 2,
            ..ScanConfig::default()
        };
        Scanner::new(config).run(&mut net, &world, &targets)
    }

    #[test]
    fn total_drop_rate_exhausts_every_retry_budget() {
        let plan = tor_sim::FaultPlan {
            seed: 17,
            hsdir_drop_rate: 1.0,
            ..tor_sim::FaultPlan::none()
        };
        let report = scan_with_faults(plan);
        // Every target-day fetch burned its whole budget and gave up:
        // nothing was scanned, but the scanner itself survived.
        assert_eq!(report.fetch_gave_ups, 2 * report.targets as u64);
        assert_eq!(
            report.fetch_retries,
            report.fetch_gave_ups * u64::from(RetryPolicy::standard().max_attempts - 1)
        );
        assert!(report.retry_backoff_secs > 0);
        assert_eq!(report.with_descriptors, 0);
        assert_eq!(report.total_open(), 0);
        assert_eq!(report.coverage(), 0.0);
        // Every fetch burned the full budget: the attempts histogram is
        // a spike at max_attempts, and every fetch left a backoff sample.
        let budget = u64::from(RetryPolicy::standard().max_attempts);
        assert_eq!(report.fetch_attempts.min(), budget);
        assert_eq!(report.fetch_attempts.max(), budget);
        assert_eq!(report.retry_backoff.count(), report.fetch_gave_ups);
        assert!(report.retry_backoff.min() > 0);
    }

    #[test]
    fn moderate_drop_rate_recovers_via_retry() {
        // High enough that a published descriptor sometimes times out
        // outright (all six responsible HSDirs must drop: ~3 % per
        // fetch at 0.55), low enough that a retry almost always
        // recovers.
        let plan = tor_sim::FaultPlan {
            seed: 17,
            hsdir_drop_rate: 0.55,
            ..tor_sim::FaultPlan::none()
        };
        let report = scan_with_faults(plan);
        assert!(report.fetch_retries > 0, "drops must trigger retries");
        assert!(
            report.fetch_recovered > 0,
            "some fetches must recover on a later attempt"
        );
        assert!(
            report.with_descriptors > 0,
            "the scan still finds descriptors through the loss"
        );
    }
}

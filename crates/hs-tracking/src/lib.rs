//! Detecting trackers of Tor hidden services in the public consensus
//! history (Sec. VII of Biryukov et al., ICDCS 2014).
//!
//! Anyone can recompute which relays were responsible for a hidden
//! service's descriptors on any past day: the descriptor IDs are a
//! deterministic function of the onion address and the date, and the
//! consensus archive records every relay's fingerprint and flags. A
//! relay that keeps landing *just after* the target's descriptor IDs —
//! especially right after a fingerprint change — is tracking the
//! service. Applied to Silk Road, the paper found three campaigns
//! (one being the authors' own experiments).
//!
//! - [`history`] — the generated 3-year consensus archive
//!   (757 → 1,862 HSDirs);
//! - [`scenario`] — injection of the three campaigns + the year-1
//!   oddity;
//! - [`detector`] — the statistical rules and per-server evidence.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod detector;
pub mod history;
pub mod scenario;

pub use detector::{
    DetectorConfig, ServerKey, ServerReport, Suspicion, TrackingAnalysis, TrackingDetector,
};
pub use history::{ArchivedRelay, ConsensusArchive, DailyConsensus, HistoryConfig};

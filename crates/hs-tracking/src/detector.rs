//! The Sec. VII tracking detector: statistical analysis of the
//! consensus archive to find relays that positioned themselves as a
//! hidden service's responsible HSDirs on purpose.
//!
//! Rules (as in the paper):
//!
//! 1. **Binomial outlier** — a relay responsible for more time periods
//!    than `μ + 3σ` under the null model `p = 6 / N_hsdir`.
//! 2. **Fingerprint change before responsibility** — the server (keyed
//!    by IP:port) changed its fingerprint shortly before becoming a
//!    responsible HSDir; repeated occurrences are flagged.
//! 3. **Instant HSDir** — became responsible immediately after the
//!    minimum 25 h flag-qualification time following its first
//!    appearance.
//! 4. **Distance ratio** — `avg_dist / distance` between the
//!    descriptor ID and the relay's fingerprint; values ≫ 1 betray
//!    brute-forced placement (the paper treats > 100 as suspicious and
//!    observes > 10,000 for one campaign).
//! 5. **Fingerprint switch count** — many switches in a short period.
//! 6. **Consecutive periods** — holding responsibility for consecutive
//!    time periods.

use std::collections::HashMap;

use onion_crypto::descriptor::DescriptorId;
use onion_crypto::identity::Fingerprint;
use onion_crypto::onion::OnionAddress;
use onion_crypto::u160::U160;
use tor_sim::clock::SimTime;
use tor_sim::relay::Ipv4;

use crate::history::{ConsensusArchive, DailyConsensus};

/// Stable server key: fingerprints change, machines (IP:port) persist.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ServerKey {
    /// IP address.
    pub ip: Ipv4,
    /// OR port.
    pub or_port: u16,
}

/// Why a server was flagged.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suspicion {
    /// Rule 1: responsible more often than `μ + 3σ`.
    BinomialOutlier,
    /// Rule 2: fingerprint changed right before responsibility, more
    /// than once.
    FingerprintChangeBeforeResponsible,
    /// Rule 3: responsible immediately after first appearing.
    InstantHsdir,
    /// Rule 4: placement ratio above the suspicious threshold.
    CloseDistance,
    /// Rule 5: many fingerprint switches.
    ManySwitches,
    /// Rule 6: responsible on consecutive periods.
    ConsecutivePeriods,
}

/// Per-server evidence accumulated over the analysis window.
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// The server.
    pub key: ServerKey,
    /// Nicknames seen (usually one).
    pub nicknames: Vec<String>,
    /// Days on which the server was among the 6 responsible HSDirs.
    pub responsible_days: Vec<SimTime>,
    /// Expected responsible-day count under the null model.
    pub expected: f64,
    /// Standard deviation under the null model.
    pub sigma: f64,
    /// Total fingerprint switches observed.
    pub fingerprint_switches: u32,
    /// Switches that happened within 2 days before a responsible day.
    pub switches_before_responsible: u32,
    /// Times the server was responsible within 2 days of first
    /// appearing in the archive.
    pub instant_hsdir_events: u32,
    /// Maximum `avg_dist / distance` ratio over responsible days.
    pub max_ratio: f64,
    /// Longest run of consecutive responsible days.
    pub max_consecutive: u32,
    /// Rules that fired.
    pub suspicions: Vec<Suspicion>,
}

impl ServerReport {
    /// Whether any rule fired.
    pub fn is_suspicious(&self) -> bool {
        !self.suspicions.is_empty()
    }

    /// The paper's strongest combined signal: close placement together
    /// with corroborating behaviour (repeated fingerprint changes,
    /// repeated instant-HSDir appearances, or camping on consecutive
    /// periods) — or a placement so close that chance is excluded
    /// outright. A single lucky close landing is expressly *not*
    /// tracking: the paper notes one-period closeness is statistically
    /// indistinguishable from chance.
    pub fn is_tracking(&self) -> bool {
        let corroborated = self.suspicions.contains(&Suspicion::CloseDistance)
            && (self
                .suspicions
                .contains(&Suspicion::FingerprintChangeBeforeResponsible)
                || self.suspicions.contains(&Suspicion::InstantHsdir)
                || self.suspicions.contains(&Suspicion::ConsecutivePeriods));
        corroborated || self.max_ratio > EXTREME_RATIO
    }
}

/// Ratio beyond which a placement cannot plausibly be chance even
/// once (the Aug 31 takeover sat at ring distances of a few units —
/// ratios beyond 10^40).
pub const EXTREME_RATIO: f64 = 1e5;

/// Detector thresholds.
#[derive(Clone, Debug)]
pub struct DetectorConfig {
    /// Ratio above which placement counts as deliberate (paper: 100).
    pub ratio_threshold: f64,
    /// Fingerprint switches in the window counted as "many".
    pub switch_threshold: u32,
    /// Minimum repeated change-before-responsible events.
    pub change_before_threshold: u32,
    /// Consecutive responsible days counted as deliberate camping.
    pub consecutive_threshold: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            ratio_threshold: 100.0,
            switch_threshold: 4,
            change_before_threshold: 2,
            consecutive_threshold: 4,
        }
    }
}

/// Analysis results over one window (the paper analyses per year).
#[derive(Clone, Debug)]
pub struct TrackingAnalysis {
    /// Window start.
    pub start: SimTime,
    /// Window end (inclusive).
    pub end: SimTime,
    /// Average HSDir-ring size over the window.
    pub mean_hsdirs: f64,
    /// All servers that were ever responsible in the window.
    pub servers: Vec<ServerReport>,
}

impl TrackingAnalysis {
    /// Servers with at least one fired rule, strongest ratio first.
    pub fn suspicious(&self) -> Vec<&ServerReport> {
        let mut out: Vec<&ServerReport> =
            self.servers.iter().filter(|s| s.is_suspicious()).collect();
        out.sort_by(|a, b| b.max_ratio.total_cmp(&a.max_ratio));
        out
    }

    /// Servers meeting the combined tracking criterion.
    pub fn trackers(&self) -> Vec<&ServerReport> {
        let mut out: Vec<&ServerReport> = self.servers.iter().filter(|s| s.is_tracking()).collect();
        out.sort_by(|a, b| b.max_ratio.total_cmp(&a.max_ratio));
        out
    }
}

/// The tracking detector.
#[derive(Clone, Debug, Default)]
pub struct TrackingDetector {
    config: DetectorConfig,
}

impl TrackingDetector {
    /// Creates a detector with the paper's thresholds.
    pub fn new(config: DetectorConfig) -> Self {
        TrackingDetector { config }
    }

    /// Analyses `archive` for trackers of `target` within
    /// `[start, end]`.
    pub fn analyse(
        &self,
        archive: &ConsensusArchive,
        target: OnionAddress,
        start: SimTime,
        end: SimTime,
    ) -> TrackingAnalysis {
        // Pass 1: per-server presence/fingerprint timelines.
        #[derive(Default)]
        struct Track {
            nicknames: Vec<String>,
            first_seen: Option<SimTime>,
            last_fingerprint: Option<Fingerprint>,
            last_switch: Option<SimTime>,
            switches: u32,
            responsible: Vec<(SimTime, f64)>, // (day, ratio)
            switches_before: u32,
            instant_events: u32,
        }
        let mut tracks: HashMap<ServerKey, Track> = HashMap::new();

        let window_days: Vec<&DailyConsensus> = archive
            .days()
            .iter()
            .filter(|d| d.date >= start && d.date <= end)
            .collect();
        let days_in_window = window_days.len() as u32;

        // The expensive per-day work — sorting the ring and finding the
        // six responsible relays — is independent across days, so it is
        // fanned out over all cores (the paper's window is ~1,000 days
        // of ~1,800 relays each).
        let precomputed: Vec<(usize, Vec<(usize, U160)>)> =
            parallel_map(&window_days, |day| responsible_indices(day, target));

        for (day, (ring_len, responsible)) in window_days.iter().zip(&precomputed) {
            // Update server tracks (sequential: fingerprint-switch
            // detection is stateful across days).
            for relay in &day.relays {
                let key = ServerKey {
                    ip: relay.ip,
                    or_port: relay.or_port,
                };
                let track = tracks.entry(key).or_default();
                if !track.nicknames.iter().any(|n| n == &relay.nickname) {
                    track.nicknames.push(relay.nickname.clone());
                }
                if track.first_seen.is_none() {
                    track.first_seen = Some(day.date);
                }
                match track.last_fingerprint {
                    Some(prev) if prev != relay.fingerprint => {
                        track.switches += 1;
                        track.last_switch = Some(day.date);
                    }
                    _ => {}
                }
                track.last_fingerprint = Some(relay.fingerprint);
            }

            // Record responsibility with ratio.
            let avg_dist = if *ring_len == 0 {
                U160::MAX
            } else {
                U160::MAX.div_u64(*ring_len as u64)
            };
            for &(relay_idx, dist) in responsible {
                let relay = &day.relays[relay_idx];
                let key = ServerKey {
                    ip: relay.ip,
                    or_port: relay.or_port,
                };
                let ratio = avg_dist.to_f64() / dist.to_f64().max(1.0);
                let track = tracks.entry(key).or_default();
                track.responsible.push((day.date, ratio));
                if let Some(sw) = track.last_switch {
                    if day.date.since(sw) <= 2 * tor_sim::clock::DAY {
                        track.switches_before += 1;
                    }
                }
                if let Some(first) = track.first_seen {
                    if day.date.since(first) <= 2 * tor_sim::clock::DAY {
                        track.instant_events += 1;
                    }
                }
            }
        }

        let mean_hsdirs = if precomputed.is_empty() {
            0.0
        } else {
            precomputed.iter().map(|(n, _)| *n).sum::<usize>() as f64 / precomputed.len() as f64
        };

        // Pass 2: score.
        let p = if mean_hsdirs > 0.0 {
            6.0 / mean_hsdirs
        } else {
            0.0
        };
        let n = f64::from(days_in_window);
        let expected = n * p;
        let sigma = (n * p * (1.0 - p)).sqrt();

        let mut servers = Vec::new();
        for (key, track) in tracks {
            if track.responsible.is_empty() {
                continue;
            }
            let responsible_days: Vec<SimTime> =
                track.responsible.iter().map(|(d, _)| *d).collect();
            let max_ratio = track
                .responsible
                .iter()
                .map(|(_, r)| *r)
                .fold(0.0f64, f64::max);
            let max_consecutive = longest_consecutive_run(&responsible_days);

            let mut suspicions = Vec::new();
            if (responsible_days.len() as f64) > expected + 3.0 * sigma {
                suspicions.push(Suspicion::BinomialOutlier);
            }
            if track.switches_before >= self.config.change_before_threshold {
                suspicions.push(Suspicion::FingerprintChangeBeforeResponsible);
            }
            // A single instant-HSDir appearance happens by chance for
            // recently joined relays; require repetition or an
            // impossible ratio, mirroring the paper's "several times".
            if (track.instant_events >= 2 && max_ratio > self.config.ratio_threshold)
                || (track.instant_events >= 1 && max_ratio > EXTREME_RATIO)
            {
                suspicions.push(Suspicion::InstantHsdir);
            }
            if max_ratio > self.config.ratio_threshold {
                suspicions.push(Suspicion::CloseDistance);
            }
            if track.switches >= self.config.switch_threshold {
                suspicions.push(Suspicion::ManySwitches);
            }
            if max_consecutive >= self.config.consecutive_threshold {
                suspicions.push(Suspicion::ConsecutivePeriods);
            }

            servers.push(ServerReport {
                key,
                nicknames: track.nicknames,
                responsible_days,
                expected,
                sigma,
                fingerprint_switches: track.switches,
                switches_before_responsible: track.switches_before,
                instant_hsdir_events: track.instant_events,
                max_ratio,
                max_consecutive,
                suspicions,
            });
        }
        servers.sort_by(|a, b| b.max_ratio.total_cmp(&a.max_ratio));

        TrackingAnalysis {
            start,
            end,
            mean_hsdirs,
            servers,
        }
    }
}

/// The six responsible relays for `target` on one archived day, as
/// (index into `day.relays`, ring distance) pairs, plus the HSDir ring
/// size.
fn responsible_indices(day: &DailyConsensus, target: OnionAddress) -> (usize, Vec<(usize, U160)>) {
    let ring: Vec<(usize, U160)> = day
        .relays
        .iter()
        .enumerate()
        .filter(|(_, r)| r.hsdir)
        .map(|(i, r)| (i, r.fingerprint.to_u160()))
        .collect();
    if ring.is_empty() {
        return (0, Vec::new());
    }
    let ids = DescriptorId::pair_at(target, day.date.unix() + 43_200);
    let mut out = Vec::with_capacity(6);
    for id in ids {
        let pos = id.to_u160();
        let mut by_dist: Vec<(usize, U160)> = ring
            .iter()
            .map(|&(i, fp)| (i, pos.distance_to(fp)))
            .filter(|(_, d)| *d != U160::ZERO)
            .collect();
        by_dist.sort_by_key(|&(_, d)| d);
        out.extend(by_dist.into_iter().take(3));
    }
    (ring.len(), out)
}

/// Order-preserving parallel map over `items`, chunked across the
/// available cores via crossbeam's scoped threads. Falls back to a
/// sequential map for small inputs.
fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if threads <= 1 || items.len() < 64 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(|_| c.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope panicked")
}

/// Longest run of day-consecutive timestamps.
fn longest_consecutive_run(days: &[SimTime]) -> u32 {
    if days.is_empty() {
        return 0;
    }
    let mut sorted = days.to_vec();
    sorted.sort();
    sorted.dedup();
    let mut best = 1u32;
    let mut run = 1u32;
    for pair in sorted.windows(2) {
        if pair[1].since(pair[0]) == tor_sim::clock::DAY {
            run += 1;
            best = best.max(run);
        } else {
            run = 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryConfig;
    use crate::scenario;

    fn detector() -> TrackingDetector {
        TrackingDetector::new(DetectorConfig::default())
    }

    fn archive(start: (i64, u32, u32), end: (i64, u32, u32), seed: u64) -> ConsensusArchive {
        ConsensusArchive::generate(&HistoryConfig {
            start: SimTime::from_ymd(start.0, start.1, start.2),
            end: SimTime::from_ymd(end.0, end.1, end.2),
            hsdirs_at_start: 150,
            hsdirs_at_end: 170,
            seed,
        })
    }

    #[test]
    fn clean_archive_has_no_trackers() {
        let a = archive((2013, 3, 1), (2013, 4, 30), 11);
        let analysis = detector().analyse(
            &a,
            scenario::silkroad(),
            SimTime::from_ymd(2013, 3, 1),
            SimTime::from_ymd(2013, 4, 30),
        );
        assert!(analysis.trackers().is_empty(), "{:?}", analysis.trackers());
        assert!(analysis.mean_hsdirs > 100.0);
    }

    #[test]
    fn may_campaign_detected() {
        let mut a = archive((2013, 5, 1), (2013, 6, 30), 12);
        scenario::inject_may_campaign(&mut a, scenario::silkroad());
        let analysis = detector().analyse(
            &a,
            scenario::silkroad(),
            SimTime::from_ymd(2013, 5, 1),
            SimTime::from_ymd(2013, 6, 30),
        );
        let trackers = analysis.trackers();
        assert!(!trackers.is_empty());
        let t = trackers
            .iter()
            .find(|t| t.nicknames.iter().any(|n| n == "PrivacyRelayX"))
            .expect("campaign server flagged");
        assert!(t.max_ratio > 10_000.0, "ratio {}", t.max_ratio);
        assert!(t.suspicions.contains(&Suspicion::BinomialOutlier));
        assert!(t
            .suspicions
            .contains(&Suspicion::FingerprintChangeBeforeResponsible));
    }

    #[test]
    fn august_takeover_detected() {
        let mut a = archive((2013, 8, 1), (2013, 9, 30), 13);
        scenario::inject_august_takeover(&mut a, scenario::silkroad());
        let analysis = detector().analyse(
            &a,
            scenario::silkroad(),
            SimTime::from_ymd(2013, 8, 1),
            SimTime::from_ymd(2013, 9, 30),
        );
        let observers: Vec<_> = analysis
            .suspicious()
            .into_iter()
            .filter(|s| s.nicknames.iter().any(|n| n.starts_with("GlobalObserver")))
            .collect();
        assert_eq!(observers.len(), 3, "3 IPs flagged: {observers:?}");
        for o in &observers {
            assert!(o.max_ratio > 1e6, "tiny distances → huge ratio");
            assert!(o.suspicions.contains(&Suspicion::CloseDistance));
            assert!(o.suspicions.contains(&Suspicion::InstantHsdir));
        }
    }

    #[test]
    fn our_harvest_campaign_detected() {
        let mut a = archive((2012, 10, 1), (2013, 1, 31), 14);
        scenario::inject_our_harvest_relays(&mut a, scenario::silkroad());
        let analysis = detector().analyse(
            &a,
            scenario::silkroad(),
            SimTime::from_ymd(2012, 10, 1),
            SimTime::from_ymd(2013, 1, 31),
        );
        let ours: Vec<_> = analysis
            .suspicious()
            .into_iter()
            .filter(|s| s.nicknames.iter().any(|n| n.starts_with("unnamed")))
            .collect();
        assert!(!ours.is_empty(), "our relays flagged");
        for o in &ours {
            assert!(
                o.max_ratio > 100.0 && o.max_ratio < 50_000.0,
                "{}",
                o.max_ratio
            );
        }
    }

    #[test]
    fn consecutive_run_helper() {
        let d = |n: u64| SimTime::from_ymd(2013, 1, 1) + n * tor_sim::clock::DAY;
        assert_eq!(longest_consecutive_run(&[]), 0);
        assert_eq!(longest_consecutive_run(&[d(1)]), 1);
        assert_eq!(longest_consecutive_run(&[d(1), d(2), d(3), d(7), d(8)]), 3);
        assert_eq!(longest_consecutive_run(&[d(5), d(1), d(2)]), 2);
    }

    #[test]
    fn binomial_null_model_scales() {
        let a = archive((2013, 3, 1), (2013, 3, 31), 15);
        let analysis = detector().analyse(
            &a,
            scenario::silkroad(),
            SimTime::from_ymd(2013, 3, 1),
            SimTime::from_ymd(2013, 3, 31),
        );
        // μ = n·p with n = 31 days, p = 6/N.
        let expected = 31.0 * 6.0 / analysis.mean_hsdirs;
        let server = &analysis.servers[0];
        assert!((server.expected - expected).abs() < 0.5);
        assert!(server.sigma > 0.0);
    }
}

//! Injection of the tracking campaigns the paper found in the real
//! consensus archive (Sec. VII), plus the year-1 oddity.
//!
//! Three campaigns target the Silk Road main address
//! (`silkroadvb5piz3r.onion`):
//!
//! 1. **Ours** (Nov 2012 – Jan 2013): the harvesting experiment's
//!    relays, repeatedly changing fingerprints to positions at ratio
//!    ≳ 100 from the descriptor ID.
//! 2. **May 21 – Jun 3 2013**: servers sharing one nickname taking
//!    over 1 of 6 responsible slots nearly every period (4 skipped),
//!    fingerprints at ratio > 10,000.
//! 3. **Aug 31 2013**: six relays with common nickname parts on
//!    3 IP addresses seizing *all six* responsible slots for 24 h,
//!    at minuscule ring distances.
//!
//! Plus the year-1 oddity: one server that normally lacks the HSDir
//! flag but holds it on exactly the 3 occasions Silk Road would pick
//! it as responsible.

use onion_crypto::descriptor::DescriptorId;
use onion_crypto::identity::Fingerprint;
use onion_crypto::onion::OnionAddress;
use onion_crypto::u160::U160;
use tor_sim::clock::SimTime;
use tor_sim::relay::Ipv4;

use crate::history::{ArchivedRelay, ConsensusArchive};

/// The Silk Road onion address the paper analysed.
pub fn silkroad() -> OnionAddress {
    "silkroadvb5piz3r".parse().expect("valid label")
}

/// Injects all three campaigns and the year-1 oddity.
pub fn inject_all(archive: &mut ConsensusArchive, target: OnionAddress) {
    inject_our_harvest_relays(archive, target);
    inject_may_campaign(archive, target);
    inject_august_takeover(archive, target);
    inject_year1_oddity(archive, target);
}

/// A fingerprint at forward ring distance `dist` past the
/// replica-`replica` descriptor ID of `target` on `date`.
fn placed_fingerprint(
    target: OnionAddress,
    date: SimTime,
    replica: usize,
    dist: U160,
) -> Fingerprint {
    let ids = DescriptorId::pair_at(target, date.unix() + 43_200);
    let pos = ids[replica].to_u160().wrapping_add(dist);
    Fingerprint::from_digest(pos.into())
}

/// A ring distance of `avg_gap / ratio`, where `avg_gap = 2^160 / n`.
fn gap_fraction(hsdirs: u64, ratio: u64) -> U160 {
    U160::MAX.div_u64(hsdirs.max(1)).div_u64(ratio.max(1))
}

/// Campaign 1 — our own harvesting relays (ratio ≳ 100).
///
/// Two servers (stable IPs) re-position on multiple occasions between
/// 2012-11-05 and 2013-01-20, at a distance of `avg_gap / 150` from
/// the descriptor ID.
pub fn inject_our_harvest_relays(archive: &mut ConsensusArchive, target: OnionAddress) {
    let occasions = [
        SimTime::from_ymd(2012, 11, 5),
        SimTime::from_ymd(2012, 11, 28),
        SimTime::from_ymd(2012, 12, 14),
        SimTime::from_ymd(2013, 1, 6),
        SimTime::from_ymd(2013, 1, 20),
    ];
    for day in archive.days_mut().iter_mut() {
        if !occasions.contains(&day.date) {
            continue;
        }
        let hsdirs = day.hsdir_count().max(1) as u64;
        // ratio ≈ 150 (> the 100 threshold the paper mentions).
        let dist = gap_fraction(hsdirs, 150);
        for (srv, replica) in [(0usize, 0usize), (1, 1)] {
            day.relays.push(ArchivedRelay {
                fingerprint: placed_fingerprint(target, day.date, replica, dist),
                nickname: format!("unnamed{srv}"),
                ip: Ipv4::new(198, 18, 50, srv as u8 + 1),
                or_port: 9001,
                hsdir: true,
            });
        }
    }
}

/// Campaign 2 — the May 21 – Jun 3 2013 tracker (ratio > 10,000).
pub fn inject_may_campaign(archive: &mut ConsensusArchive, target: OnionAddress) {
    let start = SimTime::from_ymd(2013, 5, 21);
    let end = SimTime::from_ymd(2013, 6, 3);
    // Four skipped periods, as the paper observed.
    let skipped = [
        SimTime::from_ymd(2013, 5, 24),
        SimTime::from_ymd(2013, 5, 27),
        SimTime::from_ymd(2013, 5, 30),
        SimTime::from_ymd(2013, 6, 1),
    ];
    for day in archive.days_mut().iter_mut() {
        if day.date < start || day.date > end || skipped.contains(&day.date) {
            continue;
        }
        let hsdirs = day.hsdir_count().max(1) as u64;
        // ratio > 10k: distance < avg_gap / 10_000.
        let dist = gap_fraction(hsdirs, 20_000);
        day.relays.push(ArchivedRelay {
            fingerprint: placed_fingerprint(target, day.date, 0, dist),
            nickname: "PrivacyRelayX".to_owned(),
            ip: Ipv4::new(198, 18, 60, 1),
            or_port: 443,
            hsdir: true,
        });
    }
}

/// Campaign 3 — the Aug 31 2013 full takeover: six relays, shared
/// nickname parts, three IPs, all six responsible slots, tiny
/// distances.
pub fn inject_august_takeover(archive: &mut ConsensusArchive, target: OnionAddress) {
    let day_date = SimTime::from_ymd(2013, 8, 31);
    for day in archive.days_mut().iter_mut() {
        if day.date != day_date {
            continue;
        }
        for slot in 0..6usize {
            let replica = slot / 3;
            // Minuscule distances (1, 2, 3 ring units): the paper calls
            // these "very small".
            let dist = U160::from_u64((slot % 3) as u64 + 1);
            day.relays.push(ArchivedRelay {
                fingerprint: placed_fingerprint(target, day.date, replica, dist),
                nickname: format!("GlobalObserver{slot}"),
                ip: Ipv4::new(198, 18, 70, (slot / 2) as u8 + 1),
                or_port: 9001,
                hsdir: true,
            });
        }
    }
}

/// Year-1 oddity: a server without the HSDir flag except on the three
/// days Silk Road would choose it — modelled by injecting it *with*
/// the flag on exactly those days (and without, on surrounding days).
pub fn inject_year1_oddity(archive: &mut ConsensusArchive, target: OnionAddress) {
    let occasions = [
        SimTime::from_ymd(2011, 4, 11),
        SimTime::from_ymd(2011, 7, 2),
        SimTime::from_ymd(2011, 11, 19),
    ];
    let year1_end = SimTime::from_ymd(2011, 12, 31);
    for day in archive.days_mut().iter_mut() {
        if day.date > year1_end {
            continue;
        }
        let on_occasion = occasions.contains(&day.date);
        let hsdirs = day.hsdir_count().max(1) as u64;
        // Close enough to be responsible when flagged, but a chance-
        // plausible distance (ratio ~ 2) — the paper could not prove
        // intent, only "strange behaviour".
        let dist = gap_fraction(hsdirs, 2);
        day.relays.push(ArchivedRelay {
            fingerprint: if on_occasion {
                placed_fingerprint(target, day.date, 1, dist)
            } else {
                // A stable unrelated position on ordinary days.
                Fingerprint::from_digest(onion_crypto::sha1::Sha1::digest(b"oddity"))
            },
            nickname: "flickerflag".to_owned(),
            ip: Ipv4::new(198, 18, 80, 1),
            or_port: 9030,
            hsdir: on_occasion,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryConfig;

    fn mini_archive() -> ConsensusArchive {
        ConsensusArchive::generate(&HistoryConfig {
            start: SimTime::from_ymd(2013, 8, 25),
            end: SimTime::from_ymd(2013, 9, 5),
            hsdirs_at_start: 120,
            hsdirs_at_end: 130,
            seed: 3,
        })
    }

    #[test]
    fn august_takeover_controls_all_slots() {
        let mut archive = mini_archive();
        let target = silkroad();
        inject_august_takeover(&mut archive, target);
        let day = archive.day_at(SimTime::from_ymd(2013, 8, 31)).unwrap();

        // Recompute responsibility: the 3 ring successors of each
        // descriptor ID must all be GlobalObserver relays.
        let ids = DescriptorId::pair_at(target, day.date.unix() + 43_200);
        let ring = day.hsdir_ring();
        for id in ids {
            let pos = id.to_u160();
            let mut successors: Vec<&&ArchivedRelay> = ring
                .iter()
                .filter(|r| pos.distance_to(r.fingerprint.to_u160()) != onion_crypto::U160::ZERO)
                .collect();
            successors.sort_by_key(|r| pos.distance_to(r.fingerprint.to_u160()));
            for r in successors.iter().take(3) {
                assert!(
                    r.nickname.starts_with("GlobalObserver"),
                    "slot held by {}",
                    r.nickname
                );
            }
        }
    }

    #[test]
    fn may_campaign_present_on_most_days() {
        let mut archive = ConsensusArchive::generate(&HistoryConfig {
            start: SimTime::from_ymd(2013, 5, 15),
            end: SimTime::from_ymd(2013, 6, 10),
            hsdirs_at_start: 120,
            hsdirs_at_end: 130,
            seed: 4,
        });
        inject_may_campaign(&mut archive, silkroad());
        let present = archive
            .days()
            .iter()
            .filter(|d| d.relays.iter().any(|r| r.nickname == "PrivacyRelayX"))
            .count();
        // 14-day window minus 4 skips.
        assert_eq!(present, 10);
    }

    #[test]
    fn oddity_flag_only_on_occasions() {
        let mut archive = ConsensusArchive::generate(&HistoryConfig {
            start: SimTime::from_ymd(2011, 4, 1),
            end: SimTime::from_ymd(2011, 4, 30),
            hsdirs_at_start: 100,
            hsdirs_at_end: 105,
            seed: 5,
        });
        inject_year1_oddity(&mut archive, silkroad());
        for day in archive.days() {
            let odd = day.relays.iter().find(|r| r.nickname == "flickerflag");
            let odd = odd.expect("oddity present every day in year 1");
            let expect_flag = day.date == SimTime::from_ymd(2011, 4, 11);
            assert_eq!(odd.hsdir, expect_flag, "{}", day.date);
        }
    }

    #[test]
    fn silkroad_parses() {
        assert_eq!(silkroad().label(), "silkroadvb5piz3r");
    }
}

//! The consensus archive: a generated three-year daily history of the
//! Tor relay population (2011-02-01 … 2013-10-31), matching the HSDir
//! growth the paper reports (757 → 1,862) and carrying enough per-relay
//! detail (fingerprint, nickname, IP, first-seen) for the Sec. VII
//! tracking detector.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use onion_crypto::identity::{Fingerprint, SimIdentity};
use tor_sim::clock::{SimTime, DAY};
use tor_sim::relay::Ipv4;

/// One relay as archived in a daily consensus.
#[derive(Clone, Debug)]
pub struct ArchivedRelay {
    /// Identity fingerprint on that day.
    pub fingerprint: Fingerprint,
    /// Nickname.
    pub nickname: String,
    /// IP address — the stable key a long-term observer uses to track
    /// a *server* across fingerprint changes.
    pub ip: Ipv4,
    /// OR port.
    pub or_port: u16,
    /// Whether the relay carried the HSDir flag that day.
    pub hsdir: bool,
}

/// One day of the archive.
#[derive(Clone, Debug)]
pub struct DailyConsensus {
    /// Midnight timestamp of the day.
    pub date: SimTime,
    /// Relays listed that day.
    pub relays: Vec<ArchivedRelay>,
}

impl DailyConsensus {
    /// Number of HSDir-flagged relays.
    pub fn hsdir_count(&self) -> usize {
        self.relays.iter().filter(|r| r.hsdir).count()
    }

    /// HSDir fingerprints, sorted — the day's ring.
    pub fn hsdir_ring(&self) -> Vec<&ArchivedRelay> {
        let mut ring: Vec<&ArchivedRelay> = self.relays.iter().filter(|r| r.hsdir).collect();
        ring.sort_by_key(|r| r.fingerprint);
        ring
    }
}

/// The full archive.
#[derive(Clone, Debug)]
pub struct ConsensusArchive {
    days: Vec<DailyConsensus>,
}

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct HistoryConfig {
    /// First archived day.
    pub start: SimTime,
    /// Last archived day (inclusive).
    pub end: SimTime,
    /// HSDir population on the first day (paper: 757).
    pub hsdirs_at_start: u32,
    /// HSDir population on the last day (paper: 1,862).
    pub hsdirs_at_end: u32,
    /// Seed.
    pub seed: u64,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        HistoryConfig {
            start: SimTime::from_ymd(2011, 2, 1),
            end: SimTime::from_ymd(2013, 10, 31),
            hsdirs_at_start: 757,
            hsdirs_at_end: 1_862,
            seed: 0x0511_c0ad,
        }
    }
}

/// A simulated honest server for archive generation.
#[derive(Clone, Debug)]
struct HonestServer {
    ip: Ipv4,
    or_port: u16,
    nickname: String,
    fingerprint: Fingerprint,
    join_day: usize,
    leave_day: usize,
    daily_up: f64,
    /// Days on which this operator rotates keys (benign churn).
    key_rotation_days: Vec<usize>,
    up_streak: u32,
}

impl ConsensusArchive {
    /// Generates the honest background population.
    pub fn generate(config: &HistoryConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let total_days = (config.end.since(config.start) / DAY) as usize + 1;

        // Build a server pool sized so the per-day HSDir population
        // grows linearly from start to end. Servers join at staggered
        // days and live long.
        let target_end = config.hsdirs_at_end as usize;
        let pool_size = target_end * 108 / 100;
        let mut servers: Vec<HonestServer> = Vec::with_capacity(pool_size);
        for i in 0..pool_size {
            // Join day: a fraction online from day 0, the rest arriving
            // uniformly — approximating the linear growth.
            let initial = config.hsdirs_at_start as usize * 11 / 10;
            let join_day = if i < initial {
                0
            } else {
                rng.random_range(0..total_days)
            };
            let lifetime = rng.random_range(total_days / 2..total_days * 4);
            let daily_up = 0.90 + rng.random::<f64>() * 0.099;
            let rotations = if rng.random::<f64>() < 0.05 {
                // 5 % of operators rotate keys once or twice over 3 years.
                (0..rng.random_range(1..3usize))
                    .map(|_| rng.random_range(join_day + 1..total_days + 1))
                    .collect()
            } else {
                Vec::new()
            };
            let identity = SimIdentity::generate(&mut rng);
            servers.push(HonestServer {
                ip: Ipv4::new(
                    60 + (i / (200 * 200)) as u8,
                    (i / 200 % 200) as u8 + 1,
                    (i % 200) as u8 + 1,
                    1,
                ),
                or_port: 9001,
                nickname: format!("relay{i}"),
                fingerprint: identity.fingerprint(),
                join_day,
                leave_day: (join_day + lifetime).min(total_days + 1),
                daily_up,
                key_rotation_days: rotations,
                up_streak: 0,
            });
        }

        let mut days = Vec::with_capacity(total_days);
        for d in 0..total_days {
            let date = config.start + (d as u64) * DAY;
            let mut relays = Vec::new();
            for s in servers.iter_mut() {
                if d < s.join_day || d >= s.leave_day {
                    s.up_streak = 0;
                    continue;
                }
                if s.key_rotation_days.contains(&d) {
                    let identity = SimIdentity::generate(&mut rng);
                    s.fingerprint = identity.fingerprint();
                }
                if rng.random::<f64>() >= s.daily_up {
                    s.up_streak = 0;
                    continue;
                }
                s.up_streak += 1;
                relays.push(ArchivedRelay {
                    fingerprint: s.fingerprint,
                    nickname: s.nickname.clone(),
                    ip: s.ip,
                    or_port: s.or_port,
                    // HSDir needs ≥ 25 h continuous uptime: at daily
                    // granularity, up today and yesterday.
                    hsdir: s.up_streak >= 2,
                });
            }
            days.push(DailyConsensus { date, relays });
        }
        ConsensusArchive { days }
    }

    /// All archived days, oldest first.
    pub fn days(&self) -> &[DailyConsensus] {
        &self.days
    }

    /// Number of archived days.
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// The archived day containing `t`, if any.
    pub fn day_at(&self, t: SimTime) -> Option<&DailyConsensus> {
        let first = self.days.first()?.date;
        if t < first {
            return None;
        }
        let idx = (t.since(first) / DAY) as usize;
        self.days.get(idx)
    }

    /// Mutable access for scenario injection.
    pub(crate) fn days_mut(&mut self) -> &mut Vec<DailyConsensus> {
        &mut self.days
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> HistoryConfig {
        HistoryConfig {
            start: SimTime::from_ymd(2011, 2, 1),
            end: SimTime::from_ymd(2011, 6, 30),
            hsdirs_at_start: 100,
            hsdirs_at_end: 140,
            seed: 5,
        }
    }

    #[test]
    fn archive_spans_requested_window() {
        let a = ConsensusArchive::generate(&small_config());
        assert_eq!(a.len(), 150);
        assert_eq!(a.days()[0].date, SimTime::from_ymd(2011, 2, 1));
        assert_eq!(
            a.days().last().unwrap().date,
            SimTime::from_ymd(2011, 6, 30)
        );
    }

    #[test]
    fn hsdir_population_near_targets() {
        let a = ConsensusArchive::generate(&small_config());
        let first = a.days()[3].hsdir_count() as f64;
        let last = a.days().last().unwrap().hsdir_count() as f64;
        assert!((70.0..160.0).contains(&first), "start {first}");
        assert!(last >= first, "population grows: {first} → {last}");
    }

    #[test]
    fn full_scale_growth_matches_paper() {
        let a = ConsensusArchive::generate(&HistoryConfig::default());
        let first = a.days()[5].hsdir_count() as f64;
        let last = a.days().last().unwrap().hsdir_count() as f64;
        assert!((600.0..950.0).contains(&first), "2011 count {first}");
        assert!((1_500.0..2_200.0).contains(&last), "2013 count {last}");
    }

    #[test]
    fn ring_is_sorted() {
        let a = ConsensusArchive::generate(&small_config());
        let ring = a.days()[30].hsdir_ring();
        for pair in ring.windows(2) {
            assert!(pair[0].fingerprint <= pair[1].fingerprint);
        }
    }

    #[test]
    fn day_lookup() {
        let a = ConsensusArchive::generate(&small_config());
        let t = SimTime::from_ymd(2011, 3, 15) + 7 * 3600;
        let day = a.day_at(t).unwrap();
        assert_eq!(day.date, SimTime::from_ymd(2011, 3, 15));
        assert!(a.day_at(SimTime::from_ymd(2010, 1, 1)).is_none());
        assert!(a.day_at(SimTime::from_ymd(2020, 1, 1)).is_none());
    }

    #[test]
    fn some_benign_key_rotation_exists() {
        let a = ConsensusArchive::generate(&small_config());
        // Track fingerprints per IP over time: at least one honest
        // server rotates (5 % of pool over the window).
        use std::collections::HashMap;
        let mut fps: HashMap<Ipv4, std::collections::HashSet<Fingerprint>> = HashMap::new();
        for day in a.days() {
            for r in &day.relays {
                fps.entry(r.ip).or_default().insert(r.fingerprint);
            }
        }
        let rotated = fps.values().filter(|s| s.len() > 1).count();
        assert!(rotated >= 1, "some operators rotate keys");
        let stable = fps.values().filter(|s| s.len() == 1).count();
        assert!(stable > rotated * 5, "most never rotate");
    }

    #[test]
    fn determinism() {
        let a = ConsensusArchive::generate(&small_config());
        let b = ConsensusArchive::generate(&small_config());
        assert_eq!(a.days()[40].relays.len(), b.days()[40].relays.len());
        assert_eq!(
            a.days()[40].relays[0].fingerprint,
            b.days()[40].relays[0].fingerprint
        );
    }
}

//! The service-side interface between the Tor transport simulation and
//! whatever application worlds are plugged into it.
//!
//! `tor-sim` moves connections; it does not know what a "Skynet bot" or
//! an "adult site" is. The world generator (`hs-world`) implements
//! [`ServiceBackend`] to answer what happens when a TCP connection
//! reaches a given `onion:port` — the same split a real scanner sees:
//! Tor delivers the stream, the remote daemon decides the reply.

use onion_crypto::onion::OnionAddress;

use crate::clock::SimTime;

/// What a remote hidden service does with an incoming TCP connection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PortReply {
    /// The port accepted the connection.
    Open,
    /// The port refused the connection (service answered, port closed).
    Closed,
    /// The connection attempt timed out.
    Timeout,
    /// The port accepted and then immediately closed the stream with an
    /// error message different from an ordinary refusal — the behaviour
    /// the paper observed on Skynet's port 55080 and counted as open.
    AbnormalClose,
}

impl PortReply {
    /// Whether the paper's scanning methodology counts this reply as an
    /// open port (Sec. III counts `AbnormalClose` on 55080 as open).
    pub fn counts_as_open(self) -> bool {
        matches!(self, PortReply::Open | PortReply::AbnormalClose)
    }
}

/// Application-level behaviour of hidden services, provided by the world
/// generator.
pub trait ServiceBackend {
    /// The remote service's reaction to a TCP connection on `port`.
    fn connect(&self, onion: OnionAddress, port: u16, now: SimTime) -> PortReply;

    /// Whether the service is online (its Tor process is publishing
    /// descriptors and accepting rendezvous) at `now`.
    fn is_online(&self, onion: OnionAddress, now: SimTime) -> bool;
}

/// Outcome of a full client connection attempt through Tor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConnectOutcome {
    /// No responsible HSDir returned a descriptor.
    NoDescriptor,
    /// A descriptor was found but the rendezvous failed (service gone).
    ServiceUnreachable,
    /// The connection reached the service; the port replied.
    Port(PortReply),
}

impl ConnectOutcome {
    /// Whether the scan records an open port for this outcome.
    pub fn counts_as_open(self) -> bool {
        matches!(self, ConnectOutcome::Port(p) if p.counts_as_open())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_semantics() {
        assert!(PortReply::Open.counts_as_open());
        assert!(PortReply::AbnormalClose.counts_as_open());
        assert!(!PortReply::Closed.counts_as_open());
        assert!(!PortReply::Timeout.counts_as_open());
        assert!(ConnectOutcome::Port(PortReply::Open).counts_as_open());
        assert!(!ConnectOutcome::NoDescriptor.counts_as_open());
        assert!(!ConnectOutcome::ServiceUnreachable.counts_as_open());
    }
}

//! Simulation time.
//!
//! The simulator runs on plain Unix timestamps so that descriptor
//! time-periods, consensus timestamps and the paper's calendar dates
//! (harvest on 2013-02-04, Silk Road launch 2011-02, FBI takedown
//! 2013-10-02) all line up with the real protocol arithmetic.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Seconds per hour.
pub const HOUR: u64 = 3_600;
/// Seconds per day.
pub const DAY: u64 = 86_400;

/// A point in simulated time (Unix seconds, UTC).
///
/// # Examples
///
/// ```
/// use tor_sim::clock::SimTime;
///
/// let harvest = SimTime::from_ymd(2013, 2, 4);
/// assert_eq!(harvest.unix(), 1_359_936_000);
/// assert_eq!((harvest + tor_sim::clock::DAY).ymd(), (2013, 2, 5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The Unix epoch.
    pub const EPOCH: SimTime = SimTime(0);

    /// Wraps a Unix timestamp.
    pub fn from_unix(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Builds a timestamp for midnight UTC of a calendar date.
    ///
    /// # Panics
    ///
    /// Panics if the date is before 1970-01-01 or the month is invalid.
    pub fn from_ymd(year: i64, month: u32, day: u32) -> Self {
        SimTime(days_from_civil(year, month, day) as u64 * DAY)
    }

    /// The Unix timestamp in seconds.
    pub fn unix(self) -> u64 {
        self.0
    }

    /// The calendar date (UTC) of this timestamp.
    pub fn ymd(self) -> (i64, u32, u32) {
        civil_from_days((self.0 / DAY) as i64)
    }

    /// Whole days since the epoch.
    pub fn days(self) -> u64 {
        self.0 / DAY
    }

    /// Whole hours since the epoch.
    pub fn hours(self) -> u64 {
        self.0 / HOUR
    }

    /// Saturating difference in seconds (`self − earlier`), zero if
    /// `earlier` is later.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, secs: u64) -> SimTime {
        SimTime(self.0 + secs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, secs: u64) {
        self.0 += secs;
    }
}

impl Sub<u64> for SimTime {
    type Output = SimTime;
    fn sub(self, secs: u64) -> SimTime {
        SimTime(self.0.saturating_sub(secs))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        let rem = self.0 % DAY;
        write!(
            f,
            "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
            rem / HOUR,
            (rem % HOUR) / 60,
            rem % 60
        )
    }
}

/// Days since 1970-01-01 for a proleptic Gregorian date
/// (Howard Hinnant's `days_from_civil` algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    assert!((1..=12).contains(&m), "month out of range");
    assert!((1..=31).contains(&d), "day out of range");
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = ((m + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    let days = era * 146_097 + doe - 719_468;
    assert!(days >= 0, "dates before 1970 are not representable");
    days
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(SimTime::from_ymd(1970, 1, 1).unix(), 0);
    }

    #[test]
    fn paper_dates() {
        // 2013-02-04: the harvest date.
        assert_eq!(SimTime::from_ymd(2013, 2, 4).unix(), 1_359_936_000);
        // 2011-02-01: Silk Road launch; 2013-10-02: FBI takedown.
        assert_eq!(SimTime::from_ymd(2011, 2, 1).ymd(), (2011, 2, 1));
        assert_eq!(SimTime::from_ymd(2013, 10, 2).ymd(), (2013, 10, 2));
    }

    #[test]
    fn ymd_roundtrip_across_leap_years() {
        for year in [2011i64, 2012, 2013, 2016, 2100] {
            for (m, d) in [(1, 1), (2, 28), (3, 1), (12, 31)] {
                let t = SimTime::from_ymd(year, m, d);
                assert_eq!(t.ymd(), (year, m, d), "{year}-{m}-{d}");
            }
        }
        // 2012 was a leap year.
        assert_eq!(SimTime::from_ymd(2012, 2, 29).ymd(), (2012, 2, 29));
        assert_eq!(
            SimTime::from_ymd(2012, 3, 1).unix() - SimTime::from_ymd(2012, 2, 29).unix(),
            DAY
        );
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ymd(2013, 2, 4);
        assert_eq!((t + HOUR).hours(), t.hours() + 1);
        assert_eq!((t + DAY).days(), t.days() + 1);
        assert_eq!((t + 500).since(t), 500);
        assert_eq!(t.since(t + 500), 0);
        assert_eq!((t - DAY).ymd(), (2013, 2, 3));
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_ymd(2013, 2, 4) + 3 * HOUR + 25 * 60 + 7;
        assert_eq!(t.to_string(), "2013-02-04T03:25:07Z");
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn bad_month_panics() {
        let _ = SimTime::from_ymd(2013, 13, 1);
    }
}

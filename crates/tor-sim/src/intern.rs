//! Interned service identifiers and the struct-of-arrays service table.
//!
//! The network's per-service hot state used to live in six separate
//! `HashMap<OnionAddress, _>`s, which meant every consensus round paid
//! one hash + probe per service per column. At scale 1.0 (~40k hidden
//! services) that dominates the mutate phase. This module replaces the
//! maps with one *interner* — a stable `OnionAddress → ServiceId(u32)`
//! assignment — and dense `Vec` columns indexed by [`ServiceId`], so
//! the publish/fetch/coverage paths are allocation- and hash-free.
//!
//! # ID stability rules
//!
//! - A [`ServiceId`] is assigned on first sight of an onion address and
//!   **never changes or gets reused** afterwards: IDs are arena indices
//!   in registration order, which is deterministic (world generation
//!   order), so partitioning work by `ServiceId` is seed-stable.
//! - Churn never deletes a row. A service going offline flips its
//!   `online` column; phantom onions (fetched but never registered)
//!   intern with `online == None` so descriptor-cache bookkeeping
//!   stays per-row without making them look like registered services.
//! - Lookups by address go through one sorted index plus a small
//!   unsorted `pending` tail; [`ServiceInterner::flush`] merges the
//!   tail before any shared-`&self` wave so reads stay `O(log n)`.

use onion_crypto::descriptor::{DescriptorId, TimePeriod, REPLICAS};
use onion_crypto::onion::OnionAddress;

use crate::cells::TrafficSignature;
use crate::network::ServiceRecord;

/// A service's cached descriptor-ID pair and the period it was
/// computed in.
pub type DescPair = (TimePeriod, [DescriptorId; REPLICAS as usize]);

/// Pending-tail size at which [`ServiceInterner::intern`] merges the
/// tail into the sorted index on its own.
const PENDING_FLUSH: usize = 512;

/// Dense, stable handle for an interned onion address.
///
/// IDs are assigned in first-sight order and never reused; see the
/// module docs for the stability rules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ServiceId(pub u32);

impl ServiceId {
    /// The ID as a column index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The `OnionAddress → ServiceId` intern table.
///
/// Forward resolution (`ServiceId → OnionAddress`) is an arena index;
/// reverse lookup binary-searches a sorted vec, falling back to a
/// linear scan of the unsorted `pending` tail for addresses interned
/// since the last [`flush`](Self::flush).
#[derive(Clone, Debug, Default)]
pub struct ServiceInterner {
    /// Arena: `onions[id.index()]` is the interned address.
    onions: Vec<OnionAddress>,
    /// Sorted-by-address lookup index.
    sorted: Vec<(OnionAddress, ServiceId)>,
    /// Recently interned addresses not yet merged into `sorted`.
    pending: Vec<(OnionAddress, ServiceId)>,
}

impl ServiceInterner {
    /// Number of interned addresses (registered services and phantoms).
    pub fn len(&self) -> usize {
        self.onions.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.onions.is_empty()
    }

    /// The ID of an already-interned address, if any.
    pub fn get(&self, onion: OnionAddress) -> Option<ServiceId> {
        if let Ok(i) = self.sorted.binary_search_by_key(&onion, |&(o, _)| o) {
            return Some(self.sorted[i].1);
        }
        self.pending
            .iter()
            .find(|&&(o, _)| o == onion)
            .map(|&(_, id)| id)
    }

    /// The address an ID resolves to.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: ServiceId) -> OnionAddress {
        self.onions[id.index()]
    }

    /// Interns an address, assigning a fresh ID on first sight.
    pub fn intern(&mut self, onion: OnionAddress) -> ServiceId {
        if let Some(id) = self.get(onion) {
            return id;
        }
        let id = ServiceId(u32::try_from(self.onions.len()).expect("more than u32::MAX services"));
        self.onions.push(onion);
        self.pending.push((onion, id));
        if self.pending.len() >= PENDING_FLUSH {
            self.flush();
        }
        id
    }

    /// Merges the pending tail into the sorted index (a sort of the
    /// tail plus one linear merge — never a full re-sort).
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.pending.sort_unstable_by_key(|&(o, _)| o);
        let old = std::mem::take(&mut self.sorted);
        self.sorted = Vec::with_capacity(old.len() + self.pending.len());
        let mut tail = self.pending.drain(..).peekable();
        for entry in old {
            while let Some(t) = tail.next_if(|t| t.0 < entry.0) {
                self.sorted.push(t);
            }
            self.sorted.push(entry);
        }
        self.sorted.extend(tail);
    }
}

/// Struct-of-arrays table of all per-service network state, indexed by
/// [`ServiceId`].
///
/// Every column the `Network` hot paths touch per round — liveness,
/// descriptor-ID cache, slot-hour coverage, armed traffic signatures —
/// is a dense `Vec` here, grown (never shrunk) as addresses intern.
#[derive(Clone, Debug, Default)]
pub struct ServiceTable {
    interner: ServiceInterner,
    /// `Some(online)` for registered services, `None` for phantoms.
    online: Vec<Option<bool>>,
    /// Logging-relay slot-hour coverage accumulated per service.
    slot_hours: Vec<u64>,
    /// Per-period descriptor-ID pair cache.
    desc_cache: Vec<Option<DescPair>>,
    /// Armed traffic signatures (attack targets only).
    signatures: Vec<Option<TrafficSignature>>,
    /// The period each armed target's `sig_index` entries were built for.
    sig_periods: Vec<Option<TimePeriod>>,
    /// Reverse index over armed targets: descriptor ID → service,
    /// sorted by descriptor ID.
    sig_index: Vec<(DescriptorId, ServiceId)>,
}

impl ServiceTable {
    /// Interns an address and grows every column to cover its row.
    pub fn intern(&mut self, onion: OnionAddress) -> ServiceId {
        let id = self.interner.intern(onion);
        let rows = self.interner.len();
        if self.online.len() < rows {
            self.online.resize(rows, None);
            self.slot_hours.resize(rows, 0);
            self.desc_cache.resize(rows, None);
            self.signatures.resize(rows, None);
            self.sig_periods.resize(rows, None);
        }
        id
    }

    /// The ID of an already-interned address, if any.
    pub fn get(&self, onion: OnionAddress) -> Option<ServiceId> {
        self.interner.get(onion)
    }

    /// The address a row belongs to.
    pub fn onion(&self, id: ServiceId) -> OnionAddress {
        self.interner.resolve(id)
    }

    /// Merges the interner's pending tail; call before sharing `&self`
    /// across wave threads so reverse lookups stay `O(log n)`.
    pub fn flush(&mut self) {
        self.interner.flush();
    }

    /// Registers (or re-registers) a hidden service.
    pub fn register(&mut self, onion: OnionAddress, online: bool) {
        let id = self.intern(onion);
        self.online[id.index()] = Some(online);
    }

    /// Sets a registered service's liveness; phantoms are left alone.
    pub fn set_online(&mut self, onion: OnionAddress, online: bool) {
        if let Some(id) = self.get(onion) {
            if let Some(state) = self.online.get_mut(id.index()) {
                if state.is_some() {
                    *state = Some(online);
                }
            }
        }
    }

    /// A registered service's liveness (`None` for phantoms).
    pub fn is_online(&self, id: ServiceId) -> Option<bool> {
        self.online[id.index()]
    }

    /// Registered services as records, in stable `ServiceId` order.
    pub fn records(&self) -> impl Iterator<Item = ServiceRecord> + '_ {
        self.interner
            .onions
            .iter()
            .zip(&self.online)
            .filter_map(|(&onion, online)| online.map(|online| ServiceRecord { onion, online }))
    }

    /// IDs of all currently online registered services, in `ServiceId`
    /// order — the canonical publish-wave partition order.
    pub fn online_ids(&self) -> impl Iterator<Item = ServiceId> + '_ {
        self.online
            .iter()
            .enumerate()
            .filter(|&(_, online)| *online == Some(true))
            .map(|(i, _)| ServiceId(i as u32))
    }

    /// The cached descriptor-ID pair of a row, if any.
    pub fn cache(&self, id: ServiceId) -> Option<DescPair> {
        self.desc_cache[id.index()]
    }

    /// Installs a row's descriptor-ID pair for `period`.
    pub fn set_cache(&mut self, id: ServiceId, pair: DescPair) {
        self.desc_cache[id.index()] = Some(pair);
    }

    /// Accumulated slot-hours of a row.
    pub fn slot_hours(&self, id: ServiceId) -> u64 {
        self.slot_hours[id.index()]
    }

    /// Adds logging-slot coverage to a row.
    pub fn add_slot_hours(&mut self, id: ServiceId, slots: u64) {
        self.slot_hours[id.index()] += slots;
    }

    /// The full nonzero slot-hour table, sorted by onion address — the
    /// deterministic view callers get instead of a `HashMap` borrow.
    pub fn slot_hours_sorted(&self) -> Vec<(OnionAddress, u64)> {
        let mut out: Vec<(OnionAddress, u64)> = self
            .interner
            .onions
            .iter()
            .zip(&self.slot_hours)
            .filter(|&(_, &hours)| hours > 0)
            .map(|(&onion, &hours)| (onion, hours))
            .collect();
        out.sort_unstable_by_key(|&(onion, _)| onion);
        out
    }

    /// Arms the traffic signature on a row.
    pub fn arm(&mut self, id: ServiceId, signature: TrafficSignature) {
        self.signatures[id.index()] = Some(signature);
    }

    /// The armed signature of a row, if any.
    pub fn signature(&self, id: ServiceId) -> Option<&TrafficSignature> {
        self.signatures[id.index()].as_ref()
    }

    /// IDs of all armed targets, in `ServiceId` order.
    pub fn armed_ids(&self) -> impl Iterator<Item = ServiceId> + '_ {
        self.signatures
            .iter()
            .enumerate()
            .filter(|&(_, sig)| sig.is_some())
            .map(|(i, _)| ServiceId(i as u32))
    }

    /// The period a target's reverse-index entries were built for.
    pub fn sig_period(&self, id: ServiceId) -> Option<TimePeriod> {
        self.sig_periods[id.index()]
    }

    /// Which armed target (if any) a descriptor ID belongs to.
    pub fn sig_lookup(&self, desc_id: DescriptorId) -> Option<ServiceId> {
        self.sig_index
            .binary_search_by_key(&desc_id, |&(d, _)| d)
            .ok()
            .map(|i| self.sig_index[i].1)
    }

    /// Replaces a target's reverse-index entries with `ids` and stamps
    /// the period they were built for.
    pub fn reindex_signature(&mut self, id: ServiceId, ids: &[DescriptorId], period: TimePeriod) {
        self.sig_index.retain(|&(_, sid)| sid != id);
        for &desc_id in ids {
            match self.sig_index.binary_search_by_key(&desc_id, |&(d, _)| d) {
                Ok(i) => self.sig_index[i] = (desc_id, id),
                Err(i) => self.sig_index.insert(i, (desc_id, id)),
            }
        }
        self.sig_periods[id.index()] = Some(period);
    }

    /// Clears the descriptor-ID cache, the signature reverse index and
    /// its period stamps (the `set_desc_cache_enabled` reset).
    pub fn clear_runtime_caches(&mut self) {
        self.desc_cache.fill(None);
        self.sig_periods.fill(None);
        self.sig_index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn onion(k: u8) -> OnionAddress {
        OnionAddress::from_pubkey(&[k, 7, 9])
    }

    #[test]
    fn intern_is_stable_and_first_sight_ordered() {
        let mut it = ServiceInterner::default();
        let a = it.intern(onion(1));
        let b = it.intern(onion(2));
        assert_eq!(a, ServiceId(0));
        assert_eq!(b, ServiceId(1));
        assert_eq!(it.intern(onion(1)), a, "re-intern returns the same ID");
        assert_eq!(it.get(onion(2)), Some(b));
        assert_eq!(it.resolve(a), onion(1));
        it.flush();
        assert_eq!(it.get(onion(1)), Some(a), "flush preserves lookups");
        assert_eq!(it.get(onion(99)), None);
    }

    #[test]
    fn flush_merges_many_pending_batches() {
        let mut it = ServiceInterner::default();
        let mut ids = Vec::new();
        for k in 0..=255u8 {
            ids.push((k, it.intern(onion(k))));
            if k % 17 == 0 {
                it.flush();
            }
        }
        for &(k, id) in &ids {
            assert_eq!(it.get(onion(k)), Some(id), "key {k}");
            assert_eq!(it.resolve(id), onion(k));
        }
        assert_eq!(it.len(), 256);
    }

    #[test]
    fn table_tracks_liveness_and_phantoms() {
        let mut t = ServiceTable::default();
        t.register(onion(1), true);
        t.register(onion(2), false);
        let phantom = t.intern(onion(3));
        assert_eq!(t.is_online(phantom), None);

        let recs: Vec<ServiceRecord> = t.records().collect();
        assert_eq!(recs.len(), 2, "phantom is not a registered service");
        assert!(recs[0].online && !recs[1].online);

        t.set_online(onion(2), true);
        t.set_online(onion(3), true);
        assert_eq!(t.is_online(phantom), None, "phantoms cannot come online");
        let online: Vec<ServiceId> = t.online_ids().collect();
        assert_eq!(online, vec![ServiceId(0), ServiceId(1)]);
    }

    #[test]
    fn slot_hours_sorted_is_nonzero_and_ordered() {
        let mut t = ServiceTable::default();
        for k in [9u8, 3, 6] {
            t.register(onion(k), true);
        }
        let a = t.get(onion(9)).unwrap();
        let c = t.get(onion(6)).unwrap();
        t.add_slot_hours(a, 4);
        t.add_slot_hours(c, 2);
        let rows = t.slot_hours_sorted();
        assert_eq!(rows.len(), 2, "zero rows are omitted");
        assert!(rows[0].0 < rows[1].0, "sorted by onion address");
        let total: u64 = rows.iter().map(|&(_, h)| h).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn signature_reverse_index_tracks_rearming() {
        let mut t = ServiceTable::default();
        t.register(onion(1), true);
        t.register(onion(2), true);
        let a = t.get(onion(1)).unwrap();
        let b = t.get(onion(2)).unwrap();
        t.arm(a, TrafficSignature::default());
        t.arm(b, TrafficSignature::default());
        assert_eq!(t.armed_ids().collect::<Vec<_>>(), vec![a, b]);

        let ids_a = DescriptorId::pair_at(onion(1), 0);
        let ids_b = DescriptorId::pair_at(onion(2), 0);
        let period = TimePeriod::at(0, onion(1).permanent_id());
        t.reindex_signature(a, &ids_a, period);
        t.reindex_signature(b, &ids_b, period);
        assert_eq!(t.sig_lookup(ids_a[0]), Some(a));
        assert_eq!(t.sig_lookup(ids_b[1]), Some(b));

        // Re-indexing a target replaces its rows without touching others.
        let later = DescriptorId::pair_at(onion(1), 1_000_000_000);
        t.reindex_signature(a, &later, period);
        assert_eq!(t.sig_lookup(ids_a[0]), None);
        assert_eq!(t.sig_lookup(later[0]), Some(a));
        assert_eq!(t.sig_lookup(ids_b[0]), Some(b));

        t.clear_runtime_caches();
        assert_eq!(t.sig_lookup(later[0]), None);
        assert_eq!(t.sig_period(a), None);
        assert!(t.signature(a).is_some(), "arming survives a cache reset");
    }
}

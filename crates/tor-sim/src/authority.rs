//! Directory authorities: uptime monitoring, flag voting and the
//! two-relays-per-IP consensus rule.
//!
//! The rule set reproduces exactly the behaviour the harvesting attack of
//! Biryukov et al. exploits:
//!
//! 1. *All* running, reachable relays are monitored and accrue uptime —
//!    whether or not they make it into the consensus.
//! 2. Flag eligibility (most importantly HSDir at ≥ 25 h uptime) is
//!    computed from that observed uptime.
//! 3. Only the **two highest-bandwidth relays per IP address** are listed
//!    in the consensus. The rest — *shadow relays* — keep running and
//!    keep their accrued flags, so the moment an active relay disappears
//!    a shadow relay enters the consensus as an instant HSDir.

use crate::clock::SimTime;
use crate::consensus::{Consensus, ConsensusEntry};
use crate::flags::RelayFlags;
use crate::relay::Relay;

/// Flag-assignment policy of the directory authorities.
#[derive(Clone, Debug)]
pub struct AuthorityPolicy {
    /// Minimum continuous uptime for the HSDir flag (25 h in 2013).
    pub hsdir_min_uptime: u64,
    /// Minimum continuous uptime for the Guard flag.
    pub guard_min_uptime: u64,
    /// Minimum bandwidth (kB/s) for the Fast flag.
    pub fast_min_bandwidth: u64,
    /// Maximum relays listed per IP address.
    pub max_per_ip: usize,
}

impl Default for AuthorityPolicy {
    fn default() -> Self {
        AuthorityPolicy {
            hsdir_min_uptime: 25 * crate::clock::HOUR,
            guard_min_uptime: 8 * crate::clock::DAY,
            fast_min_bandwidth: 100,
            max_per_ip: 2,
        }
    }
}

/// The directory-authority quorum, collapsed into a single voter (the
/// paper's analysis never depends on authority disagreement).
#[derive(Clone, Debug, Default)]
pub struct Authority {
    policy: AuthorityPolicy,
}

impl Authority {
    /// Creates an authority with the 2013 default policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an authority with a custom policy.
    pub fn with_policy(policy: AuthorityPolicy) -> Self {
        Authority { policy }
    }

    /// The active policy.
    pub fn policy(&self) -> &AuthorityPolicy {
        &self.policy
    }

    /// Computes the flags a relay has *earned* at `now`, independent of
    /// whether the two-per-IP rule lets it into the consensus.
    ///
    /// This observable-for-all-running-relays behaviour is the flaw:
    /// a shadow relay that has been up 25 h walks into the consensus
    /// already carrying HSDir.
    pub fn earned_flags(&self, relay: &Relay, now: SimTime, guard_bw_threshold: u64) -> RelayFlags {
        let mut flags = RelayFlags::NONE;
        if !(relay.running && relay.reachable) {
            return flags;
        }
        flags.insert(RelayFlags::RUNNING | RelayFlags::VALID);
        let uptime = relay.uptime(now);
        if relay.bandwidth >= self.policy.fast_min_bandwidth {
            flags.insert(RelayFlags::FAST);
        }
        if uptime >= self.policy.hsdir_min_uptime {
            flags.insert(RelayFlags::HSDIR | RelayFlags::STABLE);
        }
        if uptime >= self.policy.guard_min_uptime
            && relay.bandwidth >= guard_bw_threshold
            && flags.contains(RelayFlags::FAST)
        {
            flags.insert(RelayFlags::GUARD);
        }
        flags
    }

    /// Runs a voting round over all relays and produces the consensus
    /// valid from `now`.
    ///
    /// Reachable running relays are grouped by IP; within each group only
    /// the `max_per_ip` highest-bandwidth relays are listed. Everything
    /// else about a relay (uptime, earned flags) is retained for future
    /// rounds because it is derived from the relay's own state.
    pub fn vote(&self, relays: &[Relay], now: SimTime) -> Consensus {
        self.vote_pooled(relays, now, &wave::WavePool::new(1)).0
    }

    /// [`Authority::vote`] with entry construction sharded over `pool`.
    ///
    /// Grouping is a single global sort by `(ip, bandwidth desc,
    /// fingerprint)` — no hash map anywhere, so the vote is structurally
    /// deterministic before `Consensus::new` even sorts by fingerprint.
    /// Shard boundaries come from [`wave::keyed_ranges`] snapped to IP
    /// changes, so a whole IP group always lands in one shard and the
    /// two-per-IP head selection stays shard-local; the concatenated
    /// entry list is byte-identical at any thread count.
    pub fn vote_pooled(
        &self,
        relays: &[Relay],
        now: SimTime,
        pool: &wave::WavePool,
    ) -> (Consensus, wave::WaveStats) {
        let mut eligible: Vec<&Relay> =
            relays.iter().filter(|r| r.running && r.reachable).collect();

        // Median bandwidth of eligible relays gates the Guard flag.
        let guard_bw_threshold = median_bandwidth(&eligible);

        eligible.sort_unstable_by(|a, b| {
            a.ip.cmp(&b.ip)
                .then_with(|| b.bandwidth.cmp(&a.bandwidth))
                .then_with(|| a.fingerprint().cmp(&b.fingerprint()))
        });

        let ranges = wave::keyed_ranges(eligible.len(), pool.threads(), |i| {
            i == 0 || eligible[i].ip != eligible[i - 1].ip
        });
        let (parts, stats) = pool.map_slices(&eligible, &ranges, |_, part| {
            let mut entries = Vec::with_capacity(part.len().min(2 * self.policy.max_per_ip.max(1)));
            let mut taken = 0usize;
            for (off, relay) in part.iter().enumerate() {
                if off > 0 && relay.ip == part[off - 1].ip {
                    taken += 1;
                } else {
                    taken = 0;
                }
                if taken >= self.policy.max_per_ip {
                    continue;
                }
                entries.push(ConsensusEntry {
                    relay: relay.id,
                    fingerprint: relay.fingerprint(),
                    nickname: relay.nickname.clone(),
                    ip: relay.ip,
                    or_port: relay.or_port,
                    bandwidth: relay.bandwidth,
                    flags: self.earned_flags(relay, now, guard_bw_threshold),
                });
            }
            entries
        });
        let entries: Vec<ConsensusEntry> = parts.into_iter().flatten().collect();

        (Consensus::new(now, entries), stats)
    }
}

fn median_bandwidth(relays: &[&Relay]) -> u64 {
    if relays.is_empty() {
        return 0;
    }
    let mut bws: Vec<u64> = relays.iter().map(|r| r.bandwidth).collect();
    bws.sort_unstable();
    bws[bws.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SimTime, DAY, HOUR};
    use crate::relay::{Ipv4, Relay, RelayId};
    use onion_crypto::identity::SimIdentity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mk_relay(id: usize, ip: Ipv4, bw: u64, started: SimTime, rng: &mut StdRng) -> Relay {
        Relay::new(
            RelayId(id),
            format!("relay{id}"),
            ip,
            9001,
            SimIdentity::generate(rng),
            bw,
            started,
        )
    }

    #[test]
    fn hsdir_requires_25_hours() {
        let auth = Authority::new();
        let t0 = SimTime::from_ymd(2013, 1, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let r = mk_relay(0, Ipv4::new(1, 1, 1, 1), 500, t0, &mut rng);

        let early = auth.earned_flags(&r, t0 + 24 * HOUR, 0);
        assert!(!early.contains(RelayFlags::HSDIR));
        let late = auth.earned_flags(&r, t0 + 25 * HOUR, 0);
        assert!(late.contains(RelayFlags::HSDIR));
    }

    #[test]
    fn guard_requires_uptime_and_bandwidth() {
        let auth = Authority::new();
        let t0 = SimTime::from_ymd(2013, 1, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let r = mk_relay(0, Ipv4::new(1, 1, 1, 1), 5000, t0, &mut rng);

        assert!(!auth
            .earned_flags(&r, t0 + 7 * DAY, 1000)
            .contains(RelayFlags::GUARD));
        assert!(auth
            .earned_flags(&r, t0 + 9 * DAY, 1000)
            .contains(RelayFlags::GUARD));
        // Below the bandwidth threshold: never a guard.
        assert!(!auth
            .earned_flags(&r, t0 + 9 * DAY, 6000)
            .contains(RelayFlags::GUARD));
    }

    #[test]
    fn two_per_ip_selects_highest_bandwidth() {
        let auth = Authority::new();
        let t0 = SimTime::from_ymd(2013, 1, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let ip = Ipv4::new(10, 0, 0, 1);
        let relays: Vec<Relay> = (0..5)
            .map(|i| mk_relay(i, ip, 100 * (i as u64 + 1), t0, &mut rng))
            .collect();

        let consensus = auth.vote(&relays, t0 + 30 * HOUR);
        assert_eq!(consensus.len(), 2);
        let mut bws: Vec<u64> = consensus.entries().iter().map(|e| e.bandwidth).collect();
        bws.sort_unstable();
        assert_eq!(bws, vec![400, 500]);
    }

    #[test]
    fn shadow_relay_enters_with_hsdir_flag() {
        // The flaw end-to-end: 3 relays on one IP, all up 30 h. Only the
        // two fastest are listed. Kill one active relay → the shadow
        // appears in the next vote *already carrying HSDir*.
        let auth = Authority::new();
        let t0 = SimTime::from_ymd(2013, 1, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let ip = Ipv4::new(10, 0, 0, 2);
        let mut relays: Vec<Relay> = (0..3)
            .map(|i| mk_relay(i, ip, 100 * (i as u64 + 1), t0, &mut rng))
            .collect();

        let t1 = t0 + 30 * HOUR;
        let c1 = auth.vote(&relays, t1);
        let listed: Vec<usize> = c1.entries().iter().map(|e| e.relay.0).collect();
        assert!(!listed.contains(&0), "slowest relay is the shadow");

        // The shadow relay is reachable but unlisted; make an active
        // relay unreachable.
        relays[2].reachable = false;
        let c2 = auth.vote(&relays, t1 + HOUR);
        let entry = c2
            .entries()
            .iter()
            .find(|e| e.relay.0 == 0)
            .expect("shadow relay enters consensus");
        assert!(
            entry.flags.contains(RelayFlags::HSDIR),
            "shadow enters with full accrued uptime → instant HSDir"
        );
    }

    #[test]
    fn stopped_relays_earn_nothing() {
        let auth = Authority::new();
        let t0 = SimTime::from_ymd(2013, 1, 1);
        let mut rng = StdRng::seed_from_u64(5);
        let mut r = mk_relay(0, Ipv4::new(1, 2, 3, 4), 500, t0, &mut rng);
        r.stop();
        assert!(auth.earned_flags(&r, t0 + 48 * HOUR, 0).is_empty());
        let c = auth.vote(&[r], t0 + 48 * HOUR);
        assert!(c.is_empty());
    }

    #[test]
    fn vote_is_deterministic() {
        let auth = Authority::new();
        let t0 = SimTime::from_ymd(2013, 1, 1);
        let mut rng = StdRng::seed_from_u64(6);
        let relays: Vec<Relay> = (0..20)
            .map(|i| mk_relay(i, Ipv4::new(10, 0, (i / 2) as u8, 1), 300, t0, &mut rng))
            .collect();
        let a = auth.vote(&relays, t0 + 26 * HOUR);
        let b = auth.vote(&relays, t0 + 26 * HOUR);
        let fps_a: Vec<_> = a.entries().iter().map(|e| e.fingerprint).collect();
        let fps_b: Vec<_> = b.entries().iter().map(|e| e.fingerprint).collect();
        assert_eq!(fps_a, fps_b);
    }

    #[test]
    fn pooled_vote_is_structurally_identical_at_any_thread_count() {
        // The sharded vote must reproduce the sequential reference
        // entry for entry — same order, flags, bandwidths — at every
        // worker budget, including a population with heavy IP sharing
        // (exercises the per-IP shard-boundary and max-per-ip paths).
        let auth = Authority::new();
        let t0 = SimTime::from_ymd(2013, 1, 1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut relays: Vec<Relay> = (0..60)
            .map(|i| {
                let ip = Ipv4::new(10, 0, (i % 13) as u8, 1);
                mk_relay(i, ip, 100 + 37 * (i as u64 % 9), t0, &mut rng)
            })
            .collect();
        // A few unreachable/stopped relays so eligibility filtering
        // interacts with the shard boundaries too.
        relays[5].reachable = false;
        relays[23].stop();
        let now = t0 + 30 * HOUR;
        let reference = auth.vote(&relays, now);
        for threads in [1, 2, 3, 8] {
            let pool = wave::WavePool::new(threads);
            let (pooled, stats) = auth.vote_pooled(&relays, now, &pool);
            assert_eq!(stats.threads, threads);
            assert_eq!(pooled.len(), reference.len(), "{threads} threads");
            for (p, r) in pooled.entries().iter().zip(reference.entries()) {
                assert_eq!(p.fingerprint, r.fingerprint, "{threads} threads");
                assert_eq!(p.relay, r.relay, "{threads} threads");
                assert_eq!(p.flags, r.flags, "{threads} threads");
                assert_eq!(p.bandwidth, r.bandwidth, "{threads} threads");
            }
        }
        // And repeated pooled votes agree with each other byte for
        // byte (the grouping is a sorted scan, not a hash map — no
        // iteration-order dependence to regress).
        let again = auth.vote_pooled(&relays, now, &wave::WavePool::new(4)).0;
        assert_eq!(
            format!("{:?}", again.entries()),
            format!("{:?}", reference.entries())
        );
    }
}

//! Consensus flags assigned by the directory authorities.

use core::fmt;
use core::ops::{BitOr, BitOrAssign};

/// A set of router-status flags, as they appear in a consensus entry.
///
/// Implemented as a hand-rolled bitset rather than pulling in the
/// `bitflags` crate; only the flags relevant to hidden-service analysis
/// are modelled.
///
/// # Examples
///
/// ```
/// use tor_sim::flags::RelayFlags;
///
/// let flags = RelayFlags::RUNNING | RelayFlags::HSDIR;
/// assert!(flags.contains(RelayFlags::HSDIR));
/// assert!(!flags.contains(RelayFlags::GUARD));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RelayFlags(u8);

impl RelayFlags {
    /// No flags.
    pub const NONE: RelayFlags = RelayFlags(0);
    /// The relay is currently usable.
    pub const RUNNING: RelayFlags = RelayFlags(1 << 0);
    /// The relay is fast enough for general traffic.
    pub const FAST: RelayFlags = RelayFlags(1 << 1);
    /// The relay has demonstrated longevity.
    pub const STABLE: RelayFlags = RelayFlags(1 << 2);
    /// The relay is suitable as an entry guard.
    pub const GUARD: RelayFlags = RelayFlags(1 << 3);
    /// The relay stores and serves v2 hidden-service descriptors
    /// (requires ≥ 25 h observed uptime).
    pub const HSDIR: RelayFlags = RelayFlags(1 << 4);
    /// The relay permits exit traffic.
    pub const EXIT: RelayFlags = RelayFlags(1 << 5);
    /// The relay is listed in the consensus as valid.
    pub const VALID: RelayFlags = RelayFlags(1 << 6);

    /// Whether every flag in `other` is set in `self`.
    pub fn contains(self, other: RelayFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Adds the flags in `other`.
    pub fn insert(&mut self, other: RelayFlags) {
        self.0 |= other.0;
    }

    /// Removes the flags in `other`.
    pub fn remove(&mut self, other: RelayFlags) {
        self.0 &= !other.0;
    }

    /// Whether no flags are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for RelayFlags {
    type Output = RelayFlags;
    fn bitor(self, rhs: RelayFlags) -> RelayFlags {
        RelayFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for RelayFlags {
    fn bitor_assign(&mut self, rhs: RelayFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Debug for RelayFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RelayFlags({self})")
    }
}

impl fmt::Display for RelayFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("-");
        }
        let names = [
            (RelayFlags::RUNNING, "Running"),
            (RelayFlags::FAST, "Fast"),
            (RelayFlags::STABLE, "Stable"),
            (RelayFlags::GUARD, "Guard"),
            (RelayFlags::HSDIR, "HSDir"),
            (RelayFlags::EXIT, "Exit"),
            (RelayFlags::VALID, "Valid"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    f.write_str(" ")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_insert() {
        let mut flags = RelayFlags::NONE;
        assert!(flags.is_empty());
        flags.insert(RelayFlags::RUNNING);
        flags |= RelayFlags::HSDIR;
        assert!(flags.contains(RelayFlags::RUNNING | RelayFlags::HSDIR));
        assert!(!flags.contains(RelayFlags::GUARD));
        flags.remove(RelayFlags::RUNNING);
        assert!(!flags.contains(RelayFlags::RUNNING));
        assert!(flags.contains(RelayFlags::HSDIR));
    }

    #[test]
    fn contains_requires_all() {
        let flags = RelayFlags::RUNNING;
        assert!(!flags.contains(RelayFlags::RUNNING | RelayFlags::GUARD));
    }

    #[test]
    fn display_names() {
        assert_eq!(RelayFlags::NONE.to_string(), "-");
        assert_eq!(
            (RelayFlags::RUNNING | RelayFlags::HSDIR).to_string(),
            "Running HSDir"
        );
    }
}

//! The network orchestrator: relays, consensus rounds, descriptor
//! publication, client fetches and full connections.
//!
//! [`Network`] owns all protocol state and advances it in consensus
//! intervals. Measurement crates drive it from outside: the world
//! generator registers services and toggles their liveness, the
//! harvester adds its relay fleet and flips reachability bits, the
//! popularity pipeline replays client request streams, and the
//! deanonymisation attack reads the guard-observation feed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use onion_crypto::descriptor::{DescriptorId, Replica, TimePeriod, HSDIRS_PER_REPLICA, REPLICAS};
use onion_crypto::identity::SimIdentity;
use onion_crypto::onion::OnionAddress;

use crate::authority::Authority;
use crate::cells::TrafficSignature;
use crate::clock::{SimTime, DAY, HOUR};
use crate::consensus::Consensus;
use crate::fault::{FaultCounters, FaultPlan, FaultState, RetryPolicy};
use crate::intern::{ServiceId, ServiceTable};

use crate::guard::GuardSet;
use crate::relay::{Ipv4, Operator, Relay, RelayId};
use crate::service::{ConnectOutcome, PortReply, ServiceBackend};
use crate::store::{DescriptorStore, RequestLog, RequestRecord, StoredDescriptor};

/// Handle to a client registered in the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClientId(pub usize);

/// A Tor client: an IP address plus its entry-guard state.
#[derive(Clone, Debug)]
pub struct ClientState {
    /// The client's real IP address — what the deanonymisation attack
    /// recovers.
    pub ip: Ipv4,
    /// The client's guard set.
    pub guards: GuardSet,
}

/// A registered hidden service, from the network's point of view.
#[derive(Clone, Debug)]
pub struct ServiceRecord {
    /// The service's onion address.
    pub onion: OnionAddress,
    /// Whether its Tor process is currently publishing descriptors.
    pub online: bool,
}

/// What an attacker guard logged when it saw the traffic signature pass
/// toward one of its clients.
#[derive(Clone, Copy, Debug)]
pub struct GuardObservation {
    /// When the signature was detected.
    pub time: SimTime,
    /// The attacker guard that saw it.
    pub guard: RelayId,
    /// The deanonymised client IP.
    pub client_ip: Ipv4,
    /// The target service the signature was armed for.
    pub onion: OnionAddress,
}

/// Result of a client descriptor fetch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FetchOutcome {
    /// A responsible HSDir served the descriptor.
    Found,
    /// All responsible HSDirs were queried; none had it.
    NotFound,
    /// The client has no usable guard (cannot build circuits).
    NoCircuit,
    /// The consensus currently lists no HSDirs.
    NoHsdirs,
    /// At least one responsible HSDir dropped the query (fault
    /// injection) and none served the descriptor — the client cannot
    /// tell absence from loss. Only reachable when a non-inert
    /// [`FaultPlan`] is installed; transient, so worth retrying.
    Timeout,
}

/// Result of [`Network::client_fetch_with_retry`]: the final outcome
/// plus how hard the client had to work for it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FetchAttempts {
    /// Outcome of the last attempt.
    pub outcome: FetchOutcome,
    /// Fetch attempts made (≥ 1).
    pub attempts: u32,
    /// Total backoff charged between attempts, in (virtual) seconds.
    pub backoff_secs: u64,
}

/// Side effects accumulated by one read-only measurement work unit.
///
/// Measurement waves share `&Network` across worker threads; everything
/// a unit would have written through `&mut self` on the sequential path
/// — hot-path counters, fault counters, per-relay query load, request
/// logs, guard observations — lands here instead and is folded back in
/// canonical input order by [`Network::apply_wave_effects`]. Log and
/// observation order is preserved within a unit, so the merged feeds
/// are identical to running the units one after another.
#[derive(Clone, Debug, Default)]
pub struct WaveEffects {
    /// Stable per-unit key: fault drop rolls derive their serial
    /// operand from it, never from shard or thread identity.
    unit_key: u64,
    /// Hot-path work the unit performed.
    hot: HotPathCounters,
    /// Queries dropped by the per-query drop rate.
    fetch_drops: u64,
    /// Queries dropped as overload against the wave-start snapshot.
    overload_drops: u64,
    /// Per-relay descriptor-query load the unit generated.
    load: Vec<(usize, u32)>,
    /// Request-log records in issue order.
    logs: Vec<(RelayId, RequestRecord)>,
    /// Guard observations in issue order.
    observations: Vec<GuardObservation>,
    /// Monotonic within-unit query counter feeding the drop rolls.
    query_serial: u64,
}

impl WaveEffects {
    /// An empty effect set for the unit identified by `unit_key`.
    pub fn new(unit_key: u64) -> Self {
        WaveEffects {
            unit_key,
            ..WaveEffects::default()
        }
    }

    /// Increments the unit-local load on `relay` and returns the new
    /// local total.
    fn bump_load(&mut self, relay: usize) -> u32 {
        for entry in &mut self.load {
            if entry.0 == relay {
                entry.1 += 1;
                return entry.1;
            }
        }
        self.load.push((relay, 1));
        1
    }
}

/// Stable unit key material for an onion address: the first eight bytes
/// of its permanent identifier. Measurement crates combine this with
/// day/hour indices to seed per-unit RNG streams.
pub fn onion_unit_key(onion: OnionAddress) -> u64 {
    crate::fault::onion_key(onion)
}

/// Cumulative hot-path work counters, cheap enough to keep always-on.
///
/// The pipeline snapshots these around every stage and reports the
/// deltas in `bench_stages.json`, so determinism drift in the hot path
/// (cache misbehaviour, extra fetches) shows up as a counter diff even
/// when wall-clock noise hides it.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct HotPathCounters {
    /// SHA-1 finalisations performed for descriptor-ID computation
    /// (each `DescriptorId::compute` costs two).
    pub sha1_digests: u64,
    /// Descriptor-ID pair lookups answered from the per-period cache.
    pub desc_cache_hits: u64,
    /// Lookups that had to recompute (first sight or period rotation).
    pub desc_cache_misses: u64,
    /// Client descriptor fetches attempted (per descriptor ID).
    pub fetches: u64,
}

impl HotPathCounters {
    /// Component-wise `self - earlier`: the work done since a snapshot.
    pub fn since(self, earlier: HotPathCounters) -> HotPathCounters {
        HotPathCounters {
            sha1_digests: self.sha1_digests - earlier.sha1_digests,
            desc_cache_hits: self.desc_cache_hits - earlier.desc_cache_hits,
            desc_cache_misses: self.desc_cache_misses - earlier.desc_cache_misses,
            fetches: self.fetches - earlier.fetches,
        }
    }

    /// Folds the counters into a metric registry under their historical
    /// `bench_stages.json` names, in the historical order.
    pub fn record_into(self, reg: &mut obs::Registry) {
        reg.inc("sha1_digests", self.sha1_digests);
        reg.inc("desc_cache_hits", self.desc_cache_hits);
        reg.inc("desc_cache_misses", self.desc_cache_misses);
        reg.inc("fetches", self.fetches);
    }

    /// Total work items across all categories (used for trace span
    /// weights).
    pub fn total(self) -> u64 {
        self.sha1_digests + self.desc_cache_hits + self.desc_cache_misses + self.fetches
    }
}

/// One consensus round as seen by the optional round recorder: the sim
/// interval it covered and the hot-path / fault work performed since
/// the previous recorded round (including client work driven between
/// rounds, which is attributed to the round that follows it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundTrace {
    /// Interval start (the previous round's end, or the enable time).
    pub start: SimTime,
    /// Interval end: the consensus time of this round.
    pub end: SimTime,
    /// Hot-path work since the previous recorded round.
    pub hot: HotPathCounters,
    /// Faults injected since the previous recorded round.
    pub faults: FaultCounters,
}

/// Snapshot marks for the round recorder.
#[derive(Clone, Debug)]
struct RoundRecorder {
    rounds: Vec<RoundTrace>,
    mark_time: SimTime,
    mark_hot: HotPathCounters,
    mark_faults: FaultCounters,
}

/// The simulated Tor network.
///
/// # Examples
///
/// ```
/// use tor_sim::network::NetworkBuilder;
/// use tor_sim::clock::SimTime;
///
/// let mut net = NetworkBuilder::new()
///     .relays(60)
///     .seed(7)
///     .start(SimTime::from_ymd(2013, 2, 1))
///     .build();
/// assert!(net.consensus().hsdir_count() > 0);
/// net.advance_hours(2);
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    time: SimTime,
    consensus_interval: u64,
    authority: Authority,
    relays: Vec<Relay>,
    consensus: Consensus,
    /// All per-service hot state — liveness, slot-hour coverage, the
    /// per-period descriptor-ID cache, armed traffic signatures and
    /// their reverse index — as dense [`ServiceId`]-indexed columns.
    /// rend-spec-v2 IDs rotate once per (service-staggered) 24 h time
    /// period, so a consensus round only needs fresh SHA-1 work for
    /// services whose period just rolled over; the slot-hours column
    /// counts, per hour, how many of the six responsible HSDir slots
    /// were held by logging relays (derivable by the attacker from
    /// public consensuses plus its own relay list).
    svc: ServiceTable,
    stores: Vec<DescriptorStore>,
    logs: Vec<RequestLog>,
    clients: Vec<ClientState>,
    guard_observations: Vec<GuardObservation>,
    coverage_recorded_hour: Option<u64>,
    hot: HotPathCounters,
    /// Test hook: `false` forces the uncached reference path so the
    /// cache can be validated against first-principles recomputation.
    desc_cache_enabled: bool,
    /// Deterministic fault injection (inert by default).
    faults: FaultState,
    /// Optional per-round trace recorder (disabled by default; purely
    /// observational, never consulted by simulation logic).
    round_trace: Option<RoundRecorder>,
    /// Worker threads for the mutate-phase waves inside [`Network::step`]
    /// (1 = inline). Any value produces byte-identical artifacts.
    mutate_threads: usize,
    /// Wave statistics from the mutate phases, drained by
    /// [`Network::take_mutate_wave_stats`]. Observational only.
    mutate_waves: Vec<wave::WaveStats>,
    /// Per-relay publish-wave batches, reused round to round so the
    /// publish path stays allocation-free at steady state.
    publish_batches: Vec<Vec<StoredDescriptor>>,
    rng: StdRng,
}

impl Network {
    /// Current simulation time.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The latest consensus.
    pub fn consensus(&self) -> &Consensus {
        &self.consensus
    }

    /// All relays (including stopped and shadow relays).
    pub fn relays(&self) -> &[Relay] {
        &self.relays
    }

    /// One relay by handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn relay(&self, id: RelayId) -> &Relay {
        &self.relays[id.0]
    }

    /// Mutable access to a relay (to flip reachability, rotate identity,
    /// adjust bandwidth, …).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn relay_mut(&mut self, id: RelayId) -> &mut Relay {
        &mut self.relays[id.0]
    }

    /// The descriptor store held by a relay.
    pub fn store(&self, id: RelayId) -> &DescriptorStore {
        &self.stores[id.0]
    }

    /// The request log of a logging relay.
    pub fn request_log(&self, id: RelayId) -> &RequestLog {
        &self.logs[id.0]
    }

    /// Drains the request log of a relay.
    pub fn take_request_log(&mut self, id: RelayId) -> Vec<RequestRecord> {
        self.logs[id.0].take()
    }

    /// Guard observations accumulated by attacker guards so far.
    pub fn guard_observations(&self) -> &[GuardObservation] {
        &self.guard_observations
    }

    /// Drains the guard-observation feed.
    pub fn take_guard_observations(&mut self) -> Vec<GuardObservation> {
        std::mem::take(&mut self.guard_observations)
    }

    /// Registered services, in stable registration ([`ServiceId`]) order.
    pub fn services(&self) -> impl Iterator<Item = ServiceRecord> + '_ {
        self.svc.records()
    }

    /// Adds a relay and returns its handle. The relay participates from
    /// the *next* consensus round.
    pub fn add_relay(
        &mut self,
        nickname: impl Into<String>,
        ip: Ipv4,
        or_port: u16,
        identity: SimIdentity,
        bandwidth: u64,
        operator: Operator,
    ) -> RelayId {
        let id = RelayId(self.relays.len());
        let mut relay = Relay::new(id, nickname, ip, or_port, identity, bandwidth, self.time);
        relay.operator = operator;
        relay.logging = operator != Operator::Honest;
        self.relays.push(relay);
        self.stores.push(DescriptorStore::new());
        self.logs.push(RequestLog::new());
        id
    }

    /// Registers a hidden service. `online` services publish descriptors
    /// at every consensus round.
    pub fn register_service(&mut self, onion: OnionAddress, online: bool) {
        self.svc.register(onion, online);
    }

    /// Sets a service's liveness.
    pub fn set_service_online(&mut self, onion: OnionAddress, online: bool) {
        self.svc.set_online(onion, online);
    }

    /// Arms the traffic signature on all attacker HSDirs for `onion`:
    /// descriptor responses for that service will carry the signature.
    pub fn arm_signature(&mut self, onion: OnionAddress, signature: TrafficSignature) {
        let sid = self.svc.intern(onion);
        self.svc.arm(sid, signature);
        self.index_signature_target(sid);
    }

    /// Registers a client at `ip` and returns its handle. Guard sets are
    /// populated lazily on first use.
    pub fn add_client(&mut self, ip: Ipv4) -> ClientId {
        let id = ClientId(self.clients.len());
        self.clients.push(ClientState {
            ip,
            guards: GuardSet::new(),
        });
        id
    }

    /// A client's current state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn client(&self, id: ClientId) -> &ClientState {
        &self.clients[id.0]
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Advances time by `hours`, running a consensus round, descriptor
    /// expiry and descriptor publication at every consensus interval.
    ///
    /// The final step is clamped to the requested target, so a
    /// `consensus_interval` that does not divide the span never makes
    /// `time` overshoot (and the error never compounds across calls).
    pub fn advance_hours(&mut self, hours: u64) {
        let target = self.time + hours * HOUR;
        while self.time < target {
            let remaining = target.since(self.time);
            self.time += self.consensus_interval.min(remaining);
            self.step();
        }
    }

    /// Runs one consensus round *now* without moving time (useful after
    /// external mutations like reachability flips).
    pub fn revote(&mut self) {
        self.step();
    }

    /// Sets the mutate-phase worker-thread count (1 = inline). Purely a
    /// performance knob: every artifact is byte-identical at any value.
    pub fn set_mutate_threads(&mut self, threads: usize) {
        self.mutate_threads = threads.max(1);
    }

    /// Drains the accumulated mutate-wave statistics (one entry per
    /// sharded phase per consensus round). Observational only.
    pub fn take_mutate_wave_stats(&mut self) -> Vec<wave::WaveStats> {
        std::mem::take(&mut self.mutate_waves)
    }

    /// One consensus round: churn/fault rolls, the authority vote,
    /// descriptor publication and store maintenance — each phase a
    /// deterministic partition-by-`RelayId`/`ServiceId` wave whose
    /// shard results merge in canonical input order, so the round is
    /// byte-identical at any [`Network::set_mutate_threads`] value.
    fn step(&mut self) {
        let pool = wave::WavePool::new(self.mutate_threads);
        self.svc.flush();
        if !self.faults.is_inert() {
            // Relay-level faults apply before the vote so the consensus
            // reflects this round's crashes and restarts.
            let stats = self.faults.on_round(&mut self.relays, self.time, &pool);
            self.mutate_waves.push(stats);
        }
        let (consensus, vote_stats) = self.authority.vote_pooled(&self.relays, self.time, &pool);
        self.consensus = consensus;
        self.mutate_waves.push(vote_stats);
        let publish_stats = self.publish_descriptors(&pool);
        self.mutate_waves.push(publish_stats);
        // Store maintenance runs after the publish merge: expiry only
        // drops >24 h-old descriptors (never this round's uploads) and
        // publication never reads stores, so the order swap versus the
        // old sequential expire-then-publish is observationally
        // identical while letting each store apply its batch locally.
        let batches = std::mem::take(&mut self.publish_batches);
        let time = self.time;
        let (_, store_stats) = pool.map_mut(&mut self.stores, |i, store| {
            store.expire(time);
            if let Some(batch) = batches.get(i) {
                store.apply_batch(batch);
            }
        });
        self.publish_batches = batches;
        self.mutate_waves.push(store_stats);
        self.refresh_signature_index();
        self.record_round();
    }

    /// Appends a [`RoundTrace`] covering everything since the previous
    /// mark, when round tracing is enabled. Observation only: counters
    /// are read, never written.
    fn record_round(&mut self) {
        let (now, hot, faults) = (self.time, self.hot, self.faults.counters);
        if let Some(rec) = &mut self.round_trace {
            rec.rounds.push(RoundTrace {
                start: rec.mark_time,
                end: now,
                hot: hot.since(rec.mark_hot),
                faults: faults.since(rec.mark_faults),
            });
            rec.mark_time = now;
            rec.mark_hot = hot;
            rec.mark_faults = faults;
        }
    }

    /// Publishes both descriptor replicas of every online service to the
    /// currently responsible HSDirs, and records slot-hour coverage (at
    /// most once per hour) for logging relays.
    ///
    /// Runs as a wave: each online service is one read-only work unit
    /// (descriptor IDs, responsible slots, drop rolls — all pure hashes,
    /// no RNG), and the resulting [`PublishEffect`]s merge sequentially
    /// in canonical `ServiceId` order into the cache, the hot counters
    /// and the per-relay upload batches that the store wave then applies.
    ///
    /// Descriptor IDs come from the per-period cache: only services
    /// whose staggered 24 h period rolled over since the previous round
    /// pay for fresh SHA-1 work.
    fn publish_descriptors(&mut self, pool: &wave::WavePool) -> wave::WaveStats {
        let time = self.time;
        let hour = self.time.hours();
        let record_coverage = self.coverage_recorded_hour != Some(hour);
        let faults_active = !self.faults.is_inert();
        let cache_enabled = self.desc_cache_enabled;
        let online: Vec<ServiceId> = self.svc.online_ids().collect();

        let (effects, stats) = {
            let (svc, consensus) = (&self.svc, &self.consensus);
            let (relays, faults) = (&self.relays, &self.faults);
            pool.map(&online, |_, &sid| {
                publish_unit(
                    svc,
                    consensus,
                    relays,
                    faults,
                    faults_active,
                    cache_enabled,
                    sid,
                    time,
                )
            })
        };

        let Network {
            svc,
            hot,
            faults,
            publish_batches,
            relays,
            ..
        } = &mut *self;
        if publish_batches.len() < relays.len() {
            publish_batches.resize_with(relays.len(), Vec::new);
        }
        for batch in publish_batches.iter_mut() {
            batch.clear();
        }
        for (&sid, fx) in online.iter().zip(&effects) {
            if let Some(pair) = fx.cache {
                svc.set_cache(sid, pair);
            }
            hot.desc_cache_hits += u64::from(fx.hits);
            hot.desc_cache_misses += u64::from(fx.misses);
            hot.sha1_digests += u64::from(fx.sha1);
            faults.counters.publish_drops += u64::from(fx.drops);
            if record_coverage && fx.logging_slots > 0 {
                svc.add_slot_hours(sid, u64::from(fx.logging_slots));
            }
            let onion = svc.onion(sid);
            for &(relay, desc_id) in &fx.uploads[..usize::from(fx.n_uploads)] {
                publish_batches[relay.0].push(StoredDescriptor {
                    descriptor_id: desc_id,
                    onion,
                    published: time,
                });
            }
        }
        if record_coverage {
            self.coverage_recorded_hour = Some(hour);
        }
        stats
    }

    /// Re-indexes armed signature targets whose descriptor IDs rotated
    /// since the last round; a no-op in the (usual) hours where no armed
    /// target crosses a period boundary.
    fn refresh_signature_index(&mut self) {
        if !self.desc_cache_enabled {
            return;
        }
        let now = self.time.unix();
        let rotated: Vec<ServiceId> = self
            .svc
            .armed_ids()
            .filter(|&sid| {
                let period = TimePeriod::at(now, self.svc.onion(sid).permanent_id());
                self.svc.sig_period(sid) != Some(period)
            })
            .collect();
        for sid in rotated {
            self.index_signature_target(sid);
        }
    }

    /// (Re)builds the reverse `DescriptorId → ServiceId` entries for
    /// one armed target at the current time.
    fn index_signature_target(&mut self, sid: ServiceId) {
        if !self.desc_cache_enabled {
            return;
        }
        let onion = self.svc.onion(sid);
        let ids = self.cached_pair(onion);
        let period = TimePeriod::at(self.time.unix(), onion.permanent_id());
        self.svc.reindex_signature(sid, &ids, period);
    }

    /// The service's current descriptor-ID pair, answered from the
    /// per-period cache and recomputed only when the service's staggered
    /// 24 h period rotates.
    pub fn cached_pair(&mut self, onion: OnionAddress) -> [DescriptorId; REPLICAS as usize] {
        let sid = self.svc.intern(onion);
        pair_for(
            &mut self.svc,
            &mut self.hot,
            self.desc_cache_enabled,
            sid,
            self.time.unix(),
        )
    }

    /// Cumulative hot-path work counters.
    pub fn hot_counters(&self) -> HotPathCounters {
        self.hot
    }

    /// A deterministic 64-bit digest of the complete simulated world:
    /// clock, relay population and liveness, the current consensus,
    /// the service table (liveness, slot-hour coverage, armed
    /// signatures), every HSDir's descriptor store, the attacker
    /// request logs, the client pool, and pending guard observations.
    /// Two networks that evolved through the same seeded history hash
    /// identically; any protocol-visible divergence changes the
    /// digest. The resident-daemon layer uses this to prove that a
    /// cancelled, deadline-expired, or panicking query left the shared
    /// world byte-identical, and to name world epochs in cache keys.
    ///
    /// Observability state (hot counters, round traces, wave stats)
    /// and the RNG cursor are deliberately excluded: they never feed
    /// back into protocol decisions, so including them would make the
    /// digest flag divergences no client can observe.
    pub fn state_hash(&self) -> u64 {
        fn fold(h: u64, v: u64) -> u64 {
            wave::mix2(h, v)
        }
        fn fold8(h: u64, bytes: &[u8]) -> u64 {
            let mut b = [0u8; 8];
            let n = bytes.len().min(8);
            b[..n].copy_from_slice(&bytes[..n]);
            fold(h, u64::from_le_bytes(b))
        }
        let mut h: u64 = 0x6c61_6e64_7363_6170; // "landscap"
        h = fold(h, self.time.unix());
        h = fold(h, self.consensus_interval);
        h = fold(h, self.relays.len() as u64);
        for r in &self.relays {
            h = fold(h, r.id.0 as u64);
            h = fold8(h, r.identity.fingerprint().digest().as_bytes());
            h = fold(h, u64::from(r.ip.0));
            h = fold(h, u64::from(r.or_port));
            h = fold(h, r.bandwidth);
            let bits =
                u64::from(r.running) | u64::from(r.reachable) << 1 | u64::from(r.logging) << 2;
            h = fold(h, bits);
            h = fold(h, r.last_restart.unix());
        }
        h = fold(h, self.consensus.valid_after().unix());
        h = fold(h, self.consensus.len() as u64);
        for e in self.consensus.entries() {
            h = fold(h, e.relay.0 as u64);
            h = fold8(h, e.fingerprint.digest().as_bytes());
            h = fold(h, e.bandwidth);
        }
        for (i, rec) in self.svc.records().enumerate() {
            let sid = ServiceId(i as u32);
            h = fold8(h, rec.onion.permanent_id().as_bytes());
            h = fold(h, u64::from(rec.online));
            h = fold(h, self.svc.slot_hours(sid));
            h = fold(h, u64::from(self.svc.signature(sid).is_some()));
        }
        for store in &self.stores {
            h = fold(h, store.len() as u64);
            for d in store.iter() {
                h = fold8(h, d.descriptor_id.digest().as_bytes());
                h = fold8(h, d.onion.permanent_id().as_bytes());
                h = fold(h, d.published.unix());
            }
        }
        for log in &self.logs {
            h = fold(h, log.len() as u64);
            for rec in log.records() {
                h = fold(h, rec.time.unix());
                h = fold8(h, rec.descriptor_id.digest().as_bytes());
                h = fold(h, u64::from(rec.found));
            }
        }
        h = fold(h, self.clients.len() as u64);
        for c in &self.clients {
            h = fold(h, u64::from(c.ip.0));
        }
        h = fold(h, self.guard_observations.len() as u64);
        for o in &self.guard_observations {
            h = fold(h, o.time.unix());
            h = fold(h, o.guard.0 as u64);
            h = fold(h, u64::from(o.client_ip.0));
            h = fold8(h, o.onion.permanent_id().as_bytes());
        }
        h = fold(h, self.coverage_recorded_hour.unwrap_or(u64::MAX));
        h
    }

    /// Replaces the fault plan (and resets all fault state: schedules,
    /// load counters, and fault counters).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultState::new(plan);
    }

    /// The active fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults.plan
    }

    /// Cumulative injected-fault counters.
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults.counters
    }

    /// Enables (or disables) the per-round trace recorder. Enabling
    /// resets the recording marks to *now*, so the first recorded round
    /// starts at the current sim time; disabling discards any
    /// unconsumed rounds. Recording is observational only — no
    /// simulation behaviour changes either way.
    pub fn set_round_tracing(&mut self, enabled: bool) {
        self.round_trace = if enabled {
            Some(RoundRecorder {
                rounds: Vec::new(),
                mark_time: self.time,
                mark_hot: self.hot,
                mark_faults: self.faults.counters,
            })
        } else {
            None
        };
    }

    /// Whether the round recorder is active.
    pub fn round_tracing_enabled(&self) -> bool {
        self.round_trace.is_some()
    }

    /// Drains the recorded rounds, leaving the recorder enabled with
    /// its marks at the current position. A `Network` cloned *after* a
    /// drain therefore starts with an empty round buffer, so pipeline
    /// snapshots never duplicate rounds already attributed to an
    /// earlier stage.
    pub fn take_round_trace(&mut self) -> Vec<RoundTrace> {
        match &mut self.round_trace {
            Some(rec) => std::mem::take(&mut rec.rounds),
            None => Vec::new(),
        }
    }

    /// Disables (or re-enables) the descriptor-ID cache, forcing the
    /// uncached reference path: `pair_at` recomputation per lookup and a
    /// linear scan in `signature_for`. Exists so tests can check the
    /// cached fast path against first-principles recomputation.
    pub fn set_desc_cache_enabled(&mut self, enabled: bool) {
        self.desc_cache_enabled = enabled;
        self.svc.clear_runtime_caches();
        if enabled {
            let targets: Vec<ServiceId> = self.svc.armed_ids().collect();
            for sid in targets {
                self.index_signature_target(sid);
            }
        }
    }

    /// Slot-hours of logging-relay coverage accumulated for a service.
    pub fn slot_hours(&self, onion: OnionAddress) -> u64 {
        self.svc
            .get(onion)
            .map_or(0, |sid| self.svc.slot_hours(sid))
    }

    /// The full nonzero slot-hour coverage table, sorted by onion
    /// address — a deterministic owned view (the old `&HashMap` borrow
    /// leaked iteration-order nondeterminism to every caller).
    pub fn slot_hours_sorted(&self) -> Vec<(OnionAddress, u64)> {
        self.svc.slot_hours_sorted()
    }

    /// A client fetches a descriptor by ID (phantom requests — fetches
    /// for IDs that were never published — go through this entry point
    /// too, exactly like the 80 % of requests the paper observed).
    ///
    /// The fetch is routed through a circuit whose first hop is one of
    /// the client's guards; each responsible HSDir is tried in random
    /// order until one returns the descriptor. Logging HSDirs record the
    /// request; if the response carries an armed traffic signature and
    /// the guard is attacker-operated, a [`GuardObservation`] is emitted.
    pub fn client_fetch_desc_id(
        &mut self,
        client: ClientId,
        desc_id: DescriptorId,
    ) -> FetchOutcome {
        self.hot.fetches += 1;
        // Establish the entry guard.
        self.clients[client.0]
            .guards
            .maintain(&self.consensus, self.time, &mut self.rng);
        let Some(guard) = self.clients[client.0]
            .guards
            .pick(&self.consensus, &mut self.rng)
        else {
            return FetchOutcome::NoCircuit;
        };

        let mut order = [RelayId(usize::MAX); HSDIRS_PER_REPLICA];
        let n = self.consensus.responsible_hsdirs_into(desc_id, &mut order);
        if n == 0 {
            return FetchOutcome::NoHsdirs;
        }
        // Shuffling the filled prefix draws from the RNG exactly like
        // shuffling the old `Vec` of the same length did.
        order[..n].shuffle(&mut self.rng);

        let faults_active = !self.faults.is_inert();
        let mut outcome = FetchOutcome::NotFound;
        for &hsdir in &order[..n] {
            // An overloaded or lossy HSDir neither serves nor logs the
            // query; the client sees a timeout on that circuit and
            // moves to the next responsible directory.
            if faults_active && self.faults.drops_query(hsdir, desc_id) {
                outcome = FetchOutcome::Timeout;
                continue;
            }
            let found = self.stores[hsdir.0].contains(desc_id);
            if self.relays[hsdir.0].logging {
                self.logs[hsdir.0].record(RequestRecord {
                    time: self.time,
                    descriptor_id: desc_id,
                    found,
                });
            }
            if !found {
                continue;
            }
            outcome = FetchOutcome::Found;
            // Signature injection: the attacker HSDir knows the target
            // services' current descriptor IDs and arms responses.
            if self.relays[hsdir.0].operator != Operator::Honest {
                if let Some((onion, sig)) = self.signature_for(desc_id) {
                    let cells = sig.encode_response(3);
                    // The guard inspects cells flowing toward the client.
                    if self.relays[guard.0].operator != Operator::Honest && sig.matches(&cells) {
                        self.guard_observations.push(GuardObservation {
                            time: self.time,
                            guard,
                            client_ip: self.clients[client.0].ip,
                            onion,
                        });
                    }
                }
            }
            break;
        }
        outcome
    }

    /// A client fetches the descriptor of a service by onion address:
    /// picks a replica at random, falls back to the other.
    pub fn client_fetch(&mut self, client: ClientId, onion: OnionAddress) -> FetchOutcome {
        let mut ids = self.cached_pair(onion);
        if self.rng.random::<bool>() {
            ids.swap(0, 1);
        }
        let first = self.client_fetch_desc_id(client, ids[0]);
        match first {
            FetchOutcome::Found | FetchOutcome::NoCircuit | FetchOutcome::NoHsdirs => first,
            FetchOutcome::NotFound | FetchOutcome::Timeout => {
                let second = self.client_fetch_desc_id(client, ids[1]);
                match second {
                    // A timeout on either replica makes the whole fetch
                    // a timeout: the descriptor may exist behind the
                    // dropped query, so the result is transient.
                    FetchOutcome::Found => FetchOutcome::Found,
                    _ if first == FetchOutcome::Timeout => FetchOutcome::Timeout,
                    other => other,
                }
            }
        }
    }

    /// [`Network::client_fetch`] with capped exponential backoff over
    /// the replica set: transient [`FetchOutcome::Timeout`] results are
    /// retried up to the policy's attempt budget. Backoff is accounted
    /// in the result, never slept — simulation time does not advance,
    /// and a zero-fault network (which never times out) performs
    /// exactly one attempt with identical RNG consumption.
    pub fn client_fetch_with_retry(
        &mut self,
        client: ClientId,
        onion: OnionAddress,
        policy: &RetryPolicy,
    ) -> FetchAttempts {
        let budget = policy.max_attempts.max(1);
        let mut attempts = 0u32;
        let mut backoff_secs = 0u64;
        loop {
            attempts += 1;
            let outcome = self.client_fetch(client, onion);
            if outcome != FetchOutcome::Timeout || attempts >= budget {
                return FetchAttempts {
                    outcome,
                    attempts,
                    backoff_secs,
                };
            }
            backoff_secs += policy.backoff_after(attempts);
        }
    }

    /// Sequential prepare phase for a measurement wave: maintains every
    /// client's guard set against the current consensus, in client
    /// index order, using the network RNG. Run once per wave (after the
    /// mutate phase) so the read-only units can [`GuardSet::pick`]
    /// without touching shared state.
    pub fn prepare_wave(&mut self) {
        // Merge the interner's pending tail so read-only units resolve
        // addresses in `O(log n)` against the sorted index alone.
        self.svc.flush();
        let now = self.time;
        let Network {
            clients,
            consensus,
            rng,
            ..
        } = &mut *self;
        for client in clients.iter_mut() {
            client.guards.maintain(consensus, now, rng);
        }
    }

    /// Read-only variant of [`Network::client_fetch_desc_id`] for
    /// measurement waves: circuit and HSDir-order randomness comes from
    /// the unit's own `rng`, and every side effect is recorded in `fx`
    /// instead of written through. The client's guard set must have
    /// been maintained by [`Network::prepare_wave`].
    pub fn client_fetch_desc_id_readonly(
        &self,
        client: ClientId,
        desc_id: DescriptorId,
        rng: &mut StdRng,
        fx: &mut WaveEffects,
    ) -> FetchOutcome {
        fx.hot.fetches += 1;
        let Some(guard) = self.clients[client.0].guards.pick(&self.consensus, rng) else {
            return FetchOutcome::NoCircuit;
        };

        let mut order = [RelayId(usize::MAX); HSDIRS_PER_REPLICA];
        let n = self.consensus.responsible_hsdirs_into(desc_id, &mut order);
        if n == 0 {
            return FetchOutcome::NoHsdirs;
        }
        order[..n].shuffle(rng);

        let faults_active = !self.faults.is_inert();
        let mut outcome = FetchOutcome::NotFound;
        for &hsdir in &order[..n] {
            if faults_active && self.wave_drops_query(hsdir, desc_id, fx) {
                outcome = FetchOutcome::Timeout;
                continue;
            }
            let found = self.stores[hsdir.0].contains(desc_id);
            if self.relays[hsdir.0].logging {
                fx.logs.push((
                    hsdir,
                    RequestRecord {
                        time: self.time,
                        descriptor_id: desc_id,
                        found,
                    },
                ));
            }
            if !found {
                continue;
            }
            outcome = FetchOutcome::Found;
            if self.relays[hsdir.0].operator != Operator::Honest {
                if let Some((onion, sig)) = self.signature_for(desc_id) {
                    let cells = sig.encode_response(3);
                    if self.relays[guard.0].operator != Operator::Honest && sig.matches(&cells) {
                        fx.observations.push(GuardObservation {
                            time: self.time,
                            guard,
                            client_ip: self.clients[client.0].ip,
                            onion,
                        });
                    }
                }
            }
            break;
        }
        outcome
    }

    /// The wave counterpart of `FaultState::drops_query`: overload is
    /// decided against the wave-start load snapshot plus the unit's own
    /// local contribution, and the drop roll's serial operand derives
    /// from the unit key — both thread-count-invariant.
    fn wave_drops_query(
        &self,
        hsdir: RelayId,
        desc_id: DescriptorId,
        fx: &mut WaveEffects,
    ) -> bool {
        let local = fx.bump_load(hsdir.0);
        let threshold = self.faults.plan.overload_threshold;
        if threshold > 0 && self.faults.round_load(hsdir) + local > threshold {
            fx.overload_drops += 1;
            return true;
        }
        fx.query_serial += 1;
        let serial = crate::fault::mix(crate::fault::mix(fx.unit_key) ^ fx.query_serial);
        if self.faults.wave_drop_roll(desc_id, serial) {
            fx.fetch_drops += 1;
            return true;
        }
        false
    }

    /// Read-only variant of [`Network::client_fetch`]: the replica swap
    /// draws from the unit `rng`, and a descriptor-ID pair not answered
    /// by the cache is recomputed locally without populating it (the
    /// SHA-1 work and the miss are still counted in `fx`).
    pub fn client_fetch_readonly(
        &self,
        client: ClientId,
        onion: OnionAddress,
        rng: &mut StdRng,
        fx: &mut WaveEffects,
    ) -> FetchOutcome {
        let mut ids = self.pair_readonly(onion, fx);
        if rng.random::<bool>() {
            ids.swap(0, 1);
        }
        let first = self.client_fetch_desc_id_readonly(client, ids[0], rng, fx);
        match first {
            FetchOutcome::Found | FetchOutcome::NoCircuit | FetchOutcome::NoHsdirs => first,
            FetchOutcome::NotFound | FetchOutcome::Timeout => {
                let second = self.client_fetch_desc_id_readonly(client, ids[1], rng, fx);
                match second {
                    FetchOutcome::Found => FetchOutcome::Found,
                    _ if first == FetchOutcome::Timeout => FetchOutcome::Timeout,
                    other => other,
                }
            }
        }
    }

    /// Read-only variant of [`Network::client_fetch_with_retry`].
    pub fn client_fetch_with_retry_readonly(
        &self,
        client: ClientId,
        onion: OnionAddress,
        policy: &RetryPolicy,
        rng: &mut StdRng,
        fx: &mut WaveEffects,
    ) -> FetchAttempts {
        let budget = policy.max_attempts.max(1);
        let mut attempts = 0u32;
        let mut backoff_secs = 0u64;
        loop {
            attempts += 1;
            let outcome = self.client_fetch_readonly(client, onion, rng, fx);
            if outcome != FetchOutcome::Timeout || attempts >= budget {
                return FetchAttempts {
                    outcome,
                    attempts,
                    backoff_secs,
                };
            }
            backoff_secs += policy.backoff_after(attempts);
        }
    }

    /// Read-only descriptor-ID pair lookup: cache hits are served and
    /// counted; misses recompute locally *without* inserting (dead and
    /// phantom services would otherwise mutate the cache mid-wave), so
    /// the miss accounting matches the sequential publish-warmed path.
    fn pair_readonly(
        &self,
        onion: OnionAddress,
        fx: &mut WaveEffects,
    ) -> [DescriptorId; REPLICAS as usize] {
        let perm = onion.permanent_id();
        let period = TimePeriod::at(self.time.unix(), perm);
        if self.desc_cache_enabled {
            if let Some((cached_period, ids)) =
                self.svc.get(onion).and_then(|sid| self.svc.cache(sid))
            {
                if cached_period == period {
                    fx.hot.desc_cache_hits += 1;
                    return ids;
                }
            }
            fx.hot.desc_cache_misses += 1;
        }
        fx.hot.sha1_digests += 2 * u64::from(REPLICAS);
        Replica::ALL.map(|r| DescriptorId::compute(perm, period, r))
    }

    /// Folds one wave unit's accumulated side effects back into the
    /// network. Call once per unit, in canonical input order, after the
    /// wave completes — the result is then identical to having run the
    /// units sequentially.
    pub fn apply_wave_effects(&mut self, fx: WaveEffects) {
        self.hot.sha1_digests += fx.hot.sha1_digests;
        self.hot.desc_cache_hits += fx.hot.desc_cache_hits;
        self.hot.desc_cache_misses += fx.hot.desc_cache_misses;
        self.hot.fetches += fx.hot.fetches;
        self.faults.counters.fetch_drops += fx.fetch_drops;
        self.faults.counters.overload_drops += fx.overload_drops;
        self.faults.add_load(&fx.load);
        for (relay, record) in fx.logs {
            self.logs[relay.0].record(record);
        }
        self.guard_observations.extend(fx.observations);
    }

    /// Full application connection: descriptor fetch, rendezvous, then
    /// the backend's port reply.
    pub fn connect_port(
        &mut self,
        client: ClientId,
        onion: OnionAddress,
        port: u16,
        backend: &dyn ServiceBackend,
    ) -> ConnectOutcome {
        match self.client_fetch(client, onion) {
            FetchOutcome::Found => {}
            _ => return ConnectOutcome::NoDescriptor,
        }
        // Transient unreachability: the descriptor resolved but the
        // service itself is flapping this hour (host churn, overloaded
        // introduction points). Indistinguishable from a dead backend
        // to the client, which is exactly the paper's scan ambiguity.
        if !self.faults.is_inert() && self.faults.service_flapping(onion, self.time) {
            return ConnectOutcome::ServiceUnreachable;
        }
        if !backend.is_online(onion, self.time) {
            return ConnectOutcome::ServiceUnreachable;
        }
        ConnectOutcome::Port(backend.connect(onion, port, self.time))
    }

    /// Convenience wrapper matching the paper's scan semantics: returns
    /// the port reply only (no descriptor → `Timeout`-equivalent
    /// `NoDescriptor` is surfaced via [`ConnectOutcome`]).
    pub fn scan_port(
        &mut self,
        client: ClientId,
        onion: OnionAddress,
        port: u16,
        backend: &dyn ServiceBackend,
    ) -> Option<PortReply> {
        match self.connect_port(client, onion, port, backend) {
            ConnectOutcome::Port(reply) => Some(reply),
            _ => None,
        }
    }

    /// Which armed target (if any) a served descriptor ID belongs to.
    ///
    /// The cached fast path is a single reverse-index lookup; with the
    /// cache disabled this falls back to the original linear scan that
    /// recomputes `pair_at` per armed target.
    fn signature_for(&self, desc_id: DescriptorId) -> Option<(OnionAddress, TrafficSignature)> {
        if self.desc_cache_enabled {
            let sid = self.svc.sig_lookup(desc_id)?;
            return Some((self.svc.onion(sid), self.svc.signature(sid)?.clone()));
        }
        let now = self.time.unix();
        for sid in self.svc.armed_ids() {
            let onion = self.svc.onion(sid);
            if DescriptorId::pair_at(onion, now).contains(&desc_id) {
                return Some((onion, self.svc.signature(sid)?.clone()));
            }
        }
        None
    }
}

/// Descriptor-ID pair lookup against the per-period cache column, free
/// of `&mut Network` so callers can run it under a split borrow. With
/// the cache disabled it recomputes every time (the test reference
/// path) while still counting the SHA-1 work.
fn pair_for(
    svc: &mut ServiceTable,
    hot: &mut HotPathCounters,
    cache_enabled: bool,
    sid: ServiceId,
    now_unix: u64,
) -> [DescriptorId; REPLICAS as usize] {
    let perm = svc.onion(sid).permanent_id();
    let period = TimePeriod::at(now_unix, perm);
    if cache_enabled {
        if let Some((cached_period, ids)) = svc.cache(sid) {
            if cached_period == period {
                hot.desc_cache_hits += 1;
                return ids;
            }
        }
        hot.desc_cache_misses += 1;
    }
    // Each DescriptorId::compute finalises two SHA-1s.
    hot.sha1_digests += 2 * u64::from(REPLICAS);
    let ids = Replica::ALL.map(|r| DescriptorId::compute(perm, period, r));
    if cache_enabled {
        svc.set_cache(sid, (period, ids));
    }
    ids
}

/// Upload slots one service can fill per round: both replicas times the
/// responsible HSDirs per replica.
const UPLOAD_SLOTS: usize = REPLICAS as usize * HSDIRS_PER_REPLICA;

/// Everything one service's publish work unit decided, recorded
/// allocation-free for the sequential `ServiceId`-order merge.
#[derive(Clone, Copy, Debug)]
struct PublishEffect {
    /// Fresh cache entry to install (`None` on a cache hit or with the
    /// cache disabled).
    cache: Option<(TimePeriod, [DescriptorId; REPLICAS as usize])>,
    /// Descriptor-ID cache hits (0 or 1).
    hits: u8,
    /// Descriptor-ID cache misses (0 or 1).
    misses: u8,
    /// SHA-1 finalisations performed.
    sha1: u8,
    /// Responsible slots held by logging relays this round.
    logging_slots: u8,
    /// Uploads dropped by fault injection.
    drops: u8,
    /// Successful uploads, in replica-then-ring order.
    uploads: [(RelayId, DescriptorId); UPLOAD_SLOTS],
    /// How many `uploads` entries are filled.
    n_uploads: u8,
}

/// The publish-wave work unit for one online service: pure hash work
/// (descriptor IDs, ring responsibility, keyed drop rolls — no RNG, no
/// shared mutation), so units can run on any thread in any order.
#[allow(clippy::too_many_arguments)]
fn publish_unit(
    svc: &ServiceTable,
    consensus: &Consensus,
    relays: &[Relay],
    faults: &FaultState,
    faults_active: bool,
    cache_enabled: bool,
    sid: ServiceId,
    time: SimTime,
) -> PublishEffect {
    let onion = svc.onion(sid);
    let perm = onion.permanent_id();
    let period = TimePeriod::at(time.unix(), perm);
    let (ids, cache, hits, misses, sha1) = match svc.cache(sid) {
        Some((cached_period, ids)) if cache_enabled && cached_period == period => {
            (ids, None, 1, 0, 0)
        }
        _ => {
            let ids = Replica::ALL.map(|r| DescriptorId::compute(perm, period, r));
            let cache = cache_enabled.then_some((period, ids));
            // With the cache disabled only the SHA-1 work is counted,
            // exactly like the sequential `pair_for` reference path.
            (ids, cache, 0, u8::from(cache_enabled), 2 * REPLICAS)
        }
    };
    let mut fx = PublishEffect {
        cache,
        hits,
        misses,
        sha1,
        logging_slots: 0,
        drops: 0,
        uploads: [(RelayId(usize::MAX), ids[0]); UPLOAD_SLOTS],
        n_uploads: 0,
    };
    let mut responsible = [RelayId(usize::MAX); HSDIRS_PER_REPLICA];
    for desc_id in ids {
        let n = consensus.responsible_hsdirs_into(desc_id, &mut responsible);
        for &relay in &responsible[..n] {
            // Slot coverage is derived from public consensuses
            // (responsibility), so a dropped upload still counts the
            // slot — matching what the attacker's normalisation could
            // actually observe.
            if relays[relay.0].logging {
                fx.logging_slots += 1;
            }
            if faults_active && faults.publish_drop_roll(relay, desc_id, time) {
                fx.drops += 1;
                continue;
            }
            fx.uploads[usize::from(fx.n_uploads)] = (relay, desc_id);
            fx.n_uploads += 1;
        }
    }
    fx
}

// Measurement waves share `&Network` across scoped worker threads, so
// every queried surface must stay `Sync`. `Network` has no interior
// mutability; this assertion turns any future regression (a `Cell`, an
// `Rc`) into a compile error rather than a lost `Sync` bound downstream.
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<Network>();
    assert_sync::<WaveEffects>();
};

/// Builder for [`Network`], seeding an initial honest relay population.
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    relays: usize,
    seed: u64,
    start: SimTime,
    consensus_interval: u64,
    min_bandwidth: u64,
    max_bandwidth: u64,
    /// Fraction of relays started long enough ago to hold every flag.
    established_fraction: f64,
    /// Fault plan the network starts under (inert by default).
    faults: FaultPlan,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        NetworkBuilder {
            relays: 1400,
            seed: 0x7042_2013,
            start: SimTime::from_ymd(2013, 2, 1),
            consensus_interval: HOUR,
            min_bandwidth: 20,
            max_bandwidth: 10_000,
            established_fraction: 0.8,
            faults: FaultPlan::none(),
        }
    }
}

impl NetworkBuilder {
    /// Creates a builder with 2013-scale defaults (~1400 relays).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of initial honest relays.
    pub fn relays(mut self, n: usize) -> Self {
        self.relays = n;
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the simulation start time.
    pub fn start(mut self, t: SimTime) -> Self {
        self.start = t;
        self
    }

    /// Sets the consensus interval in seconds (default one hour).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is zero.
    pub fn consensus_interval(mut self, secs: u64) -> Self {
        assert!(secs > 0, "consensus interval must be nonzero");
        self.consensus_interval = secs;
        self
    }

    /// Sets the fraction of relays old enough to hold Guard/HSDir flags
    /// at start.
    pub fn established_fraction(mut self, f: f64) -> Self {
        self.established_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Sets the fault plan the network starts under. The default
    /// ([`FaultPlan::none`]) injects nothing and is byte-identical to
    /// omitting the call.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Sets the honest-relay bandwidth range in kB/s (heavy-tailed
    /// between `min` and `max`).
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or exceeds `max`.
    pub fn bandwidth_range(mut self, min: u64, max: u64) -> Self {
        assert!(
            min >= 1 && min <= max,
            "bandwidth range must satisfy 1 <= min <= max"
        );
        self.min_bandwidth = min;
        self.max_bandwidth = max;
        self
    }

    /// Builds the network and votes the initial consensus.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth range is invalid or the relay count
    /// exceeds the honest IP space.
    pub fn build(self) -> Network {
        assert!(
            self.min_bandwidth >= 1 && self.min_bandwidth <= self.max_bandwidth,
            "bandwidth range must satisfy 1 <= min <= max"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut relays = Vec::with_capacity(self.relays);
        for i in 0..self.relays {
            // Distinct public IPs for honest volunteers.
            let ip = honest_relay_ip(i);
            // Heavy-tailed bandwidth: a few fast relays, many slow ones.
            let u: f64 = rng.random::<f64>();
            let bw = heavy_tail_bandwidth(self.min_bandwidth, self.max_bandwidth, u);
            let established = rng.random::<f64>() < self.established_fraction;
            let age_secs = if established {
                rng.random_range(9 * DAY..120 * DAY)
            } else {
                rng.random_range(0..25 * HOUR)
            };
            let identity = SimIdentity::generate(&mut rng);
            relays.push(Relay::new(
                RelayId(i),
                format!("relay{i}"),
                ip,
                9001,
                identity,
                bw,
                self.start - age_secs,
            ));
        }

        let authority = Authority::new();
        let consensus = authority.vote(&relays, self.start);
        let n = relays.len();
        Network {
            time: self.start,
            consensus_interval: self.consensus_interval,
            authority,
            relays,
            consensus,
            svc: ServiceTable::default(),
            stores: vec![DescriptorStore::new(); n],
            logs: vec![RequestLog::new(); n],
            clients: Vec::new(),
            guard_observations: Vec::new(),
            coverage_recorded_hour: None,
            hot: HotPathCounters::default(),
            desc_cache_enabled: true,
            faults: FaultState::new(self.faults),
            round_trace: None,
            mutate_threads: 1,
            mutate_waves: Vec::new(),
            publish_batches: Vec::new(),
            rng: StdRng::seed_from_u64(self.seed ^ 0x00c1_1e77_5eed),
        }
    }
}

/// Deterministic distinct public IP for the `i`-th honest seed relay.
///
/// Walks 51.b.c.1 … 255.b.c.1 and then rolls the final octet, so the
/// space holds ~3.3 billion relays; conversion is checked, so
/// exhausting it panics instead of silently wrapping the first octet
/// into colliding addresses (which would corrupt the 2-per-IP
/// consensus rule).
fn honest_relay_ip(i: usize) -> Ipv4 {
    let block = i / (253 * 253);
    let a = u8::try_from(51 + block % 205).expect("first octet stays within 51..=255");
    let d = u8::try_from(1 + block / 205)
        .unwrap_or_else(|_| panic!("relay index {i} exceeds the honest IP space"));
    Ipv4::new(a, 1 + ((i / 253) % 253) as u8, 1 + (i % 253) as u8, d)
}

/// Heavy-tailed bandwidth draw in kB/s: `min * (max/min)^(u²)`, with
/// the ratio taken in f64 so non-divisible ranges keep their tail
/// (integer division used to truncate `max/min` before `powf`).
fn heavy_tail_bandwidth(min: u64, max: u64, u: f64) -> u64 {
    let ratio = max as f64 / min as f64;
    ((min as f64 * ratio.powf(u * u)) as u64).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::RelayFlags;

    struct AlwaysOpen;
    impl ServiceBackend for AlwaysOpen {
        fn connect(&self, _onion: OnionAddress, _port: u16, _now: SimTime) -> PortReply {
            PortReply::Open
        }
        fn is_online(&self, _onion: OnionAddress, _now: SimTime) -> bool {
            true
        }
    }

    fn small_net() -> Network {
        NetworkBuilder::new()
            .relays(80)
            .seed(11)
            .start(SimTime::from_ymd(2013, 2, 1))
            .build()
    }

    #[test]
    fn builder_produces_flagged_relays() {
        let net = small_net();
        assert_eq!(net.relays().len(), 80);
        assert!(net.consensus().hsdir_count() > 20, "most relays are HSDirs");
        assert!(net.consensus().guards().count() > 5, "some guards exist");
    }

    #[test]
    fn descriptors_published_and_fetchable() {
        let mut net = small_net();
        let onion = OnionAddress::from_pubkey(b"my hidden service");
        net.register_service(onion, true);
        net.advance_hours(1);

        let client = net.add_client(Ipv4::new(93, 184, 216, 34));
        assert_eq!(net.client_fetch(client, onion), FetchOutcome::Found);
    }

    #[test]
    fn offline_service_not_fetchable() {
        let mut net = small_net();
        let onion = OnionAddress::from_pubkey(b"dead service");
        net.register_service(onion, false);
        net.advance_hours(1);
        let client = net.add_client(Ipv4::new(1, 2, 3, 4));
        assert_eq!(net.client_fetch(client, onion), FetchOutcome::NotFound);
    }

    #[test]
    fn phantom_request_not_found_but_logged() {
        let mut net = small_net();
        net.advance_hours(1);
        // Make every relay a logging attacker so the request is surely
        // logged at the responsible HSDirs.
        for i in 0..net.relays().len() {
            net.relay_mut(RelayId(i)).logging = true;
        }
        let phantom = OnionAddress::from_pubkey(b"never published");
        let client = net.add_client(Ipv4::new(5, 6, 7, 8));
        assert_eq!(net.client_fetch(client, phantom), FetchOutcome::NotFound);

        let logged: usize = (0..net.relays().len())
            .map(|i| net.request_log(RelayId(i)).len())
            .sum();
        // Both replicas tried, 3 HSDirs each.
        assert_eq!(logged, 6);
        assert!((0..net.relays().len())
            .flat_map(|i| net.request_log(RelayId(i)).records().iter())
            .all(|r| !r.found));
    }

    #[test]
    fn descriptor_rotation_moves_stores() {
        let mut net = small_net();
        let onion = OnionAddress::from_pubkey(b"rotating service");
        net.register_service(onion, true);
        net.advance_hours(1);
        let pair_before = net.cached_pair(onion);
        let before: Vec<RelayId> = net
            .consensus()
            .responsible_for_service(onion, net.time().unix())
            .iter()
            .map(|e| e.relay)
            .collect();
        net.advance_hours(25);
        let pair_after = net.cached_pair(onion);
        let after: Vec<RelayId> = net
            .consensus()
            .responsible_for_service(onion, net.time().unix())
            .iter()
            .map(|e| e.relay)
            .collect();
        assert_ne!(before, after, "responsible set rotates with the period");
        assert_ne!(pair_before, pair_after, "cache invalidated on rotation");
        // The cache must have re-filled at least once (rotation) on top
        // of the initial miss, and answered the other rounds for free.
        let hot = net.hot_counters();
        assert!(hot.desc_cache_misses >= 2, "{hot:?}");
        assert!(hot.desc_cache_hits > hot.desc_cache_misses, "{hot:?}");
        assert_eq!(hot.sha1_digests, 4 * hot.desc_cache_misses, "{hot:?}");
        // And the descriptor is still fetchable after rotation.
        let client = net.add_client(Ipv4::new(9, 9, 9, 9));
        assert_eq!(net.client_fetch(client, onion), FetchOutcome::Found);
    }

    #[test]
    fn advance_hours_clamps_to_target() {
        let mut net = NetworkBuilder::new()
            .relays(30)
            .seed(3)
            .start(SimTime::from_ymd(2013, 2, 1))
            .consensus_interval(2 * HOUR)
            .build();
        let start = net.time();
        // 2 h interval does not divide 5 h: the last step must clamp.
        net.advance_hours(5);
        assert_eq!(net.time().since(start), 5 * HOUR);
        // And the error must not compound across calls.
        net.advance_hours(5);
        assert_eq!(net.time().since(start), 10 * HOUR);
        net.advance_hours(1);
        assert_eq!(net.time().since(start), 11 * HOUR);
    }

    #[test]
    fn publish_round_caches_descriptor_ids() {
        let mut net = small_net();
        let onions: Vec<OnionAddress> = (0..10u8)
            .map(|k| OnionAddress::from_pubkey(&[k, 1, 2]))
            .collect();
        for &o in &onions {
            net.register_service(o, true);
        }
        net.advance_hours(1);
        let h1 = net.hot_counters();
        assert_eq!(h1.desc_cache_misses, 10, "{h1:?}");
        assert_eq!(h1.desc_cache_hits, 0, "{h1:?}");
        assert_eq!(h1.sha1_digests, 40, "two SHA-1s x two replicas x ten");
        let t1 = net.time().unix();
        net.advance_hours(1);
        let t2 = net.time().unix();
        // Only services whose staggered period rolled over may miss.
        let rotated = onions
            .iter()
            .filter(|o| {
                TimePeriod::at(t1, o.permanent_id()) != TimePeriod::at(t2, o.permanent_id())
            })
            .count() as u64;
        let h2 = net.hot_counters().since(h1);
        assert_eq!(h2.desc_cache_misses, rotated, "{h2:?}");
        assert_eq!(h2.desc_cache_hits, 10 - rotated, "{h2:?}");
        assert_eq!(h2.sha1_digests, 4 * rotated, "{h2:?}");
    }

    #[test]
    fn round_tracing_records_contiguous_intervals_and_drains() {
        let mut net = small_net();
        let onion = OnionAddress::from_pubkey(b"traced svc");
        net.register_service(onion, true);
        net.advance_hours(1);
        assert!(
            net.take_round_trace().is_empty(),
            "disabled recorder yields nothing"
        );

        net.set_round_tracing(true);
        let enabled_at = net.time();
        let hot_before = net.hot_counters();
        net.advance_hours(3);
        let rounds = net.take_round_trace();
        assert_eq!(rounds.len(), 3, "one record per consensus round");
        assert_eq!(rounds[0].start, enabled_at);
        for pair in rounds.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "intervals are contiguous");
        }
        let delta = net.hot_counters().since(hot_before);
        let summed: u64 = rounds.iter().map(|r| r.hot.total()).sum();
        assert_eq!(summed, delta.total(), "round deltas partition the work");

        // A snapshot cloned after a drain starts with an empty buffer.
        let mut snapshot = net.clone();
        assert!(snapshot.round_tracing_enabled());
        assert!(snapshot.take_round_trace().is_empty());
        snapshot.advance_hours(1);
        assert_eq!(snapshot.take_round_trace().len(), 1);

        // Tracing itself never perturbs the simulation.
        let mut plain = small_net();
        plain.register_service(onion, true);
        plain.advance_hours(4);
        assert_eq!(plain.hot_counters(), net.hot_counters());
        assert_eq!(plain.time(), net.time());
    }

    #[test]
    fn cache_and_reference_paths_agree() {
        let run = |cached: bool| {
            let mut net = small_net();
            net.set_desc_cache_enabled(cached);
            let onion = OnionAddress::from_pubkey(b"equivalence svc");
            net.register_service(onion, true);
            net.arm_signature(onion, TrafficSignature::default());
            for i in 0..net.relays().len() {
                let r = net.relay_mut(RelayId(i));
                r.operator = Operator::Harvester;
                r.logging = true;
            }
            // Crosses a descriptor rotation, so the cache is exercised
            // through an invalidation, not just warm hits.
            net.advance_hours(30);
            let client = net.add_client(Ipv4::new(9, 8, 7, 6));
            let outcome = net.client_fetch(client, onion);
            let log_lens: Vec<usize> = (0..net.relays().len())
                .map(|i| net.request_log(RelayId(i)).len())
                .collect();
            (
                outcome,
                log_lens,
                net.guard_observations().len(),
                net.slot_hours(onion),
                net.cached_pair(onion),
            )
        };
        let fast = run(true);
        let reference = run(false);
        assert_eq!(fast, reference);
        assert_eq!(fast.0, FetchOutcome::Found);
        assert_eq!(fast.2, 1, "one observation through either path");
    }

    #[test]
    fn revote_does_not_double_count_slot_hours() {
        let mut net = small_net();
        let onion = OnionAddress::from_pubkey(b"coverage svc");
        net.register_service(onion, true);
        for i in 0..net.relays().len() {
            net.relay_mut(RelayId(i)).logging = true;
        }
        net.advance_hours(1);
        let after_hour = net.slot_hours(onion);
        assert_eq!(after_hour, 6, "all six responsible slots log");
        // Extra votes within the already-recorded hour add nothing.
        net.revote();
        net.revote();
        assert_eq!(net.slot_hours(onion), after_hour);
        net.advance_hours(1);
        assert_eq!(net.slot_hours(onion), after_hour + 6);
    }

    #[test]
    fn signature_index_tracks_rotation() {
        let mut net = small_net();
        let onion = OnionAddress::from_pubkey(b"tracked svc");
        net.register_service(onion, true);
        for i in 0..net.relays().len() {
            let r = net.relay_mut(RelayId(i));
            r.operator = Operator::Harvester;
            r.logging = true;
        }
        net.advance_hours(1);
        // Arming after the round must index immediately (no step between
        // arming and the first fetch).
        net.arm_signature(onion, TrafficSignature::default());
        let client = net.add_client(Ipv4::new(203, 0, 113, 9));
        assert_eq!(net.client_fetch(client, onion), FetchOutcome::Found);
        assert_eq!(net.guard_observations().len(), 1);
        // After the target's descriptor rotation the re-indexed entries
        // must still resolve the (new) served IDs.
        net.advance_hours(25);
        assert_eq!(net.client_fetch(client, onion), FetchOutcome::Found);
        assert_eq!(net.guard_observations().len(), 2);
    }

    #[test]
    fn honest_ips_unique_at_scale() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        // Sample across block boundaries, including where the old
        // unchecked cast wrapped the first octet (i = 253·253·205).
        let boundary = 253 * 253 * 205;
        for i in (0..2_000)
            .chain((253 * 253 - 100)..(253 * 253 + 100))
            .chain((boundary - 100)..(boundary + 100))
        {
            assert!(seen.insert(honest_relay_ip(i)), "duplicate IP at {i}");
        }
    }

    #[test]
    fn heavy_tail_ratio_not_truncated() {
        // 10/3 truncated to 3 under integer division, capping the tail
        // at 9 instead of 10.
        assert_eq!(heavy_tail_bandwidth(3, 10, 1.0), 10);
        assert_eq!(heavy_tail_bandwidth(3, 10, 0.0), 3);
        assert_eq!(heavy_tail_bandwidth(20, 10_000, 1.0), 10_000);
    }

    #[test]
    #[should_panic(expected = "bandwidth range")]
    fn bandwidth_range_rejects_inverted() {
        let _ = NetworkBuilder::new().bandwidth_range(100, 10);
    }

    #[test]
    #[should_panic(expected = "bandwidth range")]
    fn bandwidth_range_rejects_zero_min() {
        let _ = NetworkBuilder::new().bandwidth_range(0, 10);
    }

    #[test]
    fn connect_port_full_path() {
        let mut net = small_net();
        let onion = OnionAddress::from_pubkey(b"webserver");
        net.register_service(onion, true);
        net.advance_hours(1);
        let client = net.add_client(Ipv4::new(10, 1, 1, 1));
        let out = net.connect_port(client, onion, 80, &AlwaysOpen);
        assert_eq!(out, ConnectOutcome::Port(PortReply::Open));
        assert!(out.counts_as_open());

        let ghost = OnionAddress::from_pubkey(b"ghost");
        let out = net.connect_port(client, ghost, 80, &AlwaysOpen);
        assert_eq!(out, ConnectOutcome::NoDescriptor);
    }

    #[test]
    fn signature_observation_requires_attacker_guard() {
        let mut net = small_net();
        let onion = OnionAddress::from_pubkey(b"watched service");
        net.register_service(onion, true);
        net.arm_signature(onion, TrafficSignature::default());

        // Turn every relay into an attacker relay: HSDirs inject, guards
        // detect — guaranteeing an observation on a successful fetch.
        for i in 0..net.relays().len() {
            let r = net.relay_mut(RelayId(i));
            r.operator = Operator::Harvester;
            r.logging = true;
        }
        net.advance_hours(1);

        let victim_ip = Ipv4::new(203, 0, 113, 7);
        let client = net.add_client(victim_ip);
        assert_eq!(net.client_fetch(client, onion), FetchOutcome::Found);
        let obs = net.guard_observations();
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].client_ip, victim_ip);
        assert_eq!(obs[0].onion, onion);
    }

    #[test]
    fn no_observation_with_honest_guards() {
        let mut net = small_net();
        let onion = OnionAddress::from_pubkey(b"watched service 2");
        net.register_service(onion, true);
        net.arm_signature(onion, TrafficSignature::default());
        net.advance_hours(1);
        let client = net.add_client(Ipv4::new(198, 51, 100, 4));
        let _ = net.client_fetch(client, onion);
        assert!(net.guard_observations().is_empty());
    }

    #[test]
    fn added_relay_joins_next_round() {
        let mut net = small_net();
        let mut rng = StdRng::seed_from_u64(77);
        let id = net.add_relay(
            "latecomer",
            Ipv4::new(203, 0, 113, 99),
            9001,
            SimIdentity::generate(&mut rng),
            9_999,
            Operator::Harvester,
        );
        assert!(net.consensus().entry(net.relay(id).fingerprint()).is_none());
        net.advance_hours(1);
        assert!(net.consensus().entry(net.relay(id).fingerprint()).is_some());
        // But no HSDir flag until 25 h of uptime.
        let e = net.consensus().entry(net.relay(id).fingerprint()).unwrap();
        assert!(!e.flags.contains(RelayFlags::HSDIR));
        net.advance_hours(25);
        let e = net.consensus().entry(net.relay(id).fingerprint()).unwrap();
        assert!(e.flags.contains(RelayFlags::HSDIR));
    }

    /// A run under an explicit zero-rate plan with a nonzero fault seed
    /// is indistinguishable from a run with no plan at all.
    #[test]
    fn zero_rate_plan_is_byte_identical() {
        let run = |plan: Option<FaultPlan>| {
            let mut b = NetworkBuilder::new()
                .relays(80)
                .seed(11)
                .start(SimTime::from_ymd(2013, 2, 1));
            if let Some(plan) = plan {
                b = b.faults(plan);
            }
            let mut net = b.build();
            let onion = OnionAddress::from_pubkey(b"identity service");
            net.register_service(onion, true);
            net.advance_hours(30);
            let client = net.add_client(Ipv4::new(93, 184, 216, 34));
            let outcomes: Vec<FetchOutcome> =
                (0..20).map(|_| net.client_fetch(client, onion)).collect();
            (outcomes, net.hot_counters(), net.slot_hours(onion))
        };
        let zero = FaultPlan {
            seed: 0xdead_beef,
            ..FaultPlan::none()
        };
        assert!(zero.is_inert());
        assert_eq!(run(None), run(Some(zero)));
    }

    #[test]
    fn crashed_relays_leave_consensus_and_restart_later() {
        let plan = FaultPlan {
            seed: 3,
            relay_crash_rate: 0.05,
            restart_after_hours: 2,
            ..FaultPlan::none()
        };
        let mut net = NetworkBuilder::new()
            .relays(80)
            .seed(11)
            .start(SimTime::from_ymd(2013, 2, 1))
            .faults(plan)
            .build();
        net.advance_hours(12);
        let c = net.fault_counters();
        assert!(c.relay_crashes > 0, "{c:?}");
        assert!(
            c.relay_restarts > 0,
            "2 h downtime within 12 h must restart some relays: {c:?}"
        );
        // Down relays are not listed; a consensus still forms.
        let down = net.relays().iter().filter(|r| !r.running).count();
        assert!(net.consensus().len() <= net.relays().len() - down);
        assert!(net.consensus().hsdir_count() > 0);
        // Determinism: the same plan replays the same faults.
        let mut twin = NetworkBuilder::new()
            .relays(80)
            .seed(11)
            .start(SimTime::from_ymd(2013, 2, 1))
            .faults(net.fault_plan().clone())
            .build();
        twin.advance_hours(12);
        assert_eq!(net.fault_counters(), twin.fault_counters());
    }

    #[test]
    fn total_drop_rate_times_out_and_retry_exhausts() {
        let plan = FaultPlan {
            seed: 9,
            hsdir_drop_rate: 1.0,
            ..FaultPlan::none()
        };
        let mut net = NetworkBuilder::new()
            .relays(80)
            .seed(11)
            .start(SimTime::from_ymd(2013, 2, 1))
            .faults(plan)
            .build();
        let onion = OnionAddress::from_pubkey(b"unreachable service");
        net.register_service(onion, true);
        net.advance_hours(1);
        let client = net.add_client(Ipv4::new(93, 184, 216, 34));
        assert_eq!(net.client_fetch(client, onion), FetchOutcome::Timeout);

        let policy = RetryPolicy::standard();
        let res = net.client_fetch_with_retry(client, onion, &policy);
        assert_eq!(res.outcome, FetchOutcome::Timeout);
        assert_eq!(res.attempts, policy.max_attempts);
        // 2 s + 4 s of accounted (never slept) backoff.
        assert_eq!(res.backoff_secs, 6);
        assert!(net.fault_counters().fetch_drops >= 6 * 3);
    }

    #[test]
    fn partial_drop_rate_recovers_with_retry() {
        let plan = FaultPlan {
            seed: 5,
            hsdir_drop_rate: 0.6,
            ..FaultPlan::none()
        };
        let mut net = NetworkBuilder::new()
            .relays(80)
            .seed(11)
            .start(SimTime::from_ymd(2013, 2, 1))
            .faults(plan)
            .build();
        let onion = OnionAddress::from_pubkey(b"flaky but present");
        net.register_service(onion, true);
        net.advance_hours(1);
        let client = net.add_client(Ipv4::new(93, 184, 216, 34));
        let generous = RetryPolicy {
            max_attempts: 12,
            ..RetryPolicy::standard()
        };
        // At 0.6 per-HSDir drop over 6 responsible HSDirs per attempt,
        // twelve attempts find the descriptor with near certainty.
        let res = net.client_fetch_with_retry(client, onion, &generous);
        assert_eq!(res.outcome, FetchOutcome::Found);
        assert!(res.attempts >= 1);
    }

    #[test]
    fn zero_fault_fetch_never_retries() {
        let mut net = small_net();
        let onion = OnionAddress::from_pubkey(b"steady service");
        net.register_service(onion, true);
        net.advance_hours(1);
        let client = net.add_client(Ipv4::new(93, 184, 216, 34));
        let res = net.client_fetch_with_retry(client, onion, &RetryPolicy::standard());
        assert_eq!(res.outcome, FetchOutcome::Found);
        assert_eq!(res.attempts, 1);
        assert_eq!(res.backoff_secs, 0);
        assert_eq!(net.fault_counters(), FaultCounters::default());
    }

    #[test]
    fn publish_drops_reduce_store_coverage_but_not_slot_hours() {
        let plan = FaultPlan {
            seed: 21,
            publish_drop_rate: 1.0,
            ..FaultPlan::none()
        };
        let mut net = NetworkBuilder::new()
            .relays(80)
            .seed(11)
            .start(SimTime::from_ymd(2013, 2, 1))
            .faults(plan)
            .build();
        let onion = OnionAddress::from_pubkey(b"never uploads");
        net.register_service(onion, true);
        net.advance_hours(1);
        assert!(net.fault_counters().publish_drops > 0);
        let client = net.add_client(Ipv4::new(93, 184, 216, 34));
        assert_eq!(
            net.client_fetch(client, onion),
            FetchOutcome::NotFound,
            "every upload dropped, nothing to serve"
        );
    }

    #[test]
    fn flapping_service_unreachable_despite_descriptor() {
        let plan = FaultPlan {
            seed: 2,
            service_flap_rate: 1.0,
            ..FaultPlan::none()
        };
        let mut net = NetworkBuilder::new()
            .relays(80)
            .seed(11)
            .start(SimTime::from_ymd(2013, 2, 1))
            .faults(plan)
            .build();
        let onion = OnionAddress::from_pubkey(b"flapping service");
        net.register_service(onion, true);
        net.advance_hours(1);
        let client = net.add_client(Ipv4::new(93, 184, 216, 34));
        assert_eq!(net.client_fetch(client, onion), FetchOutcome::Found);
        assert_eq!(
            net.connect_port(client, onion, 80, &AlwaysOpen),
            ConnectOutcome::ServiceUnreachable
        );
        assert!(net.fault_counters().service_flaps > 0);
    }

    #[test]
    fn readonly_fetch_counts_effects_and_logs_on_apply() {
        let mut net = small_net();
        let onion = OnionAddress::from_pubkey(b"wave service");
        net.register_service(onion, true);
        net.advance_hours(1);
        for i in 0..net.relays().len() {
            net.relay_mut(RelayId(i)).logging = true;
        }
        let client = net.add_client(Ipv4::new(10, 0, 0, 1));
        net.prepare_wave();
        let hot0 = net.hot_counters();

        let mut rng = StdRng::seed_from_u64(1);
        let mut fx = WaveEffects::new(0x11);
        assert_eq!(
            net.client_fetch_readonly(client, onion, &mut rng, &mut fx),
            FetchOutcome::Found
        );
        let phantom = OnionAddress::from_pubkey(b"wave phantom");
        let mut rng2 = StdRng::seed_from_u64(2);
        let mut fx2 = WaveEffects::new(0x22);
        assert_eq!(
            net.client_fetch_readonly(client, phantom, &mut rng2, &mut fx2),
            FetchOutcome::NotFound
        );
        assert_eq!(
            net.hot_counters(),
            hot0,
            "read-only fetches defer all counting"
        );

        net.apply_wave_effects(fx);
        net.apply_wave_effects(fx2);
        let d = net.hot_counters().since(hot0);
        assert_eq!(d.desc_cache_hits, 1, "published pair answered by cache");
        assert_eq!(d.desc_cache_misses, 1, "phantom pair computed locally");
        assert_eq!(d.sha1_digests, 4, "only the phantom pays SHA-1 work");
        // The phantom alone probes both replicas' three slots; every
        // relay logs, so at least those six records land on apply.
        let logged: usize = (0..net.relays().len())
            .map(|i| net.request_log(RelayId(i)).len())
            .sum();
        assert!(logged >= 6, "logged {logged}");
    }

    #[test]
    fn readonly_fetch_deterministic_under_faults() {
        let run = || {
            let plan = FaultPlan {
                seed: 9,
                hsdir_drop_rate: 0.5,
                overload_threshold: 3,
                ..FaultPlan::none()
            };
            let mut net = NetworkBuilder::new()
                .relays(80)
                .seed(11)
                .start(SimTime::from_ymd(2013, 2, 1))
                .faults(plan)
                .build();
            let onion = OnionAddress::from_pubkey(b"faulty wave svc");
            net.register_service(onion, true);
            net.advance_hours(1);
            let client = net.add_client(Ipv4::new(10, 0, 0, 2));
            net.prepare_wave();
            let mut rng = StdRng::seed_from_u64(77);
            let mut fx = WaveEffects::new(0xabc);
            let out = net.client_fetch_with_retry_readonly(
                client,
                onion,
                &RetryPolicy::standard(),
                &mut rng,
                &mut fx,
            );
            (out, format!("{fx:?}"))
        };
        assert_eq!(run(), run(), "unit-keyed rolls replay identically");
    }

    #[test]
    fn overload_threshold_drops_excess_queries() {
        let plan = FaultPlan {
            seed: 4,
            overload_threshold: 2,
            ..FaultPlan::none()
        };
        let mut net = NetworkBuilder::new()
            .relays(80)
            .seed(11)
            .start(SimTime::from_ymd(2013, 2, 1))
            .faults(plan)
            .build();
        let onion = OnionAddress::from_pubkey(b"popular service");
        net.register_service(onion, true);
        net.advance_hours(1);
        let client = net.add_client(Ipv4::new(93, 184, 216, 34));
        // Hammer the same descriptor: responsible HSDirs hit their
        // 2-query round budget and start shedding load.
        for _ in 0..20 {
            let _ = net.client_fetch(client, onion);
        }
        assert!(net.fault_counters().overload_drops > 0);
        // A new consensus round resets the load counters.
        let before = net.fault_counters().overload_drops;
        net.advance_hours(1);
        assert_eq!(net.client_fetch(client, onion), FetchOutcome::Found);
        assert_eq!(net.fault_counters().overload_drops, before);
    }
}

//! A dir-spec-flavoured text serialization of consensus documents.
//!
//! Real Tor consensuses are line-oriented documents (`r` router lines,
//! `s` flag lines, …). The Sec. VII analysis consumes multi-year
//! archives of such documents; this module provides a compatible
//! encoding so generated consensuses can be written to disk, diffed,
//! and re-parsed — the same workflow the paper ran against the
//! metrics.torproject.org archive.
//!
//! Format (per relay):
//!
//! ```text
//! network-status-version 3
//! valid-after 2013-02-04T00:00:00Z
//! r <nickname> <fingerprint-hex> <ip> <orport>
//! s <flag> <flag> …
//! (repeated)
//! directory-footer
//! ```

use core::fmt;

use onion_crypto::identity::Fingerprint;
use onion_crypto::sha1::Digest;

use crate::clock::SimTime;
use crate::consensus::{Consensus, ConsensusEntry};
use crate::flags::RelayFlags;
use crate::relay::{Ipv4, RelayId};

/// Serializes a consensus to the dir-spec-flavoured text format.
pub fn encode(consensus: &Consensus) -> String {
    let mut out = String::new();
    out.push_str("network-status-version 3\n");
    out.push_str(&format!("valid-after {}\n", consensus.valid_after()));
    for e in consensus.entries() {
        out.push_str(&format!(
            "r {} {} {} {}\n",
            e.nickname,
            e.fingerprint.to_hex(),
            e.ip,
            e.or_port
        ));
        out.push_str(&format!("s {}\n", e.flags));
        out.push_str(&format!("w Bandwidth={}\n", e.bandwidth));
    }
    out.push_str("directory-footer\n");
    out
}

/// Error from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDocError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseDocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDocError {}

fn err(line: usize, message: impl Into<String>) -> ParseDocError {
    ParseDocError {
        line,
        message: message.into(),
    }
}

/// Parses a document produced by [`encode`] back into a [`Consensus`].
///
/// # Errors
///
/// Returns [`ParseDocError`] on malformed headers, router lines, flag
/// lines or timestamps.
pub fn decode(doc: &str) -> Result<Consensus, ParseDocError> {
    let mut lines = doc.lines().enumerate().peekable();

    let (n, first) = lines.next().ok_or_else(|| err(1, "empty document"))?;
    if first.trim() != "network-status-version 3" {
        return Err(err(n + 1, "expected network-status-version 3"));
    }
    let (n, va_line) = lines.next().ok_or_else(|| err(2, "missing valid-after"))?;
    let valid_after = va_line
        .strip_prefix("valid-after ")
        .ok_or_else(|| err(n + 1, "expected valid-after"))?;
    let valid_after = parse_timestamp(valid_after)
        .ok_or_else(|| err(n + 1, format!("bad timestamp {valid_after:?}")))?;

    let mut entries: Vec<ConsensusEntry> = Vec::new();
    let mut index = 0usize;
    while let Some((n, line)) = lines.next() {
        let line = line.trim_end();
        if line == "directory-footer" {
            break;
        }
        let rest = line
            .strip_prefix("r ")
            .ok_or_else(|| err(n + 1, format!("expected r line, got {line:?}")))?;
        let mut parts = rest.split_whitespace();
        let nickname = parts.next().ok_or_else(|| err(n + 1, "missing nickname"))?;
        let fp_hex = parts
            .next()
            .ok_or_else(|| err(n + 1, "missing fingerprint"))?;
        let ip_str = parts.next().ok_or_else(|| err(n + 1, "missing ip"))?;
        let port_str = parts.next().ok_or_else(|| err(n + 1, "missing orport"))?;
        let fingerprint = Fingerprint::from_digest(
            Digest::parse_hex(fp_hex).map_err(|_| err(n + 1, "bad fingerprint hex"))?,
        );
        let ip = parse_ipv4(ip_str).ok_or_else(|| err(n + 1, "bad ip"))?;
        let or_port: u16 = port_str.parse().map_err(|_| err(n + 1, "bad orport"))?;

        let (sn, s_line) = lines.next().ok_or_else(|| err(n + 2, "missing s line"))?;
        let flags_str = s_line
            .strip_prefix("s ")
            .ok_or_else(|| err(sn + 1, "expected s line"))?;
        let flags = parse_flags(flags_str).ok_or_else(|| err(sn + 1, "unknown flag"))?;

        let (wn, w_line) = lines.next().ok_or_else(|| err(sn + 2, "missing w line"))?;
        let bandwidth: u64 = w_line
            .strip_prefix("w Bandwidth=")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(wn + 1, "expected w Bandwidth="))?;

        entries.push(ConsensusEntry {
            relay: RelayId(index),
            fingerprint,
            nickname: nickname.to_owned(),
            ip,
            or_port,
            bandwidth,
            flags,
        });
        index += 1;
    }

    Ok(Consensus::new(valid_after, entries))
}

fn parse_timestamp(s: &str) -> Option<SimTime> {
    // 2013-02-04T00:00:00Z
    let s = s.strip_suffix('Z')?;
    let (date, time) = s.split_once('T')?;
    let mut d = date.split('-');
    let (y, m, day) = (
        d.next()?.parse::<i64>().ok()?,
        d.next()?.parse::<u32>().ok()?,
        d.next()?.parse::<u32>().ok()?,
    );
    if !(1..=12).contains(&m) || !(1..=31).contains(&day) {
        return None;
    }
    let mut t = time.split(':');
    let (hh, mm, ss) = (
        t.next()?.parse::<u64>().ok()?,
        t.next()?.parse::<u64>().ok()?,
        t.next()?.parse::<u64>().ok()?,
    );
    Some(SimTime::from_ymd(y, m, day) + hh * 3600 + mm * 60 + ss)
}

fn parse_ipv4(s: &str) -> Option<Ipv4> {
    let mut parts = s.split('.');
    let a = parts.next()?.parse().ok()?;
    let b = parts.next()?.parse().ok()?;
    let c = parts.next()?.parse().ok()?;
    let d = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some(Ipv4::new(a, b, c, d))
}

fn parse_flags(s: &str) -> Option<RelayFlags> {
    let mut flags = RelayFlags::NONE;
    if s.trim() == "-" {
        return Some(flags);
    }
    for word in s.split_whitespace() {
        flags.insert(match word {
            "Running" => RelayFlags::RUNNING,
            "Fast" => RelayFlags::FAST,
            "Stable" => RelayFlags::STABLE,
            "Guard" => RelayFlags::GUARD,
            "HSDir" => RelayFlags::HSDIR,
            "Exit" => RelayFlags::EXIT,
            "Valid" => RelayFlags::VALID,
            _ => return None,
        });
    }
    Some(flags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_consensus;

    #[test]
    fn roundtrip() {
        let c = tiny_consensus(25);
        let doc = encode(&c);
        let parsed = decode(&doc).unwrap();
        assert_eq!(parsed.valid_after(), c.valid_after());
        assert_eq!(parsed.len(), c.len());
        for (a, b) in parsed.entries().iter().zip(c.entries()) {
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(a.nickname, b.nickname);
            assert_eq!(a.ip, b.ip);
            assert_eq!(a.or_port, b.or_port);
            assert_eq!(a.bandwidth, b.bandwidth);
            assert_eq!(a.flags, b.flags);
        }
        assert_eq!(parsed.hsdir_count(), c.hsdir_count());
    }

    #[test]
    fn document_shape() {
        let c = tiny_consensus(3);
        let doc = encode(&c);
        assert!(doc.starts_with("network-status-version 3\n"));
        assert!(doc.contains("valid-after 2013-02-01T00:00:00Z"));
        assert!(doc.trim_end().ends_with("directory-footer"));
        assert_eq!(doc.matches("\nr ").count() + 1, 4); // 3 r-lines (one after header)
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode("").is_err());
        assert!(decode("network-status-version 2\n").is_err());
        let bad_r = "network-status-version 3\nvalid-after 2013-02-01T00:00:00Z\nr onlynick\n";
        let e = decode(bad_r).unwrap_err();
        assert_eq!(e.line, 3);
        let bad_time = "network-status-version 3\nvalid-after yesterday\n";
        assert!(decode(bad_time).is_err());
    }

    #[test]
    fn timestamp_parser() {
        let t = parse_timestamp("2013-02-04T12:34:56Z").unwrap();
        assert_eq!(t.to_string(), "2013-02-04T12:34:56Z");
        assert!(parse_timestamp("2013-13-04T00:00:00Z").is_none());
        assert!(parse_timestamp("2013-02-04 00:00:00").is_none());
    }

    #[test]
    fn flag_parser_handles_empty() {
        assert_eq!(parse_flags("-").unwrap(), RelayFlags::NONE);
        assert!(parse_flags("Running BogusFlag").is_none());
    }
}

//! Per-relay hidden-service descriptor storage and request logging.
//!
//! Every relay with the HSDir flag stores the descriptors it is
//! responsible for, for 24 hours. Honest relays keep no records of who
//! asked for what; the harvesting attack works precisely because an
//! *attacker's* relay can log every descriptor publication and every
//! client request it sees — which is all the popularity measurement of
//! Sec. V consists of.

use std::collections::HashMap;

use onion_crypto::descriptor::DescriptorId;
use onion_crypto::onion::OnionAddress;

use crate::clock::{SimTime, DAY};

/// A stored v2 descriptor (contents abstracted to what the measurement
/// pipelines consume).
#[derive(Clone, Debug)]
pub struct StoredDescriptor {
    /// The ID the descriptor is filed under.
    pub descriptor_id: DescriptorId,
    /// The service it belongs to. A real descriptor contains the public
    /// key, from which the onion address is derived — the paper's
    /// harvesters did exactly that derivation.
    pub onion: OnionAddress,
    /// Publication time; descriptors expire 24 h later.
    pub published: SimTime,
}

/// One descriptor store, held by one HSDir relay.
#[derive(Clone, Debug, Default)]
pub struct DescriptorStore {
    descriptors: HashMap<DescriptorId, StoredDescriptor>,
}

impl DescriptorStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (or refreshes) a descriptor.
    pub fn publish(&mut self, desc: StoredDescriptor) {
        self.descriptors.insert(desc.descriptor_id, desc);
    }

    /// Looks up a descriptor by ID.
    pub fn fetch(&self, id: DescriptorId) -> Option<&StoredDescriptor> {
        self.descriptors.get(&id)
    }

    /// Whether a descriptor with this ID is stored.
    pub fn contains(&self, id: DescriptorId) -> bool {
        self.descriptors.contains_key(&id)
    }

    /// Drops descriptors published more than 24 h before `now`.
    pub fn expire(&mut self, now: SimTime) {
        self.descriptors.retain(|_, d| now.since(d.published) < DAY);
    }

    /// Number of stored descriptors.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Iterates over stored descriptors (the harvester's crop).
    pub fn iter(&self) -> impl Iterator<Item = &StoredDescriptor> + '_ {
        self.descriptors.values()
    }
}

/// One descriptor request observed by a logging relay.
#[derive(Clone, Copy, Debug)]
pub struct RequestRecord {
    /// When the request arrived.
    pub time: SimTime,
    /// The descriptor ID asked for.
    pub descriptor_id: DescriptorId,
    /// Whether the store had the descriptor.
    pub found: bool,
}

/// The request log an attacker-operated HSDir accumulates.
#[derive(Clone, Debug, Default)]
pub struct RequestLog {
    records: Vec<RequestRecord>,
}

impl RequestLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn record(&mut self, rec: RequestRecord) {
        self.records.push(rec);
    }

    /// All records, in arrival order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Number of logged requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drains the log, returning all records.
    pub fn take(&mut self) -> Vec<RequestRecord> {
        std::mem::take(&mut self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::HOUR;

    fn desc(seed: &[u8], published: SimTime) -> StoredDescriptor {
        let onion = OnionAddress::from_pubkey(seed);
        let [id, _] = DescriptorId::pair_at(onion, published.unix());
        StoredDescriptor {
            descriptor_id: id,
            onion,
            published,
        }
    }

    #[test]
    fn publish_fetch_roundtrip() {
        let t = SimTime::from_ymd(2013, 2, 4);
        let mut store = DescriptorStore::new();
        let d = desc(b"svc", t);
        store.publish(d.clone());
        assert!(store.contains(d.descriptor_id));
        assert_eq!(store.fetch(d.descriptor_id).unwrap().onion, d.onion);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn expiry_after_24h() {
        let t = SimTime::from_ymd(2013, 2, 4);
        let mut store = DescriptorStore::new();
        let d = desc(b"svc", t);
        let id = d.descriptor_id;
        store.publish(d);
        store.expire(t + 23 * HOUR);
        assert!(store.contains(id));
        store.expire(t + 24 * HOUR);
        assert!(!store.contains(id));
        assert!(store.is_empty());
    }

    #[test]
    fn republish_refreshes_expiry() {
        let t = SimTime::from_ymd(2013, 2, 4);
        let mut store = DescriptorStore::new();
        let mut d = desc(b"svc", t);
        let id = d.descriptor_id;
        store.publish(d.clone());
        d.published = t + 12 * HOUR;
        store.publish(d);
        store.expire(t + 30 * HOUR);
        assert!(store.contains(id));
    }

    #[test]
    fn request_log_accumulates_and_drains() {
        let t = SimTime::from_ymd(2013, 2, 4);
        let mut log = RequestLog::new();
        assert!(log.is_empty());
        let onion = OnionAddress::from_pubkey(b"q");
        let [id, _] = DescriptorId::pair_at(onion, t.unix());
        log.record(RequestRecord {
            time: t,
            descriptor_id: id,
            found: false,
        });
        log.record(RequestRecord {
            time: t + 60,
            descriptor_id: id,
            found: true,
        });
        assert_eq!(log.len(), 2);
        assert!(!log.records()[0].found);
        let drained = log.take();
        assert_eq!(drained.len(), 2);
        assert!(log.is_empty());
    }
}

//! Per-relay hidden-service descriptor storage and request logging.
//!
//! Every relay with the HSDir flag stores the descriptors it is
//! responsible for, for 24 hours. Honest relays keep no records of who
//! asked for what; the harvesting attack works precisely because an
//! *attacker's* relay can log every descriptor publication and every
//! client request it sees — which is all the popularity measurement of
//! Sec. V consists of.

use onion_crypto::descriptor::DescriptorId;
use onion_crypto::onion::OnionAddress;

use crate::clock::{SimTime, DAY};

/// A stored v2 descriptor (contents abstracted to what the measurement
/// pipelines consume).
#[derive(Clone, Copy, Debug)]
pub struct StoredDescriptor {
    /// The ID the descriptor is filed under.
    pub descriptor_id: DescriptorId,
    /// The service it belongs to. A real descriptor contains the public
    /// key, from which the onion address is derived — the paper's
    /// harvesters did exactly that derivation.
    pub onion: OnionAddress,
    /// Publication time; descriptors expire 24 h later.
    pub published: SimTime,
}

/// One descriptor store, held by one HSDir relay.
///
/// Stored as a single `Vec` sorted by descriptor ID (unique keys, the
/// latest publication wins), so lookup is a binary search, expiry is a
/// linear retain, and the publish wave lands one canonical
/// [`apply_batch`](Self::apply_batch) merge per store per round —
/// no hashing anywhere on the consensus/publish/fetch paths.
#[derive(Clone, Debug, Default)]
pub struct DescriptorStore {
    descriptors: Vec<StoredDescriptor>,
}

impl DescriptorStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (or refreshes) a descriptor.
    pub fn publish(&mut self, desc: StoredDescriptor) {
        match self
            .descriptors
            .binary_search_by_key(&desc.descriptor_id, |d| d.descriptor_id)
        {
            Ok(i) => self.descriptors[i] = desc,
            Err(i) => self.descriptors.insert(i, desc),
        }
    }

    /// Stores a whole round's publications in one sorted merge.
    ///
    /// Equivalent to calling [`publish`](Self::publish) for each batch
    /// entry in order: within the batch the **last** entry per ID wins
    /// (the sort is stable over batch order), and batch entries
    /// overwrite already-stored descriptors with the same ID.
    pub fn apply_batch(&mut self, batch: &[StoredDescriptor]) {
        if batch.is_empty() {
            return;
        }
        let mut incoming = batch.to_vec();
        incoming.sort_by_key(|d| d.descriptor_id);
        let mut deduped: Vec<StoredDescriptor> = Vec::with_capacity(incoming.len());
        for d in incoming {
            match deduped.last_mut() {
                Some(prev) if prev.descriptor_id == d.descriptor_id => *prev = d,
                _ => deduped.push(d),
            }
        }
        let old = std::mem::take(&mut self.descriptors);
        self.descriptors = Vec::with_capacity(old.len() + deduped.len());
        let mut fresh = deduped.into_iter().peekable();
        for entry in old {
            while let Some(d) = fresh.next_if(|d| d.descriptor_id < entry.descriptor_id) {
                self.descriptors.push(d);
            }
            // A batch entry with the stored ID refreshes it.
            match fresh.next_if(|d| d.descriptor_id == entry.descriptor_id) {
                Some(d) => self.descriptors.push(d),
                None => self.descriptors.push(entry),
            }
        }
        self.descriptors.extend(fresh);
    }

    /// Looks up a descriptor by ID.
    pub fn fetch(&self, id: DescriptorId) -> Option<&StoredDescriptor> {
        self.descriptors
            .binary_search_by_key(&id, |d| d.descriptor_id)
            .ok()
            .map(|i| &self.descriptors[i])
    }

    /// Whether a descriptor with this ID is stored.
    pub fn contains(&self, id: DescriptorId) -> bool {
        self.descriptors
            .binary_search_by_key(&id, |d| d.descriptor_id)
            .is_ok()
    }

    /// Drops descriptors published more than 24 h before `now`.
    pub fn expire(&mut self, now: SimTime) {
        self.descriptors.retain(|d| now.since(d.published) < DAY);
    }

    /// Number of stored descriptors.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Iterates over stored descriptors in descriptor-ID order (the
    /// harvester's crop).
    pub fn iter(&self) -> impl Iterator<Item = &StoredDescriptor> + '_ {
        self.descriptors.iter()
    }
}

/// One descriptor request observed by a logging relay.
#[derive(Clone, Copy, Debug)]
pub struct RequestRecord {
    /// When the request arrived.
    pub time: SimTime,
    /// The descriptor ID asked for.
    pub descriptor_id: DescriptorId,
    /// Whether the store had the descriptor.
    pub found: bool,
}

/// The request log an attacker-operated HSDir accumulates.
#[derive(Clone, Debug, Default)]
pub struct RequestLog {
    records: Vec<RequestRecord>,
}

impl RequestLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn record(&mut self, rec: RequestRecord) {
        self.records.push(rec);
    }

    /// All records, in arrival order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Number of logged requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drains the log, returning all records.
    pub fn take(&mut self) -> Vec<RequestRecord> {
        std::mem::take(&mut self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::HOUR;

    fn desc(seed: &[u8], published: SimTime) -> StoredDescriptor {
        let onion = OnionAddress::from_pubkey(seed);
        let [id, _] = DescriptorId::pair_at(onion, published.unix());
        StoredDescriptor {
            descriptor_id: id,
            onion,
            published,
        }
    }

    #[test]
    fn publish_fetch_roundtrip() {
        let t = SimTime::from_ymd(2013, 2, 4);
        let mut store = DescriptorStore::new();
        let d = desc(b"svc", t);
        store.publish(d.clone());
        assert!(store.contains(d.descriptor_id));
        assert_eq!(store.fetch(d.descriptor_id).unwrap().onion, d.onion);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn expiry_after_24h() {
        let t = SimTime::from_ymd(2013, 2, 4);
        let mut store = DescriptorStore::new();
        let d = desc(b"svc", t);
        let id = d.descriptor_id;
        store.publish(d);
        store.expire(t + 23 * HOUR);
        assert!(store.contains(id));
        store.expire(t + 24 * HOUR);
        assert!(!store.contains(id));
        assert!(store.is_empty());
    }

    #[test]
    fn republish_refreshes_expiry() {
        let t = SimTime::from_ymd(2013, 2, 4);
        let mut store = DescriptorStore::new();
        let mut d = desc(b"svc", t);
        let id = d.descriptor_id;
        store.publish(d.clone());
        d.published = t + 12 * HOUR;
        store.publish(d);
        store.expire(t + 30 * HOUR);
        assert!(store.contains(id));
    }

    #[test]
    fn apply_batch_equals_individual_publishes() {
        let t = SimTime::from_ymd(2013, 2, 4);
        let batch: Vec<StoredDescriptor> = (0..20u8)
            .map(|k| desc(&[k, k / 3], t + u64::from(k) * HOUR))
            .collect();
        let mut seq = DescriptorStore::new();
        seq.publish(desc(b"pre-existing", t));
        let mut merged = seq.clone();
        for d in &batch {
            seq.publish(d.clone());
        }
        merged.apply_batch(&batch);
        let render = |s: &DescriptorStore| {
            s.iter()
                .map(|d| format!("{:?}|{:?}|{:?}", d.descriptor_id, d.onion, d.published))
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&seq), render(&merged));
        assert_eq!(seq.len(), merged.len());
    }

    #[test]
    fn apply_batch_last_entry_per_id_wins() {
        let t = SimTime::from_ymd(2013, 2, 4);
        let mut early = desc(b"svc", t);
        let mut late = early.clone();
        late.published = t + 5 * HOUR;
        early.published = t;
        let id = early.descriptor_id;
        let mut store = DescriptorStore::new();
        store.apply_batch(&[early, late]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.fetch(id).unwrap().published, t + 5 * HOUR);
        // And a batch refresh overwrites a stored descriptor too.
        let mut refresh = desc(b"svc", t);
        refresh.published = t + 9 * HOUR;
        store.apply_batch(&[refresh]);
        assert_eq!(store.fetch(id).unwrap().published, t + 9 * HOUR);
    }

    #[test]
    fn iter_is_descriptor_id_sorted() {
        let t = SimTime::from_ymd(2013, 2, 4);
        let mut store = DescriptorStore::new();
        for k in 0..12u8 {
            store.publish(desc(&[k, 200], t));
        }
        let ids: Vec<DescriptorId> = store.iter().map(|d| d.descriptor_id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn request_log_accumulates_and_drains() {
        let t = SimTime::from_ymd(2013, 2, 4);
        let mut log = RequestLog::new();
        assert!(log.is_empty());
        let onion = OnionAddress::from_pubkey(b"q");
        let [id, _] = DescriptorId::pair_at(onion, t.unix());
        log.record(RequestRecord {
            time: t,
            descriptor_id: id,
            found: false,
        });
        log.record(RequestRecord {
            time: t + 60,
            descriptor_id: id,
            found: true,
        });
        assert_eq!(log.len(), 2);
        assert!(!log.records()[0].found);
        let drained = log.take();
        assert_eq!(drained.len(), 2);
        assert!(log.is_empty());
    }
}

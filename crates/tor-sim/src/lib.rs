//! A discrete-time simulator of the Tor network, scoped to everything
//! the hidden-service measurement study of Biryukov et al. (ICDCS 2014)
//! depends on.
//!
//! The simulator reproduces the v2 hidden-service protocol rules of the
//! 2013 network:
//!
//! - [`relay`] — relays with uptime, bandwidth, reachability and
//!   operator provenance;
//! - [`authority`] — directory authorities: flag voting (HSDir at ≥ 25 h
//!   uptime) and the two-relays-per-IP consensus rule whose *shadow
//!   relay* loophole enabled the paper's harvesting attack;
//! - [`consensus`] — the hourly consensus and the responsible-HSDir ring
//!   lookup;
//! - [`fault`] — deterministic fault injection (relay crashes, HSDir
//!   overload/drops, upload failures, service flaps) with the property
//!   that a zero-rate plan is byte-identical to no plan at all;
//! - [`store`] — per-relay descriptor stores with 24 h expiry and the
//!   request logs attacker HSDirs keep;
//! - [`intern`] — the `ServiceId` intern table and struct-of-arrays
//!   service-state columns the hot paths index into;
//! - [`guard`] — client entry-guard sets (3 guards, 30–60 day rotation);
//! - [`cells`] — circuit cells and the traffic signature used for
//!   opportunistic client deanonymisation;
//! - [`service`] — the backend trait application worlds implement;
//! - [`network`] — the orchestrator tying it all together.
//!
//! # Examples
//!
//! Run a small network, publish a hidden service, fetch it as a client:
//!
//! ```
//! use tor_sim::clock::SimTime;
//! use tor_sim::network::{FetchOutcome, NetworkBuilder};
//! use tor_sim::relay::Ipv4;
//! use onion_crypto::OnionAddress;
//!
//! let mut net = NetworkBuilder::new()
//!     .relays(60)
//!     .seed(42)
//!     .start(SimTime::from_ymd(2013, 2, 4))
//!     .build();
//! let onion = OnionAddress::from_pubkey(b"example service key");
//! net.register_service(onion, true);
//! net.advance_hours(1);
//!
//! let client = net.add_client(Ipv4::new(198, 51, 100, 7));
//! assert_eq!(net.client_fetch(client, onion), FetchOutcome::Found);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod authority;
pub mod cells;
pub mod clock;
pub mod consensus;
pub mod docfmt;
pub mod fault;
pub mod flags;
pub mod guard;
pub mod intern;
pub mod network;
pub mod relay;
pub mod service;
pub mod store;

#[doc(hidden)]
pub mod test_support;

#[cfg(test)]
mod proptests;

pub use authority::{Authority, AuthorityPolicy};
pub use cells::TrafficSignature;
pub use clock::SimTime;
pub use consensus::{Consensus, ConsensusEntry};
pub use fault::{FaultCounters, FaultPlan, RetryPolicy};
pub use flags::RelayFlags;
pub use guard::GuardSet;
pub use intern::{ServiceId, ServiceInterner, ServiceTable};
pub use network::{
    onion_unit_key, ClientId, FetchOutcome, Network, NetworkBuilder, RoundTrace, WaveEffects,
};
pub use relay::{Ipv4, Operator, Relay, RelayId};
pub use service::{ConnectOutcome, PortReply, ServiceBackend};

//! Deterministic fault injection: relay crashes, HSDir overload and
//! drops, descriptor-upload failures, and transient service
//! unreachability.
//!
//! A [`FaultPlan`] describes *rates*; the decisions themselves are pure
//! hashes of `(plan seed, entity, time | query serial)` — no RNG stream
//! is consumed, so injecting faults never perturbs the network's own
//! randomness. Two consequences the test suite relies on:
//!
//! * a plan with every rate at zero is **byte-identical** to running
//!   without a fault layer at all (no draws, no counter changes, no
//!   behavioural difference), and
//! * an adversarial plan is fully deterministic: the same seed replays
//!   the same crashes, drops and flaps, fetch for fetch.
//!
//! The per-relay *load counter* models HSDir overload: every descriptor
//! query a relay receives within one consensus round increments its
//! load, and queries beyond [`FaultPlan::overload_threshold`] are
//! dropped — popular services degrade their own HSDirs, exactly the
//! failure mode the 2013 measurements had to survive.

use crate::clock::{SimTime, HOUR};
use crate::relay::{Relay, RelayId};
use onion_crypto::descriptor::DescriptorId;
use onion_crypto::onion::OnionAddress;

/// Configured fault rates, all independent and all deterministic under
/// [`FaultPlan::seed`]. The default plan injects nothing.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault decisions. Distinct from every other seed
    /// domain; changing it re-rolls the faults without touching the
    /// world, network or traffic randomness.
    pub seed: u64,
    /// Per-relay, per-consensus-round probability of crashing.
    pub relay_crash_rate: f64,
    /// Hours a crashed relay stays down before its operator restarts
    /// it (restarting resets the uptime clock, so the relay loses its
    /// HSDir flag for the next 25 h).
    pub restart_after_hours: u64,
    /// Per-query probability that a responsible HSDir silently drops a
    /// descriptor fetch (the client observes a timeout).
    pub hsdir_drop_rate: f64,
    /// Per-upload probability that a descriptor publish to one HSDir
    /// fails.
    pub publish_drop_rate: f64,
    /// Per-hour probability that a service is transiently unreachable
    /// at the rendezvous step even though its descriptor resolves.
    pub service_flap_rate: f64,
    /// Queries per relay per consensus round beyond which further
    /// queries are dropped as overload. `0` disables the limit.
    pub overload_threshold: u32,
    /// Per-page probability of a transient failure during the Sec. IV
    /// crawl. Consumed by the crawler (which runs against the world
    /// snapshot, not the live network), carried here so one plan
    /// describes the whole campaign's adversity.
    pub crawl_transient_rate: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            relay_crash_rate: 0.0,
            restart_after_hours: 0,
            hsdir_drop_rate: 0.0,
            publish_drop_rate: 0.0,
            service_flap_rate: 0.0,
            overload_threshold: 0,
            crawl_transient_rate: 0.0,
        }
    }

    /// The committed adversarial profile: relay churn, lossy HSDirs,
    /// failed uploads, flapping services and a flaky crawl — rates
    /// chosen so a test-scale study degrades visibly but still
    /// completes.
    pub fn adversarial(seed: u64) -> Self {
        FaultPlan {
            seed,
            relay_crash_rate: 0.002,
            restart_after_hours: 3,
            hsdir_drop_rate: 0.05,
            publish_drop_rate: 0.03,
            service_flap_rate: 0.02,
            overload_threshold: 400,
            crawl_transient_rate: 0.10,
        }
    }

    /// Whether the plan can ever inject anything. An inert plan is
    /// skipped entirely on the hot path (and is byte-identical to no
    /// plan even when not skipped, because decisions are hash-based).
    pub fn is_inert(&self) -> bool {
        self.relay_crash_rate == 0.0
            && self.hsdir_drop_rate == 0.0
            && self.publish_drop_rate == 0.0
            && self.service_flap_rate == 0.0
            && self.overload_threshold == 0
            && self.crawl_transient_rate == 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Cumulative counts of injected faults, snapshot-and-diff friendly
/// like `HotPathCounters`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct FaultCounters {
    /// Relays crashed by the plan.
    pub relay_crashes: u64,
    /// Crashed relays restarted after their downtime elapsed.
    pub relay_restarts: u64,
    /// Descriptor queries dropped by the per-query drop rate.
    pub fetch_drops: u64,
    /// Descriptor queries dropped because the relay was overloaded.
    pub overload_drops: u64,
    /// Descriptor uploads dropped at publish time.
    pub publish_drops: u64,
    /// Connections refused because the service was flapping.
    pub service_flaps: u64,
}

impl FaultCounters {
    /// Component-wise `self - earlier`: faults injected since a
    /// snapshot.
    pub fn since(self, earlier: FaultCounters) -> FaultCounters {
        FaultCounters {
            relay_crashes: self.relay_crashes - earlier.relay_crashes,
            relay_restarts: self.relay_restarts - earlier.relay_restarts,
            fetch_drops: self.fetch_drops - earlier.fetch_drops,
            overload_drops: self.overload_drops - earlier.overload_drops,
            publish_drops: self.publish_drops - earlier.publish_drops,
            service_flaps: self.service_flaps - earlier.service_flaps,
        }
    }

    /// Folds the counters into a metric registry under their
    /// historical `bench_stages.json` names, in the historical order.
    /// Callers gate this on an active plan so fault-free runs keep the
    /// legacy counter layout byte-stable.
    pub fn record_into(self, reg: &mut obs::Registry) {
        reg.inc("relay_crashes", self.relay_crashes);
        reg.inc("relay_restarts", self.relay_restarts);
        reg.inc("fetch_drops", self.fetch_drops);
        reg.inc("overload_drops", self.overload_drops);
        reg.inc("publish_drops", self.publish_drops);
        reg.inc("service_flaps", self.service_flaps);
    }

    /// Total faults injected across all categories.
    pub fn total(self) -> u64 {
        self.relay_crashes
            + self.fetch_drops
            + self.overload_drops
            + self.publish_drops
            + self.service_flaps
    }
}

/// Capped exponential backoff for descriptor-fetch retries. Backoff is
/// accounted, not slept: the simulation never advances time for it, so
/// a zero-fault run (which never retries) is unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum fetch attempts (including the first). Values below 1
    /// behave as 1.
    pub max_attempts: u32,
    /// Backoff after the first failed attempt, in seconds.
    pub base_backoff_secs: u64,
    /// Backoff cap per attempt, in seconds.
    pub max_backoff_secs: u64,
}

impl RetryPolicy {
    /// The 2013 client defaults the measurement code uses: three
    /// attempts, 2 s doubling to a 30 s cap.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_secs: 2,
            max_backoff_secs: 30,
        }
    }

    /// The backoff charged after failed attempt number `attempt`
    /// (1-based): `min(base << (attempt-1), max)`.
    pub fn backoff_after(&self, attempt: u32) -> u64 {
        let shifted = self
            .base_backoff_secs
            .saturating_mul(1u64 << (attempt.saturating_sub(1)).min(32));
        shifted.min(self.max_backoff_secs)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

/// SplitMix64 finalizer: the avalanche stage used to turn structured
/// keys into uniform bits.
pub(crate) fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Maps mixed bits to `[0, 1)` with 53-bit precision.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A deterministic Bernoulli roll keyed on the plan seed, a decision
/// kind and two structured operands.
pub fn roll(seed: u64, kind: u64, a: u64, b: u64) -> f64 {
    unit(mix(mix(mix(seed ^ kind) ^ a) ^ b))
}

const KIND_CRASH: u64 = 0x000c_7a5e;
pub(crate) const KIND_QUERY: u64 = 0x0009_d70f;
const KIND_PUBLISH: u64 = 0x000b_ab11;
const KIND_FLAP: u64 = 0x000f_1ab5;

/// First eight bytes of a descriptor ID as a hash operand.
pub(crate) fn desc_key(id: DescriptorId) -> u64 {
    let digest = id.digest();
    let bytes = digest.as_bytes();
    let mut k = [0u8; 8];
    k.copy_from_slice(&bytes[..8]);
    u64::from_be_bytes(k)
}

/// The onion's permanent identifier as a hash operand.
pub(crate) fn onion_key(onion: OnionAddress) -> u64 {
    let perm = onion.permanent_id();
    let bytes = perm.as_bytes();
    let mut k = [0u8; 8];
    k[..bytes.len().min(8)].copy_from_slice(&bytes[..bytes.len().min(8)]);
    u64::from_be_bytes(k)
}

/// One relay's churn decision for a round, produced read-only by the
/// fault wave and applied in relay index order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct RoundDecision {
    /// Drop the relay's restart schedule (restart due, or operator
    /// already restarted it out-of-band).
    clear_schedule: bool,
    /// Restart the relay and restore its pre-crash reachability.
    restart: bool,
    /// Crash the relay and schedule its restart.
    crash: bool,
}

/// Live fault-injection state carried by a `Network`. Cloning a
/// network clones this verbatim, so branched timelines replay their
/// faults independently and deterministically.
#[derive(Clone, Debug, Default)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    /// Per-relay restart schedule: `(restart due, reachable before the
    /// crash)`. Fault-layer restarts restore the pre-crash
    /// reachability so wave-scheduled fleet relays do not jump their
    /// activation wave.
    crashed_until: Vec<Option<(SimTime, bool)>>,
    /// Per-relay descriptor queries received this consensus round.
    load: Vec<u32>,
    /// Monotonic query serial: makes per-query drop rolls independent
    /// draws (so client retries are not doomed to repeat the exact
    /// same decision) while staying fully deterministic.
    query_serial: u64,
    pub(crate) counters: FaultCounters,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            ..FaultState::default()
        }
    }

    pub(crate) fn is_inert(&self) -> bool {
        self.plan.is_inert()
    }

    fn ensure_len(&mut self, n: usize) {
        if self.crashed_until.len() < n {
            self.crashed_until.resize(n, None);
        }
        if self.load.len() < n {
            self.load.resize(n, 0);
        }
    }

    /// One consensus round of relay-level faults: restart relays whose
    /// downtime elapsed, roll fresh crashes, reset the per-round load
    /// counters. Idempotent within a round (revotes re-roll the same
    /// hashes against already-stopped relays).
    ///
    /// The churn rolls are pure hashes of `(seed, relay index, time)`,
    /// so they run as a read-only per-relay wave on `pool`; effects are
    /// applied afterwards in relay index order, which is exactly the
    /// order the old sequential loop used.
    pub(crate) fn on_round(
        &mut self,
        relays: &mut [Relay],
        now: SimTime,
        pool: &wave::WavePool,
    ) -> wave::WaveStats {
        self.ensure_len(relays.len());
        let state = &*self;
        let (decisions, stats) =
            pool.map(&*relays, |idx, relay| state.round_decision(idx, relay, now));
        for (idx, d) in decisions.iter().enumerate() {
            let relay = &mut relays[idx];
            if d.restart {
                let was_reachable = self.crashed_until[idx].map_or(relay.reachable, |(_, r)| r);
                relay.start(now);
                relay.reachable = was_reachable;
                self.counters.relay_restarts += 1;
            }
            if d.clear_schedule {
                self.crashed_until[idx] = None;
            }
            if d.crash {
                let was_reachable = relay.reachable;
                relay.stop();
                self.crashed_until[idx] = Some((
                    now + self.plan.restart_after_hours.max(1) * HOUR,
                    was_reachable,
                ));
                self.counters.relay_crashes += 1;
            }
        }
        for load in &mut self.load {
            *load = 0;
        }
        stats
    }

    /// One relay's churn decision for this round, computed without
    /// mutating anything. The sequential loop's read-after-write
    /// dependencies (a restart makes the relay crash-eligible again in
    /// the same round) are simulated on local state, so applying the
    /// decisions in index order reproduces the old behaviour exactly.
    fn round_decision(&self, idx: usize, relay: &Relay, now: SimTime) -> RoundDecision {
        let schedule = self.crashed_until.get(idx).copied().flatten();
        let mut running = relay.running;
        let mut clear_schedule = false;
        let mut restart = false;
        if let Some((due, _)) = schedule {
            if running {
                // The operator restarted it out-of-band (e.g. the
                // harvest fleet re-registering a crashed instance);
                // the scheduled restart is moot.
                clear_schedule = true;
            } else if now >= due {
                restart = true;
                clear_schedule = true;
                running = true;
            }
        }
        let still_down = schedule.is_some() && !clear_schedule;
        let crash = running
            && !still_down
            && roll(self.plan.seed, KIND_CRASH, idx as u64, now.unix())
                < self.plan.relay_crash_rate;
        RoundDecision {
            clear_schedule,
            restart,
            crash,
        }
    }

    /// Whether a responsible HSDir drops this descriptor query
    /// (overload first, then the random drop rate). Increments the
    /// relay's round load either way.
    pub(crate) fn drops_query(&mut self, relay: RelayId, desc_id: DescriptorId) -> bool {
        self.ensure_len(relay.0 + 1);
        self.load[relay.0] += 1;
        if self.plan.overload_threshold > 0 && self.load[relay.0] > self.plan.overload_threshold {
            self.counters.overload_drops += 1;
            return true;
        }
        self.query_serial += 1;
        if roll(
            self.plan.seed,
            KIND_QUERY,
            desc_key(desc_id),
            self.query_serial,
        ) < self.plan.hsdir_drop_rate
        {
            self.counters.fetch_drops += 1;
            return true;
        }
        false
    }

    /// A relay's accumulated descriptor-query load this consensus
    /// round, as seen by a read-only measurement wave (the snapshot
    /// the wave's overload decisions add their local load to).
    pub(crate) fn round_load(&self, relay: RelayId) -> u32 {
        self.load.get(relay.0).copied().unwrap_or(0)
    }

    /// Folds a wave unit's per-relay load increments back into the
    /// global round-load table. Addition is commutative, so the merge
    /// order across units does not matter.
    pub(crate) fn add_load(&mut self, increments: &[(usize, u32)]) {
        for &(idx, load) in increments {
            self.ensure_len(idx + 1);
            self.load[idx] += load;
        }
    }

    /// The drop roll a read-only wave uses in place of the sequential
    /// path's `query_serial`: the serial operand is derived from the
    /// unit's stable key instead of global fetch order, so the decision
    /// is identical at any thread count.
    pub(crate) fn wave_drop_roll(&self, desc_id: DescriptorId, serial: u64) -> bool {
        roll(self.plan.seed, KIND_QUERY, desc_key(desc_id), serial) < self.plan.hsdir_drop_rate
    }

    /// Whether a descriptor upload to one HSDir fails. Keyed on
    /// `(relay, descriptor, time)` — not the query serial — because
    /// publish order must not influence the decision: the publish wave
    /// rolls this per upload on worker threads and only merges the
    /// *count* of drops back, in canonical `ServiceId` order.
    pub(crate) fn publish_drop_roll(
        &self,
        relay: RelayId,
        desc_id: DescriptorId,
        now: SimTime,
    ) -> bool {
        roll(
            self.plan.seed,
            KIND_PUBLISH,
            desc_key(desc_id) ^ now.unix(),
            relay.0 as u64,
        ) < self.plan.publish_drop_rate
    }

    /// Whether a service is transiently unreachable this hour.
    pub(crate) fn service_flapping(&mut self, onion: OnionAddress, now: SimTime) -> bool {
        if roll(self.plan.seed, KIND_FLAP, onion_key(onion), now.hours())
            < self.plan.service_flap_rate
        {
            self.counters.service_flaps += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_plan_is_inert() {
        assert!(FaultPlan::none().is_inert());
        assert!(FaultPlan::default().is_inert());
        assert!(!FaultPlan::adversarial(1).is_inert());
        let mut one = FaultPlan::none();
        one.service_flap_rate = 0.01;
        assert!(!one.is_inert());
    }

    #[test]
    fn rolls_are_deterministic_and_distinct() {
        assert_eq!(roll(7, KIND_CRASH, 3, 9), roll(7, KIND_CRASH, 3, 9));
        assert_ne!(roll(7, KIND_CRASH, 3, 9), roll(8, KIND_CRASH, 3, 9));
        assert_ne!(roll(7, KIND_CRASH, 3, 9), roll(7, KIND_QUERY, 3, 9));
        let r = roll(7, KIND_FLAP, 1, 2);
        assert!((0.0..1.0).contains(&r));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::standard();
        assert_eq!(p.backoff_after(1), 2);
        assert_eq!(p.backoff_after(2), 4);
        assert_eq!(p.backoff_after(3), 8);
        assert_eq!(p.backoff_after(10), 30, "capped at max_backoff_secs");
    }

    #[test]
    fn counters_since_subtracts() {
        let a = FaultCounters {
            relay_crashes: 5,
            fetch_drops: 10,
            ..FaultCounters::default()
        };
        let b = FaultCounters {
            relay_crashes: 2,
            fetch_drops: 4,
            ..FaultCounters::default()
        };
        let d = a.since(b);
        assert_eq!(d.relay_crashes, 3);
        assert_eq!(d.fetch_drops, 6);
        assert_eq!(d.total(), 9);
    }
}

//! Circuit cells and the attacker's traffic signature.
//!
//! Tor moves data in fixed-size cells. The deanonymisation technique of
//! Biryukov et al. (adapted in Sec. VI to *clients*) has a malicious
//! HSDir answer a descriptor request with the descriptor "encapsulated in
//! a specific traffic signature": a burst of PADDING cells followed by a
//! DESTROY. A colluding guard node watches the cell stream toward each of
//! its clients; when the signature pattern appears, the guard learns that
//! *this* client, whose IP address the guard sees directly, just fetched
//! the target service's descriptor.

use core::fmt;

/// The cell types the signature detector distinguishes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CellKind {
    /// An ordinary RELAY cell carrying data.
    Relay,
    /// A PADDING cell (normally rare inside a circuit).
    Padding,
    /// A DESTROY cell tearing the circuit down.
    Destroy,
}

/// A cell as observed on the wire by a relay (guards see cells flowing
/// toward the client but cannot read RELAY payloads of other hops).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Cell {
    /// The cell type.
    pub kind: CellKind,
}

impl Cell {
    /// Convenience constructor.
    pub fn of(kind: CellKind) -> Self {
        Cell { kind }
    }
}

/// The attacker's cell-sequence signature.
///
/// # Examples
///
/// ```
/// use tor_sim::cells::{Cell, CellKind, TrafficSignature};
///
/// let sig = TrafficSignature::default();
/// let stream = sig.encode_response(3);
/// assert!(sig.matches(&stream));
/// ```
#[derive(Clone, Debug)]
pub struct TrafficSignature {
    /// Number of PADDING cells in the marker burst.
    pub padding_run: usize,
}

impl Default for TrafficSignature {
    /// The burst length used in the original hidden-service
    /// deanonymisation attack (50 PADDING cells then DESTROY).
    fn default() -> Self {
        TrafficSignature { padding_run: 50 }
    }
}

impl TrafficSignature {
    /// Creates a signature with a custom burst length.
    ///
    /// # Panics
    ///
    /// Panics if `padding_run` is zero — an empty burst matches ordinary
    /// traffic.
    pub fn new(padding_run: usize) -> Self {
        assert!(padding_run > 0, "padding run must be nonzero");
        TrafficSignature { padding_run }
    }

    /// Builds the cell stream a malicious HSDir sends as a descriptor
    /// response: the descriptor payload (`payload_cells` RELAY cells),
    /// the PADDING burst, then DESTROY.
    pub fn encode_response(&self, payload_cells: usize) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(payload_cells + self.padding_run + 1);
        cells.extend(std::iter::repeat_n(
            Cell::of(CellKind::Relay),
            payload_cells,
        ));
        cells.extend(std::iter::repeat_n(
            Cell::of(CellKind::Padding),
            self.padding_run,
        ));
        cells.push(Cell::of(CellKind::Destroy));
        cells
    }

    /// Whether `stream` contains the signature: a run of at least
    /// `padding_run` PADDING cells immediately followed by DESTROY.
    pub fn matches(&self, stream: &[Cell]) -> bool {
        let mut run = 0usize;
        for cell in stream {
            match cell.kind {
                CellKind::Padding => run += 1,
                CellKind::Destroy if run >= self.padding_run => return true,
                _ => run = 0,
            }
        }
        false
    }
}

/// An ordinary (unsignatured) descriptor response, for comparison.
pub fn plain_response(payload_cells: usize) -> Vec<Cell> {
    let mut cells = vec![Cell::of(CellKind::Relay); payload_cells.max(1)];
    cells.push(Cell::of(CellKind::Destroy));
    cells
}

impl fmt::Display for TrafficSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "signature(PADDINGx{} + DESTROY)", self.padding_run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_roundtrip() {
        let sig = TrafficSignature::new(10);
        assert!(sig.matches(&sig.encode_response(0)));
        assert!(sig.matches(&sig.encode_response(25)));
    }

    #[test]
    fn plain_traffic_does_not_match() {
        let sig = TrafficSignature::default();
        assert!(!sig.matches(&plain_response(5)));
        assert!(!sig.matches(&[]));
    }

    #[test]
    fn interrupted_run_does_not_match() {
        let sig = TrafficSignature::new(4);
        let mut stream = vec![Cell::of(CellKind::Padding); 3];
        stream.push(Cell::of(CellKind::Relay)); // breaks the run
        stream.extend(vec![Cell::of(CellKind::Padding); 3]);
        stream.push(Cell::of(CellKind::Destroy));
        assert!(!sig.matches(&stream));
    }

    #[test]
    fn longer_run_still_matches() {
        let sig = TrafficSignature::new(4);
        let mut stream = vec![Cell::of(CellKind::Padding); 9];
        stream.push(Cell::of(CellKind::Destroy));
        assert!(sig.matches(&stream));
    }

    #[test]
    fn shorter_signature_in_longer_one_is_detected_asymmetrically() {
        // A guard configured for a short run detects a long-run response;
        // the converse fails. This is why attacker HSDir and guard must
        // agree on the pattern.
        let short = TrafficSignature::new(10);
        let long = TrafficSignature::new(50);
        assert!(short.matches(&long.encode_response(2)));
        assert!(!long.matches(&short.encode_response(2)));
    }

    #[test]
    #[should_panic(expected = "padding run must be nonzero")]
    fn zero_run_rejected() {
        let _ = TrafficSignature::new(0);
    }
}

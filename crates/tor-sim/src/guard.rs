//! Client entry-guard management.
//!
//! A Tor client keeps a small set of three entry guards; every circuit's
//! first hop is drawn from that set. Guards expire after a uniform
//! 30–60 days, and whenever fewer than two guards in the set are usable
//! the client tops the set back up. The client-deanonymisation attack of
//! Sec. VI succeeds exactly when one of the victim's guards belongs to
//! the attacker, so this rotation policy determines the attack's catch
//! rate.

use rand::{Rng, RngExt};

use crate::clock::{SimTime, DAY};
use crate::consensus::Consensus;
use crate::relay::RelayId;

/// Target number of guards in a client's set.
pub const GUARD_SET_SIZE: usize = 3;

/// Minimum guard lifetime in days.
pub const GUARD_LIFETIME_MIN_DAYS: u64 = 30;

/// Maximum guard lifetime in days.
pub const GUARD_LIFETIME_MAX_DAYS: u64 = 60;

/// One guard in a client's set.
#[derive(Clone, Copy, Debug)]
pub struct GuardEntry {
    /// The guard relay.
    pub relay: RelayId,
    /// When this entry expires and is dropped from the set.
    pub expires: SimTime,
}

/// A client's entry-guard set.
#[derive(Clone, Debug, Default)]
pub struct GuardSet {
    guards: Vec<GuardEntry>,
}

impl GuardSet {
    /// Creates an empty guard set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current entries (including currently-unusable guards, which stay
    /// in the set until they expire).
    pub fn entries(&self) -> &[GuardEntry] {
        &self.guards
    }

    /// Whether `relay` is in the set.
    pub fn contains(&self, relay: RelayId) -> bool {
        self.guards.iter().any(|g| g.relay == relay)
    }

    /// Maintains the set against the current consensus:
    /// 1. drops expired entries;
    /// 2. if fewer than two listed (usable) guards remain, samples new
    ///    guards — bandwidth-weighted from the consensus Guard nodes —
    ///    until the set again holds [`GUARD_SET_SIZE`] usable entries.
    pub fn maintain(&mut self, consensus: &Consensus, now: SimTime, rng: &mut impl Rng) {
        self.guards.retain(|g| g.expires > now);

        let usable = |guards: &[GuardEntry]| {
            guards
                .iter()
                .filter(|g| relay_is_listed_guard(consensus, g.relay))
                .count()
        };

        if usable(&self.guards) >= 2 && !self.guards.is_empty() {
            return;
        }

        let candidates: Vec<(RelayId, u64)> = consensus
            .guards()
            .filter(|e| !self.contains(e.relay))
            .map(|e| (e.relay, e.bandwidth))
            .collect();
        let mut candidates = candidates;

        while usable(&self.guards) < GUARD_SET_SIZE {
            let Some(idx) = sample_weighted_index(&candidates, rng) else {
                break; // network too small to supply more guards
            };
            let (relay, _) = candidates.swap_remove(idx);
            let lifetime_days = rng.random_range(GUARD_LIFETIME_MIN_DAYS..=GUARD_LIFETIME_MAX_DAYS);
            self.guards.push(GuardEntry {
                relay,
                expires: now + lifetime_days * DAY,
            });
        }
    }

    /// Picks the guard for a new circuit: uniform among the usable
    /// members of the set, per the paper's model ("one node from the set
    /// of Guard nodes is used for the first hop").
    pub fn pick(&self, consensus: &Consensus, rng: &mut impl Rng) -> Option<RelayId> {
        let usable: Vec<RelayId> = self
            .guards
            .iter()
            .map(|g| g.relay)
            .filter(|&r| relay_is_listed_guard(consensus, r))
            .collect();
        if usable.is_empty() {
            None
        } else {
            Some(usable[rng.random_range(0..usable.len())])
        }
    }
}

fn relay_is_listed_guard(consensus: &Consensus, relay: RelayId) -> bool {
    consensus.guards().any(|e| e.relay == relay)
}

/// Samples an index from `(item, weight)` pairs proportionally to
/// weight. Returns `None` for an empty or zero-weight list.
pub fn sample_weighted_index<T>(items: &[(T, u64)], rng: &mut impl Rng) -> Option<usize> {
    let total: u64 = items.iter().map(|(_, w)| *w).sum();
    if total == 0 {
        return None;
    }
    let mut target = rng.random_range(0..total);
    for (i, (_, w)) in items.iter().enumerate() {
        if target < *w {
            return Some(i);
        }
        target -= w;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_consensus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn maintains_three_guards() {
        let c = tiny_consensus(40);
        let now = c.valid_after();
        let mut rng = StdRng::seed_from_u64(1);
        let mut set = GuardSet::new();
        set.maintain(&c, now, &mut rng);
        assert_eq!(set.entries().len(), GUARD_SET_SIZE);
        // All picked relays carry the Guard flag.
        for g in set.entries() {
            assert!(relay_is_listed_guard(&c, g.relay));
        }
    }

    #[test]
    fn guards_expire_and_are_replaced() {
        let c = tiny_consensus(40);
        let now = c.valid_after();
        let mut rng = StdRng::seed_from_u64(2);
        let mut set = GuardSet::new();
        set.maintain(&c, now, &mut rng);
        let original: Vec<RelayId> = set.entries().iter().map(|g| g.relay).collect();

        // After 61 days everything has expired; maintenance resamples.
        let later = now + 61 * DAY;
        set.maintain(&c, later, &mut rng);
        assert_eq!(set.entries().len(), GUARD_SET_SIZE);
        for g in set.entries() {
            assert!(g.expires > later);
        }
        // With 40 relays the odds all three match the originals are tiny;
        // expiry must at least have reset lifetimes.
        let _ = original;
    }

    #[test]
    fn lifetimes_within_30_to_60_days() {
        let c = tiny_consensus(40);
        let now = c.valid_after();
        let mut rng = StdRng::seed_from_u64(3);
        let mut set = GuardSet::new();
        set.maintain(&c, now, &mut rng);
        for g in set.entries() {
            let days = g.expires.since(now) / DAY;
            assert!(
                (GUARD_LIFETIME_MIN_DAYS..=GUARD_LIFETIME_MAX_DAYS).contains(&days),
                "lifetime {days} days"
            );
        }
    }

    #[test]
    fn pick_returns_member() {
        let c = tiny_consensus(40);
        let now = c.valid_after();
        let mut rng = StdRng::seed_from_u64(4);
        let mut set = GuardSet::new();
        set.maintain(&c, now, &mut rng);
        for _ in 0..20 {
            let g = set.pick(&c, &mut rng).unwrap();
            assert!(set.contains(g));
        }
    }

    #[test]
    fn empty_set_picks_none() {
        let c = tiny_consensus(10);
        let mut rng = StdRng::seed_from_u64(5);
        let set = GuardSet::new();
        assert!(set.pick(&c, &mut rng).is_none());
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(6);
        let items = [("a", 1u64), ("b", 0), ("c", 99)];
        let mut counts = [0u32; 3];
        for _ in 0..1000 {
            counts[sample_weighted_index(&items, &mut rng).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight item never sampled");
        assert!(counts[2] > counts[0] * 10, "heavy item dominates");
        assert!(sample_weighted_index::<u8>(&[], &mut rng).is_none());
    }
}

//! Deterministic fixtures shared by unit tests and doctests.
//!
//! Not part of the supported API surface.

use rand::rngs::StdRng;
use rand::SeedableRng;

use onion_crypto::identity::SimIdentity;

use crate::authority::Authority;
use crate::clock::{SimTime, DAY};
use crate::consensus::Consensus;
use crate::relay::{Ipv4, Relay, RelayId};

/// Builds a deterministic consensus of `n` established relays (every
/// relay has been up for 30 days, so all hold HSDir and, above the
/// bandwidth median, Guard).
pub fn tiny_consensus(n: usize) -> Consensus {
    let start = SimTime::from_ymd(2013, 2, 1);
    let mut rng = StdRng::seed_from_u64(0xf1f1);
    let relays: Vec<Relay> = (0..n)
        .map(|i| {
            Relay::new(
                RelayId(i),
                format!("fixture{i}"),
                Ipv4::new(10, 10, (i / 200) as u8, (i % 200) as u8 + 1),
                9001,
                SimIdentity::generate(&mut rng),
                100 + (i as u64 * 37) % 2000,
                start - 30 * DAY,
            )
        })
        .collect();
    Authority::new().vote(&relays, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::RelayFlags;

    #[test]
    fn fixture_is_fully_flagged() {
        let c = tiny_consensus(25);
        assert_eq!(c.len(), 25);
        assert_eq!(c.hsdir_count(), 25);
        assert!(c.guards().count() >= 10);
        assert!(c
            .entries()
            .iter()
            .all(|e| e.flags.contains(RelayFlags::RUNNING)));
    }

    #[test]
    fn fixture_is_deterministic() {
        let a = tiny_consensus(10);
        let b = tiny_consensus(10);
        let fa: Vec<_> = a.entries().iter().map(|e| e.fingerprint).collect();
        let fb: Vec<_> = b.entries().iter().map(|e| e.fingerprint).collect();
        assert_eq!(fa, fb);
    }
}

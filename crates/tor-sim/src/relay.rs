//! Relays: the volunteer routers that make up the simulated Tor network.

use core::fmt;

use onion_crypto::identity::{Fingerprint, SimIdentity};

use crate::clock::SimTime;
use crate::flags::RelayFlags;

/// Index of a relay inside a [`crate::network::Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelayId(pub usize);

impl fmt::Display for RelayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "relay#{}", self.0)
    }
}

/// An IPv4 address, stored as a `u32`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Builds an address from dotted-quad octets.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(u32::from_be_bytes([a, b, c, d]))
    }

    /// The four octets.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Debug for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ipv4({self})")
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Which party operates a relay — used by measurement code to tell
/// attacker infrastructure apart from honest volunteers. The *protocol*
/// never looks at this field.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Operator {
    /// An ordinary volunteer relay.
    #[default]
    Honest,
    /// Part of our harvesting fleet (the paper's 58 EC2 instances).
    Harvester,
    /// A third-party tracking campaign (Sec. VII's unknown entities),
    /// tagged with a campaign number.
    Tracker(u8),
}

/// A Tor relay.
///
/// A relay is *running* when its operator has it switched on, and
/// *reachable* when the directory authorities can connect to it. The
/// shadowing flaw exploited for harvesting lives in that distinction:
/// a running-but-unreachable relay drops out of the consensus while its
/// accumulated uptime (and therefore its HSDir flag eligibility) is
/// retained by the authorities.
#[derive(Clone, Debug)]
pub struct Relay {
    /// Stable simulator handle.
    pub id: RelayId,
    /// Operator-chosen nickname (not unique).
    pub nickname: String,
    /// IP address; at most two relays per IP enter the consensus.
    pub ip: Ipv4,
    /// OR port.
    pub or_port: u16,
    /// Identity key; the fingerprint is the relay's ring position.
    pub identity: SimIdentity,
    /// Measured bandwidth in kB/s (the two-per-IP tie-breaker).
    pub bandwidth: u64,
    /// Whether the operator currently has the relay switched on.
    pub running: bool,
    /// Whether directory authorities can reach the relay.
    pub reachable: bool,
    /// When the relay last (re)started; uptime accrues from here.
    pub last_restart: SimTime,
    /// Who operates the relay.
    pub operator: Operator,
    /// Whether this relay records descriptor-request logs (attacker
    /// HSDirs do; honest relays keep no logs).
    pub logging: bool,
}

impl Relay {
    /// Creates a running, reachable relay.
    pub fn new(
        id: RelayId,
        nickname: impl Into<String>,
        ip: Ipv4,
        or_port: u16,
        identity: SimIdentity,
        bandwidth: u64,
        now: SimTime,
    ) -> Self {
        Relay {
            id,
            nickname: nickname.into(),
            ip,
            or_port,
            identity,
            bandwidth,
            running: true,
            reachable: true,
            last_restart: now,
            operator: Operator::Honest,
            logging: false,
        }
    }

    /// The relay's identity fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.identity.fingerprint()
    }

    /// Continuous uptime in seconds as observed at `now` (zero when the
    /// relay is not running).
    pub fn uptime(&self, now: SimTime) -> u64 {
        if self.running {
            now.since(self.last_restart)
        } else {
            0
        }
    }

    /// Switches the relay off (clears uptime).
    pub fn stop(&mut self) {
        self.running = false;
        self.reachable = false;
    }

    /// Switches the relay on at `now`, resetting the uptime clock.
    pub fn start(&mut self, now: SimTime) {
        self.running = true;
        self.reachable = true;
        self.last_restart = now;
    }

    /// Replaces the identity key, as a tracker repositioning itself on
    /// the ring does. Real Tor treats this as a brand-new relay, but the
    /// authorities' uptime observation is keyed on (IP, port) history in
    /// our model — matching the paper's observation that trackers kept
    /// HSDir flags across fingerprint switches by keeping the same
    /// machine up.
    pub fn rotate_identity(&mut self, identity: SimIdentity) {
        self.identity = identity;
    }
}

/// Snapshot of a relay as the directory authorities see it while voting.
#[derive(Clone, Debug)]
pub struct RelayObservation {
    /// The relay observed.
    pub id: RelayId,
    /// Its fingerprint at observation time.
    pub fingerprint: Fingerprint,
    /// Continuous uptime in seconds.
    pub uptime: u64,
    /// Measured bandwidth.
    pub bandwidth: u64,
    /// Flags the authority would assign.
    pub flags: RelayFlags,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SimTime, HOUR};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn relay(now: SimTime) -> Relay {
        let mut rng = StdRng::seed_from_u64(5);
        Relay::new(
            RelayId(0),
            "testrelay",
            Ipv4::new(10, 0, 0, 1),
            9001,
            SimIdentity::generate(&mut rng),
            1000,
            now,
        )
    }

    #[test]
    fn uptime_accrues() {
        let t0 = SimTime::from_ymd(2013, 1, 1);
        let r = relay(t0);
        assert_eq!(r.uptime(t0), 0);
        assert_eq!(r.uptime(t0 + 25 * HOUR), 25 * HOUR);
    }

    #[test]
    fn stop_start_resets_uptime() {
        let t0 = SimTime::from_ymd(2013, 1, 1);
        let mut r = relay(t0);
        r.stop();
        assert_eq!(r.uptime(t0 + HOUR), 0);
        assert!(!r.reachable);
        r.start(t0 + 2 * HOUR);
        assert_eq!(r.uptime(t0 + 3 * HOUR), HOUR);
    }

    #[test]
    fn identity_rotation_changes_fingerprint() {
        let t0 = SimTime::from_ymd(2013, 1, 1);
        let mut r = relay(t0);
        let old = r.fingerprint();
        let mut rng = StdRng::seed_from_u64(99);
        r.rotate_identity(SimIdentity::generate(&mut rng));
        assert_ne!(r.fingerprint(), old);
    }

    #[test]
    fn ipv4_display() {
        assert_eq!(Ipv4::new(192, 168, 1, 42).to_string(), "192.168.1.42");
        assert_eq!(Ipv4::new(192, 168, 1, 42).octets(), [192, 168, 1, 42]);
    }
}

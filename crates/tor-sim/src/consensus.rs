//! The network consensus: the hourly directory document listing usable
//! relays, and the responsible-HSDir ring lookup performed against it.

use core::fmt;

use onion_crypto::descriptor::{DescriptorId, HSDIRS_PER_REPLICA};
use onion_crypto::identity::Fingerprint;
use onion_crypto::onion::OnionAddress;
use onion_crypto::u160::U160;

use crate::clock::SimTime;
use crate::flags::RelayFlags;
use crate::relay::{Ipv4, RelayId};

/// One router-status line of a consensus.
#[derive(Clone, Debug)]
pub struct ConsensusEntry {
    /// Simulator handle of the relay.
    pub relay: RelayId,
    /// Identity fingerprint (the ring position).
    pub fingerprint: Fingerprint,
    /// Operator-chosen nickname.
    pub nickname: String,
    /// Advertised IP address.
    pub ip: Ipv4,
    /// OR port.
    pub or_port: u16,
    /// Measured bandwidth in kB/s.
    pub bandwidth: u64,
    /// Assigned flags.
    pub flags: RelayFlags,
}

/// A consensus document: all usable relays at one `valid_after` time,
/// ordered by fingerprint.
///
/// # Examples
///
/// Responsible-HSDir lookup walks the fingerprint ring:
///
/// ```
/// # use tor_sim::test_support::tiny_consensus;
/// let consensus = tiny_consensus(12);
/// let onion: onion_crypto::OnionAddress = "silkroadvb5piz3r".parse().unwrap();
/// let responsible = consensus.responsible_for_service(onion, consensus.valid_after().unix());
/// assert_eq!(responsible.len(), 6); // 3 per replica × 2 replicas
/// ```
#[derive(Clone, Debug)]
pub struct Consensus {
    valid_after: SimTime,
    /// Entries sorted by fingerprint.
    entries: Vec<ConsensusEntry>,
    /// Indices (into `entries`) of relays with the HSDir flag, in
    /// fingerprint order — the hidden-service directory ring.
    hsdir_ring: Vec<usize>,
}

impl Consensus {
    /// Builds a consensus from unsorted entries.
    pub fn new(valid_after: SimTime, mut entries: Vec<ConsensusEntry>) -> Self {
        entries.sort_by_key(|e| e.fingerprint);
        let hsdir_ring = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.flags.contains(RelayFlags::HSDIR))
            .map(|(i, _)| i)
            .collect();
        Consensus {
            valid_after,
            entries,
            hsdir_ring,
        }
    }

    /// The time this consensus became valid.
    pub fn valid_after(&self) -> SimTime {
        self.valid_after
    }

    /// All entries, in fingerprint order.
    pub fn entries(&self) -> &[ConsensusEntry] {
        &self.entries
    }

    /// Number of listed relays.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the consensus lists no relays.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of relays carrying the HSDir flag.
    pub fn hsdir_count(&self) -> usize {
        self.hsdir_ring.len()
    }

    /// Iterates over the HSDir ring in fingerprint order.
    pub fn hsdirs(&self) -> impl Iterator<Item = &ConsensusEntry> + '_ {
        self.hsdir_ring.iter().map(move |&i| &self.entries[i])
    }

    /// Looks up an entry by fingerprint.
    pub fn entry(&self, fp: Fingerprint) -> Option<&ConsensusEntry> {
        self.entries
            .binary_search_by_key(&fp, |e| e.fingerprint)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// The relays responsible for storing one descriptor replica: the
    /// `HSDIRS_PER_REPLICA` HSDir-flagged relays whose fingerprints
    /// *follow* the descriptor ID on the ring (wrapping).
    ///
    /// Returns fewer entries when the ring itself is smaller.
    pub fn responsible_hsdirs(&self, desc_id: DescriptorId) -> Vec<&ConsensusEntry> {
        self.hsdirs_after(desc_id.to_u160(), HSDIRS_PER_REPLICA)
    }

    /// Allocation-free variant of [`Consensus::responsible_hsdirs`] for
    /// the consensus-round and fetch hot paths: writes the responsible
    /// relay handles into `out` and returns how many were filled
    /// (fewer than `HSDIRS_PER_REPLICA` only on tiny rings, zero on an
    /// empty ring). The filled prefix matches the `Vec` variant
    /// entry-for-entry.
    pub fn responsible_hsdirs_into(
        &self,
        desc_id: DescriptorId,
        out: &mut [RelayId; HSDIRS_PER_REPLICA],
    ) -> usize {
        let n = self.hsdir_ring.len();
        if n == 0 {
            return 0;
        }
        let pos = desc_id.to_u160();
        let start = self
            .hsdir_ring
            .partition_point(|&i| self.entries[i].fingerprint.to_u160() <= pos);
        let count = HSDIRS_PER_REPLICA.min(n);
        for (k, slot) in out.iter_mut().take(count).enumerate() {
            *slot = self.entries[self.hsdir_ring[(start + k) % n]].relay;
        }
        count
    }

    /// The first `count` HSDirs strictly after ring position `pos`.
    pub fn hsdirs_after(&self, pos: U160, count: usize) -> Vec<&ConsensusEntry> {
        let n = self.hsdir_ring.len();
        if n == 0 {
            return Vec::new();
        }
        // Find the first ring slot whose fingerprint exceeds `pos`.
        let start = self
            .hsdir_ring
            .partition_point(|&i| self.entries[i].fingerprint.to_u160() <= pos);
        (0..count.min(n))
            .map(|k| &self.entries[self.hsdir_ring[(start + k) % n]])
            .collect()
    }

    /// All six relays responsible for a service at `now_unix` (three per
    /// replica; duplicates possible on tiny rings).
    pub fn responsible_for_service(
        &self,
        onion: OnionAddress,
        now_unix: u64,
    ) -> Vec<&ConsensusEntry> {
        DescriptorId::pair_at(onion, now_unix)
            .into_iter()
            .flat_map(|id| self.responsible_hsdirs(id))
            .collect()
    }

    /// Entries with the Guard flag.
    pub fn guards(&self) -> impl Iterator<Item = &ConsensusEntry> + '_ {
        self.entries
            .iter()
            .filter(|e| e.flags.contains(RelayFlags::GUARD))
    }

    /// Total bandwidth of all Guard-flagged entries.
    pub fn guard_bandwidth(&self) -> u64 {
        self.guards().map(|e| e.bandwidth).sum()
    }

    /// The average gap between consecutive HSDir fingerprints on the
    /// ring (`2^160 / hsdir_count`), used by the Sec. VII ratio
    /// statistic.
    pub fn average_hsdir_gap(&self) -> U160 {
        match self.hsdir_count() {
            0 => U160::MAX,
            n => U160::MAX.div_u64(n as u64),
        }
    }
}

impl fmt::Display for Consensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "consensus {} ({} relays, {} HSDirs)",
            self.valid_after,
            self.len(),
            self.hsdir_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_consensus;
    use onion_crypto::sha1::Sha1;

    #[test]
    fn entries_sorted_by_fingerprint() {
        let c = tiny_consensus(20);
        let fps: Vec<_> = c.entries().iter().map(|e| e.fingerprint).collect();
        let mut sorted = fps.clone();
        sorted.sort();
        assert_eq!(fps, sorted);
    }

    #[test]
    fn responsible_hsdirs_follow_descriptor_id() {
        let c = tiny_consensus(30);
        let desc = DescriptorId::from_digest(Sha1::digest(b"some descriptor"));
        let resp = c.responsible_hsdirs(desc);
        assert_eq!(resp.len(), 3);
        // Every responsible fingerprint is > desc on the wrapped ring:
        // walking from desc forward, the three relays returned must be the
        // three nearest in forward distance among all HSDirs.
        let d0 = desc.to_u160();
        let mut dists: Vec<_> = c
            .hsdirs()
            .map(|e| d0.distance_to(e.fingerprint.to_u160()))
            .collect();
        dists.sort();
        let mut resp_dists: Vec<_> = resp
            .iter()
            .map(|e| d0.distance_to(e.fingerprint.to_u160()))
            .collect();
        resp_dists.sort();
        assert_eq!(resp_dists, dists[..3].to_vec());
    }

    #[test]
    fn responsible_into_matches_vec_variant() {
        for ring in [1usize, 2, 10, 30] {
            let c = tiny_consensus(ring);
            for seed in 0..20u32 {
                let desc = DescriptorId::from_digest(Sha1::digest(seed.to_be_bytes()));
                let via_vec: Vec<RelayId> =
                    c.responsible_hsdirs(desc).iter().map(|e| e.relay).collect();
                let mut buf = [RelayId(usize::MAX); HSDIRS_PER_REPLICA];
                let n = c.responsible_hsdirs_into(desc, &mut buf);
                assert_eq!(&buf[..n], &via_vec[..], "ring {ring} seed {seed}");
            }
        }
    }

    #[test]
    fn responsible_into_empty_ring_fills_nothing() {
        let c = Consensus::new(SimTime::EPOCH, Vec::new());
        let desc = DescriptorId::from_digest(Sha1::digest(b"x"));
        let mut buf = [RelayId(usize::MAX); HSDIRS_PER_REPLICA];
        assert_eq!(c.responsible_hsdirs_into(desc, &mut buf), 0);
    }

    #[test]
    fn ring_wraps() {
        let c = tiny_consensus(10);
        // A descriptor ID beyond the largest fingerprint wraps to the
        // smallest fingerprints.
        let max_fp = c.hsdirs().map(|e| e.fingerprint).max().unwrap();
        let desc = DescriptorId::from_digest(max_fp.digest());
        let resp = c.responsible_hsdirs(desc);
        let first_fp = c.hsdirs().next().unwrap().fingerprint;
        assert!(resp.iter().any(|e| e.fingerprint == first_fp));
    }

    #[test]
    fn service_gets_six_responsible() {
        let c = tiny_consensus(50);
        let onion: OnionAddress = "duckduckgo123456"
            .parse()
            .unwrap_or_else(|_| OnionAddress::from_pubkey(b"ddg"));
        let resp = c.responsible_for_service(onion, c.valid_after().unix());
        assert_eq!(resp.len(), 6);
    }

    #[test]
    fn lookup_by_fingerprint() {
        let c = tiny_consensus(8);
        let fp = c.entries()[3].fingerprint;
        assert_eq!(c.entry(fp).unwrap().fingerprint, fp);
        let absent = Fingerprint::from_digest(Sha1::digest(b"absent"));
        assert!(c.entry(absent).is_none());
    }

    #[test]
    fn empty_ring_returns_nothing() {
        let c = Consensus::new(SimTime::EPOCH, Vec::new());
        assert!(c.is_empty());
        let desc = DescriptorId::from_digest(Sha1::digest(b"x"));
        assert!(c.responsible_hsdirs(desc).is_empty());
        assert_eq!(c.average_hsdir_gap(), U160::MAX);
    }

    #[test]
    fn average_gap_scales() {
        let c = tiny_consensus(16);
        let gap = c.average_hsdir_gap();
        let expected = U160::MAX.div_u64(c.hsdir_count() as u64);
        assert_eq!(gap, expected);
    }
}
